//! In-tree stand-in for the `serde_derive` proc-macro crate.
//!
//! The workspace's `serde` shim defines `Serialize` / `Deserialize` as
//! marker traits with blanket implementations, so the derives here emit no
//! code at all — they exist so that `#[derive(Serialize, Deserialize)]`
//! and `#[serde(...)]` helper attributes parse exactly as they would with
//! the real serde, keeping the source compatible with a future swap to the
//! real crates.

use proc_macro::TokenStream;

/// No-op stand-in for `serde_derive::Serialize`.
#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}

/// No-op stand-in for `serde_derive::Deserialize`.
#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}
