//! In-tree stand-in for the [`serde`](https://crates.io/crates/serde) crate.
//!
//! The workspace annotates its data types with
//! `#[derive(Serialize, Deserialize)]` so they are ready for real serde
//! once a registry is reachable, but nothing in-tree performs actual
//! serde-based serialization yet (JSON emission goes through the
//! `serde_json` shim's explicit [`Value`](../serde_json/enum.Value.html)
//! type). `Serialize` and `Deserialize` are therefore marker traits with
//! blanket implementations, and the derive macros (re-exported from the
//! `serde_derive` shim) expand to nothing.
//!
//! Swapping in the real crates later requires only a `Cargo.toml` change —
//! every annotation in the workspace is already real-serde compatible.

#![forbid(unsafe_code)]

/// Marker stand-in for `serde::Serialize`; blanket-implemented for all types.
pub trait Serialize {}
impl<T: ?Sized> Serialize for T {}

/// Marker stand-in for `serde::Deserialize`; blanket-implemented for all types.
pub trait Deserialize<'de> {}
impl<'de, T: ?Sized> Deserialize<'de> for T {}

/// Marker stand-in for `serde::de::DeserializeOwned`.
pub trait DeserializeOwned {}
impl<T: ?Sized> DeserializeOwned for T {}

pub use serde_derive::{Deserialize, Serialize};

/// Stand-in for `serde::de`.
pub mod de {
    pub use crate::DeserializeOwned;
}

/// Stand-in for `serde::ser`.
pub mod ser {
    pub use crate::Serialize;
}
