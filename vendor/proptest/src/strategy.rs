//! Deterministic value-generation strategies.
//!
//! A [`Strategy`] produces values of its `Value` type from the
//! workspace's deterministic `StdRng`. Ranges of floats and integers are
//! strategies, `vec(element, len)` lifts a strategy over collections, and
//! [`Strategy::prop_map`] derives one strategy from another — enough for
//! the structural property tests this workspace runs.

use rand::rngs::StdRng;
use rand::RngExt;

/// A recipe for generating values of type `Value`.
pub trait Strategy {
    /// The type of the generated values.
    type Value;

    /// Draws one value from the strategy.
    fn sample(&self, rng: &mut StdRng) -> Self::Value;

    /// Derives a strategy that post-processes every generated value.
    fn prop_map<T, F>(self, map: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> T,
    {
        Map { inner: self, map }
    }
}

/// Strategy returned by [`Strategy::prop_map`].
pub struct Map<S, F> {
    inner: S,
    map: F,
}

impl<S, F, T> Strategy for Map<S, F>
where
    S: Strategy,
    F: Fn(S::Value) -> T,
{
    type Value = T;

    fn sample(&self, rng: &mut StdRng) -> T {
        (self.map)(self.inner.sample(rng))
    }
}

/// `&S` is a strategy wherever `S` is, so strategies can be reused.
impl<S: Strategy> Strategy for &S {
    type Value = S::Value;

    fn sample(&self, rng: &mut StdRng) -> S::Value {
        (**self).sample(rng)
    }
}

/// A constant strategy: always yields clones of the same value.
#[derive(Debug, Clone)]
pub struct Just<T>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;

    fn sample(&self, _rng: &mut StdRng) -> T {
        self.0.clone()
    }
}

macro_rules! range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for core::ops::Range<$t> {
            type Value = $t;

            fn sample(&self, rng: &mut StdRng) -> $t {
                rng.random_range(self.clone())
            }
        }

        impl Strategy for core::ops::RangeInclusive<$t> {
            type Value = $t;

            fn sample(&self, rng: &mut StdRng) -> $t {
                rng.random_range(self.clone())
            }
        }
    )*};
}

range_strategy!(f64, usize, u64, u32, i64, i32);

/// Strategy over `Vec`s with a fixed or ranged length.
pub struct VecStrategy<S> {
    element: S,
    min_len: usize,
    max_len: usize,
}

impl<S: Strategy> Strategy for VecStrategy<S> {
    type Value = Vec<S::Value>;

    fn sample(&self, rng: &mut StdRng) -> Vec<S::Value> {
        let len = if self.min_len == self.max_len {
            self.min_len
        } else {
            rng.random_range(self.min_len..=self.max_len)
        };
        (0..len).map(|_| self.element.sample(rng)).collect()
    }
}

/// Lengths accepted by [`vec`]: a fixed `usize` or a `Range<usize>`.
pub trait VecLen {
    /// Inclusive `(min, max)` length bounds.
    fn bounds(&self) -> (usize, usize);
}

impl VecLen for usize {
    fn bounds(&self) -> (usize, usize) {
        (*self, *self)
    }
}

impl VecLen for core::ops::Range<usize> {
    fn bounds(&self) -> (usize, usize) {
        assert!(self.start < self.end, "empty length range");
        (self.start, self.end - 1)
    }
}

impl VecLen for core::ops::RangeInclusive<usize> {
    fn bounds(&self) -> (usize, usize) {
        (*self.start(), *self.end())
    }
}

/// Strategy over vectors whose elements come from `element` and whose
/// length is described by `len` (mirrors `proptest::collection::vec`).
pub fn vec<S: Strategy>(element: S, len: impl VecLen) -> VecStrategy<S> {
    let (min_len, max_len) = len.bounds();
    VecStrategy {
        element,
        min_len,
        max_len,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    #[test]
    fn ranges_and_vec_stay_in_bounds() {
        let mut rng = StdRng::seed_from_u64(5);
        let strat =
            vec(-1.0f64..1.0, 8).prop_map(|v| v.into_iter().map(f64::abs).collect::<Vec<_>>());
        for _ in 0..50 {
            let v = strat.sample(&mut rng);
            assert_eq!(v.len(), 8);
            assert!(v.iter().all(|x| (0.0..1.0).contains(x)));
        }
    }

    #[test]
    fn sampling_is_deterministic_per_seed() {
        let strat = vec(0usize..100, 2..5usize);
        let a: Vec<_> = {
            let mut rng = StdRng::seed_from_u64(9);
            (0..10).map(|_| strat.sample(&mut rng)).collect()
        };
        let b: Vec<_> = {
            let mut rng = StdRng::seed_from_u64(9);
            (0..10).map(|_| strat.sample(&mut rng)).collect()
        };
        assert_eq!(a, b);
    }
}
