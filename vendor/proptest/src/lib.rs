//! In-tree stand-in for the [`proptest`](https://crates.io/crates/proptest)
//! crate.
//!
//! Implements the subset of the proptest API the workspace's property
//! tests use — [`Strategy`] with `prop_map`, float/integer range
//! strategies, `prop::collection::vec`, the [`proptest!`] macro,
//! [`prop_assert!`] / [`prop_assert_eq!`] and [`ProptestConfig`] — on top
//! of the workspace's deterministic `rand` shim.
//!
//! Differences from real proptest, deliberately accepted:
//!
//! * **Deterministic cases.** Inputs derive from a seed hashed from the
//!   test name and case index, so failures reproduce exactly in CI.
//! * **No shrinking.** A failing case reports its case number and the
//!   assertion message; since generation is deterministic, re-running the
//!   test replays the same failing input.

#![warn(missing_docs)]
#![forbid(unsafe_code)]

use rand::rngs::StdRng;
use rand::SeedableRng;

pub mod strategy;

pub use strategy::Strategy;

/// The reason a property-test case failed.
#[derive(Debug, Clone)]
pub struct TestCaseError {
    message: String,
}

impl TestCaseError {
    /// Creates a failure with the given message.
    pub fn fail(message: impl Into<String>) -> Self {
        TestCaseError {
            message: message.into(),
        }
    }

    /// Real-proptest-compatible alias of [`TestCaseError::fail`].
    pub fn reject(message: impl Into<String>) -> Self {
        Self::fail(message)
    }
}

impl std::fmt::Display for TestCaseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.message)
    }
}

/// Per-test configuration, set through
/// `#![proptest_config(ProptestConfig::with_cases(n))]`.
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of random cases each property runs.
    pub cases: u32,
}

impl ProptestConfig {
    /// Configuration running `cases` cases per property.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 64 }
    }
}

/// FNV-1a hash of the test name; combined with the case index it seeds the
/// per-case generator so every case is deterministic and distinct.
fn seed_for(name: &str, case: u32) -> u64 {
    let mut hash: u64 = 0xcbf2_9ce4_8422_2325;
    for byte in name.bytes() {
        hash ^= byte as u64;
        hash = hash.wrapping_mul(0x0000_0100_0000_01b3);
    }
    hash ^ ((case as u64) << 32 | case as u64)
}

/// Driver used by the [`proptest!`] expansion: runs `body` for each case
/// with a deterministic generator and panics on the first failure.
pub fn run_proptest<F>(config: ProptestConfig, name: &str, mut body: F)
where
    F: FnMut(&mut StdRng) -> Result<(), TestCaseError>,
{
    for case in 0..config.cases {
        let mut rng = StdRng::seed_from_u64(seed_for(name, case));
        if let Err(err) = body(&mut rng) {
            panic!(
                "proptest case {case}/{total} of `{name}` failed: {err}",
                total = config.cases,
            );
        }
    }
}

/// Namespaced strategy constructors, mirroring `proptest::prop`.
pub mod prop {
    /// Collection strategies.
    pub mod collection {
        pub use crate::strategy::vec;
    }
}

/// The usual glob import: `use proptest::prelude::*;`.
pub mod prelude {
    pub use crate::strategy::Strategy;
    pub use crate::{prop, prop_assert, prop_assert_eq, prop_assert_ne, proptest};
    pub use crate::{ProptestConfig, TestCaseError};
}

/// Defines property tests. Supports the standard form:
///
/// ```ignore
/// proptest! {
///     #![proptest_config(ProptestConfig::with_cases(64))]
///     #[test]
///     fn my_property(x in 0.0f64..1.0, v in prop::collection::vec(0usize..9, 4)) {
///         prop_assert!(x < 1.0);
///     }
/// }
/// ```
#[macro_export]
macro_rules! proptest {
    (
        #![proptest_config($config:expr)]
        $(
            $(#[$meta:meta])*
            fn $name:ident($($arg:pat_param in $strategy:expr),+ $(,)?) $body:block
        )*
    ) => {
        $(
            $(#[$meta])*
            fn $name() {
                $crate::run_proptest($config, stringify!($name), |__proptest_rng| {
                    $(let $arg = $crate::strategy::Strategy::sample(&($strategy), __proptest_rng);)+
                    let __proptest_result: ::std::result::Result<(), $crate::TestCaseError> =
                        (|| {
                            $body
                            ::std::result::Result::Ok(())
                        })();
                    __proptest_result
                });
            }
        )*
    };
    (
        $(
            $(#[$meta:meta])*
            fn $name:ident($($arg:pat_param in $strategy:expr),+ $(,)?) $body:block
        )*
    ) => {
        $crate::proptest! {
            #![proptest_config($crate::ProptestConfig::default())]
            $(
                $(#[$meta])*
                fn $name($($arg in $strategy),+) $body
            )*
        }
    };
}

/// Fails the current property-test case with an optional formatted message.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, "assertion failed: {}", stringify!($cond))
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !($cond) {
            return ::std::result::Result::Err($crate::TestCaseError::fail(format!($($fmt)+)));
        }
    };
}

/// Fails the current case unless the two expressions are equal.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (left, right) = (&$left, &$right);
        $crate::prop_assert!(
            left == right,
            "assertion failed: `{:?}` == `{:?}`",
            left,
            right
        );
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (left, right) = (&$left, &$right);
        $crate::prop_assert!(left == right, $($fmt)+);
    }};
}

/// Fails the current case if the two expressions are equal.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let (left, right) = (&$left, &$right);
        $crate::prop_assert!(
            left != right,
            "assertion failed: `{:?}` != `{:?}`",
            left,
            right
        );
    }};
}
