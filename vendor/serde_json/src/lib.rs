//! In-tree stand-in for the [`serde_json`](https://crates.io/crates/serde_json)
//! crate.
//!
//! Because the workspace's `serde` shim provides only marker traits, this
//! shim serializes an explicit [`Value`] tree instead of arbitrary
//! `T: Serialize`. Build the tree with the `From` conversions and
//! [`Value::object`] / [`Value::array`], then render it with
//! [`to_string`] or [`to_string_pretty`]. Output is valid JSON with full
//! string escaping; object keys keep insertion order.

#![warn(missing_docs)]
#![forbid(unsafe_code)]

use std::fmt::Write as _;

/// A JSON value tree.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// `null`
    Null,
    /// `true` / `false`
    Bool(bool),
    /// Any finite number (non-finite floats render as `null`, as in serde_json).
    Number(f64),
    /// A string.
    String(String),
    /// An ordered array.
    Array(Vec<Value>),
    /// An object; keys keep insertion order.
    Object(Vec<(String, Value)>),
}

impl Value {
    /// Builds an object from `(key, value)` pairs, keeping their order.
    pub fn object<K: Into<String>, V: Into<Value>>(
        pairs: impl IntoIterator<Item = (K, V)>,
    ) -> Self {
        Value::Object(
            pairs
                .into_iter()
                .map(|(k, v)| (k.into(), v.into()))
                .collect(),
        )
    }

    /// Builds an array from values.
    pub fn array<V: Into<Value>>(items: impl IntoIterator<Item = V>) -> Self {
        Value::Array(items.into_iter().map(Into::into).collect())
    }
}

impl From<bool> for Value {
    fn from(v: bool) -> Self {
        Value::Bool(v)
    }
}

impl From<f64> for Value {
    fn from(v: f64) -> Self {
        Value::Number(v)
    }
}

impl From<usize> for Value {
    fn from(v: usize) -> Self {
        Value::Number(v as f64)
    }
}

impl From<u64> for Value {
    fn from(v: u64) -> Self {
        Value::Number(v as f64)
    }
}

impl From<i64> for Value {
    fn from(v: i64) -> Self {
        Value::Number(v as f64)
    }
}

impl From<&str> for Value {
    fn from(v: &str) -> Self {
        Value::String(v.to_owned())
    }
}

impl From<String> for Value {
    fn from(v: String) -> Self {
        Value::String(v)
    }
}

impl<V: Into<Value>> From<Vec<V>> for Value {
    fn from(v: Vec<V>) -> Self {
        Value::array(v)
    }
}

fn escape_into(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

fn number_into(out: &mut String, n: f64) {
    if !n.is_finite() {
        out.push_str("null");
    } else if n == n.trunc() && n.abs() < 9e15 {
        let _ = write!(out, "{}", n as i64);
    } else {
        let _ = write!(out, "{n}");
    }
}

fn write_value(out: &mut String, value: &Value, indent: Option<usize>, level: usize) {
    match value {
        Value::Null => out.push_str("null"),
        Value::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
        Value::Number(n) => number_into(out, *n),
        Value::String(s) => escape_into(out, s),
        Value::Array(items) => {
            if items.is_empty() {
                out.push_str("[]");
                return;
            }
            out.push('[');
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                newline_indent(out, indent, level + 1);
                write_value(out, item, indent, level + 1);
            }
            newline_indent(out, indent, level);
            out.push(']');
        }
        Value::Object(pairs) => {
            if pairs.is_empty() {
                out.push_str("{}");
                return;
            }
            out.push('{');
            for (i, (key, item)) in pairs.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                newline_indent(out, indent, level + 1);
                escape_into(out, key);
                out.push(':');
                if indent.is_some() {
                    out.push(' ');
                }
                write_value(out, item, indent, level + 1);
            }
            newline_indent(out, indent, level);
            out.push('}');
        }
    }
}

fn newline_indent(out: &mut String, indent: Option<usize>, level: usize) {
    if let Some(width) = indent {
        out.push('\n');
        for _ in 0..width * level {
            out.push(' ');
        }
    }
}

/// Renders `value` as compact JSON.
pub fn to_string(value: &Value) -> String {
    let mut out = String::new();
    write_value(&mut out, value, None, 0);
    out
}

/// Renders `value` as two-space-indented JSON.
pub fn to_string_pretty(value: &Value) -> String {
    let mut out = String::new();
    write_value(&mut out, value, Some(2), 0);
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn compact_round_trip_shapes() {
        let v = Value::object([
            ("name", Value::from("net\"corr\n")),
            ("count", Value::from(3usize)),
            ("ratio", Value::from(0.25)),
            ("flags", Value::array([true, false])),
            ("nested", Value::object([("empty", Value::Array(vec![]))])),
            ("nothing", Value::Null),
        ]);
        assert_eq!(
            to_string(&v),
            r#"{"name":"net\"corr\n","count":3,"ratio":0.25,"flags":[true,false],"nested":{"empty":[]},"nothing":null}"#
        );
    }

    #[test]
    fn pretty_indents_two_spaces() {
        let v = Value::object([("a", Value::array([1u64]))]);
        assert_eq!(to_string_pretty(&v), "{\n  \"a\": [\n    1\n  ]\n}");
    }

    #[test]
    fn non_finite_numbers_render_null() {
        assert_eq!(to_string(&Value::Number(f64::NAN)), "null");
        assert_eq!(to_string(&Value::Number(f64::INFINITY)), "null");
    }
}
