//! In-tree, dependency-free stand-in for the [`rand`](https://crates.io/crates/rand)
//! crate.
//!
//! The build environment of this workspace has no access to a crates.io
//! registry, so the small slice of the `rand` API the workspace actually
//! uses is reimplemented here:
//!
//! * [`Rng`] — the core trait: a source of `u64` words.
//! * [`RngExt`] — the ergonomic sampling methods (`random`, `random_bool`,
//!   `random_range`), blanket-implemented for every [`Rng`].
//! * [`SeedableRng`] — deterministic construction from a `u64` seed.
//! * [`rngs::StdRng`] — a xoshiro256\*\* generator seeded through
//!   SplitMix64; fully deterministic across platforms and runs.
//!
//! The stream of any seeded generator is stable: tests and experiments that
//! fix a seed reproduce bit-identical results everywhere.

#![warn(missing_docs)]
#![forbid(unsafe_code)]

/// A source of uniformly distributed random 64-bit words.
///
/// This is the only method concrete generators implement; all sampling
/// conveniences live on [`RngExt`].
pub trait Rng {
    /// Returns the next 64 uniformly distributed random bits.
    fn next_u64(&mut self) -> u64;
}

impl<R: Rng + ?Sized> Rng for &mut R {
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

/// Types that can be sampled uniformly from an [`Rng`]'s raw bit stream.
pub trait StandardUniform: Sized {
    /// Draws one value from `rng`.
    fn sample<R: Rng + ?Sized>(rng: &mut R) -> Self;
}

impl StandardUniform for f64 {
    /// Uniform in `[0, 1)` with 53 bits of precision.
    fn sample<R: Rng + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl StandardUniform for f32 {
    /// Uniform in `[0, 1)` with 24 bits of precision.
    fn sample<R: Rng + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 40) as f32 * (1.0 / (1u32 << 24) as f32)
    }
}

impl StandardUniform for u64 {
    fn sample<R: Rng + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64()
    }
}

impl StandardUniform for u32 {
    fn sample<R: Rng + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 32) as u32
    }
}

impl StandardUniform for usize {
    fn sample<R: Rng + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() as usize
    }
}

impl StandardUniform for bool {
    fn sample<R: Rng + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

/// Ranges that [`RngExt::random_range`] can sample from.
pub trait SampleRange<T> {
    /// Draws one value uniformly from the range.
    fn sample_from<R: Rng + ?Sized>(self, rng: &mut R) -> T;
}

macro_rules! int_sample_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for core::ops::Range<$t> {
            fn sample_from<R: Rng + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample from empty range");
                let span = (self.end as i128 - self.start as i128) as u128;
                let v = (rng.next_u64() as u128) % span;
                (self.start as i128 + v as i128) as $t
            }
        }
        impl SampleRange<$t> for core::ops::RangeInclusive<$t> {
            fn sample_from<R: Rng + ?Sized>(self, rng: &mut R) -> $t {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "cannot sample from empty range");
                let span = (end as i128 - start as i128) as u128 + 1;
                let v = (rng.next_u64() as u128) % span;
                (start as i128 + v as i128) as $t
            }
        }
    )*};
}

int_sample_range!(usize, u64, u32, u16, u8, isize, i64, i32, i16, i8);

impl SampleRange<f64> for core::ops::Range<f64> {
    fn sample_from<R: Rng + ?Sized>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "cannot sample from empty range");
        self.start + (self.end - self.start) * f64::sample(rng)
    }
}

impl SampleRange<f64> for core::ops::RangeInclusive<f64> {
    fn sample_from<R: Rng + ?Sized>(self, rng: &mut R) -> f64 {
        let (start, end) = (*self.start(), *self.end());
        assert!(start <= end, "cannot sample from empty range");
        start + (end - start) * f64::sample(rng)
    }
}

/// Ergonomic sampling methods, available on every [`Rng`].
pub trait RngExt: Rng {
    /// Draws a value of type `T` from the uniform "standard" distribution
    /// (`[0, 1)` for floats, full range for integers).
    fn random<T: StandardUniform>(&mut self) -> T
    where
        Self: Sized,
    {
        T::sample(self)
    }

    /// Returns `true` with probability `p` (clamped to `[0, 1]`).
    fn random_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        if p <= 0.0 {
            false
        } else if p >= 1.0 {
            true
        } else {
            f64::sample(self) < p
        }
    }

    /// Draws a value uniformly from `range`.
    ///
    /// Panics when the range is empty, mirroring `rand`'s behaviour.
    fn random_range<T, S: SampleRange<T>>(&mut self, range: S) -> T
    where
        Self: Sized,
    {
        range.sample_from(self)
    }
}

impl<R: Rng> RngExt for R {}

/// Deterministic construction of a generator from a `u64` seed.
pub trait SeedableRng: Sized {
    /// Builds a generator whose stream is a pure function of `seed`.
    fn seed_from_u64(seed: u64) -> Self;
}

/// Concrete generators.
pub mod rngs {
    use super::{Rng, SeedableRng};

    /// The workspace's standard deterministic generator: xoshiro256\*\*,
    /// seeded via SplitMix64.
    ///
    /// Unlike the real `rand::rngs::StdRng`, the stream is guaranteed
    /// stable across releases — experiment seeds recorded in
    /// `EXPERIMENTS.md` stay reproducible.
    #[derive(Debug, Clone, PartialEq, Eq)]
    pub struct StdRng {
        state: [u64; 4],
    }

    fn splitmix64(state: &mut u64) -> u64 {
        *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = *state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            let mut sm = seed;
            let state = [
                splitmix64(&mut sm),
                splitmix64(&mut sm),
                splitmix64(&mut sm),
                splitmix64(&mut sm),
            ];
            StdRng { state }
        }
    }

    impl Rng for StdRng {
        fn next_u64(&mut self) -> u64 {
            let s = &mut self.state;
            let result = s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
            let t = s[1] << 17;
            s[2] ^= s[0];
            s[3] ^= s[1];
            s[1] ^= s[2];
            s[0] ^= s[3];
            s[2] ^= t;
            s[3] = s[3].rotate_left(45);
            result
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, RngExt, SeedableRng};

    #[test]
    fn same_seed_same_stream() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seeds_differ() {
        let mut a = StdRng::seed_from_u64(1);
        let mut b = StdRng::seed_from_u64(2);
        let same = (0..32).filter(|_| a.next_u64() == b.next_u64()).count();
        assert!(same < 4);
    }

    #[test]
    fn random_f64_is_unit_interval() {
        let mut rng = StdRng::seed_from_u64(7);
        let mut sum = 0.0;
        for _ in 0..10_000 {
            let x: f64 = rng.random();
            assert!((0.0..1.0).contains(&x));
            sum += x;
        }
        let mean = sum / 10_000.0;
        assert!((mean - 0.5).abs() < 0.02, "mean {mean}");
    }

    #[test]
    fn random_bool_matches_probability() {
        let mut rng = StdRng::seed_from_u64(9);
        let hits = (0..20_000).filter(|_| rng.random_bool(0.3)).count();
        let freq = hits as f64 / 20_000.0;
        assert!((freq - 0.3).abs() < 0.02, "freq {freq}");
        assert!(!rng.random_bool(0.0));
        assert!(rng.random_bool(1.0));
    }

    #[test]
    fn random_range_stays_in_bounds() {
        let mut rng = StdRng::seed_from_u64(11);
        for _ in 0..1000 {
            let v = rng.random_range(3..10usize);
            assert!((3..10).contains(&v));
            let f = rng.random_range(-2.0f64..2.0);
            assert!((-2.0..2.0).contains(&f));
            let i = rng.random_range(-5i64..=5);
            assert!((-5..=5).contains(&i));
        }
    }

    #[test]
    fn works_through_mut_references() {
        fn take(rng: &mut impl Rng) -> u64 {
            rng.next_u64()
        }
        let mut rng = StdRng::seed_from_u64(3);
        let _ = take(&mut rng);
        let r = &mut rng;
        let _ = take(r);
    }
}
