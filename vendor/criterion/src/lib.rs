//! In-tree stand-in for the [`criterion`](https://crates.io/crates/criterion)
//! benchmark harness.
//!
//! Implements the group-based API the workspace's benches use —
//! [`Criterion::benchmark_group`], `sample_size` / `measurement_time` /
//! `warm_up_time`, `bench_function`, `bench_with_input`, [`BenchmarkId`],
//! [`criterion_group!`] and [`criterion_main!`] — measuring wall-clock
//! time with `std::time::Instant` and printing a `min / mean / max`
//! per-iteration summary. No statistics, plots or HTML reports; swap in
//! real criterion via `Cargo.toml` when a registry is available.

#![warn(missing_docs)]
#![forbid(unsafe_code)]

use std::fmt::Display;
use std::time::{Duration, Instant};

/// Prevents the optimizer from discarding a benchmarked value.
pub fn black_box<T>(value: T) -> T {
    std::hint::black_box(value)
}

/// Identifies one benchmark inside a group: a function name plus the
/// parameter value of this instance.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// Creates an id rendered as `function_name/parameter`.
    pub fn new(function_name: impl Into<String>, parameter: impl Display) -> Self {
        BenchmarkId {
            id: format!("{}/{}", function_name.into(), parameter),
        }
    }

    /// Creates an id from the parameter alone.
    pub fn from_parameter(parameter: impl Display) -> Self {
        BenchmarkId {
            id: parameter.to_string(),
        }
    }
}

impl From<&str> for BenchmarkId {
    fn from(name: &str) -> Self {
        BenchmarkId {
            id: name.to_owned(),
        }
    }
}

impl From<String> for BenchmarkId {
    fn from(name: String) -> Self {
        BenchmarkId { id: name }
    }
}

impl Display for BenchmarkId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.id)
    }
}

/// Runs the timed closure of one benchmark.
pub struct Bencher<'a> {
    samples: &'a mut Vec<Duration>,
    sample_size: usize,
    warm_up_time: Duration,
    measurement_time: Duration,
}

impl Bencher<'_> {
    /// Times `routine`, first warming up for the configured duration, then
    /// collecting up to `sample_size` samples (bounded by the configured
    /// measurement time).
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        let warm_up_end = Instant::now() + self.warm_up_time;
        while Instant::now() < warm_up_end {
            black_box(routine());
        }

        let measurement_end = Instant::now() + self.measurement_time;
        for _ in 0..self.sample_size {
            let start = Instant::now();
            black_box(routine());
            self.samples.push(start.elapsed());
            if Instant::now() >= measurement_end {
                break;
            }
        }
        if self.samples.is_empty() {
            let start = Instant::now();
            black_box(routine());
            self.samples.push(start.elapsed());
        }
    }
}

/// A named collection of benchmarks sharing sampling settings.
pub struct BenchmarkGroup<'a> {
    name: String,
    sample_size: usize,
    warm_up_time: Duration,
    measurement_time: Duration,
    filter: Option<String>,
    _criterion: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Sets the target number of samples per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1);
        self
    }

    /// Sets the per-benchmark measurement budget.
    pub fn measurement_time(&mut self, t: Duration) -> &mut Self {
        self.measurement_time = t;
        self
    }

    /// Sets the per-benchmark warm-up budget.
    pub fn warm_up_time(&mut self, t: Duration) -> &mut Self {
        self.warm_up_time = t;
        self
    }

    /// Runs `routine` as a benchmark named `id` within this group.
    pub fn bench_function<F>(&mut self, id: impl Into<BenchmarkId>, mut routine: F) -> &mut Self
    where
        F: FnMut(&mut Bencher<'_>),
    {
        let id = id.into();
        if let Some(filter) = &self.filter {
            if !format!("{}/{id}", self.name).contains(filter.as_str()) {
                return self;
            }
        }
        let mut samples = Vec::new();
        let mut bencher = Bencher {
            samples: &mut samples,
            sample_size: self.sample_size,
            warm_up_time: self.warm_up_time,
            measurement_time: self.measurement_time,
        };
        routine(&mut bencher);
        report(&self.name, &id, &samples);
        self
    }

    /// Runs `routine` with `input` as a benchmark named `id`.
    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: impl Into<BenchmarkId>,
        input: &I,
        mut routine: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher<'_>, &I),
    {
        self.bench_function(id, |b| routine(b, input))
    }

    /// Ends the group (report output is per-benchmark; nothing to flush).
    pub fn finish(&mut self) {}
}

fn report(group: &str, id: &BenchmarkId, samples: &[Duration]) {
    let min = samples.iter().min().copied().unwrap_or_default();
    let max = samples.iter().max().copied().unwrap_or_default();
    let total: Duration = samples.iter().sum();
    let mean = total
        .checked_div(samples.len().max(1) as u32)
        .unwrap_or_default();
    println!(
        "{group}/{id}: [{min:?} {mean:?} {max:?}] ({n} samples)",
        n = samples.len(),
    );
}

/// The benchmark harness entry point, mirroring `criterion::Criterion`.
///
/// Like real criterion, the first non-flag command-line argument is a
/// substring filter: `cargo bench --bench micro -- estimator` runs only
/// the benchmarks whose `group/id` contains `estimator`.
pub struct Criterion {
    filter: Option<String>,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion {
            filter: std::env::args().skip(1).find(|arg| !arg.starts_with('-')),
        }
    }
}

impl Criterion {
    /// Opens a named benchmark group with default sampling settings.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        let filter = self.filter.clone();
        BenchmarkGroup {
            name: name.into(),
            sample_size: 20,
            warm_up_time: Duration::from_millis(300),
            measurement_time: Duration::from_secs(2),
            filter,
            _criterion: self,
        }
    }

    /// Runs a standalone benchmark outside any group.
    pub fn bench_function<F>(&mut self, id: impl Into<BenchmarkId>, routine: F) -> &mut Self
    where
        F: FnMut(&mut Bencher<'_>),
    {
        let id = id.into();
        self.benchmark_group(id.to_string())
            .bench_function("run", routine);
        self
    }
}

/// Declares a benchmark group function, mirroring `criterion_group!`.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        pub fn $group() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Declares the benchmark binary's `main`, mirroring `criterion_main!`.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}
