//! Error type for the simulator.

use netcorr_topology::graph::LinkId;
use std::fmt;

/// Errors produced when building congestion models or running simulations.
#[derive(Debug, Clone, PartialEq)]
pub enum SimError {
    /// A probability was outside `[0, 1]`.
    InvalidProbability {
        /// The offending value.
        value: f64,
        /// What the probability was describing.
        context: &'static str,
    },
    /// A link id does not exist in the model.
    UnknownLink(LinkId),
    /// A link was given more than one congestion specification.
    DuplicateLink(LinkId),
    /// The links of a joint group do not all belong to the same correlation
    /// set.
    GroupSpansCorrelationSets {
        /// The first offending link.
        link: LinkId,
    },
    /// A joint group must contain at least one link.
    EmptyGroup,
    /// A correlation set is too large for an explicit joint distribution
    /// (more than 63 links, or more outcome combinations than the supported
    /// limit).
    SetTooLarge {
        /// Number of links in the set.
        size: usize,
    },
    /// An explicit distribution's probabilities do not sum to (at most) 1.
    DistributionNotNormalized {
        /// The probability mass that was supplied.
        total: f64,
    },
    /// The simulation configuration is invalid.
    InvalidConfig(String),
    /// The substrate model's link dependencies reference a non-existent
    /// substrate element.
    UnknownSubstrateElement {
        /// The offending index.
        index: usize,
        /// Number of substrate elements available.
        available: usize,
    },
}

impl fmt::Display for SimError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SimError::InvalidProbability { value, context } => {
                write!(f, "invalid probability {value} for {context}")
            }
            SimError::UnknownLink(l) => write!(f, "unknown link {l}"),
            SimError::DuplicateLink(l) => {
                write!(
                    f,
                    "link {l} was given more than one congestion specification"
                )
            }
            SimError::GroupSpansCorrelationSets { link } => write!(
                f,
                "joint group spans correlation sets (link {link} is in a different set)"
            ),
            SimError::EmptyGroup => write!(f, "a joint group must contain at least one link"),
            SimError::SetTooLarge { size } => write!(
                f,
                "correlation set with {size} links is too large for an explicit joint distribution"
            ),
            SimError::DistributionNotNormalized { total } => {
                write!(
                    f,
                    "distribution probabilities sum to {total}, expected at most 1"
                )
            }
            SimError::InvalidConfig(msg) => write!(f, "invalid simulation configuration: {msg}"),
            SimError::UnknownSubstrateElement { index, available } => write!(
                f,
                "substrate element {index} out of range (have {available})"
            ),
        }
    }
}

impl std::error::Error for SimError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_mentions_the_relevant_values() {
        assert!(SimError::InvalidProbability {
            value: 1.5,
            context: "link congestion"
        }
        .to_string()
        .contains("1.5"));
        assert!(SimError::UnknownLink(LinkId(3)).to_string().contains("e4"));
        assert!(SimError::DuplicateLink(LinkId(0))
            .to_string()
            .contains("e1"));
        assert!(SimError::SetTooLarge { size: 80 }
            .to_string()
            .contains("80"));
        assert!(SimError::DistributionNotNormalized { total: 1.4 }
            .to_string()
            .contains("1.4"));
        assert!(SimError::EmptyGroup.to_string().contains("group"));
        assert!(SimError::InvalidConfig("bad".into())
            .to_string()
            .contains("bad"));
        assert!(SimError::UnknownSubstrateElement {
            index: 9,
            available: 3
        }
        .to_string()
        .contains('9'));
        assert!(SimError::GroupSpansCorrelationSets { link: LinkId(1) }
            .to_string()
            .contains("e2"));
    }
}
