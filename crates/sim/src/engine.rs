//! The snapshot simulation engine.
//!
//! A [`Simulator`] binds a topology instance, a congestion model and a
//! simulation configuration, and turns them into end-to-end measurements:
//! for every snapshot it draws link states from the model, assigns
//! packet-loss rates, sends probe packets along every path and classifies
//! each path as good or congested by comparing its measured loss rate to
//! the path threshold `t_p = 1 − (1 − t_l)^d`.

use std::ops::Range;

use rand::rngs::StdRng;
use rand::{Rng, RngExt, SeedableRng};

use netcorr_measure::{BitMatrix, PathObservations};
use netcorr_topology::TopologyInstance;

use crate::config::{SimulationConfig, TransmissionModel};
use crate::congestion::CongestionModel;
use crate::error::SimError;
use crate::loss::{path_delivery_probability, sample_binomial, sample_loss_rate};

/// Derives the RNG seed of one snapshot from a trial's base seed.
///
/// Counter-based (SplitMix64-style finalizer over `base ⊕ f(index)`), so
/// snapshot `i` draws from the same stream **no matter which shard
/// simulates it** — sharded and sequential runs of the same trial are
/// bit-identical, for any shard count. The finalizer's avalanche breaks
/// the correlation between the streams of consecutive snapshots that a
/// plain `base + i` seed would leave through SplitMix-seeded xoshiro.
pub fn snapshot_seed(base_seed: u64, snapshot: usize) -> u64 {
    let mut z = base_seed ^ (snapshot as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// A simulation run that also kept the ground-truth link states of every
/// snapshot (useful for validation and for studying the separability
/// assumption; the inference algorithms never see this information).
#[derive(Debug, Clone)]
pub struct SimulationTrace {
    /// The end-to-end observations (what the algorithms consume).
    pub observations: PathObservations,
    /// For every snapshot, the congestion state of every link, bit-packed
    /// one row per snapshot (same columnar discipline as the
    /// observations: `link_states.get(snapshot, link.index())`).
    pub link_states: BitMatrix,
}

/// The snapshot simulator.
#[derive(Debug, Clone)]
pub struct Simulator<'a> {
    pub(crate) instance: &'a TopologyInstance,
    pub(crate) model: &'a CongestionModel,
    pub(crate) config: SimulationConfig,
}

impl<'a> Simulator<'a> {
    /// Creates a simulator, validating that the model covers exactly the
    /// instance's links and that the configuration is sane.
    pub fn new(
        instance: &'a TopologyInstance,
        model: &'a CongestionModel,
        config: SimulationConfig,
    ) -> Result<Self, SimError> {
        config.validate()?;
        if model.num_links() != instance.num_links() {
            return Err(SimError::InvalidConfig(format!(
                "congestion model covers {} links, topology has {}",
                model.num_links(),
                instance.num_links()
            )));
        }
        Ok(Simulator {
            instance,
            model,
            config,
        })
    }

    /// The simulation configuration.
    pub fn config(&self) -> &SimulationConfig {
        &self.config
    }

    /// Runs `snapshots` snapshots and returns the path observations.
    pub fn run(&self, snapshots: usize, rng: &mut impl Rng) -> PathObservations {
        let mut observations =
            PathObservations::with_capacity(self.instance.num_paths(), snapshots);
        for _ in 0..snapshots {
            let (_, path_congested) = self.simulate_snapshot(rng);
            observations
                .record_snapshot(&path_congested)
                .expect("snapshot width matches the path count");
        }
        observations
    }

    /// Runs `snapshots` snapshots and returns both the observations and the
    /// ground-truth link states.
    pub fn run_detailed(&self, snapshots: usize, rng: &mut impl Rng) -> SimulationTrace {
        let mut observations =
            PathObservations::with_capacity(self.instance.num_paths(), snapshots);
        let mut link_states = BitMatrix::with_capacity(self.instance.num_links(), snapshots);
        for _ in 0..snapshots {
            let (links, path_congested) = self.simulate_snapshot(rng);
            observations
                .record_snapshot(&path_congested)
                .expect("snapshot width matches the path count");
            link_states.push_row(&links);
        }
        SimulationTrace {
            observations,
            link_states,
        }
    }

    /// Runs the snapshots of `range` only, each seeded independently from
    /// `base_seed` via [`snapshot_seed`].
    ///
    /// This is the shard entry point: because every snapshot owns its RNG
    /// stream, `run_range(0..n)` equals the in-order concatenation of
    /// `run_range(0..k)` and `run_range(k..n)` for **any** split — shard
    /// counts never change results.
    pub fn run_range(&self, range: Range<usize>, base_seed: u64) -> PathObservations {
        let mut observations =
            PathObservations::with_capacity(self.instance.num_paths(), range.len());
        for snapshot in range {
            let mut rng = StdRng::seed_from_u64(snapshot_seed(base_seed, snapshot));
            let (_, path_congested) = self.simulate_snapshot(&mut rng);
            observations
                .record_snapshot(&path_congested)
                .expect("snapshot width matches the path count");
        }
        observations
    }

    /// Runs `snapshots` snapshots with per-snapshot seeding (equivalent to
    /// `run_range(0..snapshots, base_seed)`).
    pub fn run_seeded(&self, snapshots: usize, base_seed: u64) -> PathObservations {
        self.run_range(0..snapshots, base_seed)
    }

    /// Like [`Simulator::run_range`], but also keeps the ground-truth link
    /// states of each snapshot in the range.
    pub fn run_detailed_range(&self, range: Range<usize>, base_seed: u64) -> SimulationTrace {
        let mut observations =
            PathObservations::with_capacity(self.instance.num_paths(), range.len());
        let mut link_states = BitMatrix::with_capacity(self.instance.num_links(), range.len());
        for snapshot in range {
            let mut rng = StdRng::seed_from_u64(snapshot_seed(base_seed, snapshot));
            let (links, path_congested) = self.simulate_snapshot(&mut rng);
            observations
                .record_snapshot(&path_congested)
                .expect("snapshot width matches the path count");
            link_states.push_row(&links);
        }
        SimulationTrace {
            observations,
            link_states,
        }
    }

    /// Simulates a single snapshot: returns the link congestion states and
    /// the per-path congestion observations.
    pub fn simulate_snapshot(&self, rng: &mut impl Rng) -> (Vec<bool>, Vec<bool>) {
        // 1. Draw link states from the congestion model.
        let link_states = self.model.sample_state(rng);
        // 2. Assign loss rates according to the loss model.
        let loss_rates: Vec<f64> = link_states
            .iter()
            .map(|&congested| sample_loss_rate(rng, congested, &self.config))
            .collect();
        // 3. Send probes along every path and classify it.
        let path_congested: Vec<bool> = self
            .instance
            .paths
            .paths()
            .map(|path| {
                let path_losses: Vec<f64> =
                    path.links.iter().map(|l| loss_rates[l.index()]).collect();
                let threshold = self.config.path_congestion_threshold(path.len());
                let measured_loss = self.measure_path_loss(&path_losses, rng);
                measured_loss > threshold
            })
            .collect();
        (link_states, path_congested)
    }

    /// Measures the loss rate of one path according to the configured
    /// transmission model.
    pub(crate) fn measure_path_loss(&self, link_losses: &[f64], rng: &mut impl Rng) -> f64 {
        let delivery = path_delivery_probability(link_losses);
        match self.config.transmission {
            TransmissionModel::Exact => 1.0 - delivery,
            TransmissionModel::Binomial => {
                let n = self.config.packets_per_path;
                let delivered = sample_binomial(rng, n, delivery);
                1.0 - delivered as f64 / n as f64
            }
            TransmissionModel::PerPacket => {
                let n = self.config.packets_per_path;
                let mut delivered = 0usize;
                for _ in 0..n {
                    let survived = link_losses
                        .iter()
                        .all(|&loss| !(loss > 0.0 && rng.random_bool(loss.min(1.0))));
                    if survived {
                        delivered += 1;
                    }
                }
                1.0 - delivered as f64 / n as f64
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::congestion::CongestionModelBuilder;
    use netcorr_measure::ProbabilityEstimator;
    use netcorr_topology::graph::LinkId;
    use netcorr_topology::path::PathId;
    use netcorr_topology::toy;
    use rand::rngs::StdRng;
    use rand::RngExt;
    use rand::SeedableRng;

    fn fig1a_setup() -> (netcorr_topology::TopologyInstance, CongestionModel) {
        let inst = toy::figure_1a();
        let model = CongestionModelBuilder::new(&inst.correlation)
            .joint_group(&[LinkId(0), LinkId(1)], 0.2)
            .independent(LinkId(2), 0.1)
            .independent(LinkId(3), 0.1)
            .build()
            .unwrap();
        (inst, model)
    }

    #[test]
    fn construction_validates_inputs() {
        let (inst, model) = fig1a_setup();
        assert!(Simulator::new(&inst, &model, SimulationConfig::default()).is_ok());
        // Model with the wrong number of links.
        let other = toy::figure_1b();
        let small_model = CongestionModelBuilder::new(&other.correlation)
            .independent(LinkId(0), 0.1)
            .build()
            .unwrap();
        assert!(Simulator::new(&inst, &small_model, SimulationConfig::default()).is_err());
        // Invalid configuration.
        let bad = SimulationConfig {
            link_congestion_threshold: 0.0,
            ..SimulationConfig::default()
        };
        assert!(Simulator::new(&inst, &model, bad).is_err());
    }

    #[test]
    fn run_produces_the_requested_number_of_snapshots() {
        let (inst, model) = fig1a_setup();
        let sim = Simulator::new(&inst, &model, SimulationConfig::default()).unwrap();
        let mut rng = StdRng::seed_from_u64(1);
        let obs = sim.run(50, &mut rng);
        assert_eq!(obs.num_snapshots(), 50);
        assert_eq!(obs.num_paths(), 3);
    }

    #[test]
    fn all_good_links_imply_good_paths_in_exact_mode() {
        let inst = toy::figure_1a();
        // Nothing is ever congested.
        let model = CongestionModelBuilder::new(&inst.correlation)
            .build()
            .unwrap();
        let config = SimulationConfig {
            transmission: TransmissionModel::Exact,
            ..SimulationConfig::default()
        };
        let sim = Simulator::new(&inst, &model, config).unwrap();
        let mut rng = StdRng::seed_from_u64(2);
        let obs = sim.run(500, &mut rng);
        for snapshot in obs.snapshots() {
            assert!(
                snapshot.iter().all(|&c| !c),
                "a path was congested with all links good"
            );
        }
    }

    #[test]
    fn path_congestion_frequencies_track_the_model_in_exact_mode() {
        let (inst, model) = fig1a_setup();
        let config = SimulationConfig {
            transmission: TransmissionModel::Exact,
            ..SimulationConfig::default()
        };
        let sim = Simulator::new(&inst, &model, config).unwrap();
        let mut rng = StdRng::seed_from_u64(3);
        let obs = sim.run(20_000, &mut rng);
        let est = ProbabilityEstimator::new(&obs).unwrap();
        // P1 = {e3, e1}: good iff both good. P(good) = 0.9 * 0.8 = 0.72, so
        // P(congested) ≈ 0.28 (slightly lower because a barely-congested
        // link does not always push the path over the threshold).
        let p1 = est.prob_path_congested(PathId(0)).unwrap();
        assert!((p1 - 0.28).abs() < 0.04, "P1 congestion frequency {p1}");
        // P3 = {e4, e2}: P(congested) ≈ 1 − 0.9 · 0.8 = 0.28.
        let p3 = est.prob_path_congested(PathId(2)).unwrap();
        assert!((p3 - 0.28).abs() < 0.04, "P3 congestion frequency {p3}");
    }

    #[test]
    fn binomial_and_per_packet_models_agree_statistically() {
        let (inst, model) = fig1a_setup();
        let mut freqs = Vec::new();
        for transmission in [TransmissionModel::Binomial, TransmissionModel::PerPacket] {
            let config = SimulationConfig {
                transmission,
                packets_per_path: 200,
                ..SimulationConfig::default()
            };
            let sim = Simulator::new(&inst, &model, config).unwrap();
            let mut rng = StdRng::seed_from_u64(4);
            let obs = sim.run(3000, &mut rng);
            let est = ProbabilityEstimator::new(&obs).unwrap();
            freqs.push(est.prob_path_congested(PathId(0)).unwrap());
        }
        assert!(
            (freqs[0] - freqs[1]).abs() < 0.03,
            "binomial {} vs per-packet {}",
            freqs[0],
            freqs[1]
        );
    }

    #[test]
    fn detailed_run_exposes_consistent_link_states() {
        let (inst, model) = fig1a_setup();
        let config = SimulationConfig {
            transmission: TransmissionModel::Exact,
            ..SimulationConfig::default()
        };
        let sim = Simulator::new(&inst, &model, config).unwrap();
        let mut rng = StdRng::seed_from_u64(5);
        let trace = sim.run_detailed(2000, &mut rng);
        assert_eq!(trace.link_states.num_rows(), 2000);
        assert_eq!(trace.link_states.width(), inst.num_links());
        for snapshot_idx in 0..trace.link_states.num_rows() {
            let links = trace.link_states.row_bools(snapshot_idx);
            // The joint group is all-or-nothing in every snapshot.
            assert_eq!(links[0], links[1]);
            assert_eq!(links[0], trace.link_states.get(snapshot_idx, 0));
            // Separability, one direction: if every link of a path is good,
            // the path must be observed good (exact transmission).
            for (path_idx, path) in inst.paths.paths().enumerate() {
                let all_good = path.links.iter().all(|l| !links[l.index()]);
                if all_good {
                    assert!(
                        !trace
                            .observations
                            .is_congested(snapshot_idx, PathId(path_idx)),
                        "path {path_idx} congested although all its links are good"
                    );
                }
            }
        }
    }

    #[test]
    fn range_runs_compose_for_any_split() {
        let (inst, model) = fig1a_setup();
        let sim = Simulator::new(&inst, &model, SimulationConfig::default()).unwrap();
        let whole = sim.run_seeded(150, 42);
        for split in [1usize, 64, 77, 128, 149] {
            let mut left = sim.run_range(0..split, 42);
            let right = sim.run_range(split..150, 42);
            left.concat(&right).unwrap();
            assert_eq!(left, whole, "split at {split}");
        }
        // Different seeds give different runs; same seed reproduces.
        assert_eq!(sim.run_seeded(150, 42), whole);
        assert_ne!(sim.run_seeded(150, 43), whole);
    }

    #[test]
    fn detailed_range_matches_the_plain_range() {
        let (inst, model) = fig1a_setup();
        let sim = Simulator::new(&inst, &model, SimulationConfig::default()).unwrap();
        let trace = sim.run_detailed_range(10..40, 7);
        assert_eq!(trace.observations, sim.run_range(10..40, 7));
        assert_eq!(trace.link_states.num_rows(), 30);
    }

    #[test]
    fn snapshot_seeds_are_well_mixed() {
        // Consecutive snapshot seeds must not be close or collide.
        let mut seeds: Vec<u64> = (0..1000).map(|s| snapshot_seed(99, s)).collect();
        seeds.sort_unstable();
        seeds.dedup();
        assert_eq!(seeds.len(), 1000);
        // Different base seeds decorrelate the same snapshot index.
        assert_ne!(snapshot_seed(1, 5), snapshot_seed(2, 5));
    }

    #[test]
    fn simulation_is_deterministic_for_a_seed() {
        let (inst, model) = fig1a_setup();
        let sim = Simulator::new(&inst, &model, SimulationConfig::default()).unwrap();
        let a = sim.run(100, &mut StdRng::seed_from_u64(9));
        let b = sim.run(100, &mut StdRng::seed_from_u64(9));
        assert_eq!(a, b);
        let c = sim.run(100, &mut StdRng::seed_from_u64(10));
        assert_ne!(a, c);
    }

    #[test]
    fn per_packet_loss_measurement_is_exact_for_degenerate_rates() {
        let (inst, model) = fig1a_setup();
        let config = SimulationConfig {
            transmission: TransmissionModel::PerPacket,
            packets_per_path: 50,
            ..SimulationConfig::default()
        };
        let sim = Simulator::new(&inst, &model, config).unwrap();
        let mut rng = StdRng::seed_from_u64(11);
        // Loss rate 0 on every link: every packet survives.
        assert_eq!(sim.measure_path_loss(&[0.0, 0.0], &mut rng), 0.0);
        // Loss rate 1 on some link: every packet dies.
        assert_eq!(sim.measure_path_loss(&[0.0, 1.0], &mut rng), 1.0);
        // Probabilistic case stays within [0, 1].
        let loss = sim.measure_path_loss(&[0.3, 0.2], &mut rng);
        assert!((0.0..=1.0).contains(&loss));
        let _ = rng.random::<f64>();
    }
}
