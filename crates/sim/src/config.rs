//! Simulation configuration: thresholds, packet counts and transmission
//! models.

use serde::{Deserialize, Serialize};

use crate::error::SimError;

/// How packet transmission along a path is simulated in each snapshot.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum TransmissionModel {
    /// Every packet is walked across every link of the path and dropped
    /// independently with the link's loss rate — the literal procedure of
    /// the paper's simulator. Accurate but slow; intended for small
    /// topologies and validation tests.
    PerPacket,
    /// The number of delivered packets is drawn from a Binomial
    /// distribution with the path's end-to-end delivery probability —
    /// statistically identical to [`TransmissionModel::PerPacket`] (packet
    /// fates are independent) but orders of magnitude faster. This is the
    /// default.
    Binomial,
    /// No packet sampling at all: the measured path loss rate equals the
    /// exact end-to-end loss probability (the limit of infinitely many
    /// probe packets). Useful to isolate inference error from measurement
    /// noise.
    Exact,
}

/// Configuration of a simulation run.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct SimulationConfig {
    /// The link congestion threshold `t_l`; a link is congested in a
    /// snapshot when its packet-loss rate exceeds this value. The paper
    /// uses 0.01.
    pub link_congestion_threshold: f64,
    /// Number of probe packets sent along each path in each snapshot.
    pub packets_per_path: usize,
    /// How packet transmission is simulated.
    pub transmission: TransmissionModel,
}

impl Default for SimulationConfig {
    fn default() -> Self {
        SimulationConfig {
            link_congestion_threshold: 0.01,
            packets_per_path: 1000,
            transmission: TransmissionModel::Binomial,
        }
    }
}

impl SimulationConfig {
    /// Validates the configuration.
    pub fn validate(&self) -> Result<(), SimError> {
        if !(0.0..1.0).contains(&self.link_congestion_threshold)
            || self.link_congestion_threshold <= 0.0
        {
            return Err(SimError::InvalidConfig(format!(
                "link_congestion_threshold ({}) must be in (0, 1)",
                self.link_congestion_threshold
            )));
        }
        if self.packets_per_path == 0 && self.transmission != TransmissionModel::Exact {
            return Err(SimError::InvalidConfig(
                "packets_per_path must be at least 1 for packet-based transmission models"
                    .to_string(),
            ));
        }
        Ok(())
    }

    /// The path congestion threshold `t_p = 1 − (1 − t_l)^d` for a path of
    /// `d` links (Section 2.1).
    pub fn path_congestion_threshold(&self, path_length: usize) -> f64 {
        1.0 - (1.0 - self.link_congestion_threshold).powi(path_length as i32)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_matches_the_paper() {
        let c = SimulationConfig::default();
        assert_eq!(c.link_congestion_threshold, 0.01);
        assert_eq!(c.packets_per_path, 1000);
        assert_eq!(c.transmission, TransmissionModel::Binomial);
        assert!(c.validate().is_ok());
    }

    #[test]
    fn path_threshold_grows_with_length() {
        let c = SimulationConfig::default();
        // d = 1: t_p = t_l.
        assert!((c.path_congestion_threshold(1) - 0.01).abs() < 1e-12);
        // d = 2: 1 - 0.99^2 = 0.0199.
        assert!((c.path_congestion_threshold(2) - 0.0199).abs() < 1e-12);
        // Monotone in d.
        assert!(c.path_congestion_threshold(10) > c.path_congestion_threshold(5));
        // d = 0 (degenerate): threshold 0.
        assert_eq!(c.path_congestion_threshold(0), 0.0);
    }

    #[test]
    fn invalid_configs_are_rejected() {
        let mut c = SimulationConfig {
            link_congestion_threshold: 0.0,
            ..SimulationConfig::default()
        };
        assert!(c.validate().is_err());
        c.link_congestion_threshold = 1.0;
        assert!(c.validate().is_err());
        let mut c = SimulationConfig {
            packets_per_path: 0,
            ..SimulationConfig::default()
        };
        assert!(c.validate().is_err());
        c.transmission = TransmissionModel::Exact;
        assert!(c.validate().is_ok(), "exact mode needs no packets");
    }
}
