//! Congestion models: how link states are drawn in every snapshot.
//!
//! The paper's model (Section 2.1) treats the congestion status of the
//! links of each correlation set as an arbitrary joint Bernoulli process,
//! independent across correlation sets. Two concrete families are
//! implemented:
//!
//! * [`ExplicitModel`] — each correlation set carries an explicit
//!   block-structured joint distribution: independent links and
//!   all-or-nothing groups of links (links that become congested and
//!   de-congested together, e.g. because they share a flooded physical
//!   resource). Built with [`CongestionModelBuilder`]. Marginals, joint
//!   probabilities and exact per-set state probabilities are available in
//!   closed form, which makes these models the ground truth of the
//!   evaluation.
//! * [`SubstrateModel`] — the BRITE construction: hidden substrate elements
//!   (router-level links) fail independently, and a logical link is
//!   congested iff any substrate element it depends on has failed.
//!   Correlation between logical links emerges from shared substrate
//!   elements.

use rand::{Rng, RngExt};
use serde::{Deserialize, Serialize};

use netcorr_topology::correlation::{CorrelationPartition, CorrelationSetId};
use netcorr_topology::graph::LinkId;

use crate::error::SimError;

/// Maximum number of links in a correlation set for which an explicit
/// block-structured distribution may be built (the per-set state is stored
/// as a 64-bit mask).
pub const MAX_EXPLICIT_SET_SIZE: usize = 63;

/// Maximum subset size for which [`SubstrateModel`] computes exact joint
/// probabilities by inclusion–exclusion.
const MAX_INCLUSION_EXCLUSION: usize = 20;

// ---------------------------------------------------------------------------
// Explicit (block-structured) models
// ---------------------------------------------------------------------------

/// One independent component of a correlation set's joint distribution:
/// a group of links that are congested together with probability `prob`
/// and all good otherwise. A single-link block is an independent link.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
struct Block {
    /// Mask over the correlation set's (sorted) links.
    mask: u64,
    /// Probability that the whole block is congested.
    prob: f64,
}

/// The joint congestion distribution of one correlation set, structured as
/// independent all-or-nothing blocks.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SetBlocks {
    /// The correlation set's links, sorted by id (bit `i` of a mask refers
    /// to `links[i]`).
    links: Vec<LinkId>,
    blocks: Vec<Block>,
}

impl SetBlocks {
    fn bit_of(&self, link: LinkId) -> Option<usize> {
        self.links.iter().position(|&l| l == link)
    }

    fn mask_of(&self, links: &[LinkId]) -> Option<u64> {
        let mut mask = 0u64;
        for &l in links {
            mask |= 1u64 << self.bit_of(l)?;
        }
        Some(mask)
    }

    /// Mask of all links covered by some block (links outside it are
    /// always good).
    fn covered_mask(&self) -> u64 {
        self.blocks.iter().fold(0, |acc, b| acc | b.mask)
    }

    /// Samples the congested subset of this correlation set as a mask.
    fn sample(&self, rng: &mut impl Rng) -> u64 {
        let mut state = 0u64;
        for block in &self.blocks {
            if block.prob > 0.0 && rng.random_bool(block.prob.min(1.0)) {
                state |= block.mask;
            }
        }
        state
    }

    /// `P(S^p = A)`: the probability that exactly the links in `mask` are
    /// congested.
    fn prob_exact(&self, mask: u64) -> f64 {
        // Links outside every block are always good, so a target that
        // includes them has probability zero.
        if mask & !self.covered_mask() != 0 {
            return 0.0;
        }
        let mut prob = 1.0;
        for block in &self.blocks {
            let overlap = block.mask & mask;
            if overlap == block.mask {
                prob *= block.prob;
            } else if overlap == 0 {
                prob *= 1.0 - block.prob;
            } else {
                // The block is all-or-nothing, so a partial overlap is
                // impossible.
                return 0.0;
            }
        }
        prob
    }

    /// `P(A ⊆ S^p)`: the probability that at least the links in `mask` are
    /// congested.
    fn prob_superset(&self, mask: u64) -> f64 {
        if mask & !self.covered_mask() != 0 {
            return 0.0;
        }
        let mut prob = 1.0;
        for block in &self.blocks {
            if block.mask & mask != 0 {
                prob *= block.prob;
            }
        }
        prob
    }
}

/// An explicit, block-structured congestion model over a correlation
/// partition.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ExplicitModel {
    partition: CorrelationPartition,
    sets: Vec<SetBlocks>,
    marginals: Vec<f64>,
}

impl ExplicitModel {
    /// The correlation partition the model was built over.
    pub fn partition(&self) -> &CorrelationPartition {
        &self.partition
    }

    /// Number of links.
    pub fn num_links(&self) -> usize {
        self.marginals.len()
    }

    /// Ground-truth marginal congestion probability `P(X_{e} = 1)`.
    pub fn marginal(&self, link: LinkId) -> f64 {
        self.marginals[link.index()]
    }

    /// All ground-truth marginals, indexed by link.
    pub fn marginals(&self) -> &[f64] {
        &self.marginals
    }

    /// Samples the congestion state of every link for one snapshot.
    pub fn sample_state(&self, rng: &mut impl Rng) -> Vec<bool> {
        let mut state = vec![false; self.num_links()];
        for set in &self.sets {
            let mask = set.sample(rng);
            for (bit, &link) in set.links.iter().enumerate() {
                if mask & (1 << bit) != 0 {
                    state[link.index()] = true;
                }
            }
        }
        state
    }

    /// `P(S^p = A)`: the probability that, within correlation set `set`,
    /// exactly the links `links` are congested. Returns `None` if any link
    /// does not belong to the set.
    pub fn set_state_probability(&self, set: CorrelationSetId, links: &[LinkId]) -> Option<f64> {
        let blocks = &self.sets[set.index()];
        let mask = blocks.mask_of(links)?;
        Some(blocks.prob_exact(mask))
    }

    /// Exact joint probability that *all* the given links are congested
    /// (links may span correlation sets; sets are independent).
    pub fn joint_congestion_probability(&self, links: &[LinkId]) -> f64 {
        let mut per_set: std::collections::BTreeMap<CorrelationSetId, Vec<LinkId>> =
            std::collections::BTreeMap::new();
        for &l in links {
            per_set.entry(self.partition.set_of(l)).or_default().push(l);
        }
        per_set
            .iter()
            .map(|(set, set_links)| {
                let blocks = &self.sets[set.index()];
                let mask = blocks
                    .mask_of(set_links)
                    .expect("links grouped by their own set");
                blocks.prob_superset(mask)
            })
            .product()
    }

    /// Probability that every link of correlation set `set` is good,
    /// `P(S^p = ∅)`.
    pub fn prob_set_all_good(&self, set: CorrelationSetId) -> f64 {
        self.sets[set.index()].prob_exact(0)
    }
}

/// Builder for [`ExplicitModel`]s.
///
/// Links that are never mentioned default to "always good" (congestion
/// probability zero). Validation errors are deferred to
/// [`CongestionModelBuilder::build`] so calls can be chained.
#[derive(Debug, Clone)]
pub struct CongestionModelBuilder {
    partition: CorrelationPartition,
    blocks_per_set: Vec<Vec<(Vec<LinkId>, f64)>>,
    assigned: Vec<bool>,
    pending_error: Option<SimError>,
}

impl CongestionModelBuilder {
    /// Starts a builder over the given correlation partition.
    pub fn new(partition: &CorrelationPartition) -> Self {
        CongestionModelBuilder {
            partition: partition.clone(),
            blocks_per_set: vec![Vec::new(); partition.num_sets()],
            assigned: vec![false; partition.num_links()],
            pending_error: None,
        }
    }

    fn record_error(&mut self, error: SimError) {
        if self.pending_error.is_none() {
            self.pending_error = Some(error);
        }
    }

    fn check_probability(&mut self, p: f64, context: &'static str) -> bool {
        if !(0.0..=1.0).contains(&p) || !p.is_finite() {
            self.record_error(SimError::InvalidProbability { value: p, context });
            false
        } else {
            true
        }
    }

    fn claim_link(&mut self, link: LinkId) -> bool {
        if link.index() >= self.partition.num_links() {
            self.record_error(SimError::UnknownLink(link));
            return false;
        }
        if self.assigned[link.index()] {
            self.record_error(SimError::DuplicateLink(link));
            return false;
        }
        self.assigned[link.index()] = true;
        true
    }

    /// Declares `link` to be congested independently of every other link,
    /// with probability `prob`.
    pub fn independent(mut self, link: LinkId, prob: f64) -> Self {
        if !self.check_probability(prob, "independent link congestion") {
            return self;
        }
        if !self.claim_link(link) {
            return self;
        }
        let set = self.partition.set_of(link);
        self.blocks_per_set[set.index()].push((vec![link], prob));
        self
    }

    /// Declares the given links (which must all belong to the same
    /// correlation set) to be congested *together* with probability `prob`
    /// and all good otherwise.
    pub fn joint_group(mut self, links: &[LinkId], prob: f64) -> Self {
        if !self.check_probability(prob, "joint group congestion") {
            return self;
        }
        if links.is_empty() {
            self.record_error(SimError::EmptyGroup);
            return self;
        }
        // All links must exist before we can query their sets.
        for &l in links {
            if l.index() >= self.partition.num_links() {
                self.record_error(SimError::UnknownLink(l));
                return self;
            }
        }
        let set = self.partition.set_of(links[0]);
        for &l in links {
            if self.partition.set_of(l) != set {
                self.record_error(SimError::GroupSpansCorrelationSets { link: l });
                return self;
            }
        }
        for &l in links {
            if !self.claim_link(l) {
                return self;
            }
        }
        self.blocks_per_set[set.index()].push((links.to_vec(), prob));
        self
    }

    /// Declares every listed link to be independently congested with the
    /// same probability `prob` (convenience wrapper over
    /// [`CongestionModelBuilder::independent`]).
    pub fn independent_links(mut self, links: &[LinkId], prob: f64) -> Self {
        for &l in links {
            self = self.independent(l, prob);
        }
        self
    }

    /// Builds the model.
    pub fn build(self) -> Result<CongestionModel, SimError> {
        if let Some(error) = self.pending_error {
            return Err(error);
        }
        let mut sets = Vec::with_capacity(self.partition.num_sets());
        let mut marginals = vec![0.0; self.partition.num_links()];
        for (set_id, set_links) in self.partition.sets() {
            if set_links.len() > MAX_EXPLICIT_SET_SIZE {
                return Err(SimError::SetTooLarge {
                    size: set_links.len(),
                });
            }
            let links: Vec<LinkId> = set_links.to_vec();
            let mut blocks = Vec::new();
            for (group, prob) in &self.blocks_per_set[set_id.index()] {
                let mut mask = 0u64;
                for &l in group {
                    let bit = links
                        .iter()
                        .position(|&x| x == l)
                        .expect("group links belong to this set");
                    mask |= 1 << bit;
                    marginals[l.index()] = *prob;
                }
                blocks.push(Block { mask, prob: *prob });
            }
            sets.push(SetBlocks { links, blocks });
        }
        Ok(CongestionModel::Explicit(ExplicitModel {
            partition: self.partition,
            sets,
            marginals,
        }))
    }
}

// ---------------------------------------------------------------------------
// Substrate models
// ---------------------------------------------------------------------------

/// A congestion model in which hidden *substrate elements* (e.g.
/// router-level links under an AS-level graph) fail independently and a
/// logical link is congested iff any substrate element it depends on has
/// failed.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SubstrateModel {
    substrate_probs: Vec<f64>,
    dependencies: Vec<Vec<usize>>,
}

impl SubstrateModel {
    /// Creates a substrate model.
    ///
    /// `substrate_probs[s]` is the congestion probability of substrate
    /// element `s`; `dependencies[k]` lists the substrate elements that
    /// logical link `k` depends on.
    pub fn new(substrate_probs: Vec<f64>, dependencies: Vec<Vec<usize>>) -> Result<Self, SimError> {
        for &p in &substrate_probs {
            if !(0.0..=1.0).contains(&p) || !p.is_finite() {
                return Err(SimError::InvalidProbability {
                    value: p,
                    context: "substrate element congestion",
                });
            }
        }
        for deps in &dependencies {
            for &d in deps {
                if d >= substrate_probs.len() {
                    return Err(SimError::UnknownSubstrateElement {
                        index: d,
                        available: substrate_probs.len(),
                    });
                }
            }
        }
        Ok(SubstrateModel {
            substrate_probs,
            dependencies,
        })
    }

    /// Number of logical links.
    pub fn num_links(&self) -> usize {
        self.dependencies.len()
    }

    /// Number of substrate elements.
    pub fn num_substrate_elements(&self) -> usize {
        self.substrate_probs.len()
    }

    /// Ground-truth marginal congestion probability of a logical link:
    /// `1 − Π (1 − q_s)` over its substrate dependencies.
    pub fn marginal(&self, link: LinkId) -> f64 {
        let survive: f64 = self.dependencies[link.index()]
            .iter()
            .map(|&s| 1.0 - self.substrate_probs[s])
            .product();
        1.0 - survive
    }

    /// Samples the congestion state of every logical link for one snapshot.
    pub fn sample_state(&self, rng: &mut impl Rng) -> Vec<bool> {
        let substrate: Vec<bool> = self
            .substrate_probs
            .iter()
            .map(|&p| p > 0.0 && rng.random_bool(p.min(1.0)))
            .collect();
        self.dependencies
            .iter()
            .map(|deps| deps.iter().any(|&s| substrate[s]))
            .collect()
    }

    /// Exact joint probability that all the given logical links are
    /// congested, by inclusion–exclusion over the "link is good" events.
    /// Returns `None` when more than 20 links are requested (2^|A| terms).
    pub fn joint_congestion_probability(&self, links: &[LinkId]) -> Option<f64> {
        if links.len() > MAX_INCLUSION_EXCLUSION {
            return None;
        }
        let n = links.len();
        let mut total = 0.0;
        for mask in 0u64..(1u64 << n) {
            // P(all links in the masked subset are good) = Π over the union
            // of their substrate dependencies of (1 - q).
            let mut union: Vec<usize> = Vec::new();
            for (bit, &link) in links.iter().enumerate() {
                if mask & (1 << bit) != 0 {
                    union.extend(self.dependencies[link.index()].iter().copied());
                }
            }
            union.sort_unstable();
            union.dedup();
            let prob_good: f64 = union
                .iter()
                .map(|&s| 1.0 - self.substrate_probs[s])
                .product();
            let sign = if mask.count_ones() % 2 == 0 {
                1.0
            } else {
                -1.0
            };
            total += sign * prob_good;
        }
        Some(total.clamp(0.0, 1.0))
    }
}

// ---------------------------------------------------------------------------
// The unified model type
// ---------------------------------------------------------------------------

/// A congestion model: either an explicit block-structured model or a
/// hidden-substrate model.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum CongestionModel {
    /// Explicit per-correlation-set joint distributions.
    Explicit(ExplicitModel),
    /// Hidden-substrate (BRITE-style) model.
    Substrate(SubstrateModel),
}

impl CongestionModel {
    /// Number of links.
    pub fn num_links(&self) -> usize {
        match self {
            CongestionModel::Explicit(m) => m.num_links(),
            CongestionModel::Substrate(m) => m.num_links(),
        }
    }

    /// Ground-truth marginal congestion probability of a link.
    pub fn marginal(&self, link: LinkId) -> f64 {
        match self {
            CongestionModel::Explicit(m) => m.marginal(link),
            CongestionModel::Substrate(m) => m.marginal(link),
        }
    }

    /// All ground-truth marginals, indexed by link.
    pub fn marginals(&self) -> Vec<f64> {
        (0..self.num_links())
            .map(|i| self.marginal(LinkId(i)))
            .collect()
    }

    /// Samples the congestion state of every link for one snapshot.
    pub fn sample_state(&self, rng: &mut impl Rng) -> Vec<bool> {
        match self {
            CongestionModel::Explicit(m) => m.sample_state(rng),
            CongestionModel::Substrate(m) => m.sample_state(rng),
        }
    }

    /// Exact joint probability that all the given links are congested, when
    /// the model can provide it.
    pub fn joint_congestion_probability(&self, links: &[LinkId]) -> Option<f64> {
        match self {
            CongestionModel::Explicit(m) => Some(m.joint_congestion_probability(links)),
            CongestionModel::Substrate(m) => m.joint_congestion_probability(links),
        }
    }

    /// Access the explicit model, if this is one.
    pub fn as_explicit(&self) -> Option<&ExplicitModel> {
        match self {
            CongestionModel::Explicit(m) => Some(m),
            CongestionModel::Substrate(_) => None,
        }
    }
}

impl From<ExplicitModel> for CongestionModel {
    fn from(m: ExplicitModel) -> Self {
        CongestionModel::Explicit(m)
    }
}

impl From<SubstrateModel> for CongestionModel {
    fn from(m: SubstrateModel) -> Self {
        CongestionModel::Substrate(m)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use netcorr_topology::toy;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    /// The Figure 1(a) model used throughout the examples: e1 and e2 fail
    /// together 20% of the time, e3 and e4 independently 10% of the time.
    fn fig1a_model() -> CongestionModel {
        let inst = toy::figure_1a();
        CongestionModelBuilder::new(&inst.correlation)
            .joint_group(&[LinkId(0), LinkId(1)], 0.2)
            .independent(LinkId(2), 0.1)
            .independent(LinkId(3), 0.1)
            .build()
            .unwrap()
    }

    #[test]
    fn builder_produces_the_expected_marginals() {
        let model = fig1a_model();
        assert_eq!(model.num_links(), 4);
        assert!((model.marginal(LinkId(0)) - 0.2).abs() < 1e-12);
        assert!((model.marginal(LinkId(1)) - 0.2).abs() < 1e-12);
        assert!((model.marginal(LinkId(2)) - 0.1).abs() < 1e-12);
        assert!((model.marginal(LinkId(3)) - 0.1).abs() < 1e-12);
        assert_eq!(model.marginals().len(), 4);
    }

    #[test]
    fn unmentioned_links_are_always_good() {
        let inst = toy::figure_1a();
        let model = CongestionModelBuilder::new(&inst.correlation)
            .independent(LinkId(2), 0.3)
            .build()
            .unwrap();
        assert_eq!(model.marginal(LinkId(0)), 0.0);
        assert_eq!(model.marginal(LinkId(3)), 0.0);
        let mut rng = StdRng::seed_from_u64(0);
        for _ in 0..200 {
            let state = model.sample_state(&mut rng);
            assert!(!state[0]);
            assert!(!state[1]);
            assert!(!state[3]);
        }
    }

    #[test]
    fn joint_group_links_fail_together() {
        let model = fig1a_model();
        let mut rng = StdRng::seed_from_u64(1);
        let mut joint_count = 0;
        let n = 20_000;
        for _ in 0..n {
            let state = model.sample_state(&mut rng);
            // e1 and e2 are all-or-nothing.
            assert_eq!(state[0], state[1]);
            if state[0] {
                joint_count += 1;
            }
        }
        let freq = joint_count as f64 / n as f64;
        assert!((freq - 0.2).abs() < 0.02, "joint frequency {freq}");
    }

    #[test]
    fn sampling_frequencies_match_marginals() {
        let model = fig1a_model();
        let mut rng = StdRng::seed_from_u64(2);
        let n = 20_000;
        let mut counts = [0usize; 4];
        for _ in 0..n {
            let state = model.sample_state(&mut rng);
            for (i, &c) in state.iter().enumerate() {
                if c {
                    counts[i] += 1;
                }
            }
        }
        for (i, &count) in counts.iter().enumerate() {
            let freq = count as f64 / n as f64;
            let expected = model.marginal(LinkId(i));
            assert!(
                (freq - expected).abs() < 0.02,
                "link {i}: frequency {freq}, expected {expected}"
            );
        }
    }

    #[test]
    fn exact_set_state_probabilities_match_the_construction() {
        let model = fig1a_model();
        let explicit = model.as_explicit().unwrap();
        // Correlation set C1 = {e1, e2}: S^1 = {e1, e2} with prob 0.2,
        // S^1 = ∅ with prob 0.8, partial states impossible.
        let c1 = CorrelationSetId(0);
        assert!(
            (explicit
                .set_state_probability(c1, &[LinkId(0), LinkId(1)])
                .unwrap()
                - 0.2)
                .abs()
                < 1e-12
        );
        assert!((explicit.set_state_probability(c1, &[]).unwrap() - 0.8).abs() < 1e-12);
        assert_eq!(
            explicit.set_state_probability(c1, &[LinkId(0)]).unwrap(),
            0.0
        );
        assert!((explicit.prob_set_all_good(c1) - 0.8).abs() < 1e-12);
        // Links from another set are rejected.
        assert!(explicit.set_state_probability(c1, &[LinkId(2)]).is_none());
    }

    #[test]
    fn joint_probabilities_multiply_across_sets() {
        let model = fig1a_model();
        // e1 and e3 are in different sets: P = 0.2 * 0.1.
        let p = model
            .joint_congestion_probability(&[LinkId(0), LinkId(2)])
            .unwrap();
        assert!((p - 0.02).abs() < 1e-12);
        // e1 and e2 are all-or-nothing: P = 0.2.
        let p = model
            .joint_congestion_probability(&[LinkId(0), LinkId(1)])
            .unwrap();
        assert!((p - 0.2).abs() < 1e-12);
        // All four links.
        let p = model
            .joint_congestion_probability(&[LinkId(0), LinkId(1), LinkId(2), LinkId(3)])
            .unwrap();
        assert!((p - 0.2 * 0.1 * 0.1).abs() < 1e-12);
        // The empty set is "all of no links congested" = 1.
        assert_eq!(model.joint_congestion_probability(&[]).unwrap(), 1.0);
    }

    #[test]
    fn builder_rejects_invalid_specifications() {
        let inst = toy::figure_1a();
        // Probability out of range.
        assert!(matches!(
            CongestionModelBuilder::new(&inst.correlation)
                .independent(LinkId(0), 1.5)
                .build(),
            Err(SimError::InvalidProbability { .. })
        ));
        // Unknown link.
        assert!(matches!(
            CongestionModelBuilder::new(&inst.correlation)
                .independent(LinkId(9), 0.5)
                .build(),
            Err(SimError::UnknownLink(_))
        ));
        // Duplicate link.
        assert!(matches!(
            CongestionModelBuilder::new(&inst.correlation)
                .independent(LinkId(0), 0.5)
                .independent(LinkId(0), 0.2)
                .build(),
            Err(SimError::DuplicateLink(_))
        ));
        // Group spanning correlation sets (e1 and e3).
        assert!(matches!(
            CongestionModelBuilder::new(&inst.correlation)
                .joint_group(&[LinkId(0), LinkId(2)], 0.5)
                .build(),
            Err(SimError::GroupSpansCorrelationSets { .. })
        ));
        // Empty group.
        assert!(matches!(
            CongestionModelBuilder::new(&inst.correlation)
                .joint_group(&[], 0.5)
                .build(),
            Err(SimError::EmptyGroup)
        ));
    }

    #[test]
    fn independent_links_helper_assigns_each_link() {
        let inst = toy::figure_1a();
        let model = CongestionModelBuilder::new(&inst.correlation)
            .independent_links(&[LinkId(0), LinkId(2), LinkId(3)], 0.25)
            .build()
            .unwrap();
        assert!((model.marginal(LinkId(0)) - 0.25).abs() < 1e-12);
        assert!((model.marginal(LinkId(2)) - 0.25).abs() < 1e-12);
        assert_eq!(model.marginal(LinkId(1)), 0.0);
    }

    #[test]
    fn oversized_sets_are_rejected() {
        let partition = CorrelationPartition::single_set(70);
        let builder = CongestionModelBuilder::new(&partition);
        assert!(matches!(
            builder.build(),
            Err(SimError::SetTooLarge { size: 70 })
        ));
    }

    #[test]
    fn substrate_model_marginals_and_sampling_agree() {
        // Three substrate elements; link 0 depends on {0}, link 1 on {0, 1},
        // link 2 on {2}.
        let model =
            SubstrateModel::new(vec![0.2, 0.1, 0.3], vec![vec![0], vec![0, 1], vec![2]]).unwrap();
        assert_eq!(model.num_links(), 3);
        assert_eq!(model.num_substrate_elements(), 3);
        assert!((model.marginal(LinkId(0)) - 0.2).abs() < 1e-12);
        assert!((model.marginal(LinkId(1)) - (1.0 - 0.8 * 0.9)).abs() < 1e-12);
        assert!((model.marginal(LinkId(2)) - 0.3).abs() < 1e-12);

        let mut rng = StdRng::seed_from_u64(3);
        let n = 30_000;
        let mut counts = [0usize; 3];
        let mut joint01 = 0usize;
        for _ in 0..n {
            let state = model.sample_state(&mut rng);
            for (i, &c) in state.iter().enumerate() {
                if c {
                    counts[i] += 1;
                }
            }
            if state[0] && state[1] {
                joint01 += 1;
            }
            // Link 0 congested implies link 1 congested (shared element 0).
            if state[0] {
                assert!(state[1]);
            }
        }
        for (i, &count) in counts.iter().enumerate() {
            let freq = count as f64 / n as f64;
            let expected = model.marginal(LinkId(i));
            assert!(
                (freq - expected).abs() < 0.02,
                "link {i}: frequency {freq}, expected {expected}"
            );
        }
        // Exact joint probability by inclusion–exclusion: links 0 and 1 are
        // both congested iff element 0 fails (link 0 needs it), so P = 0.2.
        let exact = model
            .joint_congestion_probability(&[LinkId(0), LinkId(1)])
            .unwrap();
        assert!((exact - 0.2).abs() < 1e-12);
        let freq = joint01 as f64 / n as f64;
        assert!((freq - exact).abs() < 0.02);
    }

    #[test]
    fn substrate_model_validation() {
        assert!(matches!(
            SubstrateModel::new(vec![1.5], vec![vec![0]]),
            Err(SimError::InvalidProbability { .. })
        ));
        assert!(matches!(
            SubstrateModel::new(vec![0.5], vec![vec![1]]),
            Err(SimError::UnknownSubstrateElement { .. })
        ));
        // Too many links for exact joint probabilities.
        let model = SubstrateModel::new(vec![0.5], vec![vec![0]; 30]).unwrap();
        let links: Vec<LinkId> = (0..25).map(LinkId).collect();
        assert!(model.joint_congestion_probability(&links).is_none());
    }

    #[test]
    fn conversions_into_the_unified_type() {
        let substrate = SubstrateModel::new(vec![0.1], vec![vec![0]]).unwrap();
        let model: CongestionModel = substrate.clone().into();
        assert_eq!(model.num_links(), 1);
        assert!(model.as_explicit().is_none());
        assert!((model.marginals()[0] - 0.1).abs() < 1e-12);
    }
}
