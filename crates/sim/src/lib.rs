//! # netcorr-sim — the congestion simulator
//!
//! Implements the simulator described in Section 5 of the paper
//! ("Evaluation → Simulator"):
//!
//! 1. At the beginning of an experiment, a [`CongestionModel`] fixes which
//!    links belong to each correlation set, the congestion probability of
//!    each link and the joint congestion probabilities of correlated
//!    links.
//! 2. In every round (snapshot) the model draws the congestion status of
//!    every link, respecting the individual and joint probabilities.
//! 3. Every link is assigned a packet-loss rate according to the loss model
//!    of Padmanabhan et al. \[13\]: good links lose between 0 and `t_l` of
//!    their packets, congested links between `t_l` and 1
//!    (`t_l = 0.01`).
//! 4. A configurable number of packets is sent along every path; each
//!    packet survives each link independently with probability
//!    `1 − loss rate`.
//! 5. A path is declared congested when its measured loss rate exceeds the
//!    path threshold `t_p = 1 − (1 − t_l)^d`, where `d` is the path length.
//!
//! The output of a simulation is a [`netcorr_measure::PathObservations`]
//! container — exactly what a real measurement deployment would produce,
//! and exactly what the inference algorithms consume.
//!
//! Two families of congestion models are supported:
//!
//! * [`CongestionModelBuilder`] builds *explicit* models where each
//!   correlation set carries an explicit joint distribution over which of
//!   its links are congested (independent links, all-or-nothing groups, or
//!   arbitrary distributions). These models also expose exact marginal and
//!   joint probabilities, which serve as ground truth in the evaluation.
//! * [`SubstrateModel`] models the BRITE scenario: congestion lives on
//!   hidden router-level links with independent probabilities, and a
//!   logical (AS-level) link is congested iff any of the router-level links
//!   it maps to is congested — correlation then emerges from sharing.

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod config;
pub mod congestion;
pub mod engine;
pub mod error;
pub mod loss;
pub mod perturb;

pub use config::{SimulationConfig, TransmissionModel};
pub use congestion::{CongestionModel, CongestionModelBuilder, ExplicitModel, SubstrateModel};
pub use engine::{snapshot_seed, SimulationTrace, Simulator};
pub use error::SimError;
pub use perturb::{
    mask_missing_rows, GilbertElliottConfig, LossDriftConfig, MissingRowsConfig,
    PerturbationConfig, PerturbationPlan, PerturbedSimulator, RoutingChurnConfig,
};
