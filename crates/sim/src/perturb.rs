//! Model-misspecification perturbations of the snapshot simulator.
//!
//! The paper's generative model — and [`crate::Simulator`] — assumes
//! congestion that is independent across time, stationary loss rates,
//! complete snapshots and fixed routing. This module breaks each of those
//! assumptions in a controlled, **seed-reproducible** way, so the
//! robustness of the inference algorithms can be measured where the model
//! is wrong:
//!
//! * **Bursts** ([`GilbertElliottConfig`]) — a per-link Gilbert–Elliott
//!   on/off chain forces a seeded subset of links into bursty congestion
//!   that is *correlated across snapshots*, violating the i.i.d.-in-time
//!   assumption.
//! * **Drift** ([`LossDriftConfig`]) — sampled loss rates are scaled up
//!   linearly over the trial, so the loss process is non-stationary and
//!   good links creep toward the congestion threshold.
//! * **Missing rows** ([`MissingRowsConfig`]) — a seeded subset of
//!   `(snapshot, path)` measurements is dropped; the estimator, which
//!   assumes complete snapshots, sees the dropped rows as "not
//!   congested".
//! * **Routing churn** ([`RoutingChurnConfig`]) — at a seeded snapshot
//!   index a fraction of paths silently switch to a different route,
//!   while the inference side keeps using the stale routing matrix.
//!
//! Everything is keyed off the trial's base seed plus a domain tag per
//! perturbation, so a perturbed trial is bit-reproducible from
//! `(seed, PerturbationConfig)`; with [`PerturbationConfig::none`] the
//! perturbed simulator consumes the RNG streams in exactly the same order
//! as [`crate::Simulator`] and is bit-identical to it for any seed and
//! shard split (pinned by the workspace determinism proptests).

use std::ops::Range;

use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};
use serde::{Deserialize, Serialize};

use netcorr_measure::PathObservations;
use netcorr_topology::graph::LinkId;
use netcorr_topology::path::PathId;
use netcorr_topology::TopologyInstance;

use crate::config::SimulationConfig;
use crate::congestion::CongestionModel;
use crate::engine::{snapshot_seed, Simulator};
use crate::error::SimError;
use crate::loss::sample_loss_rate;

/// Domain tag separating the burst-chain streams from the measurement
/// streams of the same base seed.
const BURST_TAG: u64 = 0x4255_5253_5421_1111;
/// Domain tag of the burst link-selection stream.
const BURST_SELECT_TAG: u64 = 0x4255_5253_5453_454c;
/// Domain tag of the missing-row mask.
const MISSING_TAG: u64 = 0x4d49_5353_494e_4721;
/// Domain tag of the routing-churn stream.
const CHURN_TAG: u64 = 0x4348_5552_4e21_2121;

/// Temporally correlated congestion bursts: a per-link Gilbert–Elliott
/// on/off chain.
///
/// A seeded subset of links each carries an independent two-state Markov
/// chain over the snapshots of a trial. While a link's chain is in the
/// *bad* state the link is forced congested (on top of whatever the
/// congestion model drew); in the *good* state the model's draw stands.
/// Because the chain state persists across snapshots, congestion becomes
/// correlated in time — exactly what the paper's model rules out.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct GilbertElliottConfig {
    /// Fraction of links governed by a burst chain, in `[0, 1]`.
    pub link_fraction: f64,
    /// Per-snapshot probability of entering the bad state, in `(0, 1]`.
    pub p_enter: f64,
    /// Per-snapshot probability of leaving the bad state, in `(0, 1]`.
    pub p_exit: f64,
}

impl GilbertElliottConfig {
    /// A chain whose burst coverage scales with `intensity ∈ [0, 1]`:
    /// `intensity` of the links burst, with mean burst length 4 snapshots
    /// and a stationary bad-state probability of ≈ 1/6.
    pub fn with_intensity(intensity: f64) -> Self {
        GilbertElliottConfig {
            link_fraction: intensity,
            p_enter: 0.05,
            p_exit: 0.25,
        }
    }
}

/// Non-stationary loss rates: every sampled link loss rate is scaled by
/// `1 + max_drift · t/(n−1)` at snapshot `t` of `n` (clamped to 1), so
/// the loss process drifts upward over the trial.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct LossDriftConfig {
    /// Relative loss-rate inflation reached at the last snapshot, ≥ 0.
    pub max_drift: f64,
}

impl LossDriftConfig {
    /// Drift whose final inflation equals `intensity` (e.g. `0.5` means
    /// loss rates end the trial 1.5× their sampled values).
    pub fn with_intensity(intensity: f64) -> Self {
        LossDriftConfig {
            max_drift: intensity,
        }
    }
}

/// Missing measurements: a seeded subset of `(snapshot, path)` cells is
/// dropped from the observation matrix.
///
/// The estimator has no notion of "absent" rows — a dropped cell is
/// recorded as *not congested*, which is exactly the failure mode of a
/// collector that treats silence as health.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct MissingRowsConfig {
    /// Fraction of `(snapshot, path)` cells dropped, in `[0, 1]`.
    pub drop_fraction: f64,
}

impl MissingRowsConfig {
    /// Drops `intensity` of all path rows.
    pub fn with_intensity(intensity: f64) -> Self {
        MissingRowsConfig {
            drop_fraction: intensity,
        }
    }
}

/// Mid-trial routing churn: at a seeded snapshot index, a seeded fraction
/// of paths silently switches to the route of another path, while the
/// believed routing (the topology instance handed to inference, and the
/// per-path congestion threshold) stays stale.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct RoutingChurnConfig {
    /// Fraction of paths re-routed, in `[0, 1]`.
    pub path_fraction: f64,
    /// Churn point as a fraction of the trial length, in `[0, 1]`.
    pub at_fraction: f64,
}

impl RoutingChurnConfig {
    /// Re-routes `intensity` of the paths halfway through the trial.
    pub fn with_intensity(intensity: f64) -> Self {
        RoutingChurnConfig {
            path_fraction: intensity,
            at_fraction: 0.5,
        }
    }
}

/// The composition of perturbations applied to a simulation run. Every
/// field is optional; [`PerturbationConfig::none`] disables them all.
#[derive(Debug, Clone, Copy, PartialEq, Default, Serialize, Deserialize)]
pub struct PerturbationConfig {
    /// Temporally correlated congestion bursts.
    pub gilbert_elliott: Option<GilbertElliottConfig>,
    /// Non-stationary loss-rate drift.
    pub loss_drift: Option<LossDriftConfig>,
    /// Missing `(snapshot, path)` measurements.
    pub missing_rows: Option<MissingRowsConfig>,
    /// Mid-trial routing churn.
    pub routing_churn: Option<RoutingChurnConfig>,
}

impl PerturbationConfig {
    /// No perturbation at all: the perturbed simulator degenerates to a
    /// bit-identical twin of [`crate::Simulator`].
    pub fn none() -> Self {
        PerturbationConfig::default()
    }

    /// Whether every perturbation is disabled.
    pub fn is_none(&self) -> bool {
        self.gilbert_elliott.is_none()
            && self.loss_drift.is_none()
            && self.missing_rows.is_none()
            && self.routing_churn.is_none()
    }

    /// Validates every configured perturbation.
    pub fn validate(&self) -> Result<(), SimError> {
        fn check_fraction(name: &str, value: f64) -> Result<(), SimError> {
            if !(0.0..=1.0).contains(&value) {
                return Err(SimError::InvalidConfig(format!(
                    "{name} ({value}) must be in [0, 1]"
                )));
            }
            Ok(())
        }
        if let Some(ge) = &self.gilbert_elliott {
            check_fraction("gilbert_elliott.link_fraction", ge.link_fraction)?;
            for (name, p) in [("p_enter", ge.p_enter), ("p_exit", ge.p_exit)] {
                if !(p > 0.0 && p <= 1.0) {
                    return Err(SimError::InvalidConfig(format!(
                        "gilbert_elliott.{name} ({p}) must be in (0, 1]"
                    )));
                }
            }
        }
        if let Some(drift) = &self.loss_drift {
            if !(drift.max_drift >= 0.0 && drift.max_drift.is_finite()) {
                return Err(SimError::InvalidConfig(format!(
                    "loss_drift.max_drift ({}) must be finite and >= 0",
                    drift.max_drift
                )));
            }
        }
        if let Some(missing) = &self.missing_rows {
            check_fraction("missing_rows.drop_fraction", missing.drop_fraction)?;
        }
        if let Some(churn) = &self.routing_churn {
            check_fraction("routing_churn.path_fraction", churn.path_fraction)?;
            check_fraction("routing_churn.at_fraction", churn.at_fraction)?;
        }
        Ok(())
    }
}

/// Decides whether the `(snapshot, path)` cell is dropped by the
/// missing-rows perturbation — a pure counter-based function of the seed,
/// so masking commutes with any sharding of the snapshot range.
pub fn row_dropped(base_seed: u64, snapshot: usize, path: usize, drop_fraction: f64) -> bool {
    if drop_fraction <= 0.0 {
        return false;
    }
    let hash = snapshot_seed(snapshot_seed(base_seed ^ MISSING_TAG, snapshot), path);
    // Top 53 bits → uniform in [0, 1).
    let unit = (hash >> 11) as f64 / (1u64 << 53) as f64;
    unit < drop_fraction
}

/// Applies the missing-rows mask to an already-measured observation
/// block whose first snapshot has global index `first_snapshot`.
///
/// Dropped cells are recorded as *not congested*. Because the per-cell
/// decision is a pure function of `(seed, global snapshot index, path)`,
/// masking a concatenation equals concatenating per-shard maskings:
/// dropping rows commutes with sharded measurement.
pub fn mask_missing_rows(
    observations: &PathObservations,
    base_seed: u64,
    drop_fraction: f64,
    first_snapshot: usize,
) -> PathObservations {
    let mut masked =
        PathObservations::with_capacity(observations.num_paths(), observations.num_snapshots());
    for (offset, mut row) in observations.snapshots().enumerate() {
        let snapshot = first_snapshot + offset;
        for (path, cell) in row.iter_mut().enumerate() {
            if *cell && row_dropped(base_seed, snapshot, path, drop_fraction) {
                *cell = false;
            }
        }
        masked
            .record_snapshot(&row)
            .expect("masked snapshot keeps the path count");
    }
    masked
}

/// Per-link burst chain states, precomputed for a whole trial.
#[derive(Debug, Clone)]
struct BurstPlan {
    /// Indices of the links governed by a chain.
    links: Vec<usize>,
    /// One bitset (64 snapshots per word) per burst link: bit `t` set ⇔
    /// the chain is in the bad state at snapshot `t`.
    states: Vec<Vec<u64>>,
}

impl BurstPlan {
    fn bad(&self, chain: usize, snapshot: usize) -> bool {
        let word = self.states[chain][snapshot / 64];
        (word >> (snapshot % 64)) & 1 == 1
    }
}

/// Replacement routes for churned paths.
#[derive(Debug, Clone)]
struct ChurnPlan {
    /// First snapshot at which the new routes are in effect.
    at: usize,
    /// `routes[path]` is `Some(links)` if the path is re-routed.
    routes: Vec<Option<Vec<LinkId>>>,
}

/// The fully materialised, seed-deterministic realisation of a
/// [`PerturbationConfig`] for one trial of `snapshots` snapshots.
///
/// Shards of the same trial must share one plan (or equivalently build
/// their own from the same `(seed, config, snapshots)`), which keeps
/// sharded perturbed runs bit-identical to sequential ones: the
/// temporally correlated state lives in the plan, not in the per-snapshot
/// RNG streams.
#[derive(Debug, Clone)]
pub struct PerturbationPlan {
    snapshots: usize,
    burst: Option<BurstPlan>,
    max_drift: Option<f64>,
    missing: Option<(u64, f64)>,
    churn: Option<ChurnPlan>,
}

impl PerturbationPlan {
    /// The trial length the plan was built for.
    pub fn snapshots(&self) -> usize {
        self.snapshots
    }
}

/// Fisher–Yates selection of `count` distinct indices out of `0..n`.
fn sample_indices(rng: &mut StdRng, n: usize, count: usize) -> Vec<usize> {
    let mut indices: Vec<usize> = (0..n).collect();
    let count = count.min(n);
    for i in 0..count {
        let j = rng.random_range(i..n);
        indices.swap(i, j);
    }
    indices.truncate(count);
    indices.sort_unstable();
    indices
}

/// A [`Simulator`] with a [`PerturbationConfig`] layered on top.
///
/// The perturbed snapshot loop consumes the measurement RNG streams in
/// exactly the same order as [`Simulator::simulate_snapshot`]; all
/// perturbation randomness comes from separate, domain-tagged streams of
/// the same base seed. With [`PerturbationConfig::none`] the two
/// simulators are therefore bit-identical for any seed and shard split.
#[derive(Debug, Clone)]
pub struct PerturbedSimulator<'a> {
    simulator: Simulator<'a>,
    perturbation: PerturbationConfig,
}

impl<'a> PerturbedSimulator<'a> {
    /// Creates a perturbed simulator, validating both the simulation and
    /// the perturbation configuration.
    pub fn new(
        instance: &'a TopologyInstance,
        model: &'a CongestionModel,
        config: SimulationConfig,
        perturbation: PerturbationConfig,
    ) -> Result<Self, SimError> {
        perturbation.validate()?;
        Ok(PerturbedSimulator {
            simulator: Simulator::new(instance, model, config)?,
            perturbation,
        })
    }

    /// The underlying unperturbed simulator.
    pub fn simulator(&self) -> &Simulator<'a> {
        &self.simulator
    }

    /// The perturbation configuration.
    pub fn perturbation(&self) -> &PerturbationConfig {
        &self.perturbation
    }

    /// Materialises the perturbation for a trial of `snapshots` snapshots
    /// with the given base seed.
    pub fn plan(&self, snapshots: usize, base_seed: u64) -> PerturbationPlan {
        let instance = self.simulator.instance;
        let burst = self.perturbation.gilbert_elliott.as_ref().map(|ge| {
            let count = (ge.link_fraction * instance.num_links() as f64).round() as usize;
            let mut select_rng = StdRng::seed_from_u64(base_seed ^ BURST_SELECT_TAG);
            let links = sample_indices(&mut select_rng, instance.num_links(), count);
            let words = snapshots.div_ceil(64);
            let states = links
                .iter()
                .map(|&link| {
                    // One dedicated stream per (seed, link): the chain is
                    // evolved sequentially from snapshot 0, which is what
                    // makes it *temporally correlated* — shards replay it
                    // from the shared plan instead of re-drawing.
                    let mut rng = StdRng::seed_from_u64(snapshot_seed(base_seed ^ BURST_TAG, link));
                    let mut bad = false;
                    let mut bits = vec![0u64; words];
                    for t in 0..snapshots {
                        bad = if bad {
                            !rng.random_bool(ge.p_exit)
                        } else {
                            rng.random_bool(ge.p_enter)
                        };
                        if bad {
                            bits[t / 64] |= 1u64 << (t % 64);
                        }
                    }
                    bits
                })
                .collect();
            BurstPlan { links, states }
        });
        let churn = self.perturbation.routing_churn.as_ref().map(|churn| {
            let num_paths = instance.num_paths();
            let count = (churn.path_fraction * num_paths as f64).round() as usize;
            let mut rng = StdRng::seed_from_u64(base_seed ^ CHURN_TAG);
            let churned = sample_indices(&mut rng, num_paths, count);
            let at = ((churn.at_fraction * snapshots as f64).floor() as usize).min(snapshots);
            let mut routes: Vec<Option<Vec<LinkId>>> = vec![None; num_paths];
            for &path in &churned {
                // The new route is another monitored path's links — a
                // route flap onto an existing physical route. Avoid the
                // identity re-route when the topology has > 1 path.
                let mut donor = rng.random_range(0..num_paths);
                if donor == path && num_paths > 1 {
                    donor = (donor + 1) % num_paths;
                }
                routes[path] = Some(instance.paths.path(PathId(donor)).links.clone());
            }
            ChurnPlan { at, routes }
        });
        PerturbationPlan {
            snapshots,
            burst,
            max_drift: self.perturbation.loss_drift.map(|d| d.max_drift),
            missing: self
                .perturbation
                .missing_rows
                .map(|m| (base_seed, m.drop_fraction)),
            churn,
        }
    }

    /// Runs the snapshots of `range` under a plan built for the whole
    /// trial — the shard entry point, mirroring [`Simulator::run_range`].
    pub fn run_range_planned(
        &self,
        range: Range<usize>,
        base_seed: u64,
        plan: &PerturbationPlan,
    ) -> PathObservations {
        let mut observations =
            PathObservations::with_capacity(self.simulator.instance.num_paths(), range.len());
        for snapshot in range {
            let mut rng = StdRng::seed_from_u64(snapshot_seed(base_seed, snapshot));
            let path_congested = self.simulate_snapshot_planned(snapshot, &mut rng, plan);
            observations
                .record_snapshot(&path_congested)
                .expect("snapshot width matches the path count");
        }
        observations
    }

    /// Runs a whole trial of `snapshots` snapshots with per-snapshot
    /// seeding — the perturbed counterpart of [`Simulator::run_seeded`].
    pub fn run_seeded(&self, snapshots: usize, base_seed: u64) -> PathObservations {
        let plan = self.plan(snapshots, base_seed);
        self.run_range_planned(0..snapshots, base_seed, &plan)
    }

    /// Simulates one perturbed snapshot: identical RNG consumption to
    /// [`Simulator::simulate_snapshot`], with the plan's perturbations
    /// applied from their own deterministic state.
    fn simulate_snapshot_planned(
        &self,
        snapshot: usize,
        rng: &mut StdRng,
        plan: &PerturbationPlan,
    ) -> Vec<bool> {
        let sim = &self.simulator;
        // 1. Draw link states from the congestion model (always, so the
        //    stream stays aligned with the unperturbed simulator).
        let mut link_states = sim.model.sample_state(rng);
        // 1b. Burst overlay: chain-bad links are forced congested.
        if let Some(burst) = &plan.burst {
            for (chain, &link) in burst.links.iter().enumerate() {
                if burst.bad(chain, snapshot) {
                    link_states[link] = true;
                }
            }
        }
        // 2. Assign loss rates (same stream order as the unperturbed
        //    simulator), then drift them deterministically.
        let mut loss_rates: Vec<f64> = link_states
            .iter()
            .map(|&congested| sample_loss_rate(rng, congested, &sim.config))
            .collect();
        if let Some(max_drift) = plan.max_drift {
            let span = plan.snapshots.saturating_sub(1).max(1) as f64;
            let factor = 1.0 + max_drift * snapshot as f64 / span;
            for rate in loss_rates.iter_mut() {
                *rate = (*rate * factor).min(1.0);
            }
        }
        // 3. Probe every path. Churned paths traverse their new route,
        //    but the classification threshold still uses the *believed*
        //    (stale) hop count — the measurement endpoint does not know
        //    the route changed.
        sim.instance
            .paths
            .paths()
            .enumerate()
            .map(|(path_idx, path)| {
                let links: &[LinkId] = match &plan.churn {
                    Some(churn) if snapshot >= churn.at => {
                        churn.routes[path_idx].as_deref().unwrap_or(&path.links)
                    }
                    _ => &path.links,
                };
                let path_losses: Vec<f64> = links.iter().map(|l| loss_rates[l.index()]).collect();
                let threshold = sim.config.path_congestion_threshold(path.len());
                let measured_loss = sim.measure_path_loss(&path_losses, rng);
                let mut congested = measured_loss > threshold;
                // 4. Missing rows: the dropped cell reaches the collector
                //    as "not congested" (deterministic, commutes with
                //    sharding).
                if let Some((seed, fraction)) = plan.missing {
                    if congested && row_dropped(seed, snapshot, path_idx, fraction) {
                        congested = false;
                    }
                }
                congested
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::congestion::CongestionModelBuilder;
    use crate::TransmissionModel;
    use netcorr_topology::toy;

    fn fig1a_setup() -> (TopologyInstance, CongestionModel) {
        let inst = toy::figure_1a();
        let model = CongestionModelBuilder::new(&inst.correlation)
            .joint_group(&[LinkId(0), LinkId(1)], 0.2)
            .independent(LinkId(2), 0.1)
            .independent(LinkId(3), 0.1)
            .build()
            .unwrap();
        (inst, model)
    }

    fn every_perturbation(intensity: f64) -> PerturbationConfig {
        PerturbationConfig {
            gilbert_elliott: Some(GilbertElliottConfig::with_intensity(intensity)),
            loss_drift: Some(LossDriftConfig::with_intensity(intensity)),
            missing_rows: Some(MissingRowsConfig::with_intensity(intensity * 0.5)),
            routing_churn: Some(RoutingChurnConfig::with_intensity(intensity)),
        }
    }

    #[test]
    fn validation_rejects_out_of_range_knobs() {
        assert!(PerturbationConfig::none().validate().is_ok());
        assert!(every_perturbation(0.5).validate().is_ok());
        let bad = PerturbationConfig {
            gilbert_elliott: Some(GilbertElliottConfig {
                link_fraction: 1.5,
                p_enter: 0.1,
                p_exit: 0.1,
            }),
            ..PerturbationConfig::none()
        };
        assert!(bad.validate().is_err());
        let bad = PerturbationConfig {
            gilbert_elliott: Some(GilbertElliottConfig {
                link_fraction: 0.5,
                p_enter: 0.0,
                p_exit: 0.1,
            }),
            ..PerturbationConfig::none()
        };
        assert!(bad.validate().is_err());
        let bad = PerturbationConfig {
            loss_drift: Some(LossDriftConfig { max_drift: -0.1 }),
            ..PerturbationConfig::none()
        };
        assert!(bad.validate().is_err());
        let bad = PerturbationConfig {
            missing_rows: Some(MissingRowsConfig {
                drop_fraction: -0.01,
            }),
            ..PerturbationConfig::none()
        };
        assert!(bad.validate().is_err());
        let bad = PerturbationConfig {
            routing_churn: Some(RoutingChurnConfig {
                path_fraction: 0.5,
                at_fraction: 2.0,
            }),
            ..PerturbationConfig::none()
        };
        assert!(bad.validate().is_err());
    }

    #[test]
    fn none_is_bit_identical_to_the_plain_simulator() {
        let (inst, model) = fig1a_setup();
        let config = SimulationConfig::default();
        let plain = Simulator::new(&inst, &model, config).unwrap();
        let perturbed =
            PerturbedSimulator::new(&inst, &model, config, PerturbationConfig::none()).unwrap();
        for seed in [0u64, 7, 0xdead_beef] {
            assert_eq!(perturbed.run_seeded(200, seed), plain.run_seeded(200, seed));
        }
    }

    #[test]
    fn perturbed_runs_are_reproducible_and_seed_sensitive() {
        let (inst, model) = fig1a_setup();
        let config = SimulationConfig::default();
        let sim = PerturbedSimulator::new(&inst, &model, config, every_perturbation(0.6)).unwrap();
        let a = sim.run_seeded(300, 42);
        let b = sim.run_seeded(300, 42);
        assert_eq!(a, b, "same (seed, config) must be bit-identical");
        assert_ne!(a, sim.run_seeded(300, 43), "different seeds must differ");
        // A different intensity changes the trace too.
        let weaker =
            PerturbedSimulator::new(&inst, &model, config, every_perturbation(0.1)).unwrap();
        assert_ne!(a, weaker.run_seeded(300, 42));
    }

    #[test]
    fn planned_range_runs_compose_for_any_split() {
        let (inst, model) = fig1a_setup();
        let config = SimulationConfig::default();
        let sim = PerturbedSimulator::new(&inst, &model, config, every_perturbation(0.4)).unwrap();
        let plan = sim.plan(150, 42);
        let whole = sim.run_range_planned(0..150, 42, &plan);
        assert_eq!(whole, sim.run_seeded(150, 42));
        for split in [1usize, 64, 77, 128, 149] {
            let mut left = sim.run_range_planned(0..split, 42, &plan);
            let right = sim.run_range_planned(split..150, 42, &plan);
            left.concat(&right).unwrap();
            assert_eq!(left, whole, "split at {split}");
        }
    }

    #[test]
    fn bursts_raise_congestion_frequency() {
        let (inst, model) = fig1a_setup();
        let config = SimulationConfig::default();
        let plain = Simulator::new(&inst, &model, config).unwrap();
        let bursty = PerturbedSimulator::new(
            &inst,
            &model,
            config,
            PerturbationConfig {
                gilbert_elliott: Some(GilbertElliottConfig {
                    link_fraction: 1.0,
                    p_enter: 0.2,
                    p_exit: 0.2,
                }),
                ..PerturbationConfig::none()
            },
        )
        .unwrap();
        let count = |obs: &PathObservations| -> usize {
            obs.snapshots()
                .map(|row| row.iter().filter(|&&c| c).count())
                .sum()
        };
        let base = count(&plain.run_seeded(2000, 5));
        let burst = count(&bursty.run_seeded(2000, 5));
        assert!(
            burst > base + base / 2,
            "bursts should add congestion: {burst} vs {base}"
        );
    }

    #[test]
    fn missing_rows_only_clear_cells_and_match_the_post_mask() {
        let (inst, model) = fig1a_setup();
        let config = SimulationConfig::default();
        let plain = Simulator::new(&inst, &model, config).unwrap();
        let missing = PerturbedSimulator::new(
            &inst,
            &model,
            config,
            PerturbationConfig {
                missing_rows: Some(MissingRowsConfig { drop_fraction: 0.5 }),
                ..PerturbationConfig::none()
            },
        )
        .unwrap();
        let full = plain.run_seeded(500, 9);
        let dropped = missing.run_seeded(500, 9);
        // Inline dropping during simulation equals masking after the fact.
        assert_eq!(dropped, mask_missing_rows(&full, 9, 0.5, 0));
        // Masking never sets a bit, and drops roughly half the set ones.
        let count = |obs: &PathObservations| -> usize {
            obs.snapshots()
                .map(|row| row.iter().filter(|&&c| c).count())
                .sum()
        };
        let (full_count, dropped_count) = (count(&full), count(&dropped));
        assert!(dropped_count < full_count);
        for (full_row, dropped_row) in full.snapshots().zip(dropped.snapshots()) {
            for (f, d) in full_row.iter().zip(dropped_row.iter()) {
                assert!(*f || !*d, "masking must never invent congestion");
            }
        }
        // Extreme fractions are exact.
        assert_eq!(mask_missing_rows(&full, 9, 0.0, 0), full);
        assert_eq!(count(&mask_missing_rows(&full, 9, 1.0, 0)), 0);
    }

    #[test]
    fn churn_changes_only_the_tail_of_the_trial() {
        let (inst, model) = fig1a_setup();
        let config = SimulationConfig {
            transmission: TransmissionModel::Exact,
            ..SimulationConfig::default()
        };
        let plain = Simulator::new(&inst, &model, config).unwrap();
        let churned = PerturbedSimulator::new(
            &inst,
            &model,
            config,
            PerturbationConfig {
                routing_churn: Some(RoutingChurnConfig {
                    path_fraction: 1.0,
                    at_fraction: 0.5,
                }),
                ..PerturbationConfig::none()
            },
        )
        .unwrap();
        let base = plain.run_seeded(400, 21);
        let flapped = churned.run_seeded(400, 21);
        // Before the churn point the traces agree bit-exactly (exact
        // transmission means the RNG streams cannot diverge either).
        for t in 0..200 {
            assert_eq!(base.snapshot(t), flapped.snapshot(t), "snapshot {t}");
        }
        // After the churn point they must differ somewhere.
        assert!(
            (200..400).any(|t| base.snapshot(t) != flapped.snapshot(t)),
            "full churn left the tail untouched"
        );
    }

    #[test]
    fn row_dropped_is_a_pure_counter_function() {
        // Same arguments, same answer; cells are independent of ordering.
        for snapshot in 0..50 {
            for path in 0..7 {
                assert_eq!(
                    row_dropped(77, snapshot, path, 0.3),
                    row_dropped(77, snapshot, path, 0.3)
                );
            }
        }
        assert!(!row_dropped(77, 3, 1, 0.0));
        assert!(row_dropped(77, 3, 1, 1.0));
        // The drop rate tracks the fraction.
        let hits = (0..10_000)
            .filter(|&i| row_dropped(123, i / 100, i % 100, 0.25))
            .count();
        assert!((hits as f64 / 10_000.0 - 0.25).abs() < 0.03, "{hits}");
    }
}
