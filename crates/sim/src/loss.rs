//! The packet-loss model of the paper's evaluation.
//!
//! Following the loss model of Padmanabhan et al. \[13\] (also used in
//! \[11, 16\]), in every snapshot each link is assigned a packet-loss rate
//! drawn uniformly from `[0, t_l]` if the link is good and from `(t_l, 1]`
//! if it is congested, with `t_l = 0.01` by default.

use rand::{Rng, RngExt};

use crate::config::SimulationConfig;

/// Draws a packet-loss rate for a link with the given congestion status.
pub fn sample_loss_rate(rng: &mut impl Rng, congested: bool, config: &SimulationConfig) -> f64 {
    let tl = config.link_congestion_threshold;
    if congested {
        // Uniform in (t_l, 1].
        tl + (1.0 - tl) * rng.random::<f64>()
    } else {
        // Uniform in [0, t_l].
        tl * rng.random::<f64>()
    }
}

/// End-to-end delivery probability of a path whose links have the given
/// loss rates: every packet must survive every link.
pub fn path_delivery_probability(loss_rates: &[f64]) -> f64 {
    loss_rates.iter().map(|l| 1.0 - l).product()
}

/// End-to-end loss probability of a path (`1 −` delivery probability).
pub fn path_loss_probability(loss_rates: &[f64]) -> f64 {
    1.0 - path_delivery_probability(loss_rates)
}

/// Draws the number of successes of a Binomial(`n`, `p`) variable.
///
/// Small `n` uses direct Bernoulli summation; large `n` uses the normal
/// approximation (clamped and rounded), which is indistinguishable for the
/// probe-count regimes used in the experiments (hundreds to thousands of
/// packets per path).
pub fn sample_binomial(rng: &mut impl Rng, n: usize, p: f64) -> usize {
    if p <= 0.0 {
        return 0;
    }
    if p >= 1.0 {
        return n;
    }
    if n <= 128 {
        return (0..n).filter(|_| rng.random_bool(p)).count();
    }
    let mean = n as f64 * p;
    let variance = n as f64 * p * (1.0 - p);
    if variance < 9.0 {
        // The normal approximation is poor in this regime; fall back to
        // Bernoulli summation over the rarer outcome for efficiency.
        if p <= 0.5 {
            return (0..n).filter(|_| rng.random_bool(p)).count();
        }
        return n - (0..n).filter(|_| rng.random_bool(1.0 - p)).count();
    }
    // Box–Muller standard normal.
    let u1: f64 = rng.random::<f64>().max(f64::MIN_POSITIVE);
    let u2: f64 = rng.random::<f64>();
    let z = (-2.0 * u1.ln()).sqrt() * (2.0 * std::f64::consts::PI * u2).cos();
    let sample = mean + z * variance.sqrt();
    sample.round().clamp(0.0, n as f64) as usize
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn loss_rates_fall_in_the_prescribed_ranges() {
        let mut rng = StdRng::seed_from_u64(1);
        let config = SimulationConfig::default();
        for _ in 0..2000 {
            let good = sample_loss_rate(&mut rng, false, &config);
            assert!((0.0..=0.01).contains(&good), "good loss {good}");
            let congested = sample_loss_rate(&mut rng, true, &config);
            assert!(
                congested > 0.01 && congested <= 1.0,
                "congested loss {congested}"
            );
        }
    }

    #[test]
    fn loss_ranges_follow_the_configured_threshold() {
        let mut rng = StdRng::seed_from_u64(2);
        let config = SimulationConfig {
            link_congestion_threshold: 0.2,
            ..SimulationConfig::default()
        };
        for _ in 0..500 {
            assert!(sample_loss_rate(&mut rng, false, &config) <= 0.2);
            assert!(sample_loss_rate(&mut rng, true, &config) > 0.2);
        }
    }

    #[test]
    fn path_delivery_probability_multiplies_link_survival() {
        assert!((path_delivery_probability(&[0.0, 0.0]) - 1.0).abs() < 1e-12);
        assert!((path_delivery_probability(&[0.5]) - 0.5).abs() < 1e-12);
        assert!((path_delivery_probability(&[0.5, 0.5]) - 0.25).abs() < 1e-12);
        assert!((path_loss_probability(&[0.1, 0.1]) - (1.0 - 0.81)).abs() < 1e-12);
        // Empty path: everything delivered.
        assert_eq!(path_delivery_probability(&[]), 1.0);
    }

    #[test]
    fn binomial_edge_cases() {
        let mut rng = StdRng::seed_from_u64(3);
        assert_eq!(sample_binomial(&mut rng, 100, 0.0), 0);
        assert_eq!(sample_binomial(&mut rng, 100, 1.0), 100);
        assert_eq!(sample_binomial(&mut rng, 0, 0.5), 0);
        for _ in 0..100 {
            let s = sample_binomial(&mut rng, 10, 0.5);
            assert!(s <= 10);
        }
    }

    #[test]
    fn binomial_mean_is_close_to_np_small_n() {
        let mut rng = StdRng::seed_from_u64(4);
        let trials = 4000;
        let sum: usize = (0..trials)
            .map(|_| sample_binomial(&mut rng, 50, 0.3))
            .sum();
        let mean = sum as f64 / trials as f64;
        assert!((mean - 15.0).abs() < 0.5, "mean {mean}");
    }

    #[test]
    fn binomial_mean_is_close_to_np_large_n() {
        let mut rng = StdRng::seed_from_u64(5);
        let trials = 2000;
        let n = 1000;
        let p = 0.95;
        let sum: usize = (0..trials).map(|_| sample_binomial(&mut rng, n, p)).sum();
        let mean = sum as f64 / trials as f64;
        assert!((mean - 950.0).abs() < 2.0, "mean {mean}");
        // And all samples are within range.
        for _ in 0..100 {
            assert!(sample_binomial(&mut rng, n, p) <= n);
        }
    }

    #[test]
    fn binomial_low_variance_regime_uses_exact_sampling() {
        let mut rng = StdRng::seed_from_u64(6);
        // n large but p tiny: variance < 9, exercised the Bernoulli branch.
        let trials = 3000;
        let n = 1000;
        let p = 0.002;
        let sum: usize = (0..trials).map(|_| sample_binomial(&mut rng, n, p)).sum();
        let mean = sum as f64 / trials as f64;
        assert!((mean - 2.0).abs() < 0.2, "mean {mean}");
        // Symmetric high-p branch.
        let sum: usize = (0..trials)
            .map(|_| sample_binomial(&mut rng, n, 1.0 - p))
            .sum();
        let mean = sum as f64 / trials as f64;
        assert!((mean - 998.0).abs() < 0.2, "mean {mean}");
    }
}
