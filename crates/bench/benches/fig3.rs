//! Benchmark for the Figure 3 pipeline (ideal conditions, Brite topology).
//!
//! Regenerates the Figure 3 data at smoke scale inside the Criterion
//! harness: one benchmark per congested-link fraction of Figure 3(a)/(b)
//! (inference only, the expensive part of the sweep) plus the full
//! experiment (simulate + infer with both algorithms) behind Figure 3(c)
//! and 3(d). Run `cargo run -p netcorr-eval --release --bin fig3` for the
//! paper-scale numbers.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::time::Duration;

use netcorr_bench::{fixture, Fixture};
use netcorr_eval::figures::TopologyFamily;
use netcorr_eval::metrics::{absolute_errors, potentially_congested_links, ErrorSummary};
use netcorr_eval::scenario::CorrelationLevel;

fn score(fixture: &Fixture) -> (ErrorSummary, ErrorSummary) {
    let links = potentially_congested_links(&fixture.scenario.instance, &fixture.observations);
    let corr = fixture.run_correlation();
    let indep = fixture.run_independence();
    (
        ErrorSummary::from_errors(&absolute_errors(
            &corr,
            &fixture.scenario.true_marginals,
            &links,
        )),
        ErrorSummary::from_errors(&absolute_errors(
            &indep,
            &fixture.scenario.true_marginals,
            &links,
        )),
    )
}

/// Figure 3(a)/(b): inference cost and accuracy per congested-link
/// fraction.
fn fig3_sweep(c: &mut Criterion) {
    let mut group = c.benchmark_group("fig3_sweep_highly_correlated");
    group.sample_size(10);
    group.measurement_time(Duration::from_secs(2));
    group.warm_up_time(Duration::from_millis(500));
    for percent in [5u32, 10, 15, 20, 25] {
        let fraction = percent as f64 / 100.0;
        let fixture = fixture(
            TopologyFamily::Brite,
            fraction,
            CorrelationLevel::HighlyCorrelated,
            0.0,
            0.0,
            100 + percent as u64,
        );
        // Report the regenerated data point alongside the timing.
        let (corr, indep) = score(&fixture);
        println!(
            "fig3ab point: {percent}% congested -> correlation mean {:.4}, independence mean {:.4}",
            corr.mean, indep.mean
        );
        group.bench_with_input(
            BenchmarkId::new("correlation_algorithm", percent),
            &fixture,
            |b, fixture| b.iter(|| fixture.run_correlation()),
        );
        group.bench_with_input(
            BenchmarkId::new("independence_baseline", percent),
            &fixture,
            |b, fixture| b.iter(|| fixture.run_independence()),
        );
    }
    group.finish();
}

/// Figure 3(c)/(d): the 10%-congestion CDF experiments (both correlation
/// levels).
fn fig3_cdf(c: &mut Criterion) {
    let mut group = c.benchmark_group("fig3_cdf_at_10_percent");
    group.sample_size(10);
    group.measurement_time(Duration::from_secs(2));
    group.warm_up_time(Duration::from_millis(500));
    for (name, level) in [
        ("highly_correlated", CorrelationLevel::HighlyCorrelated),
        ("loosely_correlated", CorrelationLevel::LooselyCorrelated),
    ] {
        let fixture = fixture(TopologyFamily::Brite, 0.10, level, 0.0, 0.0, 300);
        let (corr, indep) = score(&fixture);
        println!(
            "fig3cd point ({name}): correlation mean {:.4}, independence mean {:.4}",
            corr.mean, indep.mean
        );
        group.bench_with_input(
            BenchmarkId::new("both_algorithms", name),
            &fixture,
            |b, f| {
                b.iter(|| {
                    let corr = f.run_correlation();
                    let indep = f.run_independence();
                    (corr, indep)
                })
            },
        );
    }
    group.finish();
}

criterion_group!(benches, fig3_sweep, fig3_cdf);
criterion_main!(benches);
