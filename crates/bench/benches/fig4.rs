//! Benchmark for the Figure 4 pipeline (unidentifiable links).
//!
//! One benchmark per (topology family, unidentifiable fraction) cell of
//! Figure 4, at smoke scale. Run
//! `cargo run -p netcorr-eval --release --bin fig4` for the paper-scale
//! numbers.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::time::Duration;

use netcorr_bench::fixture;
use netcorr_eval::figures::TopologyFamily;
use netcorr_eval::scenario::CorrelationLevel;

fn fig4(c: &mut Criterion) {
    let mut group = c.benchmark_group("fig4_unidentifiable");
    group.sample_size(10);
    group.measurement_time(Duration::from_secs(2));
    group.warm_up_time(Duration::from_millis(500));
    for family in [TopologyFamily::Brite, TopologyFamily::PlanetLab] {
        for percent in [25u32, 50] {
            let fixture = fixture(
                family,
                0.10,
                CorrelationLevel::HighlyCorrelated,
                percent as f64 / 100.0,
                0.0,
                400 + percent as u64,
            );
            println!(
                "fig4 cell ({family}, {percent}% unidentifiable): {} unidentifiable links out of {} congested",
                fixture.scenario.unidentifiable_links.len(),
                fixture.scenario.congested_links.len()
            );
            let id = format!("{family}_{percent}pct");
            group.bench_with_input(
                BenchmarkId::new("correlation_algorithm", &id),
                &fixture,
                |b, f| b.iter(|| f.run_correlation()),
            );
            group.bench_with_input(
                BenchmarkId::new("independence_baseline", &id),
                &fixture,
                |b, f| b.iter(|| f.run_independence()),
            );
        }
    }
    group.finish();
}

criterion_group!(benches, fig4);
criterion_main!(benches);
