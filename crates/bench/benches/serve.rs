//! Benchmarks for the online tomography daemon (`netcorr-serve`):
//! request-dispatch latency, snapshot ingest throughput, and warm vs
//! cold re-inference in the live-stream regime.
//!
//! Three groups:
//!
//! * `serve_query` — in-process dispatch of `PROB` / `PROBS` / `STATUS`
//!   request lines through [`netcorr_serve::protocol::execute`], the
//!   exact function the socket sessions call. Queries read the cached
//!   estimate, so this is the daemon's floor latency with the socket
//!   taken out of the picture.
//! * `serve_ingest` — pushing framed v3 observation blocks into the
//!   service (`OBS` handling without the socket).
//! * `serve_reinfer` — the payoff measurement for the warm-start
//!   machinery: over the identical sequence of stream-boundary
//!   right-hand sides (sparse plan, online tolerance), solving each cold
//!   vs chaining each solve from the previous solution, plus the
//!   end-to-end `TomographyService` loop (ingest + warm re-infer per
//!   batch).

use criterion::{criterion_group, criterion_main, Criterion};
use std::time::Duration;

use netcorr_bench::{fixture, serve_reinfer_workload, Fixture, SERVE_HEAD_SNAPSHOTS};
use netcorr_core::AlgorithmConfig;
use netcorr_eval::figures::TopologyFamily;
use netcorr_eval::scenario::CorrelationLevel;
use netcorr_serve::{protocol, TomographyService};

fn bench_fixture() -> Fixture {
    fixture(
        TopologyFamily::PlanetLab,
        0.10,
        CorrelationLevel::HighlyCorrelated,
        0.0,
        0.0,
        7,
    )
}

/// A service with the fixture's observations ingested and inferred —
/// the steady state a query-serving daemon sits in.
fn ready_service(fx: &Fixture) -> TomographyService {
    let mut service = TomographyService::new(&fx.scenario.instance, &AlgorithmConfig::default())
        .expect("service builds");
    service
        .ingest_observations(&fx.observations)
        .expect("fixture observations ingest");
    service.reinfer().expect("inference succeeds");
    service
}

fn query_dispatch(c: &mut Criterion) {
    let fx = bench_fixture();
    let mut service = ready_service(&fx);
    let num_links = service.num_links();

    let mut group = c.benchmark_group("serve_query");
    group.sample_size(10);
    group.measurement_time(Duration::from_secs(2));
    group.warm_up_time(Duration::from_millis(300));
    group.bench_function("prob_one_link", |b| {
        let mut link = 0;
        b.iter(|| {
            let line = format!("PROB {link}");
            link = (link + 1) % num_links;
            let reply = protocol::execute(&mut service, &line, &mut std::io::empty());
            assert!(reply.text.starts_with("OK "));
        })
    });
    group.bench_function("probs_all_links", |b| {
        b.iter(|| {
            let reply = protocol::execute(&mut service, "PROBS", &mut std::io::empty());
            assert!(reply.text.starts_with("OK "));
        })
    });
    group.bench_function("status", |b| {
        b.iter(|| {
            let reply = protocol::execute(&mut service, "STATUS", &mut std::io::empty());
            assert!(reply.text.starts_with("OK "));
        })
    });
    group.finish();
}

fn ingest(c: &mut Criterion) {
    let fx = bench_fixture();
    let mut service = TomographyService::new(&fx.scenario.instance, &AlgorithmConfig::default())
        .expect("service builds");
    let block = fx.observations.to_binary();
    let snapshots = fx.observations.num_snapshots();

    let mut group = c.benchmark_group("serve_ingest");
    group.sample_size(10);
    group.measurement_time(Duration::from_secs(2));
    group.warm_up_time(Duration::from_millis(300));
    group.bench_function(format!("block_{snapshots}_snapshots"), |b| {
        b.iter(|| {
            let ingested = service.ingest_block(&block).expect("block ingests");
            assert_eq!(ingested, snapshots);
        })
    });
    group.finish();
}

fn reinfer(c: &mut Criterion) {
    let fx = bench_fixture();
    let (context, rhs_sequence) = serve_reinfer_workload(&fx);
    let refreshes = rhs_sequence.len();

    let mut group = c.benchmark_group("serve_reinfer");
    group.sample_size(10);
    group.measurement_time(Duration::from_secs(3));
    group.warm_up_time(Duration::from_millis(500));
    group.bench_function(format!("cold_{refreshes}_refreshes"), |b| {
        b.iter(|| {
            for rhs in &rhs_sequence {
                let (estimate, _) = context.reinfer(rhs, None).expect("solves");
                assert!(estimate.diagnostics.residual.is_finite());
            }
        })
    });
    group.bench_function(format!("warm_{refreshes}_refreshes"), |b| {
        b.iter(|| {
            let mut warm: Option<Vec<f64>> = None;
            for rhs in &rhs_sequence {
                let (estimate, x) = context.reinfer(rhs, warm.as_deref()).expect("solves");
                assert!(estimate.diagnostics.residual.is_finite());
                warm = Some(x);
            }
        })
    });
    // The full daemon loop: fresh service, warm-up history, then a
    // re-inference per arriving snapshot — what one stream of the fixture
    // costs end to end (dense default plan, so this also covers the
    // RHS-refresh path).
    group.bench_function("service_loop_end_to_end", |b| {
        b.iter(|| {
            let mut service =
                TomographyService::new(&fx.scenario.instance, &AlgorithmConfig::default())
                    .expect("service builds");
            let total = fx.observations.num_snapshots();
            let head = SERVE_HEAD_SNAPSHOTS.min(total);
            for i in 0..head {
                service
                    .push_snapshot(&fx.observations.snapshot(i))
                    .expect("width matches");
            }
            service.reinfer().expect("inference succeeds");
            for i in head..total {
                service
                    .push_snapshot(&fx.observations.snapshot(i))
                    .expect("width matches");
                service.reinfer().expect("inference succeeds");
            }
        })
    });
    group.finish();
}

criterion_group!(benches, query_dispatch, ingest, reinfer);
criterion_main!(benches);
