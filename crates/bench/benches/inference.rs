//! Benchmarks for the batched inference engine: equation-structure / QR
//! reuse through `InferenceContext`, cold vs warm-started CGLS, and
//! trial-level threading in the experiment runner.
//!
//! Three questions, one group each:
//!
//! * `structure_reuse` — how much of a single trial's inference cost is
//!   observation-independent (structure build + independence selection +
//!   dense factorization) and therefore amortized away by the context?
//! * `cgls` — on the sparse path, what does warm-starting each solve from
//!   the previous trial's solution (in `WARM_CHAIN` chains) save over
//!   cold starts on the same right-hand sides?
//! * `trial_threads` — end-to-end `run_experiment` wall-clock with one
//!   trial worker vs all available workers (shards pinned to 1 so only
//!   trial-level parallelism is measured).

use criterion::{criterion_group, criterion_main, Criterion};
use std::time::Duration;

use netcorr_bench::{fixture, Fixture, BENCH_SNAPSHOTS};
use netcorr_core::{AlgorithmConfig, CorrelationAlgorithm, InferenceContext};
use netcorr_eval::figures::TopologyFamily;
use netcorr_eval::runner::{run_experiment, ExperimentConfig};
use netcorr_eval::scenario::{CorrelationLevel, ScenarioConfig};
use netcorr_measure::{PathObservations, ProbabilityEstimator};
use netcorr_sim::{SimulationConfig, Simulator};

/// Number of per-trial observation sets in the batched benchmarks.
const TRIALS: usize = 16;

fn bench_fixture() -> Fixture {
    fixture(
        TopologyFamily::PlanetLab,
        0.10,
        CorrelationLevel::HighlyCorrelated,
        0.0,
        0.0,
        7,
    )
}

/// Simulates `trials` independent observation sets on the fixture's
/// scenario (fresh seed per set, same instance — the multi-trial shape).
fn observation_batch(fx: &Fixture, trials: usize) -> Vec<PathObservations> {
    let simulator = Simulator::new(
        &fx.scenario.instance,
        &fx.scenario.model,
        SimulationConfig::default(),
    )
    .expect("valid simulator");
    (0..trials)
        .map(|i| simulator.run_seeded(BENCH_SNAPSHOTS, 0x5eed + i as u64))
        .collect()
}

fn structure_reuse(c: &mut Criterion) {
    let fx = bench_fixture();
    let instance = &fx.scenario.instance;
    let config = AlgorithmConfig::default();
    let context = InferenceContext::for_correlation(instance, config).expect("context builds");

    let mut group = c.benchmark_group("inference_structure_reuse");
    group.sample_size(10);
    group.measurement_time(Duration::from_secs(3));
    group.warm_up_time(Duration::from_millis(500));
    group.bench_function("structure_rebuilt", |b| {
        b.iter(|| {
            CorrelationAlgorithm::with_config(instance, config)
                .infer(&fx.observations)
                .expect("inference succeeds")
        })
    });
    group.bench_function("structure_cached", |b| {
        b.iter(|| context.infer(&fx.observations).expect("inference succeeds"))
    });
    group.bench_function("context_build", |b| {
        b.iter(|| InferenceContext::for_correlation(instance, config).expect("context builds"))
    });
    group.finish();
}

fn cgls(c: &mut Criterion) {
    let fx = bench_fixture();
    let mut config = AlgorithmConfig::default();
    // Force every solve through sparse CGLS.
    config.solver.dense_threshold = 0;
    let context =
        InferenceContext::for_correlation(&fx.scenario.instance, config).expect("context builds");
    let batch = observation_batch(&fx, TRIALS);
    let rhs_batch: Vec<Vec<f64>> = batch
        .iter()
        .map(|obs| {
            let estimator = ProbabilityEstimator::new(obs).expect("non-empty observations");
            context.rhs(&estimator).expect("rhs assembles")
        })
        .collect();

    let mut group = c.benchmark_group("inference_cgls");
    group.sample_size(10);
    group.measurement_time(Duration::from_secs(3));
    group.warm_up_time(Duration::from_millis(500));
    group.bench_function("cold", |b| {
        b.iter(|| {
            for rhs in &rhs_batch {
                context.solve(rhs).expect("solve succeeds");
            }
        })
    });
    group.bench_function("warm", |b| {
        b.iter(|| context.solve_batch(&rhs_batch).expect("solve succeeds"))
    });
    group.finish();
}

fn trial_threads(c: &mut Criterion) {
    let base = netcorr_bench::bench_instance(TopologyFamily::PlanetLab, 7);
    let scenario_config = ScenarioConfig {
        congested_fraction: 0.10,
        correlation_level: CorrelationLevel::HighlyCorrelated,
        ..ScenarioConfig::default()
    };
    let config = ExperimentConfig {
        snapshots: BENCH_SNAPSHOTS,
        trials: 8,
        base_seed: 11,
        parallel: true,
        trial_threads: 1,
        // Pin within-trial sharding so only trial-level parallelism moves.
        shards: 1,
        ..ExperimentConfig::default()
    };

    let mut group = c.benchmark_group("inference_trial_threads");
    group.sample_size(10);
    group.measurement_time(Duration::from_secs(5));
    group.warm_up_time(Duration::from_millis(500));
    group.bench_function("threads_1", |b| {
        b.iter(|| run_experiment(&base, &scenario_config, &config).expect("experiment runs"))
    });
    let all = ExperimentConfig {
        trial_threads: 0, // one worker per trial
        ..config
    };
    group.bench_function("threads_all", |b| {
        b.iter(|| run_experiment(&base, &scenario_config, &all).expect("experiment runs"))
    });
    group.finish();
}

criterion_group!(benches, structure_reuse, cgls, trial_threads);
criterion_main!(benches);
