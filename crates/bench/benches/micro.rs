//! Micro-benchmarks for the substrates: topology generation, simulation
//! throughput, and the numerical solvers.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::time::Duration;

use netcorr_bench::{bench_instance, fixture};
use netcorr_eval::figures::TopologyFamily;
use netcorr_eval::persist;
use netcorr_eval::scenario::CorrelationLevel;
use netcorr_linalg::{cgls, min_l1_norm_solution, solve_least_squares, Matrix, SparseMatrix};
use netcorr_measure::bitset::simd;
use netcorr_measure::reference::{ScalarEstimator, ScalarObservations};
use netcorr_measure::{PathObservations, ProbabilityEstimator, StreamingEstimator};
use netcorr_sim::{SimulationConfig, Simulator, TransmissionModel};
use netcorr_topology::generators::{brite, planetlab};
use netcorr_topology::path::PathId;
use rand::RngExt;

fn topology_generation(c: &mut Criterion) {
    let mut group = c.benchmark_group("topology_generation");
    group.sample_size(20);
    group.measurement_time(Duration::from_secs(2));
    group.warm_up_time(Duration::from_millis(500));
    group.bench_function("brite_small", |b| {
        b.iter(|| {
            brite::generate(&brite::BriteConfig::small(), &mut StdRng::seed_from_u64(1))
                .expect("generation succeeds")
        })
    });
    group.bench_function("planetlab_small", |b| {
        b.iter(|| {
            planetlab::generate(
                &planetlab::PlanetLabConfig::small(),
                &mut StdRng::seed_from_u64(1),
            )
            .expect("generation succeeds")
        })
    });
    group.finish();
}

fn simulation_throughput(c: &mut Criterion) {
    let fixture = fixture(
        TopologyFamily::PlanetLab,
        0.10,
        CorrelationLevel::HighlyCorrelated,
        0.0,
        0.0,
        7,
    );
    let mut group = c.benchmark_group("simulation_100_snapshots");
    group.sample_size(10);
    group.measurement_time(Duration::from_secs(2));
    group.warm_up_time(Duration::from_millis(500));
    for (name, transmission) in [
        ("binomial", TransmissionModel::Binomial),
        ("exact", TransmissionModel::Exact),
        ("per_packet", TransmissionModel::PerPacket),
    ] {
        let config = SimulationConfig {
            transmission,
            packets_per_path: 200,
            ..SimulationConfig::default()
        };
        let simulator = Simulator::new(&fixture.scenario.instance, &fixture.scenario.model, config)
            .expect("valid simulator");
        group.bench_function(BenchmarkId::new("transmission", name), |b| {
            b.iter(|| simulator.run(100, &mut StdRng::seed_from_u64(3)))
        });
    }
    group.finish();
}

fn solvers(c: &mut Criterion) {
    let mut group = c.benchmark_group("solvers");
    group.sample_size(20);
    group.measurement_time(Duration::from_secs(2));
    group.warm_up_time(Duration::from_millis(500));

    // Dense least squares on a 120 x 80 incidence-like system.
    let rows = 120;
    let cols = 80;
    let dense = Matrix::from_fn(rows, cols, |i, j| {
        if (i * 7 + j * 13) % 11 < 3 {
            1.0
        } else {
            0.0
        }
    });
    let x_true: Vec<f64> = (0..cols).map(|i| -((i % 9) as f64) / 20.0).collect();
    let b = dense.matvec(&x_true).unwrap();
    group.bench_function("dense_least_squares_120x80", |bench| {
        bench.iter(|| solve_least_squares(&dense, &b).expect("solve succeeds"))
    });

    // Sparse CGLS on a 600 x 400 system.
    let mut sparse = SparseMatrix::new(400);
    let mut state = 99u64;
    let mut next = || {
        state = state
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
        (state >> 33) as usize
    };
    for _ in 0..600 {
        let len = 4 + next() % 6;
        let cols: Vec<usize> = (0..len).map(|_| next() % 400).collect();
        sparse.push_indicator_row(&cols).unwrap();
    }
    let x_true: Vec<f64> = (0..400).map(|i| -((i % 7) as f64) / 15.0).collect();
    let rhs = sparse.matvec(&x_true).unwrap();
    group.bench_function("cgls_600x400", |bench| {
        bench.iter(|| cgls(&sparse, &rhs, 1e-8, 2000, 1e-10).expect("cgls succeeds"))
    });

    // Minimum-L1 LP on an under-determined 20 x 40 system.
    let wide = Matrix::from_fn(20, 40, |i, j| if (i + 3 * j) % 7 < 2 { 1.0 } else { 0.0 });
    let x_sparse: Vec<f64> = (0..40)
        .map(|i| if i % 9 == 0 { -0.4 } else { 0.0 })
        .collect();
    let b_wide = wide.matvec(&x_sparse).unwrap();
    group.bench_function("min_l1_lp_20x40", |bench| {
        bench.iter(|| min_l1_norm_solution(&wide, &b_wide).expect("lp succeeds"))
    });
    group.finish();
}

/// Pair-query, exact-state and load-tier estimator benchmarks: the
/// bit-packed columnar estimator against the scalar reference, on a
/// PlanetLab-class observation matrix (1500 paths × 4096 snapshots). The
/// pair set is every intersecting pair of a hub-structured path set (150
/// shared links × 10 paths each → 6750 pairs), mirroring how the
/// equation builder enumerates candidates per shared link. The load
/// benchmarks persist the same matrix as a v3 file and compare the
/// zero-copy mapped load (`persist::map_observations` — header
/// validation only, no word copy) against the heap-copying loader
/// (`persist::read_observations`). The committed `BENCH_estimator.json`
/// baseline tracks these numbers across PRs.
fn estimator_queries(c: &mut Criterion) {
    const PATHS: usize = 1500;
    const SNAPSHOTS: usize = 4096;
    const HUBS: usize = 150;

    let mut rng = StdRng::seed_from_u64(0xc01);
    let mut packed = PathObservations::with_capacity(PATHS, SNAPSHOTS);
    let mut row = vec![false; PATHS];
    for _ in 0..SNAPSHOTS {
        for cell in row.iter_mut() {
            *cell = rng.random_bool(0.2);
        }
        packed.record_snapshot(&row).expect("width matches");
    }
    let scalar = ScalarObservations::from_packed(&packed);
    let packed_est = ProbabilityEstimator::new(&packed).expect("non-empty");
    let scalar_est = ScalarEstimator::new(&scalar).expect("non-empty");

    // All intersecting pairs: paths sharing one of the 150 hub links.
    let per_hub = PATHS / HUBS;
    let mut pairs = Vec::new();
    for hub in 0..HUBS {
        let base = hub * per_hub;
        for a in 0..per_hub {
            for b in a + 1..per_hub {
                pairs.push((PathId(base + a), PathId(base + b)));
            }
        }
    }
    // An exact-state target pattern observed at least once.
    let target: std::collections::BTreeSet<PathId> =
        packed.congested_paths(0).into_iter().collect();

    // Streaming estimator with every pair registered and the full
    // snapshot stream pushed: registered-pair queries are O(1) counter
    // reads, so this measures the constant-time query floor.
    let mut streaming = StreamingEstimator::with_capacity(PATHS, SNAPSHOTS);
    let handles = streaming.register_pairs(&pairs).expect("valid pairs");
    for snapshot in packed.snapshots() {
        streaming.push_snapshot(&snapshot).expect("width matches");
    }

    let mut group = c.benchmark_group("estimator");
    group.sample_size(10);
    group.measurement_time(Duration::from_secs(3));
    group.warm_up_time(Duration::from_millis(500));
    group.bench_function(BenchmarkId::new("pair_queries_packed", pairs.len()), |b| {
        b.iter(|| packed_est.log_prob_pairs_good(&pairs).expect("valid pairs"))
    });
    group.bench_function(
        BenchmarkId::new("pair_queries_portable", pairs.len()),
        |b| {
            // The portable (non-SIMD) kernel tier on the same packed
            // lanes, to isolate the AVX2 dispatch win.
            let lanes = packed.lanes();
            let tail = lanes.last_word_mask();
            b.iter(|| {
                pairs
                    .iter()
                    .map(|&(x, y)| {
                        simd::pair_good_count_portable(
                            lanes.lane(x.index()),
                            lanes.lane(y.index()),
                            tail,
                        )
                    })
                    .sum::<usize>()
            })
        },
    );
    group.bench_function(
        BenchmarkId::new("pair_queries_streaming", pairs.len()),
        |b| {
            b.iter(|| {
                streaming
                    .log_prob_pairs_good_at(&handles)
                    .expect("registered pairs")
            })
        },
    );
    // The zero-copy memory tier: the same matrix persisted as a v3 file,
    // loaded either by mapping it in place or by copying it onto the
    // heap, then queried through the borrowed view.
    let file =
        std::env::temp_dir().join(format!("netcorr_bench_load_{}.ncobs3", std::process::id()));
    persist::write_observations_binary(&file, &packed).expect("workload persists");
    group.bench_function("load_zero_copy_mmap", |b| {
        b.iter(|| {
            let mapped = persist::map_observations(&file).expect("mapped load");
            assert_eq!(mapped.num_snapshots(), SNAPSHOTS);
            mapped
        })
    });
    group.bench_function("load_heap_copy", |b| {
        b.iter(|| {
            let owned = persist::read_observations(&file).expect("heap load");
            assert_eq!(owned.num_snapshots(), SNAPSHOTS);
            owned
        })
    });
    let mapped = persist::map_observations(&file).expect("mapped load");
    group.bench_function(BenchmarkId::new("pair_queries_mapped", pairs.len()), |b| {
        b.iter(|| {
            mapped
                .view()
                .log_prob_pairs_good(&pairs)
                .expect("valid pairs")
        })
    });
    group.bench_function(BenchmarkId::new("pair_queries_scalar", pairs.len()), |b| {
        b.iter(|| {
            pairs
                .iter()
                .map(|&(x, y)| scalar_est.log_prob_paths_good(&[x, y]).expect("valid"))
                .sum::<f64>()
        })
    });
    group.bench_function("exact_state_packed", |b| {
        b.iter(|| packed_est.prob_exactly_congested(&target).expect("valid"))
    });
    group.bench_function("exact_state_scalar", |b| {
        b.iter(|| scalar_est.prob_exactly_congested(&target).expect("valid"))
    });
    group.bench_function("all_good_packed", |b| {
        b.iter(|| packed_est.prob_all_paths_good())
    });
    group.bench_function("all_good_scalar", |b| {
        b.iter(|| scalar_est.prob_all_paths_good())
    });
    group.finish();
    drop(mapped);
    std::fs::remove_file(&file).ok();
}

fn instance_statistics(c: &mut Criterion) {
    // Not strictly a benchmark target of the paper, but useful to watch:
    // coverage queries are on the hot path of the identifiability check and
    // the theorem algorithm.
    let instance = bench_instance(TopologyFamily::PlanetLab, 11);
    let links: Vec<_> = instance.topology.link_ids().collect();
    let mut group = c.benchmark_group("coverage_queries");
    group.sample_size(30);
    group.measurement_time(Duration::from_secs(2));
    group.warm_up_time(Duration::from_millis(500));
    group.bench_function("coverage_of_every_link", |b| {
        b.iter(|| {
            links
                .iter()
                .map(|&l| instance.paths.coverage(&[l]).len())
                .sum::<usize>()
        })
    });
    group.finish();
}

criterion_group!(
    benches,
    topology_generation,
    simulation_throughput,
    solvers,
    estimator_queries,
    instance_statistics
);
criterion_main!(benches);
