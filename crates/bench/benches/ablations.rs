//! Ablation benchmarks for the design choices called out in DESIGN.md:
//!
//! * **A1 — path-pair equations on/off**: how much accuracy the pair
//!   equations buy the correlation algorithm (Section 4 forms them
//!   precisely to reach `N1 + N2 ≈ |E|`).
//! * **A2 — minimum-L1 (dense exact) vs. regularised CGLS (sparse)** on the
//!   same under-determined system.
//! * **A3 — merging transformation on/off** for an unidentifiable topology.
//! * **A4 — theorem algorithm vs. practical algorithm** runtime growth with
//!   the size of the correlation set (the reason the practical algorithm
//!   exists).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::time::Duration;

use netcorr_bench::fixture;
use netcorr_core::{AlgorithmConfig, CorrelationAlgorithm, SolverConfig, TheoremAlgorithm};
use netcorr_eval::figures::TopologyFamily;
use netcorr_eval::metrics::{absolute_errors, potentially_congested_links, ErrorSummary};
use netcorr_eval::scenario::CorrelationLevel;
use netcorr_sim::{CongestionModelBuilder, SimulationConfig, Simulator};
use netcorr_topology::correlation::CorrelationPartition;
use netcorr_topology::graph::{LinkId, Topology};
use netcorr_topology::merge::merge_indistinguishable;
use netcorr_topology::path::PathSet;
use netcorr_topology::toy;
use netcorr_topology::TopologyInstance;

/// A1: pair equations on/off.
fn ablation_pairs(c: &mut Criterion) {
    let fixture = fixture(
        TopologyFamily::Brite,
        0.10,
        CorrelationLevel::HighlyCorrelated,
        0.0,
        0.0,
        900,
    );
    let links = potentially_congested_links(&fixture.scenario.instance, &fixture.observations);
    let mut group = c.benchmark_group("ablation_pair_equations");
    group.sample_size(10);
    group.measurement_time(Duration::from_secs(2));
    group.warm_up_time(Duration::from_millis(500));
    for (name, use_pairs) in [("with_pairs", true), ("without_pairs", false)] {
        let mut config = AlgorithmConfig::default();
        config.equations.use_pairs = use_pairs;
        let estimate = CorrelationAlgorithm::with_config(&fixture.scenario.instance, config)
            .infer(&fixture.observations)
            .expect("inference succeeds");
        let summary = ErrorSummary::from_errors(&absolute_errors(
            &estimate,
            &fixture.scenario.true_marginals,
            &links,
        ));
        println!(
            "A1 {name}: N1={} N2={} mean error {:.4}",
            estimate.diagnostics.num_single_path_equations,
            estimate.diagnostics.num_pair_equations,
            summary.mean
        );
        group.bench_function(BenchmarkId::new("correlation_algorithm", name), |b| {
            b.iter(|| {
                CorrelationAlgorithm::with_config(&fixture.scenario.instance, config)
                    .infer(&fixture.observations)
                    .expect("inference succeeds")
            })
        });
    }
    group.finish();
}

/// A2: exact minimum-L1 solve vs. regularised sparse CGLS on the same
/// (under-determined) measurement system.
fn ablation_solver(c: &mut Criterion) {
    let fixture = fixture(
        TopologyFamily::PlanetLab,
        0.10,
        CorrelationLevel::HighlyCorrelated,
        0.0,
        0.0,
        901,
    );
    let mut group = c.benchmark_group("ablation_solver_path");
    group.sample_size(10);
    group.measurement_time(Duration::from_secs(2));
    group.warm_up_time(Duration::from_millis(500));
    for (name, dense_threshold) in [("dense_exact_l1", usize::MAX), ("sparse_cgls", 0usize)] {
        let config = AlgorithmConfig {
            solver: SolverConfig {
                dense_threshold,
                ..SolverConfig::default()
            },
            ..AlgorithmConfig::default()
        };
        let estimate = CorrelationAlgorithm::with_config(&fixture.scenario.instance, config)
            .infer(&fixture.observations)
            .expect("inference succeeds");
        println!(
            "A2 {name}: solver {:?}, residual {:.5}",
            estimate.diagnostics.solver, estimate.diagnostics.residual
        );
        group.bench_function(BenchmarkId::new("correlation_algorithm", name), |b| {
            b.iter(|| {
                CorrelationAlgorithm::with_config(&fixture.scenario.instance, config)
                    .infer(&fixture.observations)
                    .expect("inference succeeds")
            })
        });
    }
    group.finish();
}

/// A3: merging transformation on/off for the unidentifiable Figure 1(b)
/// topology (accuracy is meaningful only on the merged graph, but the cost
/// of the transformation itself is what is measured here).
fn ablation_merge(c: &mut Criterion) {
    let instance = toy::figure_1b();
    let mut group = c.benchmark_group("ablation_merge_transformation");
    group.sample_size(20);
    group.measurement_time(Duration::from_secs(2));
    group.warm_up_time(Duration::from_millis(500));
    group.bench_function("merge_figure_1b", |b| {
        b.iter(|| merge_indistinguishable(&instance).expect("merging succeeds"))
    });
    // A larger unidentifiable chain to show the growth.
    let chain = {
        let mut topology = Topology::new();
        let nodes = topology.add_nodes(12);
        let mut links = Vec::new();
        for window in nodes.windows(2) {
            links.push(topology.add_link(window[0], window[1]).unwrap());
        }
        let paths = PathSet::new(&topology, vec![links.clone()]).unwrap();
        let correlation = CorrelationPartition::single_set(links.len());
        TopologyInstance::new(topology, paths, correlation).unwrap()
    };
    group.bench_function("merge_chain_of_11_links", |b| {
        b.iter(|| merge_indistinguishable(&chain).expect("merging succeeds"))
    });
    group.finish();
}

/// A4: exact theorem algorithm vs. practical algorithm as the correlation
/// set grows (the theorem algorithm's cost explodes with the number of
/// correlation subsets).
fn ablation_theorem(c: &mut Criterion) {
    let mut group = c.benchmark_group("ablation_theorem_vs_practical");
    group.sample_size(10);
    group.measurement_time(Duration::from_secs(2));
    group.warm_up_time(Duration::from_millis(500));
    for lan_size in [2usize, 4, 6] {
        // A star LAN: `lan_size` correlated links behind one hidden switch,
        // measured from two vantage hosts so every correlation subset
        // covers a distinct set of paths (Assumption 4 holds).
        let mut topology = Topology::new();
        let hub = topology.add_node("hub");
        let mut lan_links = Vec::new();
        for i in 0..lan_size {
            let dest = topology.add_node(format!("d{i}"));
            lan_links.push(topology.add_link(hub, dest).unwrap());
        }
        let mut path_links = Vec::new();
        for h in 0..2 {
            let host = topology.add_node(format!("h{h}"));
            let access = topology.add_link(host, hub).unwrap();
            for &lan in &lan_links {
                path_links.push(vec![access, lan]);
            }
        }
        let paths = PathSet::new(&topology, path_links).unwrap();
        let mut sets: Vec<Vec<LinkId>> = vec![lan_links.clone()];
        for link in topology.link_ids() {
            if !lan_links.contains(&link) {
                sets.push(vec![link]);
            }
        }
        let correlation = CorrelationPartition::from_sets(topology.num_links(), sets).unwrap();
        let instance = TopologyInstance::new(topology, paths, correlation).unwrap();
        let model = CongestionModelBuilder::new(&instance.correlation)
            .joint_group(&lan_links, 0.3)
            .build()
            .unwrap();
        let simulator = Simulator::new(&instance, &model, SimulationConfig::default()).unwrap();
        let observations = simulator.run(400, &mut StdRng::seed_from_u64(lan_size as u64));

        group.bench_with_input(
            BenchmarkId::new("theorem_algorithm", lan_size),
            &lan_size,
            |b, _| {
                b.iter(|| {
                    TheoremAlgorithm::new(&instance)
                        .infer(&observations)
                        .expect("theorem algorithm succeeds")
                })
            },
        );
        group.bench_with_input(
            BenchmarkId::new("practical_algorithm", lan_size),
            &lan_size,
            |b, _| {
                b.iter(|| {
                    CorrelationAlgorithm::new(&instance)
                        .infer(&observations)
                        .expect("practical algorithm succeeds")
                })
            },
        );
    }
    group.finish();
}

criterion_group!(
    benches,
    ablation_pairs,
    ablation_solver,
    ablation_merge,
    ablation_theorem
);
criterion_main!(benches);
