//! Shared fixtures for the netcorr benchmarks.
//!
//! Every Criterion benchmark in this crate works on *smoke-scale*
//! topologies so the full benchmark suite runs in minutes; the paper-scale
//! numbers reported in `EXPERIMENTS.md` come from the `netcorr-eval`
//! binaries (`fig3`, `fig4`, `fig5`, `all_experiments`) run with
//! `--scale paper`.

use rand::rngs::StdRng;
use rand::SeedableRng;

use netcorr_core::{
    AlgorithmConfig, CorrelationAlgorithm, IncrementalEquationBuilder, IndependenceAlgorithm,
    InferenceContext,
};
use netcorr_eval::figures::{base_instance, Scale, TopologyFamily};
use netcorr_eval::scenario::{
    CongestionScenario, CorrelationLevel, ScenarioBuilder, ScenarioConfig,
};
use netcorr_measure::{PathObservations, StreamingEstimator};
use netcorr_sim::{SimulationConfig, Simulator};
use netcorr_topology::TopologyInstance;

/// Number of snapshots simulated by the benchmark fixtures.
pub const BENCH_SNAPSHOTS: usize = 300;

/// A ready-to-infer benchmark fixture: a scenario plus simulated
/// observations.
pub struct Fixture {
    /// The scenario (instance handed to the algorithms + ground truth).
    pub scenario: CongestionScenario,
    /// Simulated end-to-end observations.
    pub observations: PathObservations,
}

impl Fixture {
    /// Runs the correlation algorithm once on the fixture.
    pub fn run_correlation(&self) -> netcorr_core::TomographyEstimate {
        CorrelationAlgorithm::new(&self.scenario.instance)
            .infer(&self.observations)
            .expect("inference succeeds")
    }

    /// Runs the independence baseline once on the fixture.
    pub fn run_independence(&self) -> netcorr_core::TomographyEstimate {
        IndependenceAlgorithm::new(&self.scenario.instance)
            .infer(&self.observations)
            .expect("inference succeeds")
    }
}

/// Generates a smoke-scale base instance of the given family.
pub fn bench_instance(family: TopologyFamily, seed: u64) -> TopologyInstance {
    base_instance(family, Scale::Smoke, seed).expect("topology generation succeeds")
}

/// Builds a fixture for the given scenario parameters on a smoke-scale
/// topology.
pub fn fixture(
    family: TopologyFamily,
    congested_fraction: f64,
    level: CorrelationLevel,
    unidentifiable_fraction: f64,
    mislabeled_fraction: f64,
    seed: u64,
) -> Fixture {
    let base = bench_instance(family, seed);
    let config = ScenarioConfig {
        congested_fraction,
        correlation_level: level,
        unidentifiable_fraction,
        mislabeled_fraction,
        ..ScenarioConfig::default()
    };
    let scenario = ScenarioBuilder::new(config)
        .expect("valid scenario config")
        .build(&base, &mut StdRng::seed_from_u64(seed.wrapping_add(1)))
        .expect("scenario can be instantiated");
    let simulator = Simulator::new(
        &scenario.instance,
        &scenario.model,
        SimulationConfig::default(),
    )
    .expect("valid simulator");
    let observations = simulator.run(BENCH_SNAPSHOTS, &mut StdRng::seed_from_u64(seed ^ 0xbeef));
    Fixture {
        scenario,
        observations,
    }
}

/// Warm-up history of the serve (daemon) re-inference workload: this many
/// fixture snapshots are accumulated before the first refresh, so the
/// refresh sequence sits in the daemon's steady state (each new snapshot
/// moves the estimates by well under a percent).
pub const SERVE_HEAD_SNAPSHOTS: usize = 250;

/// The CGLS tolerance of the online re-inference workload. Looser than
/// the offline default (1e-12): a live daemon trades the last digits for
/// latency, and it is exactly the regime where warm starts pay off
/// (consecutive refreshes differ by a single snapshot, so the previous
/// solution is already within a few iterations of the next).
pub const SERVE_CGLS_TOLERANCE: f64 = 1e-5;

/// The live-stream re-inference workload shared by `benches/serve.rs`
/// and the `bench_gate` binary: a **sparse-plan** inference context at
/// the online tolerance, plus the sequence of right-hand sides an
/// [`IncrementalEquationBuilder`] produces in the daemon's steady state —
/// one after [`SERVE_HEAD_SNAPSHOTS`] warm-up snapshots, then one per
/// additional snapshot up to the fixture's [`BENCH_SNAPSHOTS`] (the
/// "re-infer continuously as snapshots arrive" regime).
///
/// Running `context.reinfer(&rhs, None)` over the sequence measures cold
/// re-inference; chaining each solve from the previous solution measures
/// the daemon's warm path on identical right-hand sides. The CGLS
/// iteration counts of both sweeps are deterministic, so
/// `bench_gate` floors the warm advantage on iterations (noise-free)
/// while the criterion bench reports the wall-clock times.
pub fn serve_reinfer_workload(fx: &Fixture) -> (InferenceContext, Vec<Vec<f64>>) {
    let instance = &fx.scenario.instance;
    let mut config = AlgorithmConfig::default();
    config.solver.dense_threshold = 0; // force the sparse CGLS plan
    config.solver.cgls_tolerance = SERVE_CGLS_TOLERANCE;
    let context = InferenceContext::new(instance, &config).expect("context builds");
    let mut streaming = StreamingEstimator::new(instance.num_paths());
    let builder = IncrementalEquationBuilder::new(instance, &mut streaming, &config.equations)
        .expect("builder builds");
    let total = fx.observations.num_snapshots();
    let head = SERVE_HEAD_SNAPSHOTS.min(total);
    for i in 0..head {
        streaming
            .push_snapshot(&fx.observations.snapshot(i))
            .expect("width matches");
    }
    let mut rhs_sequence = vec![builder.rhs(&streaming).expect("snapshots pushed")];
    for i in head..total {
        streaming
            .push_snapshot(&fx.observations.snapshot(i))
            .expect("width matches");
        rhs_sequence.push(builder.rhs(&streaming).expect("snapshots pushed"));
    }
    (context, rhs_sequence)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fixtures_are_buildable_for_both_families() {
        for family in [TopologyFamily::Brite, TopologyFamily::PlanetLab] {
            let fixture = fixture(
                family,
                0.10,
                CorrelationLevel::HighlyCorrelated,
                0.0,
                0.0,
                42,
            );
            assert_eq!(fixture.observations.num_snapshots(), BENCH_SNAPSHOTS);
            let estimate = fixture.run_correlation();
            assert_eq!(estimate.num_links(), fixture.scenario.instance.num_links());
            let baseline = fixture.run_independence();
            assert_eq!(baseline.num_links(), estimate.num_links());
        }
    }

    #[test]
    fn serve_workload_produces_solvable_rhs_sequences() {
        let fx = fixture(
            TopologyFamily::PlanetLab,
            0.10,
            CorrelationLevel::HighlyCorrelated,
            0.0,
            0.0,
            7,
        );
        let (context, rhs_sequence) = serve_reinfer_workload(&fx);
        assert_eq!(
            rhs_sequence.len(),
            1 + BENCH_SNAPSHOTS - SERVE_HEAD_SNAPSHOTS
        );
        for rhs in &rhs_sequence {
            assert_eq!(rhs.len(), context.structure().num_equations());
        }
        // Warm-chained and cold sweeps over the identical refresh sequence:
        // the chained solutions stay close to the cold ones (both satisfy
        // the online tolerance; the gap is solver slack, not drift that
        // compounds), and the warm sweep provably spends fewer CGLS
        // iterations — the effect `bench_gate` floors.
        let mut cold_iterations = 0usize;
        let mut warm_iterations = 0usize;
        let mut warm: Option<Vec<f64>> = None;
        let mut chained = None;
        for rhs in &rhs_sequence {
            let (estimate, x) = context.reinfer(rhs, warm.as_deref()).expect("solves");
            warm_iterations += estimate.diagnostics.iterations;
            warm = Some(x);
            chained = Some(estimate);
        }
        for rhs in &rhs_sequence {
            let (estimate, _) = context.reinfer(rhs, None).expect("solves");
            cold_iterations += estimate.diagnostics.iterations;
        }
        assert!(
            warm_iterations < cold_iterations,
            "warm sweep took {warm_iterations} CGLS iterations, cold {cold_iterations}"
        );
        let (cold, _) = context
            .reinfer(rhs_sequence.last().expect("non-empty"), None)
            .expect("solves");
        let max_diff = chained
            .expect("at least one refresh")
            .probabilities()
            .iter()
            .zip(cold.probabilities())
            .map(|(a, b)| (a - b).abs())
            .fold(0.0_f64, f64::max);
        assert!(max_diff <= 1e-2, "warm drifted {max_diff} from cold");
    }
}
