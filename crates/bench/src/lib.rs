//! Shared fixtures for the netcorr benchmarks.
//!
//! Every Criterion benchmark in this crate works on *smoke-scale*
//! topologies so the full benchmark suite runs in minutes; the paper-scale
//! numbers reported in `EXPERIMENTS.md` come from the `netcorr-eval`
//! binaries (`fig3`, `fig4`, `fig5`, `all_experiments`) run with
//! `--scale paper`.

use rand::rngs::StdRng;
use rand::SeedableRng;

use netcorr_core::{CorrelationAlgorithm, IndependenceAlgorithm};
use netcorr_eval::figures::{base_instance, Scale, TopologyFamily};
use netcorr_eval::scenario::{
    CongestionScenario, CorrelationLevel, ScenarioBuilder, ScenarioConfig,
};
use netcorr_measure::PathObservations;
use netcorr_sim::{SimulationConfig, Simulator};
use netcorr_topology::TopologyInstance;

/// Number of snapshots simulated by the benchmark fixtures.
pub const BENCH_SNAPSHOTS: usize = 300;

/// A ready-to-infer benchmark fixture: a scenario plus simulated
/// observations.
pub struct Fixture {
    /// The scenario (instance handed to the algorithms + ground truth).
    pub scenario: CongestionScenario,
    /// Simulated end-to-end observations.
    pub observations: PathObservations,
}

impl Fixture {
    /// Runs the correlation algorithm once on the fixture.
    pub fn run_correlation(&self) -> netcorr_core::TomographyEstimate {
        CorrelationAlgorithm::new(&self.scenario.instance)
            .infer(&self.observations)
            .expect("inference succeeds")
    }

    /// Runs the independence baseline once on the fixture.
    pub fn run_independence(&self) -> netcorr_core::TomographyEstimate {
        IndependenceAlgorithm::new(&self.scenario.instance)
            .infer(&self.observations)
            .expect("inference succeeds")
    }
}

/// Generates a smoke-scale base instance of the given family.
pub fn bench_instance(family: TopologyFamily, seed: u64) -> TopologyInstance {
    base_instance(family, Scale::Smoke, seed).expect("topology generation succeeds")
}

/// Builds a fixture for the given scenario parameters on a smoke-scale
/// topology.
pub fn fixture(
    family: TopologyFamily,
    congested_fraction: f64,
    level: CorrelationLevel,
    unidentifiable_fraction: f64,
    mislabeled_fraction: f64,
    seed: u64,
) -> Fixture {
    let base = bench_instance(family, seed);
    let config = ScenarioConfig {
        congested_fraction,
        correlation_level: level,
        unidentifiable_fraction,
        mislabeled_fraction,
        ..ScenarioConfig::default()
    };
    let scenario = ScenarioBuilder::new(config)
        .expect("valid scenario config")
        .build(&base, &mut StdRng::seed_from_u64(seed.wrapping_add(1)))
        .expect("scenario can be instantiated");
    let simulator = Simulator::new(
        &scenario.instance,
        &scenario.model,
        SimulationConfig::default(),
    )
    .expect("valid simulator");
    let observations = simulator.run(BENCH_SNAPSHOTS, &mut StdRng::seed_from_u64(seed ^ 0xbeef));
    Fixture {
        scenario,
        observations,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fixtures_are_buildable_for_both_families() {
        for family in [TopologyFamily::Brite, TopologyFamily::PlanetLab] {
            let fixture = fixture(
                family,
                0.10,
                CorrelationLevel::HighlyCorrelated,
                0.0,
                0.0,
                42,
            );
            assert_eq!(fixture.observations.num_snapshots(), BENCH_SNAPSHOTS);
            let estimate = fixture.run_correlation();
            assert_eq!(estimate.num_links(), fixture.scenario.instance.num_links());
            let baseline = fixture.run_independence();
            assert_eq!(baseline.num_links(), estimate.num_links());
        }
    }
}
