//! CI regression gate for the estimator and inference hot paths.
//!
//! Two checks, each re-timed with plain `std::time`; the build **fails**
//! (exit code 1) if either drops below its recorded floor:
//!
//! * **Estimator** — the `estimator` benchmark workload (1500 paths ×
//!   4096 snapshots, 6750 intersecting pairs — the same fixture as
//!   `benches/micro.rs`): packed pair-query speedup over the scalar
//!   reference must stay above `acceptance.pair_queries_speedup_floor`
//!   in `BENCH_estimator.json` (8× by default).
//! * **Zero-copy load** — the same matrix persisted as a v3 file:
//!   mapping it query-ready (`persist::map_observations`, header
//!   validation only) must beat the heap-copying loader
//!   (`persist::read_observations`) by
//!   `acceptance.zero_copy_load_speedup_floor` in
//!   `BENCH_estimator.json` (3× by default). The gate also smoke-checks
//!   the kernel ladder: the portable tier must agree bit-exactly with
//!   the runtime dispatcher, and the active tier is printed for the
//!   record.
//! * **Inference** — the `inference` benchmark fixture (smoke-scale
//!   PlanetLab): per-trial inference through a prebuilt
//!   [`netcorr_core::InferenceContext`] (structure + selection + QR
//!   reused) vs the one-shot algorithm rebuilding everything per call
//!   must stay above `acceptance.structure_reuse_speedup_floor` in
//!   `BENCH_inference.json` (2× by default).
//!
//! * **Serve** — the online-daemon workloads from `benches/serve.rs`:
//!   in-process `PROB` query dispatch through the wire protocol must
//!   stay above `acceptance.query_throughput_floor_per_sec`, and the
//!   warm-started re-inference sweep over the steady-state refresh
//!   right-hand sides must spend fewer CGLS iterations than the cold
//!   sweep by `acceptance.warm_reinfer_speedup_floor` (a deterministic
//!   ratio; the wall-clock sweep times are printed for the record),
//!   both in `BENCH_serve.json`. A third serve check bounds crash
//!   recovery: restarting over a history file torn mid-write (recover
//!   the rotated `.prev` generation, map and attach it) may cost at
//!   most `acceptance.recovery_cold_start_ratio_ceiling` (2x) of a
//!   restart over a clean file.
//!
//! Run from the repository root, in release mode:
//!
//! ```text
//! cargo run --release -p netcorr-bench --bin bench_gate
//! ```
//!
//! The baseline paths can be overridden with the `BENCH_BASELINE`,
//! `BENCH_INFERENCE_BASELINE`, `BENCH_SERVE_BASELINE` and
//! `BENCH_ROBUSTNESS_BASELINE` environment variables.

use std::time::Instant;

use netcorr_bench::{fixture, serve_reinfer_workload};
use netcorr_core::{AlgorithmConfig, CorrelationAlgorithm, InferenceContext};
use netcorr_eval::figures::TopologyFamily;
use netcorr_eval::persist;
use netcorr_eval::robustness::RobustnessConfig;
use netcorr_eval::scenario::CorrelationLevel;
use netcorr_measure::bitset::simd;
use netcorr_measure::reference::{ScalarEstimator, ScalarObservations};
use netcorr_measure::{PathObservations, ProbabilityEstimator, StreamingEstimator};
use netcorr_topology::path::PathId;
use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};

const PATHS: usize = 1500;
const SNAPSHOTS: usize = 4096;
const HUBS: usize = 150;
const DEFAULT_FLOOR: f64 = 8.0;
const DEFAULT_LOAD_FLOOR: f64 = 3.0;
const DEFAULT_INFERENCE_FLOOR: f64 = 2.0;
const DEFAULT_QUERY_FLOOR: f64 = 50_000.0;
const DEFAULT_WARM_FLOOR: f64 = 1.08;
const DEFAULT_RECOVERY_CEILING: f64 = 2.0;

/// Extracts `"<key>": <number>` from the baseline JSON with a plain text
/// scan (the vendored serde_json shim only serializes).
fn read_floor(path: &str, key: &str) -> Option<f64> {
    let text = std::fs::read_to_string(path).ok()?;
    let key = format!("\"{key}\":");
    let start = text.find(&key)? + key.len();
    let rest = text[start..].trim_start();
    let end = rest
        .find(|c: char| !(c.is_ascii_digit() || c == '.' || c == '-'))
        .unwrap_or(rest.len());
    rest[..end].parse().ok()
}

/// Mean seconds per iteration of `f` over `iters` timed runs (after
/// `warmup` discarded runs).
fn time_mean(warmup: usize, iters: usize, mut f: impl FnMut()) -> f64 {
    for _ in 0..warmup {
        f();
    }
    let start = Instant::now();
    for _ in 0..iters {
        f();
    }
    start.elapsed().as_secs_f64() / iters as f64
}

fn main() {
    let baseline =
        std::env::var("BENCH_BASELINE").unwrap_or_else(|_| "BENCH_estimator.json".into());
    let floor = match read_floor(&baseline, "pair_queries_speedup_floor") {
        Some(f) => f,
        None => {
            eprintln!(
                "bench_gate: no pair_queries_speedup_floor in {baseline}, using default \
                 {DEFAULT_FLOOR}x"
            );
            DEFAULT_FLOOR
        }
    };

    // Same workload as the `estimator` criterion group in benches/micro.rs.
    let mut rng = StdRng::seed_from_u64(0xc01);
    let mut packed = PathObservations::with_capacity(PATHS, SNAPSHOTS);
    let mut row = vec![false; PATHS];
    for _ in 0..SNAPSHOTS {
        for cell in row.iter_mut() {
            *cell = rng.random_bool(0.2);
        }
        packed.record_snapshot(&row).expect("width matches");
    }
    let scalar = ScalarObservations::from_packed(&packed);
    let packed_est = ProbabilityEstimator::new(&packed).expect("non-empty");
    let scalar_est = ScalarEstimator::new(&scalar).expect("non-empty");
    let per_hub = PATHS / HUBS;
    let mut pairs = Vec::new();
    for hub in 0..HUBS {
        let base = hub * per_hub;
        for a in 0..per_hub {
            for b in a + 1..per_hub {
                pairs.push((PathId(base + a), PathId(base + b)));
            }
        }
    }
    let mut streaming = StreamingEstimator::with_capacity(PATHS, SNAPSHOTS);
    let handles = streaming.register_pairs(&pairs).expect("valid pairs");
    for snapshot in packed.snapshots() {
        streaming.push_snapshot(&snapshot).expect("width matches");
    }

    let packed_mean = time_mean(3, 20, || {
        let sum: f64 = packed_est
            .log_prob_pairs_good(&pairs)
            .expect("valid pairs")
            .iter()
            .sum();
        assert!(sum.is_finite());
    });
    let streaming_mean = time_mean(3, 20, || {
        let sum: f64 = streaming
            .log_prob_pairs_good_at(&handles)
            .expect("registered pairs")
            .iter()
            .sum();
        assert!(sum.is_finite());
    });
    let scalar_mean = time_mean(1, 3, || {
        let sum: f64 = pairs
            .iter()
            .map(|&(a, b)| scalar_est.log_prob_paths_good(&[a, b]).expect("valid"))
            .sum();
        assert!(sum.is_finite());
    });

    let speedup = scalar_mean / packed_mean;
    println!(
        "bench_gate: pair queries over {} pairs x {SNAPSHOTS} snapshots",
        pairs.len()
    );
    println!("  packed    {:>10.1} us/iter", packed_mean * 1e6);
    println!(
        "  streaming {:>10.1} us/iter (O(1) per registered pair)",
        streaming_mean * 1e6
    );
    println!("  scalar    {:>10.1} us/iter", scalar_mean * 1e6);
    println!("  speedup   {speedup:>10.1}x (floor {floor}x from {baseline})");

    if speedup < floor {
        eprintln!("bench_gate: FAIL — packed/scalar speedup {speedup:.1}x is below {floor}x");
        std::process::exit(1);
    }

    // --- Zero-copy load gate + kernel-ladder smoke check. ---
    println!(
        "bench_gate: active SIMD kernel tier: {}",
        simd::active_tier().as_str()
    );
    // The portable fallback must agree bit-exactly with whatever tier
    // the dispatcher picked on this host — a cheap ladder sanity check
    // before trusting the timed numbers.
    let lanes = packed.lanes();
    let tail = lanes.last_word_mask();
    let (la, lb) = (lanes.lane(0), lanes.lane(1));
    assert_eq!(
        simd::pair_good_count(la, lb, tail),
        simd::pair_good_count_portable(la, lb, tail),
        "portable pair kernel disagrees with the dispatcher"
    );
    let refs: Vec<&[u64]> = (0..8).map(|p| lanes.lane(p)).collect();
    assert_eq!(
        simd::all_good_count(&refs, lanes.used_words(), tail),
        simd::all_good_count_portable(&refs, lanes.used_words(), tail),
        "portable all-good kernel disagrees with the dispatcher"
    );

    let load_floor = match read_floor(&baseline, "zero_copy_load_speedup_floor") {
        Some(f) => f,
        None => {
            eprintln!(
                "bench_gate: no zero_copy_load_speedup_floor in {baseline}, using default \
                 {DEFAULT_LOAD_FLOOR}x"
            );
            DEFAULT_LOAD_FLOOR
        }
    };
    let file = std::env::temp_dir().join(format!(
        "netcorr_bench_gate_load_{}.ncobs3",
        std::process::id()
    ));
    persist::write_observations_binary(&file, &packed).expect("workload persists");
    let mapped_mean = time_mean(3, 50, || {
        let mapped = persist::map_observations(&file).expect("mapped load");
        assert_eq!(mapped.num_snapshots(), SNAPSHOTS);
    });
    let heap_mean = time_mean(3, 20, || {
        let owned = persist::read_observations(&file).expect("heap load");
        assert_eq!(owned.num_snapshots(), SNAPSHOTS);
    });
    // The mapped view must answer bit-identically to the in-memory
    // estimator it replaces.
    let mapped = persist::map_observations(&file).expect("mapped load");
    assert_eq!(
        mapped.view().prob_all_paths_good().expect("non-empty"),
        packed_est.prob_all_paths_good(),
        "mapped view disagrees with the owning estimator"
    );
    drop(mapped);
    std::fs::remove_file(&file).ok();
    let load_speedup = heap_mean / mapped_mean;
    println!(
        "bench_gate: v3 load of {PATHS} paths x {SNAPSHOTS} snapshots ({} KiB)",
        PATHS * SNAPSHOTS.div_ceil(64) * 8 / 1024
    );
    println!("  mapped (zero-copy) {:>9.1} us/load", mapped_mean * 1e6);
    println!("  heap (copying)     {:>9.1} us/load", heap_mean * 1e6);
    println!("  speedup            {load_speedup:>9.1}x (floor {load_floor}x from {baseline})");

    if load_speedup < load_floor {
        eprintln!(
            "bench_gate: FAIL — zero-copy load speedup {load_speedup:.1}x is below {load_floor}x"
        );
        std::process::exit(1);
    }

    // --- Inference gate: structure / factorization reuse. ---
    let inference_baseline =
        std::env::var("BENCH_INFERENCE_BASELINE").unwrap_or_else(|_| "BENCH_inference.json".into());
    let inference_floor = match read_floor(&inference_baseline, "structure_reuse_speedup_floor") {
        Some(f) => f,
        None => {
            eprintln!(
                "bench_gate: no structure_reuse_speedup_floor in {inference_baseline}, using \
                 default {DEFAULT_INFERENCE_FLOOR}x"
            );
            DEFAULT_INFERENCE_FLOOR
        }
    };

    // Same workload as the `inference` criterion benchmark: one trial's
    // inference on a smoke-scale PlanetLab fixture, with and without the
    // observation-independent work (structure, selection, QR) hoisted out.
    let fx = fixture(
        TopologyFamily::PlanetLab,
        0.10,
        CorrelationLevel::HighlyCorrelated,
        0.0,
        0.0,
        7,
    );
    let instance = &fx.scenario.instance;
    let config = AlgorithmConfig::default();
    let context = InferenceContext::for_correlation(instance, config).expect("context builds");
    let rebuilt_mean = time_mean(2, 15, || {
        let estimate = CorrelationAlgorithm::with_config(instance, config)
            .infer(&fx.observations)
            .expect("inference succeeds");
        assert!(estimate.diagnostics.residual.is_finite());
    });
    let cached_mean = time_mean(2, 15, || {
        let estimate = context.infer(&fx.observations).expect("inference succeeds");
        assert!(estimate.diagnostics.residual.is_finite());
    });
    let reuse_speedup = rebuilt_mean / cached_mean;
    println!(
        "bench_gate: per-trial inference on a smoke PlanetLab fixture ({} links, {} equations)",
        context.num_links(),
        context.structure().num_equations()
    );
    println!("  structure rebuilt {:>10.1} us/iter", rebuilt_mean * 1e6);
    println!("  structure cached  {:>10.1} us/iter", cached_mean * 1e6);
    println!(
        "  speedup           {reuse_speedup:>10.1}x (floor {inference_floor}x from \
         {inference_baseline})"
    );

    if reuse_speedup < inference_floor {
        eprintln!(
            "bench_gate: FAIL — structure-reuse speedup {reuse_speedup:.1}x is below \
             {inference_floor}x"
        );
        std::process::exit(1);
    }

    // --- Serve gate: query dispatch throughput + warm re-inference. ---
    let serve_baseline =
        std::env::var("BENCH_SERVE_BASELINE").unwrap_or_else(|_| "BENCH_serve.json".into());
    let query_floor = match read_floor(&serve_baseline, "query_throughput_floor_per_sec") {
        Some(f) => f,
        None => {
            eprintln!(
                "bench_gate: no query_throughput_floor_per_sec in {serve_baseline}, using \
                 default {DEFAULT_QUERY_FLOOR}/s"
            );
            DEFAULT_QUERY_FLOOR
        }
    };
    let warm_floor = match read_floor(&serve_baseline, "warm_reinfer_speedup_floor") {
        Some(f) => f,
        None => {
            eprintln!(
                "bench_gate: no warm_reinfer_speedup_floor in {serve_baseline}, using default \
                 {DEFAULT_WARM_FLOOR}x"
            );
            DEFAULT_WARM_FLOOR
        }
    };

    // Query dispatch: the same in-process `PROB` path as the
    // `serve_query` benchmark — what one daemon session costs per query
    // once the socket is taken out of the picture.
    let mut service = netcorr_serve::TomographyService::new(instance, &AlgorithmConfig::default())
        .expect("service builds");
    service
        .ingest_observations(&fx.observations)
        .expect("fixture observations ingest");
    service.reinfer().expect("inference succeeds");
    let num_links = service.num_links();
    const QUERIES_PER_ITER: usize = 1000;
    let query_mean = time_mean(3, 20, || {
        for q in 0..QUERIES_PER_ITER {
            let line = format!("PROB {}", q % num_links);
            let reply =
                netcorr_serve::protocol::execute(&mut service, &line, &mut std::io::empty());
            assert!(reply.text.starts_with("OK "));
        }
    }) / QUERIES_PER_ITER as f64;
    let query_throughput = 1.0 / query_mean;

    // Warm vs cold re-inference over the identical steady-state refresh
    // sequence (sparse plan, online tolerance) — the daemon's warm chain
    // must actually be cheaper than solving every refresh from zero. The
    // floored metric is the **CGLS iteration ratio**, which is fully
    // deterministic for a given workload (wall-clock tracks it, since
    // every iteration costs the same two matvecs, but timing a ~1.15x
    // effect on a shared CI box would flake); the measured sweep times
    // are printed alongside for the record.
    let (serve_context, rhs_sequence) = serve_reinfer_workload(&fx);
    let mut cold_iterations = 0usize;
    let cold_mean = time_mean(2, 10, || {
        cold_iterations = 0;
        for rhs in &rhs_sequence {
            let (estimate, _) = serve_context.reinfer(rhs, None).expect("solves");
            cold_iterations += estimate.diagnostics.iterations;
        }
    });
    let mut warm_iterations = 0usize;
    let warm_mean = time_mean(2, 10, || {
        warm_iterations = 0;
        let mut warm: Option<Vec<f64>> = None;
        for rhs in &rhs_sequence {
            let (estimate, x) = serve_context.reinfer(rhs, warm.as_deref()).expect("solves");
            warm_iterations += estimate.diagnostics.iterations;
            warm = Some(x);
        }
    });
    let warm_speedup = cold_iterations as f64 / warm_iterations.max(1) as f64;
    println!(
        "bench_gate: serve — query dispatch + warm re-inference ({} links, {} refreshes)",
        num_links,
        rhs_sequence.len()
    );
    println!(
        "  PROB dispatch     {:>10.2} us/query ({:.0} queries/s, floor {query_floor}/s from \
         {serve_baseline})",
        query_mean * 1e6,
        query_throughput
    );
    println!(
        "  cold refresh sweep {:>9.1} us ({cold_iterations} CGLS iterations)",
        cold_mean * 1e6
    );
    println!(
        "  warm refresh sweep {:>9.1} us ({warm_iterations} CGLS iterations)",
        warm_mean * 1e6
    );
    println!(
        "  warm speedup      {warm_speedup:>10.2}x fewer iterations (floor {warm_floor}x from \
         {serve_baseline}; wall-clock {:.2}x)",
        cold_mean / warm_mean
    );

    if query_throughput < query_floor {
        eprintln!(
            "bench_gate: FAIL — query throughput {query_throughput:.0}/s is below {query_floor}/s"
        );
        std::process::exit(1);
    }
    if warm_speedup < warm_floor {
        eprintln!(
            "bench_gate: FAIL — warm re-inference iteration speedup {warm_speedup:.2}x is below \
             {warm_floor}x"
        );
        std::process::exit(1);
    }

    // --- Serve recovery gate: crash recovery vs plain cold start. ---
    // A daemon restarted over a history torn by a crash mid-write
    // (quarantine the torn bytes, promote the rotated `.prev`
    // generation, map and attach the survivor) must cost close to a
    // restart over a clean file — recovery is a rename plus the same
    // map-and-attach, so it may add at most
    // `acceptance.recovery_cold_start_ratio_ceiling` (2x). The
    // filesystem state is re-torn between iterations *outside* the
    // timed region, since recovery repairs it in place.
    let recovery_ceiling = match read_floor(&serve_baseline, "recovery_cold_start_ratio_ceiling") {
        Some(f) => f,
        None => {
            eprintln!(
                "bench_gate: no recovery_cold_start_ratio_ceiling in {serve_baseline}, using \
                 default {DEFAULT_RECOVERY_CEILING}x"
            );
            DEFAULT_RECOVERY_CEILING
        }
    };
    let dir = std::env::temp_dir().join(format!(
        "netcorr_bench_gate_recovery_{}",
        std::process::id()
    ));
    std::fs::remove_dir_all(&dir).ok();
    std::fs::create_dir_all(&dir).expect("temp dir");
    let history = dir.join("history.ncobs3");
    let prev = dir.join("history.ncobs3.prev");
    let torn_quarantine = dir.join("history.ncobs3.torn");
    let split = fx.observations.num_snapshots() / 2;
    let slice = |range: std::ops::Range<usize>| {
        let mut block = PathObservations::new(fx.observations.num_paths());
        for i in range {
            block
                .record_snapshot(&fx.observations.snapshot(i))
                .expect("width matches");
        }
        block
    };
    {
        // Seed the two generations: current = gen 2, `.prev` = gen 1.
        let mut seeder =
            netcorr_serve::TomographyService::new(instance, &AlgorithmConfig::default())
                .expect("service builds");
        seeder.enable_history(&history).expect("history enables");
        seeder
            .ingest_observations(&slice(0..split))
            .expect("first generation ingests");
        seeder
            .ingest_observations(&slice(split..fx.observations.num_snapshots()))
            .expect("second generation ingests");
    }
    let clean_bytes = std::fs::read(&history).expect("sealed history");
    let prev_bytes = std::fs::read(&prev).expect("rotated generation");
    let torn_bytes = &clean_bytes[..clean_bytes.len() * 3 / 5];
    let time_start = |torn: bool, iters: usize| -> f64 {
        let mut total = 0.0;
        for i in 0..iters + 2 {
            std::fs::remove_file(&torn_quarantine).ok();
            std::fs::write(&history, if torn { torn_bytes } else { &clean_bytes }).unwrap();
            std::fs::write(&prev, &prev_bytes).unwrap();
            let start = Instant::now();
            let mut service =
                netcorr_serve::TomographyService::new(instance, &AlgorithmConfig::default())
                    .expect("service builds");
            let reloaded = service.enable_history(&history).expect("startup succeeds");
            let elapsed = start.elapsed().as_secs_f64();
            let status = service.status().history.expect("history enabled");
            if torn {
                assert!(status.recovered, "torn start must recover");
                assert_eq!(reloaded, split, "recovery lands on the acked generation");
            } else {
                assert!(!status.recovered, "clean start must not recover");
            }
            if i >= 2 {
                total += elapsed; // two warm-up starts discarded
            }
        }
        total / iters as f64
    };
    let clean_mean = time_start(false, 20);
    let recovery_mean = time_start(true, 20);
    std::fs::remove_dir_all(&dir).ok();
    let recovery_ratio = recovery_mean / clean_mean;
    println!(
        "bench_gate: serve — crash recovery vs clean cold start ({} snapshots, {} history KiB)",
        fx.observations.num_snapshots(),
        clean_bytes.len() / 1024
    );
    println!("  clean start        {:>9.1} us", clean_mean * 1e6);
    println!("  recovered start    {:>9.1} us", recovery_mean * 1e6);
    println!(
        "  ratio              {recovery_ratio:>9.2}x (ceiling {recovery_ceiling}x from \
         {serve_baseline})"
    );
    if recovery_ratio > recovery_ceiling {
        eprintln!(
            "bench_gate: FAIL — recovery makes cold start {recovery_ratio:.2}x slower, ceiling \
             is {recovery_ceiling}x"
        );
        std::process::exit(1);
    }

    // --- Robustness gate: degradation curves vs committed thresholds. ---
    // Re-runs the seeded model-misspecification matrix (deterministic, a
    // few seconds at smoke scale) and compares every cell against the
    // per-cell thresholds committed in ROBUSTNESS.json, plus the asserted
    // worm scenario. A change that silently degrades accuracy or
    // identifiability under perturbed conditions fails here even when the
    // clean-model tests still pass.
    let robustness_baseline =
        std::env::var("BENCH_ROBUSTNESS_BASELINE").unwrap_or_else(|_| "ROBUSTNESS.json".into());
    match std::fs::read_to_string(&robustness_baseline) {
        Err(err) => {
            eprintln!(
                "bench_gate: robustness baseline {robustness_baseline} unreadable ({err}); \
                 skipping the robustness gate"
            );
        }
        Ok(baseline) => {
            let report = netcorr_eval::robustness::run_matrix(&RobustnessConfig::smoke())
                .expect("robustness matrix runs");
            if let Err(message) = report.worm.check() {
                eprintln!("bench_gate: FAIL — {message}");
                std::process::exit(1);
            }
            let checks = netcorr_eval::robustness::check_against_baseline(&report, &baseline)
                .expect("committed robustness baseline covers the smoke matrix");
            let failures: Vec<_> = checks.iter().filter(|c| !c.passes()).collect();
            println!(
                "bench_gate: robustness — {} cells vs {robustness_baseline}, worm correlation \
                 mean {:.4} <= independence {:.4}",
                checks.len(),
                report.worm.correlation.mean,
                report.worm.independence.mean
            );
            for check in &failures {
                eprintln!(
                    "  REGRESSION {}: mean error {:.4} (max {:.4}), detection rate {:.4} (min \
                     {:.4})",
                    check.cell,
                    check.measured_mean,
                    check.max_mean,
                    check.measured_detection,
                    check.min_detection
                );
            }
            if !failures.is_empty() {
                eprintln!(
                    "bench_gate: FAIL — {}/{} robustness cells regressed past their committed \
                     thresholds",
                    failures.len(),
                    checks.len()
                );
                std::process::exit(1);
            }
        }
    }
    println!("bench_gate: OK");
}
