//! Error types for the topology crate.

use crate::graph::{LinkId, NodeId};
use std::fmt;

/// Errors produced when building or validating topologies, path sets and
/// correlation partitions.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TopologyError {
    /// A node id does not exist in the topology.
    UnknownNode(NodeId),
    /// A link id does not exist in the topology.
    UnknownLink(LinkId),
    /// A link from a node to itself was requested; the model has no
    /// self-loops.
    SelfLoop(NodeId),
    /// A path is empty, which the model forbids.
    EmptyPath,
    /// A path crosses the same link more than once ("a path never crosses a
    /// link more than once", Section 2.1).
    PathHasLoop(LinkId),
    /// Two consecutive links of a path are not adjacent in the graph.
    PathNotContiguous {
        /// The link whose target does not match the next link's source.
        previous: LinkId,
        /// The offending next link.
        next: LinkId,
    },
    /// A link does not participate in any path ("all links participate in
    /// at least one path", Section 2.1).
    UnusedLink(LinkId),
    /// The correlation sets do not form a partition of the link set: a link
    /// is missing or appears in more than one set.
    NotAPartition {
        /// The offending link.
        link: LinkId,
        /// How many correlation sets contain it.
        occurrences: usize,
    },
    /// A correlation set is empty.
    EmptyCorrelationSet,
    /// A subset enumeration was requested on a correlation set that is too
    /// large for exhaustive enumeration.
    CorrelationSetTooLarge {
        /// Size of the offending set.
        size: usize,
        /// Maximum size supported by the requested operation.
        limit: usize,
    },
    /// Generator configuration is invalid (e.g. zero nodes requested).
    InvalidConfig(String),
    /// The graph's internal indexes are inconsistent (programming error).
    Inconsistent(String),
}

impl fmt::Display for TopologyError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TopologyError::UnknownNode(n) => write!(f, "unknown node {n}"),
            TopologyError::UnknownLink(l) => write!(f, "unknown link {l}"),
            TopologyError::SelfLoop(n) => write!(f, "self-loop at node {n} is not allowed"),
            TopologyError::EmptyPath => write!(f, "a path must traverse at least one link"),
            TopologyError::PathHasLoop(l) => {
                write!(f, "path crosses link {l} more than once")
            }
            TopologyError::PathNotContiguous { previous, next } => write!(
                f,
                "path is not contiguous: link {next} does not start where link {previous} ends"
            ),
            TopologyError::UnusedLink(l) => {
                write!(f, "link {l} does not participate in any path")
            }
            TopologyError::NotAPartition { link, occurrences } => write!(
                f,
                "correlation sets are not a partition: link {link} appears in {occurrences} sets"
            ),
            TopologyError::EmptyCorrelationSet => write!(f, "correlation sets must be non-empty"),
            TopologyError::CorrelationSetTooLarge { size, limit } => write!(
                f,
                "correlation set of size {size} exceeds the enumeration limit of {limit}"
            ),
            TopologyError::InvalidConfig(msg) => write!(f, "invalid configuration: {msg}"),
            TopologyError::Inconsistent(msg) => write!(f, "inconsistent topology: {msg}"),
        }
    }
}

impl std::error::Error for TopologyError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn messages_mention_the_relevant_entity() {
        assert!(TopologyError::UnknownNode(NodeId(3))
            .to_string()
            .contains("v4"));
        assert!(TopologyError::UnknownLink(LinkId(0))
            .to_string()
            .contains("e1"));
        assert!(TopologyError::PathHasLoop(LinkId(1))
            .to_string()
            .contains("e2"));
        assert!(TopologyError::UnusedLink(LinkId(4))
            .to_string()
            .contains("e5"));
        let e = TopologyError::NotAPartition {
            link: LinkId(2),
            occurrences: 2,
        };
        assert!(e.to_string().contains("e3"));
        let e = TopologyError::CorrelationSetTooLarge {
            size: 40,
            limit: 24,
        };
        assert!(e.to_string().contains("40"));
        assert!(TopologyError::InvalidConfig("boom".into())
            .to_string()
            .contains("boom"));
    }
}
