//! The toy topologies of the paper (Figures 1(a), 1(b) and 2).
//!
//! These small fixtures are used throughout the test suites and examples
//! because every quantity of interest — coverage tables, correlation
//! subsets, congestion factors, per-link probabilities — can be worked out
//! by hand and compared against the paper's own walk-through (Sections 3.1
//! and 3.2).

use crate::correlation::CorrelationPartition;
use crate::graph::{LinkId, Topology};
use crate::path::PathSet;
use crate::TopologyInstance;

/// Builds the topology of **Figure 1(a)**: the example where Assumption 4
/// *holds*.
///
/// * Nodes `v1..v5`.
/// * Links: `e1: v3→v1`, `e2: v3→v2`, `e3: v4→v3`, `e4: v5→v3`
///   (`LinkId(0)..LinkId(3)` respectively).
/// * Paths: `P1 = ⟨e3, e1⟩` (v4→v1), `P2 = ⟨e3, e2⟩` (v4→v2),
///   `P3 = ⟨e4, e2⟩` (v5→v2).
/// * Correlation sets: `C = {{e1, e2}, {e3}, {e4}}` — links e1 and e2 may
///   be correlated (they share a hidden physical resource), e3 and e4 are
///   independent of everything.
///
/// The resulting coverage table matches the paper:
///
/// | A ∈ C̃        | ψ(A)            |
/// |---------------|-----------------|
/// | {e1}          | {P1}            |
/// | {e2}          | {P2, P3}        |
/// | {e1, e2}      | {P1, P2, P3}    |
/// | {e3}          | {P1, P2}        |
/// | {e4}          | {P3}            |
pub fn figure_1a() -> TopologyInstance {
    let mut topology = Topology::new();
    let v = topology.add_nodes(5);
    let e1 = topology.add_link(v[2], v[0]).expect("valid link"); // v3 -> v1
    let e2 = topology.add_link(v[2], v[1]).expect("valid link"); // v3 -> v2
    let e3 = topology.add_link(v[3], v[2]).expect("valid link"); // v4 -> v3
    let e4 = topology.add_link(v[4], v[2]).expect("valid link"); // v5 -> v3
    let paths = PathSet::new(&topology, vec![vec![e3, e1], vec![e3, e2], vec![e4, e2]])
        .expect("figure 1(a) paths are valid");
    let correlation = CorrelationPartition::from_sets(
        topology.num_links(),
        vec![vec![e1, e2], vec![e3], vec![e4]],
    )
    .expect("figure 1(a) correlation sets are a partition");
    TopologyInstance {
        topology,
        paths,
        correlation,
    }
}

/// Builds the topology of **Figure 1(b)**: the example where Assumption 4
/// does *not* hold.
///
/// * Nodes `v1..v4` (the paper labels them v1, v2, v3, v4; the "missing"
///   v5 is the node one would add to obtain Figure 1(a)).
/// * Links: `e1: v3→v1`, `e2: v3→v2`, `e3: v4→v3`
///   (`LinkId(0)..LinkId(2)`).
/// * Paths: `P1 = ⟨e3, e1⟩` (v4→v1), `P2 = ⟨e3, e2⟩` (v4→v2).
/// * Correlation sets: `C = {{e1, e2}, {e3}}`.
///
/// Correlation subsets `{e1, e2}` and `{e3}` both cover `{P1, P2}`, so the
/// probability that e3 is congested cannot be told apart from the
/// probability that e1 and e2 are both congested.
pub fn figure_1b() -> TopologyInstance {
    let mut topology = Topology::new();
    let v = topology.add_nodes(4);
    let e1 = topology.add_link(v[2], v[0]).expect("valid link"); // v3 -> v1
    let e2 = topology.add_link(v[2], v[1]).expect("valid link"); // v3 -> v2
    let e3 = topology.add_link(v[3], v[2]).expect("valid link"); // v4 -> v3
    let paths = PathSet::new(&topology, vec![vec![e3, e1], vec![e3, e2]])
        .expect("figure 1(b) paths are valid");
    let correlation =
        CorrelationPartition::from_sets(topology.num_links(), vec![vec![e1, e2], vec![e3]])
            .expect("figure 1(b) correlation sets are a partition");
    TopologyInstance {
        topology,
        paths,
        correlation,
    }
}

/// Builds the Figure 1(a) topology but with **all four links in a single
/// correlation set**, the extreme discussed in Section 3.3 ("Why not assign
/// all links to one correlation set?"). Assumption 4 fails everywhere and
/// the merging transformation collapses the graph to one link per
/// end-to-end path.
pub fn figure_1a_single_set() -> TopologyInstance {
    let base = figure_1a();
    let correlation = CorrelationPartition::single_set(base.topology.num_links());
    TopologyInstance {
        topology: base.topology,
        paths: base.paths,
        correlation,
    }
}

/// A small local-area-network scenario in the spirit of **Figure 2(a)**:
/// four IP routers discovered by traceroute surround an undiscovered
/// Ethernet switch, so the logical links between the routers all share the
/// switch's physical links and belong to one correlation set; the access
/// links of the measurement hosts are independent.
///
/// * Nodes: `r1..r4` (discovered routers), `a`, `b`, `c`, `d` (measurement
///   hosts).
/// * Logical links crossing the hidden switch (one correlation set):
///   `l1: r1→r2`, `l2: r1→r3`, `l3: r4→r2`, `l4: r4→r3`.
/// * Access links (each its own correlation set): `l5: a→r1`, `l6: b→r4`,
///   `l7: c→r1`, `l8: d→r4`.
/// * Paths: every host reaches both r2 and r3 (8 paths in total).
///
/// With two hosts behind each ingress router, every correlation subset of
/// the LAN covers a distinct set of paths, so Assumption 4 holds and all
/// LAN links are identifiable despite being mutually correlated.
pub fn figure_2a_lan() -> TopologyInstance {
    let mut topology = Topology::new();
    let r1 = topology.add_node("r1");
    let r2 = topology.add_node("r2");
    let r3 = topology.add_node("r3");
    let r4 = topology.add_node("r4");
    let a = topology.add_node("a");
    let b = topology.add_node("b");
    let c = topology.add_node("c");
    let d = topology.add_node("d");
    let l1 = topology.add_link(r1, r2).expect("valid link");
    let l2 = topology.add_link(r1, r3).expect("valid link");
    let l3 = topology.add_link(r4, r2).expect("valid link");
    let l4 = topology.add_link(r4, r3).expect("valid link");
    let l5 = topology.add_link(a, r1).expect("valid link");
    let l6 = topology.add_link(b, r4).expect("valid link");
    let l7 = topology.add_link(c, r1).expect("valid link");
    let l8 = topology.add_link(d, r4).expect("valid link");
    let paths = PathSet::new(
        &topology,
        vec![
            vec![l5, l1],
            vec![l5, l2],
            vec![l7, l1],
            vec![l7, l2],
            vec![l6, l3],
            vec![l6, l4],
            vec![l8, l3],
            vec![l8, l4],
        ],
    )
    .expect("figure 2(a) paths are valid");
    let correlation = CorrelationPartition::from_sets(
        topology.num_links(),
        vec![vec![l1, l2, l3, l4], vec![l5], vec![l6], vec![l7], vec![l8]],
    )
    .expect("figure 2(a) correlation sets are a partition");
    TopologyInstance {
        topology,
        paths,
        correlation,
    }
}

/// A small "domain chain" scenario in which one measurement path crosses
/// **two links of the same correlation set** — the situation that makes the
/// independence baseline go wrong even on its own single-path equations.
///
/// * Nodes: `u`, `v`, `a`, `b`, `w`, `x`.
/// * Links: `l1: u→a`, `l2: a→b`, `l3: b→w`, `l4: v→b`, `l5: a→x`
///   (`LinkId(0)..LinkId(4)`).
/// * Correlation sets: `{l2, l3}` (both inside domain `a–b–w`), and
///   singletons for `l1`, `l4`, `l5`.
/// * Paths: `P1 = ⟨l1, l2, l3⟩`, `P2 = ⟨l1, l2⟩`, `P3 = ⟨l4, l3⟩`,
///   `P4 = ⟨l1, l5⟩`, `P5 = ⟨l4⟩`.
///
/// Assumption 4 holds (every correlation subset covers a distinct set of
/// paths), so the correlation algorithm identifies every link; but `P1`
/// traverses both `l2` and `l3`, so any algorithm that multiplies their
/// marginals — the independence baseline — mis-reads `P1`'s measurements
/// when `l2` and `l3` are congested together.
pub fn correlated_chain() -> TopologyInstance {
    let mut topology = Topology::new();
    let u = topology.add_node("u");
    let v = topology.add_node("v");
    let a = topology.add_node("a");
    let b = topology.add_node("b");
    let w = topology.add_node("w");
    let x = topology.add_node("x");
    let l1 = topology.add_link(u, a).expect("valid link");
    let l2 = topology.add_link(a, b).expect("valid link");
    let l3 = topology.add_link(b, w).expect("valid link");
    let l4 = topology.add_link(v, b).expect("valid link");
    let l5 = topology.add_link(a, x).expect("valid link");
    let paths = PathSet::new(
        &topology,
        vec![
            vec![l1, l2, l3],
            vec![l1, l2],
            vec![l4, l3],
            vec![l1, l5],
            vec![l4],
        ],
    )
    .expect("correlated-chain paths are valid");
    let correlation = CorrelationPartition::from_sets(
        topology.num_links(),
        vec![vec![l2, l3], vec![l1], vec![l4], vec![l5]],
    )
    .expect("correlated-chain correlation sets are a partition");
    TopologyInstance {
        topology,
        paths,
        correlation,
    }
}

/// Returns the canonical link names of Figure 1(a) (`e1..e4`) keyed by
/// [`LinkId`] index — convenient for printing paper-style tables in the
/// examples.
pub fn figure_1a_link_names() -> Vec<(&'static str, LinkId)> {
    vec![
        ("e1", LinkId(0)),
        ("e2", LinkId(1)),
        ("e3", LinkId(2)),
        ("e4", LinkId(3)),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::path::PathId;
    use std::collections::BTreeSet;

    #[test]
    fn figure_1a_matches_paper_description() {
        let inst = figure_1a();
        assert_eq!(inst.topology.num_nodes(), 5);
        assert_eq!(inst.topology.num_links(), 4);
        assert_eq!(inst.paths.num_paths(), 3);
        assert_eq!(inst.correlation.num_sets(), 3);
        inst.validate().expect("instance is consistent");

        // Coverage table from Section 3.1.
        let cov = |links: &[usize]| -> BTreeSet<PathId> {
            inst.paths
                .coverage(&links.iter().map(|&i| LinkId(i)).collect::<Vec<_>>())
        };
        assert_eq!(cov(&[0]), BTreeSet::from([PathId(0)]));
        assert_eq!(cov(&[1]), BTreeSet::from([PathId(1), PathId(2)]));
        assert_eq!(
            cov(&[0, 1]),
            BTreeSet::from([PathId(0), PathId(1), PathId(2)])
        );
        assert_eq!(cov(&[2]), BTreeSet::from([PathId(0), PathId(1)]));
        assert_eq!(cov(&[3]), BTreeSet::from([PathId(2)]));
    }

    #[test]
    fn figure_1b_matches_paper_description() {
        let inst = figure_1b();
        assert_eq!(inst.topology.num_links(), 3);
        assert_eq!(inst.paths.num_paths(), 2);
        inst.validate().expect("instance is consistent");

        // {e1,e2} and {e3} cover the same paths — the identifiability
        // failure highlighted by the paper.
        let both = inst.paths.coverage(&[LinkId(0), LinkId(1)]);
        let e3 = inst.paths.coverage(&[LinkId(2)]);
        assert_eq!(both, e3);
    }

    #[test]
    fn figure_1a_single_set_uses_one_correlation_set() {
        let inst = figure_1a_single_set();
        assert_eq!(inst.correlation.num_sets(), 1);
        assert_eq!(
            inst.correlation
                .set_links(crate::correlation::CorrelationSetId(0))
                .len(),
            4
        );
        inst.validate().expect("instance is consistent");
    }

    #[test]
    fn figure_2a_lan_is_consistent() {
        let inst = figure_2a_lan();
        inst.validate().expect("instance is consistent");
        assert_eq!(inst.paths.num_paths(), 8);
        assert_eq!(inst.correlation.num_sets(), 5);
        assert_eq!(inst.correlation.max_set_size(), 4);
    }

    #[test]
    fn correlated_chain_is_consistent_and_identifiable_in_structure() {
        let inst = correlated_chain();
        inst.validate().expect("instance is consistent");
        assert_eq!(inst.num_links(), 5);
        assert_eq!(inst.num_paths(), 5);
        assert_eq!(inst.num_correlation_sets(), 4);
        // P1 traverses two links of the same correlation set.
        let p1 = inst.paths.path(PathId(0));
        assert!(!inst.correlation.mutually_uncorrelated(&p1.links));
        // Every correlation subset covers a distinct set of paths.
        let subsets = inst.correlation.all_correlation_subsets(16).unwrap();
        let coverages: Vec<BTreeSet<PathId>> =
            subsets.iter().map(|s| inst.paths.coverage(s)).collect();
        for i in 0..coverages.len() {
            for j in (i + 1)..coverages.len() {
                assert_ne!(
                    coverages[i], coverages[j],
                    "{:?} vs {:?}",
                    subsets[i], subsets[j]
                );
            }
        }
    }

    #[test]
    fn link_names_cover_all_links() {
        let names = figure_1a_link_names();
        assert_eq!(names.len(), figure_1a().topology.num_links());
        assert_eq!(names[0], ("e1", LinkId(0)));
    }
}
