//! The network graph: nodes, directed logical links and adjacency.
//!
//! Following Section 2.1 of the paper, the network is a directed graph
//! `G = (V, E)`. Nodes represent network elements that generate, receive or
//! relay traffic (end hosts, switches, routers); each edge represents a
//! *logical* link — not necessarily a physical one, but possibly an IP-level
//! or domain-level link, i.e. a whole sequence of physical links between two
//! network elements. That distinction is exactly what makes link
//! *correlation* possible: two logical links may share underlying physical
//! resources.

use serde::{Deserialize, Serialize};
use std::fmt;

use crate::error::TopologyError;

/// Identifier of a node in the network graph.
///
/// Node ids are dense indices assigned in insertion order, so they can be
/// used directly to index per-node arrays.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct NodeId(pub usize);

/// Identifier of a directed logical link in the network graph.
///
/// Link ids are dense indices assigned in insertion order, so they can be
/// used directly to index per-link arrays (congestion states, probability
/// vectors, equation columns, ...).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct LinkId(pub usize);

impl NodeId {
    /// The raw index of the node.
    pub fn index(self) -> usize {
        self.0
    }
}

impl LinkId {
    /// The raw index of the link.
    pub fn index(self) -> usize {
        self.0
    }
}

impl fmt::Display for NodeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "v{}", self.0 + 1)
    }
}

impl fmt::Display for LinkId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "e{}", self.0 + 1)
    }
}

/// A node of the network graph.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Node {
    /// The node's identifier.
    pub id: NodeId,
    /// Human-readable label (used in reports and examples).
    pub name: String,
}

/// A directed logical link between two nodes.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Link {
    /// The link's identifier.
    pub id: LinkId,
    /// Source node.
    pub source: NodeId,
    /// Destination node.
    pub target: NodeId,
}

/// A directed network graph of nodes and logical links.
///
/// The structure is append-only: nodes and links can be added but never
/// removed, which keeps all identifiers stable. Topology *transformations*
/// (such as the merging transformation of Section 3.3) build a brand-new
/// `Topology` and return a mapping from new to old links.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct Topology {
    nodes: Vec<Node>,
    links: Vec<Link>,
    out_links: Vec<Vec<LinkId>>,
    in_links: Vec<Vec<LinkId>>,
}

impl Topology {
    /// Creates an empty topology.
    pub fn new() -> Self {
        Topology::default()
    }

    /// Adds a node with the given label and returns its id.
    pub fn add_node(&mut self, name: impl Into<String>) -> NodeId {
        let id = NodeId(self.nodes.len());
        self.nodes.push(Node {
            id,
            name: name.into(),
        });
        self.out_links.push(Vec::new());
        self.in_links.push(Vec::new());
        id
    }

    /// Adds `count` nodes labelled `v1, v2, ...` (continuing from the
    /// current node count) and returns their ids.
    pub fn add_nodes(&mut self, count: usize) -> Vec<NodeId> {
        (0..count)
            .map(|_| {
                let label = format!("v{}", self.nodes.len() + 1);
                self.add_node(label)
            })
            .collect()
    }

    /// Adds a directed link from `source` to `target` and returns its id.
    ///
    /// Returns an error if either endpoint does not exist or if the link
    /// would be a self-loop.
    pub fn add_link(&mut self, source: NodeId, target: NodeId) -> Result<LinkId, TopologyError> {
        if source.index() >= self.nodes.len() {
            return Err(TopologyError::UnknownNode(source));
        }
        if target.index() >= self.nodes.len() {
            return Err(TopologyError::UnknownNode(target));
        }
        if source == target {
            return Err(TopologyError::SelfLoop(source));
        }
        let id = LinkId(self.links.len());
        self.links.push(Link { id, source, target });
        self.out_links[source.index()].push(id);
        self.in_links[target.index()].push(id);
        Ok(id)
    }

    /// Number of nodes.
    pub fn num_nodes(&self) -> usize {
        self.nodes.len()
    }

    /// Number of links.
    pub fn num_links(&self) -> usize {
        self.links.len()
    }

    /// Returns the node with the given id.
    ///
    /// # Panics
    ///
    /// Panics if the id is out of range.
    pub fn node(&self, id: NodeId) -> &Node {
        &self.nodes[id.index()]
    }

    /// Returns the link with the given id.
    ///
    /// # Panics
    ///
    /// Panics if the id is out of range.
    pub fn link(&self, id: LinkId) -> &Link {
        &self.links[id.index()]
    }

    /// Iterates over all nodes.
    pub fn nodes(&self) -> impl Iterator<Item = &Node> {
        self.nodes.iter()
    }

    /// Iterates over all links.
    pub fn links(&self) -> impl Iterator<Item = &Link> {
        self.links.iter()
    }

    /// Iterates over all node ids.
    pub fn node_ids(&self) -> impl Iterator<Item = NodeId> {
        (0..self.nodes.len()).map(NodeId)
    }

    /// Iterates over all link ids.
    pub fn link_ids(&self) -> impl Iterator<Item = LinkId> {
        (0..self.links.len()).map(LinkId)
    }

    /// Links leaving `node`.
    ///
    /// # Panics
    ///
    /// Panics if the node id is out of range.
    pub fn out_links(&self, node: NodeId) -> &[LinkId] {
        &self.out_links[node.index()]
    }

    /// Links entering `node`.
    ///
    /// # Panics
    ///
    /// Panics if the node id is out of range.
    pub fn in_links(&self, node: NodeId) -> &[LinkId] {
        &self.in_links[node.index()]
    }

    /// Out-degree plus in-degree of a node.
    pub fn degree(&self, node: NodeId) -> usize {
        self.out_links(node).len() + self.in_links(node).len()
    }

    /// Finds an existing link from `source` to `target`, if any.
    pub fn find_link(&self, source: NodeId, target: NodeId) -> Option<LinkId> {
        self.out_links
            .get(source.index())?
            .iter()
            .copied()
            .find(|&l| self.link(l).target == target)
    }

    /// Returns `true` if a node is *intermediate*, i.e. it has at least one
    /// incoming and at least one outgoing link. Intermediate nodes are the
    /// candidates for the merging transformation of Section 3.3.
    pub fn is_intermediate(&self, node: NodeId) -> bool {
        !self.out_links(node).is_empty() && !self.in_links(node).is_empty()
    }

    /// Checks internal consistency (adjacency lists match link endpoints).
    /// Used by tests and by generators as a post-condition.
    pub fn validate(&self) -> Result<(), TopologyError> {
        for link in &self.links {
            if !self.out_links[link.source.index()].contains(&link.id) {
                return Err(TopologyError::Inconsistent(format!(
                    "link {} missing from out-list of {}",
                    link.id, link.source
                )));
            }
            if !self.in_links[link.target.index()].contains(&link.id) {
                return Err(TopologyError::Inconsistent(format!(
                    "link {} missing from in-list of {}",
                    link.id, link.target
                )));
            }
        }
        let adjacency_count: usize = self.out_links.iter().map(Vec::len).sum();
        if adjacency_count != self.links.len() {
            return Err(TopologyError::Inconsistent(format!(
                "{} adjacency entries for {} links",
                adjacency_count,
                self.links.len()
            )));
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small_topology() -> (Topology, Vec<NodeId>, Vec<LinkId>) {
        let mut t = Topology::new();
        let nodes = t.add_nodes(3);
        let l0 = t.add_link(nodes[0], nodes[1]).unwrap();
        let l1 = t.add_link(nodes[1], nodes[2]).unwrap();
        let l2 = t.add_link(nodes[0], nodes[2]).unwrap();
        (t, nodes, vec![l0, l1, l2])
    }

    #[test]
    fn nodes_and_links_get_dense_ids() {
        let (t, nodes, links) = small_topology();
        assert_eq!(t.num_nodes(), 3);
        assert_eq!(t.num_links(), 3);
        assert_eq!(nodes, vec![NodeId(0), NodeId(1), NodeId(2)]);
        assert_eq!(links, vec![LinkId(0), LinkId(1), LinkId(2)]);
        assert_eq!(t.node(NodeId(1)).name, "v2");
    }

    #[test]
    fn adjacency_lists_are_maintained() {
        let (t, nodes, links) = small_topology();
        assert_eq!(t.out_links(nodes[0]), &[links[0], links[2]]);
        assert_eq!(t.in_links(nodes[2]), &[links[1], links[2]]);
        assert_eq!(t.degree(nodes[1]), 2);
        assert!(t.is_intermediate(nodes[1]));
        assert!(!t.is_intermediate(nodes[0]));
        assert!(t.validate().is_ok());
    }

    #[test]
    fn find_link_locates_existing_links_only() {
        let (t, nodes, links) = small_topology();
        assert_eq!(t.find_link(nodes[0], nodes[1]), Some(links[0]));
        assert_eq!(t.find_link(nodes[1], nodes[0]), None);
        assert_eq!(t.find_link(nodes[2], nodes[2]), None);
    }

    #[test]
    fn rejects_bad_links() {
        let mut t = Topology::new();
        let n = t.add_nodes(2);
        assert!(matches!(
            t.add_link(n[0], n[0]),
            Err(TopologyError::SelfLoop(_))
        ));
        assert!(matches!(
            t.add_link(n[0], NodeId(99)),
            Err(TopologyError::UnknownNode(_))
        ));
        assert!(matches!(
            t.add_link(NodeId(99), n[0]),
            Err(TopologyError::UnknownNode(_))
        ));
    }

    #[test]
    fn parallel_links_are_allowed() {
        // Two domain-level links between the same pair of border routers
        // are legitimate (e.g. two physical circuits), so the graph must
        // accept parallel edges.
        let mut t = Topology::new();
        let n = t.add_nodes(2);
        let a = t.add_link(n[0], n[1]).unwrap();
        let b = t.add_link(n[0], n[1]).unwrap();
        assert_ne!(a, b);
        assert_eq!(t.out_links(n[0]).len(), 2);
    }

    #[test]
    fn display_uses_paper_style_names() {
        assert_eq!(NodeId(0).to_string(), "v1");
        assert_eq!(LinkId(2).to_string(), "e3");
    }

    #[test]
    fn ids_iterate_in_order() {
        let (t, _, _) = small_topology();
        let ids: Vec<usize> = t.link_ids().map(|l| l.index()).collect();
        assert_eq!(ids, vec![0, 1, 2]);
        let nids: Vec<usize> = t.node_ids().map(|n| n.index()).collect();
        assert_eq!(nids, vec![0, 1, 2]);
    }
}
