//! PlanetLab-style traceroute-derived topology generator.
//!
//! The paper's PlanetLab topologies are obtained by running traceroute
//! between PlanetLab nodes, keeping the complete routes, and assigning
//! links to correlation sets such that each set is a contiguous cluster of
//! links — modelling correlation inside a local-area network or an
//! administrative domain. The reported scale is roughly 2000 links and
//! 1500 paths.
//!
//! Live traceroutes are not available here, so this generator synthesises a
//! topology with the same structural properties: a connected random router
//! graph, a set of vantage routers (the "PlanetLab nodes"), shortest-path
//! routes between vantage pairs standing in for traceroute output, and
//! correlation sets built from *router domains*: the routers are grouped
//! into contiguous domains of a configurable size, and all links whose
//! source router belongs to one domain form one correlation set — they
//! plausibly share the domain's physical infrastructure and management
//! processes. A link-level clustering helper
//! ([`contiguous_link_clusters`]) is also provided as an alternative
//! strategy.

use rand::Rng;

use crate::correlation::CorrelationPartition;
use crate::error::TopologyError;
use crate::graph::{LinkId, NodeId, Topology};
use crate::path::PathSet;
use crate::routing::{paths_between_vantage_points, restrict_to_paths};
use crate::TopologyInstance;

use super::random::{connected_random_edges, sample_distinct, topology_from_undirected_edges};

/// How correlation sets are derived from the generated router graph.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ClusteringStrategy {
    /// Group routers into contiguous domains of the given size; all links
    /// originating in one domain form one correlation set. This models
    /// LANs / administrative domains and lets most paths cross each
    /// correlation set only once.
    RouterDomains {
        /// Number of routers per domain.
        routers_per_domain: usize,
    },
    /// Group links directly into contiguous clusters of the given size
    /// (breadth-first over the "links sharing an endpoint" adjacency).
    ContiguousLinks {
        /// Number of links per cluster.
        cluster_size: usize,
    },
}

/// Configuration of the PlanetLab-style generator.
#[derive(Debug, Clone, Copy)]
pub struct PlanetLabConfig {
    /// Number of routers in the underlying graph.
    pub num_routers: usize,
    /// Extra undirected edges added on top of the random spanning tree,
    /// expressed as a fraction of `num_routers` (0.5 ⇒ 50% extra edges).
    pub extra_edge_fraction: f64,
    /// Number of vantage routers (the PlanetLab nodes running traceroute).
    pub num_vantage: usize,
    /// Number of measurement paths to generate (the paper uses ~1500).
    pub target_paths: usize,
    /// How correlation sets are formed.
    pub clustering: ClusteringStrategy,
}

impl Default for PlanetLabConfig {
    fn default() -> Self {
        PlanetLabConfig {
            num_routers: 700,
            extra_edge_fraction: 0.6,
            num_vantage: 55,
            target_paths: 1500,
            clustering: ClusteringStrategy::RouterDomains {
                routers_per_domain: 1,
            },
        }
    }
}

impl PlanetLabConfig {
    /// A small configuration used by unit tests and quick examples.
    pub fn small() -> Self {
        PlanetLabConfig {
            num_routers: 60,
            extra_edge_fraction: 0.5,
            num_vantage: 14,
            target_paths: 120,
            clustering: ClusteringStrategy::RouterDomains {
                routers_per_domain: 1,
            },
        }
    }

    /// Validates the configuration.
    pub fn validate(&self) -> Result<(), TopologyError> {
        if self.num_routers < 4 {
            return Err(TopologyError::InvalidConfig(
                "need at least four routers".to_string(),
            ));
        }
        if self.num_vantage < 2 {
            return Err(TopologyError::InvalidConfig(
                "need at least two vantage routers".to_string(),
            ));
        }
        if self.num_vantage > self.num_routers {
            return Err(TopologyError::InvalidConfig(format!(
                "num_vantage ({}) exceeds num_routers ({})",
                self.num_vantage, self.num_routers
            )));
        }
        if self.target_paths == 0 {
            return Err(TopologyError::InvalidConfig(
                "target_paths must be at least 1".to_string(),
            ));
        }
        match self.clustering {
            ClusteringStrategy::RouterDomains { routers_per_domain } => {
                if routers_per_domain == 0 {
                    return Err(TopologyError::InvalidConfig(
                        "routers_per_domain must be at least 1".to_string(),
                    ));
                }
            }
            ClusteringStrategy::ContiguousLinks { cluster_size } => {
                if cluster_size == 0 {
                    return Err(TopologyError::InvalidConfig(
                        "cluster_size must be at least 1".to_string(),
                    ));
                }
            }
        }
        if !(0.0..=10.0).contains(&self.extra_edge_fraction) {
            return Err(TopologyError::InvalidConfig(format!(
                "extra_edge_fraction ({}) out of range",
                self.extra_edge_fraction
            )));
        }
        Ok(())
    }
}

/// Generates a PlanetLab-style instance.
pub fn generate(
    config: &PlanetLabConfig,
    rng: &mut impl Rng,
) -> Result<TopologyInstance, TopologyError> {
    config.validate()?;

    // 1. Connected random router graph.
    let extra_edges = (config.num_routers as f64 * config.extra_edge_fraction).round() as usize;
    let edges = connected_random_edges(rng, config.num_routers, extra_edges)?;
    let full = topology_from_undirected_edges(&edges, config.num_routers, "r")?;

    // 2. Vantage routers and traceroute-like shortest paths between them.
    let vantage_indices = sample_distinct(rng, config.num_routers, config.num_vantage);
    let vantage: Vec<NodeId> = vantage_indices.into_iter().map(NodeId).collect();
    let mut pairs: Vec<(NodeId, NodeId)> = Vec::new();
    for &s in &vantage {
        for &t in &vantage {
            if s != t {
                pairs.push((s, t));
            }
        }
    }
    let order = sample_distinct(rng, pairs.len(), pairs.len());
    let shuffled: Vec<(NodeId, NodeId)> = order.into_iter().map(|i| pairs[i]).collect();
    let path_links = paths_between_vantage_points(&full, &shuffled, config.target_paths);
    if path_links.is_empty() {
        return Err(TopologyError::InvalidConfig(
            "no measurement paths could be generated".to_string(),
        ));
    }

    // 3. Keep only the links traversed by some path.
    let restricted = restrict_to_paths(&full, &path_links)?;
    let paths = PathSet::new(&restricted.topology, restricted.path_links.clone())?;

    // 4. Correlation sets.
    let correlation = match config.clustering {
        ClusteringStrategy::RouterDomains { routers_per_domain } => router_domain_correlation(
            &restricted.topology,
            &edges,
            config.num_routers,
            routers_per_domain,
        )?,
        ClusteringStrategy::ContiguousLinks { cluster_size } => {
            contiguous_link_clusters(&restricted.topology, cluster_size)?
        }
    };

    TopologyInstance::new(restricted.topology, paths, correlation)
}

/// Groups routers into contiguous domains of `routers_per_domain` routers
/// (breadth-first over the undirected router graph) and returns the
/// correlation partition in which all links originating in one domain form
/// one correlation set.
fn router_domain_correlation(
    topology: &Topology,
    undirected_edges: &[(usize, usize)],
    num_routers: usize,
    routers_per_domain: usize,
) -> Result<CorrelationPartition, TopologyError> {
    // Build the undirected adjacency over routers.
    let mut adjacency: Vec<Vec<usize>> = vec![Vec::new(); num_routers];
    for &(a, b) in undirected_edges {
        adjacency[a].push(b);
        adjacency[b].push(a);
    }
    // Greedy BFS clustering of routers into domains.
    let mut domain_of: Vec<Option<usize>> = vec![None; num_routers];
    let mut next_domain = 0;
    for start in 0..num_routers {
        if domain_of[start].is_some() {
            continue;
        }
        let mut queue = std::collections::VecDeque::from([start]);
        domain_of[start] = Some(next_domain);
        let mut size = 1;
        while let Some(node) = queue.pop_front() {
            if size >= routers_per_domain {
                break;
            }
            for &n in &adjacency[node] {
                if size >= routers_per_domain {
                    break;
                }
                if domain_of[n].is_none() {
                    domain_of[n] = Some(next_domain);
                    size += 1;
                    queue.push_back(n);
                }
            }
        }
        next_domain += 1;
    }
    // Correlation set of a link = domain of its source router.
    let mut sets_by_domain: std::collections::BTreeMap<usize, Vec<LinkId>> =
        std::collections::BTreeMap::new();
    for link in topology.links() {
        let domain = domain_of[link.source.index()].expect("all routers assigned to a domain");
        sets_by_domain.entry(domain).or_default().push(link.id);
    }
    CorrelationPartition::from_sets(topology.num_links(), sets_by_domain.into_values().collect())
}

/// Groups the links of a topology into contiguous clusters of at most
/// `cluster_size` links: starting from the lowest-numbered unassigned link,
/// a breadth-first search over the "links sharing an endpoint node"
/// adjacency collects links into the cluster until it is full.
///
/// Every cluster is a connected (through shared nodes) group of links, so
/// it is a plausible stand-in for "all links of one LAN / one domain".
pub fn contiguous_link_clusters(
    topology: &Topology,
    cluster_size: usize,
) -> Result<CorrelationPartition, TopologyError> {
    if cluster_size == 0 {
        return Err(TopologyError::InvalidConfig(
            "cluster_size must be at least 1".to_string(),
        ));
    }
    let num_links = topology.num_links();
    let mut assigned: Vec<bool> = vec![false; num_links];
    let mut sets: Vec<Vec<LinkId>> = Vec::new();

    for start in 0..num_links {
        if assigned[start] {
            continue;
        }
        let mut cluster = Vec::with_capacity(cluster_size);
        let mut queue = std::collections::VecDeque::new();
        queue.push_back(LinkId(start));
        assigned[start] = true;
        while let Some(link) = queue.pop_front() {
            cluster.push(link);
            if cluster.len() >= cluster_size {
                break;
            }
            // Neighbouring links: those sharing either endpoint.
            let l = topology.link(link);
            let mut neighbours: Vec<LinkId> = Vec::new();
            for node in [l.source, l.target] {
                neighbours.extend(topology.out_links(node).iter().copied());
                neighbours.extend(topology.in_links(node).iter().copied());
            }
            neighbours.sort_unstable();
            neighbours.dedup();
            for n in neighbours {
                if !assigned[n.index()] && cluster.len() + queue.len() < cluster_size {
                    assigned[n.index()] = true;
                    queue.push_back(n);
                }
            }
        }
        // Flush anything still queued (cluster reached its size limit while
        // items were queued): they stay in this cluster too, keeping the
        // partition property.
        while let Some(link) = queue.pop_front() {
            cluster.push(link);
        }
        sets.push(cluster);
    }
    CorrelationPartition::from_sets(num_links, sets)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn small_config_generates_a_consistent_instance() {
        let mut rng = StdRng::seed_from_u64(21);
        let inst = generate(&PlanetLabConfig::small(), &mut rng).unwrap();
        inst.validate().unwrap();
        assert!(inst.num_paths() > 0);
        assert!(inst.num_paths() <= PlanetLabConfig::small().target_paths);
        assert!(inst.num_links() > 0);
        assert!(inst.num_correlation_sets() > 1);
    }

    #[test]
    fn router_domain_sets_group_links_by_source_domain() {
        let mut rng = StdRng::seed_from_u64(3);
        let inst = generate(&PlanetLabConfig::small(), &mut rng).unwrap();
        // With routers_per_domain = 1, all links of a correlation set share
        // their source router.
        for (_, links) in inst.correlation.sets() {
            let mut sources: Vec<usize> = links
                .iter()
                .map(|&l| inst.topology.link(l).source.index())
                .collect();
            sources.sort_unstable();
            sources.dedup();
            assert_eq!(
                sources.len(),
                1,
                "correlation set spans {} source routers",
                sources.len()
            );
        }
    }

    #[test]
    fn single_router_domains_make_every_path_usable() {
        // With one router per domain, a correlation set is the set of
        // egress links of one router; a loop-free path never uses two of
        // them, so every single-path equation of the practical algorithm is
        // usable.
        let mut rng = StdRng::seed_from_u64(5);
        let inst = generate(&PlanetLabConfig::small(), &mut rng).unwrap();
        let usable = inst
            .paths
            .paths()
            .filter(|p| inst.correlation.mutually_uncorrelated(&p.links))
            .count();
        assert_eq!(usable, inst.num_paths());
    }

    #[test]
    fn larger_router_domains_introduce_intra_path_correlation() {
        // With multi-router domains some paths do traverse two links of the
        // same correlation set; the generator still produces a valid
        // instance, it just leaves fewer usable equations (the "harder"
        // variant used by the ablation benchmarks).
        let mut rng = StdRng::seed_from_u64(5);
        let mut config = PlanetLabConfig::small();
        config.clustering = ClusteringStrategy::RouterDomains {
            routers_per_domain: 3,
        };
        let inst = generate(&config, &mut rng).unwrap();
        inst.validate().unwrap();
        let usable = inst
            .paths
            .paths()
            .filter(|p| inst.correlation.mutually_uncorrelated(&p.links))
            .count();
        assert!(usable < inst.num_paths());
        assert!(usable > 0);
    }

    #[test]
    fn contiguous_link_clustering_strategy_is_supported() {
        let mut rng = StdRng::seed_from_u64(9);
        let mut config = PlanetLabConfig::small();
        config.clustering = ClusteringStrategy::ContiguousLinks { cluster_size: 4 };
        let inst = generate(&config, &mut rng).unwrap();
        inst.validate().unwrap();
        for (_, links) in inst.correlation.sets() {
            assert!(
                links.len() <= 8,
                "cluster of size {} exceeds bound",
                links.len()
            );
        }
    }

    #[test]
    fn contiguous_clusters_are_contiguous() {
        let mut rng = StdRng::seed_from_u64(11);
        let edges = connected_random_edges(&mut rng, 30, 15).unwrap();
        let topo = topology_from_undirected_edges(&edges, 30, "r").unwrap();
        let partition = contiguous_link_clusters(&topo, 5).unwrap();
        assert_eq!(partition.num_links(), topo.num_links());
        for (_, links) in partition.sets() {
            if links.len() < 2 {
                continue;
            }
            // Connected through shared endpoints.
            let mut reached = vec![false; links.len()];
            reached[0] = true;
            let mut frontier = vec![0usize];
            while let Some(i) = frontier.pop() {
                let li = topo.link(links[i]);
                for (j, &other) in links.iter().enumerate() {
                    if reached[j] {
                        continue;
                    }
                    let lj = topo.link(other);
                    let shares_node = li.source == lj.source
                        || li.source == lj.target
                        || li.target == lj.source
                        || li.target == lj.target;
                    if shares_node {
                        reached[j] = true;
                        frontier.push(j);
                    }
                }
            }
            assert!(
                reached.iter().all(|&r| r),
                "cluster {links:?} is not contiguous"
            );
        }
    }

    #[test]
    fn generation_is_deterministic_per_seed() {
        let a = generate(&PlanetLabConfig::small(), &mut StdRng::seed_from_u64(77)).unwrap();
        let b = generate(&PlanetLabConfig::small(), &mut StdRng::seed_from_u64(77)).unwrap();
        assert_eq!(a.num_links(), b.num_links());
        assert_eq!(a.num_paths(), b.num_paths());
        let c = generate(&PlanetLabConfig::small(), &mut StdRng::seed_from_u64(78)).unwrap();
        // Different seeds produce different instances (extremely likely).
        assert!(
            a.num_links() != c.num_links() || a.num_paths() != c.num_paths() || {
                let pa: Vec<usize> = a.paths.paths().map(|p| p.len()).collect();
                let pc: Vec<usize> = c.paths.paths().map(|p| p.len()).collect();
                pa != pc
            }
        );
    }

    #[test]
    fn invalid_configs_are_rejected() {
        let mut rng = StdRng::seed_from_u64(1);
        let mut c = PlanetLabConfig::small();
        c.num_routers = 2;
        assert!(generate(&c, &mut rng).is_err());
        let mut c = PlanetLabConfig::small();
        c.num_vantage = 1;
        assert!(generate(&c, &mut rng).is_err());
        let mut c = PlanetLabConfig::small();
        c.num_vantage = c.num_routers + 1;
        assert!(generate(&c, &mut rng).is_err());
        let mut c = PlanetLabConfig::small();
        c.clustering = ClusteringStrategy::RouterDomains {
            routers_per_domain: 0,
        };
        assert!(generate(&c, &mut rng).is_err());
        let mut c = PlanetLabConfig::small();
        c.clustering = ClusteringStrategy::ContiguousLinks { cluster_size: 0 };
        assert!(generate(&c, &mut rng).is_err());
        let mut c = PlanetLabConfig::small();
        c.target_paths = 0;
        assert!(generate(&c, &mut rng).is_err());
        let mut c = PlanetLabConfig::small();
        c.extra_edge_fraction = -1.0;
        assert!(generate(&c, &mut rng).is_err());
    }

    #[test]
    fn default_config_is_paper_scale() {
        let c = PlanetLabConfig::default();
        assert_eq!(c.target_paths, 1500);
        assert!(c.validate().is_ok());
    }
}
