//! Random-graph primitives shared by the topology generators.
//!
//! All functions are deterministic given the caller-supplied random number
//! generator, so every experiment in the evaluation harness can be
//! reproduced from its seed.

use rand::{Rng, RngExt};

use crate::error::TopologyError;
use crate::graph::{NodeId, Topology};

/// Generates an undirected edge list with the Barabási–Albert preferential
/// attachment model: the graph starts from a small clique of `m + 1` nodes
/// and every subsequent node attaches to `m` distinct existing nodes chosen
/// with probability proportional to their current degree.
///
/// This is the model BRITE uses for AS-level topologies, and it produces
/// the heavy-tailed degree distributions observed in the Internet's AS
/// graph.
pub fn barabasi_albert_edges(
    rng: &mut impl Rng,
    num_nodes: usize,
    edges_per_node: usize,
) -> Result<Vec<(usize, usize)>, TopologyError> {
    let m = edges_per_node;
    if m == 0 {
        return Err(TopologyError::InvalidConfig(
            "edges_per_node must be at least 1".to_string(),
        ));
    }
    if num_nodes < m + 1 {
        return Err(TopologyError::InvalidConfig(format!(
            "need at least {} nodes for {} edges per node",
            m + 1,
            m
        )));
    }
    let mut edges: Vec<(usize, usize)> = Vec::new();
    // `attachment` holds one entry per edge endpoint, so sampling a uniform
    // element of it is sampling a node with probability proportional to its
    // degree.
    let mut attachment: Vec<usize> = Vec::new();

    // Seed clique over the first m + 1 nodes.
    for i in 0..=m {
        for j in (i + 1)..=m {
            edges.push((i, j));
            attachment.push(i);
            attachment.push(j);
        }
    }

    for new_node in (m + 1)..num_nodes {
        let mut targets: Vec<usize> = Vec::with_capacity(m);
        let mut guard = 0;
        while targets.len() < m {
            let target = attachment[rng.random_range(0..attachment.len())];
            if !targets.contains(&target) {
                targets.push(target);
            }
            guard += 1;
            if guard > 100 * m + 100 {
                // Extremely unlikely; fall back to the lowest-degree nodes.
                for candidate in 0..new_node {
                    if targets.len() >= m {
                        break;
                    }
                    if !targets.contains(&candidate) {
                        targets.push(candidate);
                    }
                }
            }
        }
        for &t in &targets {
            edges.push((new_node, t));
            attachment.push(new_node);
            attachment.push(t);
        }
    }
    Ok(edges)
}

/// Generates a connected undirected edge list over `num_nodes` nodes: a
/// uniformly random spanning tree (random attachment order) plus
/// `extra_edges` additional random edges (self-loops and duplicates are
/// skipped, so the actual number of extra edges may be slightly lower).
pub fn connected_random_edges(
    rng: &mut impl Rng,
    num_nodes: usize,
    extra_edges: usize,
) -> Result<Vec<(usize, usize)>, TopologyError> {
    if num_nodes < 2 {
        return Err(TopologyError::InvalidConfig(
            "need at least two nodes".to_string(),
        ));
    }
    let mut edges: Vec<(usize, usize)> = Vec::new();
    // Random tree: each node (after the first) attaches to a uniformly
    // random earlier node.
    for node in 1..num_nodes {
        let parent = rng.random_range(0..node);
        edges.push((parent, node));
    }
    for _ in 0..extra_edges {
        let a = rng.random_range(0..num_nodes);
        let b = rng.random_range(0..num_nodes);
        if a == b {
            continue;
        }
        let (lo, hi) = (a.min(b), a.max(b));
        if edges.contains(&(lo, hi)) || edges.contains(&(hi, lo)) {
            continue;
        }
        edges.push((lo, hi));
    }
    Ok(edges)
}

/// Builds a directed [`Topology`] from an undirected edge list by adding
/// two directed links (one per direction) for every undirected edge. Node
/// labels are `prefix1, prefix2, ...`.
pub fn topology_from_undirected_edges(
    edges: &[(usize, usize)],
    num_nodes: usize,
    prefix: &str,
) -> Result<Topology, TopologyError> {
    let mut topology = Topology::new();
    for i in 0..num_nodes {
        topology.add_node(format!("{prefix}{}", i + 1));
    }
    for &(a, b) in edges {
        if a >= num_nodes || b >= num_nodes {
            return Err(TopologyError::InvalidConfig(format!(
                "edge ({a}, {b}) references a node beyond {num_nodes}"
            )));
        }
        topology.add_link(NodeId(a), NodeId(b))?;
        topology.add_link(NodeId(b), NodeId(a))?;
    }
    Ok(topology)
}

/// Chooses `count` distinct indices from `0..n` uniformly at random
/// (Fisher–Yates over an index vector, truncated).
pub fn sample_distinct(rng: &mut impl Rng, n: usize, count: usize) -> Vec<usize> {
    let mut indices: Vec<usize> = (0..n).collect();
    let take = count.min(n);
    for i in 0..take {
        let j = rng.random_range(i..n);
        indices.swap(i, j);
    }
    indices.truncate(take);
    indices
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::routing::all_reachable_from;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn barabasi_albert_has_expected_edge_count() {
        let mut rng = StdRng::seed_from_u64(1);
        let n = 40;
        let m = 2;
        let edges = barabasi_albert_edges(&mut rng, n, m).unwrap();
        // Seed clique: C(3, 2) = 3 edges; then (n - m - 1) * m more.
        assert_eq!(edges.len(), 3 + (n - m - 1) * m);
        // No self-loops.
        assert!(edges.iter().all(|&(a, b)| a != b));
        // Every node appears.
        let mut seen = vec![false; n];
        for &(a, b) in &edges {
            seen[a] = true;
            seen[b] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    fn barabasi_albert_rejects_bad_configs() {
        let mut rng = StdRng::seed_from_u64(1);
        assert!(barabasi_albert_edges(&mut rng, 3, 0).is_err());
        assert!(barabasi_albert_edges(&mut rng, 2, 2).is_err());
    }

    #[test]
    fn barabasi_albert_is_deterministic_for_a_seed() {
        let e1 = barabasi_albert_edges(&mut StdRng::seed_from_u64(7), 30, 2).unwrap();
        let e2 = barabasi_albert_edges(&mut StdRng::seed_from_u64(7), 30, 2).unwrap();
        assert_eq!(e1, e2);
        let e3 = barabasi_albert_edges(&mut StdRng::seed_from_u64(8), 30, 2).unwrap();
        assert_ne!(e1, e3);
    }

    #[test]
    fn connected_random_graph_is_connected_in_both_directions() {
        let mut rng = StdRng::seed_from_u64(3);
        let n = 50;
        let edges = connected_random_edges(&mut rng, n, 20).unwrap();
        assert!(edges.len() >= n - 1);
        let topo = topology_from_undirected_edges(&edges, n, "r").unwrap();
        // Since each undirected edge becomes two directed links and the
        // tree is connected, every node reaches every other node.
        assert!(all_reachable_from(&topo, NodeId(0)));
        assert!(all_reachable_from(&topo, NodeId(n - 1)));
        assert_eq!(topo.num_links(), edges.len() * 2);
    }

    #[test]
    fn connected_random_graph_rejects_tiny_inputs() {
        let mut rng = StdRng::seed_from_u64(3);
        assert!(connected_random_edges(&mut rng, 1, 0).is_err());
    }

    #[test]
    fn topology_from_edges_validates_node_indices() {
        let err = topology_from_undirected_edges(&[(0, 5)], 3, "x").unwrap_err();
        assert!(matches!(err, TopologyError::InvalidConfig(_)));
    }

    #[test]
    fn sample_distinct_returns_unique_indices() {
        let mut rng = StdRng::seed_from_u64(11);
        let sample = sample_distinct(&mut rng, 20, 8);
        assert_eq!(sample.len(), 8);
        let mut sorted = sample.clone();
        sorted.sort_unstable();
        sorted.dedup();
        assert_eq!(sorted.len(), 8);
        assert!(sorted.iter().all(|&i| i < 20));
        // Requesting more than available clamps.
        assert_eq!(sample_distinct(&mut rng, 3, 10).len(), 3);
    }
}
