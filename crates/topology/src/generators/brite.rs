//! BRITE-style two-level (AS-level + router-level) topology generator.
//!
//! The paper's BRITE experiments work as follows (Section 5, "Topologies"):
//! a pair of AS-level and router-level topologies is generated; the
//! AS-level topology becomes the network graph seen by tomography, while
//! the hidden router-level topology determines which AS-level links are
//! correlated — two AS-level links are correlated iff they share at least
//! one router-level link. Congestion probabilities are assigned to
//! *router-level* links and the probabilities of AS-level links (and of
//! sets of correlated AS-level links) are derived from them.
//!
//! This module reproduces that construction without the BRITE binary:
//!
//! 1. the AS-level graph is a Barabási–Albert preferential-attachment graph
//!    (BRITE's default AS model);
//! 2. every AS owns one *core* router and a small number of *border*
//!    routers; each AS-level link `A→B` is mapped to the router-level
//!    segment sequence `core_A → border_A(B)`, `border_A(B) → border_B(A)`,
//!    `border_B(A) → core_B`;
//! 3. neighbouring ASes are assigned to border routers round-robin, so ASes
//!    with more neighbours than border routers force several AS-level links
//!    to share a `core → border` (or `border → core`) router-level link —
//!    which is exactly what makes them correlated;
//! 4. measurement paths are shortest AS-level routes between stub
//!    (low-degree) vantage ASes;
//! 5. the instance is restricted to the AS-level links actually traversed
//!    by some path, and correlation sets are the connected components of
//!    the "shares a router-level link" relation.

use std::collections::BTreeMap;

use rand::Rng;

use crate::correlation::CorrelationPartition;
use crate::error::TopologyError;
use crate::graph::{LinkId, NodeId, Topology};
use crate::path::PathSet;
use crate::routing::{paths_between_vantage_points, restrict_to_paths};
use crate::TopologyInstance;

use super::random::{barabasi_albert_edges, sample_distinct};

/// Configuration of the BRITE-style generator.
#[derive(Debug, Clone, Copy)]
pub struct BriteConfig {
    /// Number of autonomous systems (nodes of the AS-level graph).
    pub num_ases: usize,
    /// Barabási–Albert attachment parameter: how many existing ASes each
    /// new AS connects to.
    pub links_per_new_as: usize,
    /// Routers per AS: one core router plus `routers_per_as - 1` border
    /// routers. Fewer border routers ⇒ more sharing ⇒ larger correlation
    /// sets.
    pub routers_per_as: usize,
    /// Number of vantage ASes (stub ASes hosting measurement end-points).
    pub num_vantage: usize,
    /// Number of measurement paths to generate (the paper uses 1500).
    pub target_paths: usize,
}

impl Default for BriteConfig {
    fn default() -> Self {
        BriteConfig {
            num_ases: 110,
            links_per_new_as: 2,
            routers_per_as: 3,
            num_vantage: 40,
            target_paths: 1500,
        }
    }
}

impl BriteConfig {
    /// A small configuration used by unit tests and quick examples.
    pub fn small() -> Self {
        BriteConfig {
            num_ases: 30,
            links_per_new_as: 2,
            routers_per_as: 3,
            num_vantage: 12,
            target_paths: 120,
        }
    }

    /// Validates the configuration.
    pub fn validate(&self) -> Result<(), TopologyError> {
        if self.num_ases < self.links_per_new_as + 1 {
            return Err(TopologyError::InvalidConfig(format!(
                "num_ases ({}) must exceed links_per_new_as ({})",
                self.num_ases, self.links_per_new_as
            )));
        }
        if self.links_per_new_as == 0 {
            return Err(TopologyError::InvalidConfig(
                "links_per_new_as must be at least 1".to_string(),
            ));
        }
        if self.routers_per_as < 2 {
            return Err(TopologyError::InvalidConfig(
                "routers_per_as must be at least 2 (one core + one border)".to_string(),
            ));
        }
        if self.num_vantage < 2 {
            return Err(TopologyError::InvalidConfig(
                "need at least two vantage ASes".to_string(),
            ));
        }
        if self.num_vantage > self.num_ases {
            return Err(TopologyError::InvalidConfig(format!(
                "num_vantage ({}) exceeds num_ases ({})",
                self.num_vantage, self.num_ases
            )));
        }
        if self.target_paths == 0 {
            return Err(TopologyError::InvalidConfig(
                "target_paths must be at least 1".to_string(),
            ));
        }
        Ok(())
    }
}

/// The output of the BRITE-style generator: the AS-level instance plus the
/// hidden router-level mapping that induced its correlation structure.
#[derive(Debug, Clone)]
pub struct BriteTopology {
    /// The AS-level instance (graph, paths, correlation sets) seen by the
    /// tomography algorithms.
    pub instance: TopologyInstance,
    /// For each AS-level link (indexed by [`LinkId`]), the router-level
    /// links it traverses (dense indices `0..num_router_links`).
    pub router_links: Vec<Vec<usize>>,
    /// Total number of distinct router-level links referenced by
    /// `router_links`.
    pub num_router_links: usize,
}

impl BriteTopology {
    /// Returns, for every router-level link, the AS-level links that
    /// traverse it (the inverse of `router_links`).
    pub fn as_links_per_router_link(&self) -> Vec<Vec<LinkId>> {
        let mut inverse = vec![Vec::new(); self.num_router_links];
        for (link_idx, segments) in self.router_links.iter().enumerate() {
            for &seg in segments {
                inverse[seg].push(LinkId(link_idx));
            }
        }
        inverse
    }

    /// Returns `true` if two AS-level links share at least one router-level
    /// link (i.e. they are genuinely correlated in the hidden substrate).
    pub fn share_router_link(&self, a: LinkId, b: LinkId) -> bool {
        self.router_links[a.index()]
            .iter()
            .any(|seg| self.router_links[b.index()].contains(seg))
    }
}

/// A directed router-level link, identified by its endpoint router ids.
/// Router ids are `(as_index, router_index_within_as)` with router index 0
/// being the core router.
type RouterLink = ((usize, usize), (usize, usize));

/// Generates a BRITE-style topology.
pub fn generate(config: &BriteConfig, rng: &mut impl Rng) -> Result<BriteTopology, TopologyError> {
    config.validate()?;

    // 1. AS-level undirected adjacency via preferential attachment.
    let as_edges = barabasi_albert_edges(rng, config.num_ases, config.links_per_new_as)?;

    // Adjacency lists (used for border-router assignment).
    let mut neighbours: Vec<Vec<usize>> = vec![Vec::new(); config.num_ases];
    for &(a, b) in &as_edges {
        neighbours[a].push(b);
        neighbours[b].push(a);
    }

    // 2. Build the full (unrestricted) AS-level directed graph.
    let mut full = Topology::new();
    for i in 0..config.num_ases {
        full.add_node(format!("AS{}", i + 1));
    }
    // For every directed AS-level link, the router-level segments it uses.
    let mut full_router_links: Vec<Vec<RouterLink>> = Vec::new();
    let num_border = config.routers_per_as - 1;
    let border_of = |as_idx: usize, neighbour: usize| -> usize {
        // Round-robin assignment of neighbours to border routers, by the
        // neighbour's position in the adjacency list.
        let pos = neighbours[as_idx]
            .iter()
            .position(|&n| n == neighbour)
            .expect("neighbour present in adjacency list");
        1 + (pos % num_border)
    };
    for &(a, b) in &as_edges {
        for (src, dst) in [(a, b), (b, a)] {
            let link = full.add_link(NodeId(src), NodeId(dst))?;
            debug_assert_eq!(link.index(), full_router_links.len());
            let src_border = border_of(src, dst);
            let dst_border = border_of(dst, src);
            full_router_links.push(vec![
                ((src, 0), (src, src_border)),
                ((src, src_border), (dst, dst_border)),
                ((dst, dst_border), (dst, 0)),
            ]);
        }
    }

    // 3. Vantage ASes: stub ASes (lowest degree), deterministic tie-break
    // by index, then paths between randomly chosen ordered vantage pairs.
    let mut by_degree: Vec<usize> = (0..config.num_ases).collect();
    by_degree.sort_by_key(|&i| (neighbours[i].len(), i));
    let vantage: Vec<NodeId> = by_degree
        .iter()
        .take(config.num_vantage)
        .map(|&i| NodeId(i))
        .collect();

    let mut pairs: Vec<(NodeId, NodeId)> = Vec::new();
    for &s in &vantage {
        for &t in &vantage {
            if s != t {
                pairs.push((s, t));
            }
        }
    }
    // Randomise the order in which pairs are considered so different seeds
    // exercise different path mixes.
    let order = sample_distinct(rng, pairs.len(), pairs.len());
    let shuffled: Vec<(NodeId, NodeId)> = order.into_iter().map(|i| pairs[i]).collect();
    let path_links = paths_between_vantage_points(&full, &shuffled, config.target_paths);
    if path_links.is_empty() {
        return Err(TopologyError::InvalidConfig(
            "no measurement paths could be generated".to_string(),
        ));
    }

    // 4. Restrict to the links actually used by paths.
    let restricted = restrict_to_paths(&full, &path_links)?;
    let paths = PathSet::new(&restricted.topology, restricted.path_links.clone())?;

    // Re-intern the router-level links of the surviving AS-level links.
    let mut segment_index: BTreeMap<RouterLink, usize> = BTreeMap::new();
    let mut router_links: Vec<Vec<usize>> = Vec::with_capacity(restricted.new_to_old.len());
    for &old in &restricted.new_to_old {
        let mut segments = Vec::with_capacity(3);
        for &seg in &full_router_links[old.index()] {
            let next = segment_index.len();
            let idx = *segment_index.entry(seg).or_insert(next);
            segments.push(idx);
        }
        router_links.push(segments);
    }
    let num_router_links = segment_index.len();

    // 5. Correlation sets: connected components of the "shares a
    // router-level link" relation.
    let correlation = correlation_from_sharing(&router_links, num_router_links)?;

    let instance = TopologyInstance::new(restricted.topology, paths, correlation)?;
    Ok(BriteTopology {
        instance,
        router_links,
        num_router_links,
    })
}

/// Builds the correlation partition whose sets are the connected components
/// of the link-sharing relation induced by `router_links`.
fn correlation_from_sharing(
    router_links: &[Vec<usize>],
    num_router_links: usize,
) -> Result<CorrelationPartition, TopologyError> {
    let num_links = router_links.len();
    // Union-find over AS-level links.
    let mut parent: Vec<usize> = (0..num_links).collect();
    fn find(parent: &mut Vec<usize>, x: usize) -> usize {
        if parent[x] != x {
            let root = find(parent, parent[x]);
            parent[x] = root;
        }
        parent[x]
    }
    // Group AS-level links by the router-level links they traverse.
    let mut users: Vec<Vec<usize>> = vec![Vec::new(); num_router_links];
    for (link, segments) in router_links.iter().enumerate() {
        for &seg in segments {
            users[seg].push(link);
        }
    }
    for group in &users {
        for w in group.windows(2) {
            let a = find(&mut parent, w[0]);
            let b = find(&mut parent, w[1]);
            if a != b {
                parent[a.max(b)] = a.min(b);
            }
        }
    }
    let mut sets_by_root: BTreeMap<usize, Vec<LinkId>> = BTreeMap::new();
    for link in 0..num_links {
        let root = find(&mut parent, link);
        sets_by_root.entry(root).or_default().push(LinkId(link));
    }
    CorrelationPartition::from_sets(num_links, sets_by_root.into_values().collect())
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn small_config_generates_a_consistent_instance() {
        let mut rng = StdRng::seed_from_u64(42);
        let brite = generate(&BriteConfig::small(), &mut rng).unwrap();
        let inst = &brite.instance;
        inst.validate().unwrap();
        assert!(inst.num_paths() > 0);
        assert!(inst.num_paths() <= BriteConfig::small().target_paths);
        assert!(inst.num_links() > 0);
        assert_eq!(brite.router_links.len(), inst.num_links());
        // Every AS-level link maps to exactly three router-level segments.
        assert!(brite.router_links.iter().all(|segs| segs.len() == 3));
        assert!(brite.num_router_links > 0);
    }

    #[test]
    fn correlation_sets_match_router_level_sharing() {
        let mut rng = StdRng::seed_from_u64(7);
        let brite = generate(&BriteConfig::small(), &mut rng).unwrap();
        let inst = &brite.instance;
        // Any two links that share a router-level link must be in the same
        // correlation set.
        for a in inst.topology.link_ids() {
            for b in inst.topology.link_ids() {
                if a == b {
                    continue;
                }
                if brite.share_router_link(a, b) {
                    assert_eq!(
                        inst.correlation.set_of(a),
                        inst.correlation.set_of(b),
                        "links {a} and {b} share a router link but are in different sets"
                    );
                }
            }
        }
        // There must be some genuine correlation in the generated topology
        // (that is the whole point of the scenario).
        let correlated_pairs = inst
            .topology
            .link_ids()
            .flat_map(|a| inst.topology.link_ids().map(move |b| (a, b)))
            .filter(|&(a, b)| a < b && brite.share_router_link(a, b))
            .count();
        assert!(correlated_pairs > 0, "expected some correlated link pairs");
    }

    #[test]
    fn correlation_sets_are_no_finer_than_sharing_components() {
        // Links in the same correlation set are connected through a chain
        // of sharing relations; verify for a generated instance by checking
        // that singleton sets never share and multi-link sets contain at
        // least one sharing pair.
        let mut rng = StdRng::seed_from_u64(9);
        let brite = generate(&BriteConfig::small(), &mut rng).unwrap();
        let inst = &brite.instance;
        for (_, links) in inst.correlation.sets() {
            if links.len() < 2 {
                continue;
            }
            let has_sharing_pair = links.iter().any(|&a| {
                links
                    .iter()
                    .any(|&b| a != b && brite.share_router_link(a, b))
            });
            assert!(has_sharing_pair, "multi-link set without any sharing pair");
        }
    }

    #[test]
    fn generation_is_deterministic_per_seed() {
        let a = generate(&BriteConfig::small(), &mut StdRng::seed_from_u64(5)).unwrap();
        let b = generate(&BriteConfig::small(), &mut StdRng::seed_from_u64(5)).unwrap();
        assert_eq!(a.instance.num_links(), b.instance.num_links());
        assert_eq!(a.instance.num_paths(), b.instance.num_paths());
        assert_eq!(a.router_links, b.router_links);
    }

    #[test]
    fn inverse_mapping_is_consistent() {
        let mut rng = StdRng::seed_from_u64(13);
        let brite = generate(&BriteConfig::small(), &mut rng).unwrap();
        let inverse = brite.as_links_per_router_link();
        assert_eq!(inverse.len(), brite.num_router_links);
        for (seg, as_links) in inverse.iter().enumerate() {
            for link in as_links {
                assert!(brite.router_links[link.index()].contains(&seg));
            }
        }
    }

    #[test]
    fn invalid_configs_are_rejected() {
        let mut rng = StdRng::seed_from_u64(1);
        let mut c = BriteConfig::small();
        c.routers_per_as = 1;
        assert!(generate(&c, &mut rng).is_err());
        let mut c = BriteConfig::small();
        c.num_vantage = 1;
        assert!(generate(&c, &mut rng).is_err());
        let mut c = BriteConfig::small();
        c.num_vantage = c.num_ases + 1;
        assert!(generate(&c, &mut rng).is_err());
        let mut c = BriteConfig::small();
        c.target_paths = 0;
        assert!(generate(&c, &mut rng).is_err());
        let mut c = BriteConfig::small();
        c.num_ases = 2;
        assert!(generate(&c, &mut rng).is_err());
    }

    #[test]
    fn default_config_is_paper_scale() {
        let c = BriteConfig::default();
        assert_eq!(c.target_paths, 1500);
        assert!(c.validate().is_ok());
    }
}
