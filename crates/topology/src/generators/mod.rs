//! Synthetic topology generators.
//!
//! The paper evaluates on two families of topologies:
//!
//! * **BRITE topologies** — pairs of AS-level and router-level graphs
//!   produced by the BRITE generator, where the hidden router-level graph
//!   induces the correlation structure among AS-level links (two AS-level
//!   links are correlated iff they share a router-level link).
//! * **PlanetLab topologies** — traceroute-derived router graphs between
//!   PlanetLab vantage points, with correlation sets formed by contiguous
//!   clusters of links (modelling LANs / administrative domains).
//!
//! Neither BRITE itself nor live PlanetLab traceroutes are available to
//! this crate, so [`brite`] and [`planetlab`] synthesise topologies with
//! the same structural properties (see DESIGN.md for the substitution
//! rationale). [`random`] contains the shared random-graph primitives.

pub mod brite;
pub mod planetlab;
pub mod random;

pub use brite::{BriteConfig, BriteTopology};
pub use planetlab::PlanetLabConfig;
