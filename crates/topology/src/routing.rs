//! Routing helpers: shortest paths and path-set construction.
//!
//! The network model treats paths as given (they are whatever the routing
//! protocol produced and traceroute observed). The generators in this crate
//! synthesise realistic path sets by computing shortest paths between
//! vantage points, which is also how the paper's simulated topologies are
//! built (BRITE AS-level routes, PlanetLab traceroute paths).

use std::collections::VecDeque;

use crate::error::TopologyError;
use crate::graph::{LinkId, NodeId, Topology};

/// Computes a shortest (minimum-hop) path from `source` to `target` as a
/// sequence of links, using breadth-first search over the directed graph.
/// Ties are broken deterministically by link insertion order.
///
/// Returns `None` if `target` is unreachable from `source` or if
/// `source == target` (paths must traverse at least one link).
pub fn shortest_path(topology: &Topology, source: NodeId, target: NodeId) -> Option<Vec<LinkId>> {
    if source == target {
        return None;
    }
    let n = topology.num_nodes();
    if source.index() >= n || target.index() >= n {
        return None;
    }
    let mut predecessor: Vec<Option<LinkId>> = vec![None; n];
    let mut visited = vec![false; n];
    let mut queue = VecDeque::new();
    visited[source.index()] = true;
    queue.push_back(source);
    while let Some(node) = queue.pop_front() {
        if node == target {
            break;
        }
        for &link in topology.out_links(node) {
            let next = topology.link(link).target;
            if !visited[next.index()] {
                visited[next.index()] = true;
                predecessor[next.index()] = Some(link);
                queue.push_back(next);
            }
        }
    }
    if !visited[target.index()] {
        return None;
    }
    // Walk the predecessors back from the target.
    let mut links = Vec::new();
    let mut current = target;
    while current != source {
        let link = predecessor[current.index()]?;
        links.push(link);
        current = topology.link(link).source;
    }
    links.reverse();
    Some(links)
}

/// Computes the hop distance from `source` to every node (`None` when
/// unreachable). Useful for picking well-separated vantage points.
pub fn hop_distances(topology: &Topology, source: NodeId) -> Vec<Option<usize>> {
    let n = topology.num_nodes();
    let mut dist = vec![None; n];
    if source.index() >= n {
        return dist;
    }
    let mut queue = VecDeque::new();
    dist[source.index()] = Some(0);
    queue.push_back(source);
    while let Some(node) = queue.pop_front() {
        let d = dist[node.index()].expect("queued nodes have a distance");
        for &link in topology.out_links(node) {
            let next = topology.link(link).target;
            if dist[next.index()].is_none() {
                dist[next.index()] = Some(d + 1);
                queue.push_back(next);
            }
        }
    }
    dist
}

/// Returns `true` if every node is reachable from `source` following
/// directed links.
pub fn all_reachable_from(topology: &Topology, source: NodeId) -> bool {
    hop_distances(topology, source).iter().all(Option::is_some)
}

/// Enumerates shortest paths between ordered pairs of vantage nodes, in the
/// order the pairs are listed, skipping unreachable pairs and duplicate
/// link sequences, until `max_paths` paths have been collected.
pub fn paths_between_vantage_points(
    topology: &Topology,
    vantage_pairs: &[(NodeId, NodeId)],
    max_paths: usize,
) -> Vec<Vec<LinkId>> {
    let mut paths: Vec<Vec<LinkId>> = Vec::new();
    for &(s, t) in vantage_pairs {
        if paths.len() >= max_paths {
            break;
        }
        if let Some(links) = shortest_path(topology, s, t) {
            if !paths.contains(&links) {
                paths.push(links);
            }
        }
    }
    paths
}

/// The result of restricting a topology to the links actually used by a set
/// of paths. Needed because the network model requires that every link
/// participates in at least one path, while generated graphs usually have
/// links that no measurement path happens to traverse.
#[derive(Debug, Clone)]
pub struct RestrictedTopology {
    /// The restricted topology (same nodes, only the used links, re-indexed
    /// densely in order of first use).
    pub topology: Topology,
    /// The paths, rewritten in terms of the new link ids.
    pub path_links: Vec<Vec<LinkId>>,
    /// For each new link id (by index), the link id it had in the original
    /// topology.
    pub new_to_old: Vec<LinkId>,
    /// For each original link id (by index), its new id if it was kept.
    pub old_to_new: Vec<Option<LinkId>>,
}

/// Restricts `topology` to the links traversed by `path_links`,
/// renumbering links densely. Nodes are kept as-is (isolated nodes are
/// harmless).
pub fn restrict_to_paths(
    topology: &Topology,
    path_links: &[Vec<LinkId>],
) -> Result<RestrictedTopology, TopologyError> {
    let mut old_to_new: Vec<Option<LinkId>> = vec![None; topology.num_links()];
    let mut new_to_old: Vec<LinkId> = Vec::new();
    let mut restricted = Topology::new();
    for node in topology.nodes() {
        restricted.add_node(node.name.clone());
    }
    let mut new_paths = Vec::with_capacity(path_links.len());
    for links in path_links {
        let mut new_links = Vec::with_capacity(links.len());
        for &old in links {
            if old.index() >= topology.num_links() {
                return Err(TopologyError::UnknownLink(old));
            }
            let new_id = match old_to_new[old.index()] {
                Some(id) => id,
                None => {
                    let link = topology.link(old);
                    let id = restricted.add_link(link.source, link.target)?;
                    old_to_new[old.index()] = Some(id);
                    new_to_old.push(old);
                    id
                }
            };
            new_links.push(new_id);
        }
        new_paths.push(new_links);
    }
    Ok(RestrictedTopology {
        topology: restricted,
        path_links: new_paths,
        new_to_old,
        old_to_new,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A diamond: v1 -> v2 -> v4 and v1 -> v3 -> v4, plus a long detour
    /// v1 -> v5 -> v6 -> v4.
    fn diamond() -> (Topology, Vec<NodeId>) {
        let mut t = Topology::new();
        let v = t.add_nodes(6);
        t.add_link(v[0], v[1]).unwrap(); // e1
        t.add_link(v[1], v[3]).unwrap(); // e2
        t.add_link(v[0], v[2]).unwrap(); // e3
        t.add_link(v[2], v[3]).unwrap(); // e4
        t.add_link(v[0], v[4]).unwrap(); // e5
        t.add_link(v[4], v[5]).unwrap(); // e6
        t.add_link(v[5], v[3]).unwrap(); // e7
        (t, v)
    }

    #[test]
    fn shortest_path_prefers_fewer_hops() {
        let (t, v) = diamond();
        let p = shortest_path(&t, v[0], v[3]).unwrap();
        assert_eq!(p.len(), 2, "the detour has 3 hops, the direct routes 2");
        // Deterministic tie-break: the first inserted route (via v2).
        assert_eq!(p, vec![LinkId(0), LinkId(1)]);
    }

    #[test]
    fn shortest_path_handles_unreachable_and_trivial_cases() {
        let (t, v) = diamond();
        // Nothing points back to v1.
        assert_eq!(shortest_path(&t, v[3], v[0]), None);
        assert_eq!(shortest_path(&t, v[0], v[0]), None);
        assert_eq!(shortest_path(&t, NodeId(99), v[0]), None);
    }

    #[test]
    fn hop_distances_and_reachability() {
        let (t, v) = diamond();
        let d = hop_distances(&t, v[0]);
        assert_eq!(d[v[0].index()], Some(0));
        assert_eq!(d[v[1].index()], Some(1));
        assert_eq!(d[v[3].index()], Some(2));
        assert_eq!(d[v[5].index()], Some(2));
        assert!(!all_reachable_from(&t, v[3]));
        assert!(all_reachable_from(&t, v[0]));
    }

    #[test]
    fn vantage_pair_paths_are_unique_and_bounded() {
        let (t, v) = diamond();
        let pairs = vec![(v[0], v[3]), (v[0], v[3]), (v[0], v[5]), (v[3], v[0])];
        let paths = paths_between_vantage_points(&t, &pairs, 10);
        assert_eq!(
            paths.len(),
            2,
            "duplicate and unreachable pairs are skipped"
        );
        let capped = paths_between_vantage_points(&t, &pairs, 1);
        assert_eq!(capped.len(), 1);
    }

    #[test]
    fn restriction_drops_unused_links_and_remaps_paths() {
        let (t, v) = diamond();
        let p1 = shortest_path(&t, v[0], v[3]).unwrap();
        let p2 = vec![LinkId(4), LinkId(5), LinkId(6)]; // the detour
        let restricted = restrict_to_paths(&t, &[p1.clone(), p2.clone()]).unwrap();
        assert_eq!(restricted.topology.num_links(), 5);
        assert_eq!(restricted.path_links.len(), 2);
        // Every new link maps back to an original link with the same
        // endpoints.
        for (new_idx, &old) in restricted.new_to_old.iter().enumerate() {
            let new_link = restricted.topology.link(LinkId(new_idx));
            let old_link = t.link(old);
            assert_eq!(new_link.source, old_link.source);
            assert_eq!(new_link.target, old_link.target);
        }
        // Unused links (the v1->v3->v4 branch) are gone.
        assert!(restricted.old_to_new[2].is_none());
        assert!(restricted.old_to_new[3].is_none());
        // The remapped paths can build a valid PathSet (all links used).
        let ps = crate::path::PathSet::new(&restricted.topology, restricted.path_links.clone());
        assert!(ps.is_ok());
    }

    #[test]
    fn restriction_rejects_unknown_links() {
        let (t, _) = diamond();
        assert!(matches!(
            restrict_to_paths(&t, &[vec![LinkId(42)]]),
            Err(TopologyError::UnknownLink(LinkId(42)))
        ));
    }
}
