//! # netcorr-topology — the network model substrate
//!
//! This crate implements the network model of Section 2 of *"Network
//! Tomography on Correlated Links"* (Ghita et al., IMC 2010) and everything
//! needed to construct realistic instances of it:
//!
//! * [`graph`] — directed graphs of nodes and *logical* links.
//! * [`path`] — measurement paths and the coverage function ψ.
//! * [`correlation`] — correlation sets / subsets (the partition `C` and
//!   the family `C̃`).
//! * [`identifiability`] — Assumption 4 analysis: which correlation subsets
//!   (and therefore which links) are identifiable from end-to-end
//!   measurements.
//! * [`merge`] — the merging transformation of Section 3.3 that collapses
//!   unidentifiable consecutive correlation subsets into merged links.
//! * [`routing`] — shortest-path helpers used to build path sets.
//! * [`toy`] — the paper's toy topologies (Figures 1(a), 1(b), 2(a)).
//! * [`generators`] — synthetic topology generators standing in for the
//!   paper's BRITE and PlanetLab topologies.
//!
//! The central convenience type is [`TopologyInstance`], which bundles a
//! topology, its path set and its correlation partition — the three inputs
//! every tomography algorithm takes.

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod correlation;
pub mod error;
pub mod generators;
pub mod graph;
pub mod identifiability;
pub mod merge;
pub mod path;
pub mod routing;
pub mod toy;

pub use correlation::{CorrelationPartition, CorrelationSetId};
pub use error::TopologyError;
pub use graph::{Link, LinkId, Node, NodeId, Topology};
pub use path::{Path, PathId, PathSet};

use serde::{Deserialize, Serialize};

/// A complete problem instance: the network graph, the measurement paths
/// over it, and the correlation partition of its links.
///
/// This is the triple `(G, P, C)` that the feasibility result (Theorem 1)
/// and both inference algorithms operate on.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct TopologyInstance {
    /// The network graph `G = (V, E)`.
    pub topology: Topology,
    /// The measurement paths `P`.
    pub paths: PathSet,
    /// The correlation partition `C` of the links.
    pub correlation: CorrelationPartition,
}

impl TopologyInstance {
    /// Builds an instance, validating that the three components agree on
    /// the number of links.
    pub fn new(
        topology: Topology,
        paths: PathSet,
        correlation: CorrelationPartition,
    ) -> Result<Self, TopologyError> {
        let instance = TopologyInstance {
            topology,
            paths,
            correlation,
        };
        instance.validate()?;
        Ok(instance)
    }

    /// Number of links `|E|`.
    pub fn num_links(&self) -> usize {
        self.topology.num_links()
    }

    /// Number of paths `|P|`.
    pub fn num_paths(&self) -> usize {
        self.paths.num_paths()
    }

    /// Number of correlation sets `|C|`.
    pub fn num_correlation_sets(&self) -> usize {
        self.correlation.num_sets()
    }

    /// Checks that the graph, paths and correlation partition are mutually
    /// consistent.
    pub fn validate(&self) -> Result<(), TopologyError> {
        self.topology.validate()?;
        if self.paths.num_links() != self.topology.num_links() {
            return Err(TopologyError::Inconsistent(format!(
                "path set built over {} links, topology has {}",
                self.paths.num_links(),
                self.topology.num_links()
            )));
        }
        if self.correlation.num_links() != self.topology.num_links() {
            return Err(TopologyError::Inconsistent(format!(
                "correlation partition over {} links, topology has {}",
                self.correlation.num_links(),
                self.topology.num_links()
            )));
        }
        Ok(())
    }

    /// Replaces the correlation partition (e.g. to compare the
    /// correlation-aware algorithm against the independence baseline on the
    /// same topology).
    pub fn with_correlation(
        &self,
        correlation: CorrelationPartition,
    ) -> Result<Self, TopologyError> {
        TopologyInstance::new(self.topology.clone(), self.paths.clone(), correlation)
    }

    /// Convenience: the partition in which every link is independent
    /// (what the independence baseline assumes).
    pub fn with_singleton_correlation(&self) -> Self {
        TopologyInstance {
            topology: self.topology.clone(),
            paths: self.paths.clone(),
            correlation: CorrelationPartition::singletons(self.topology.num_links()),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn instance_validation_catches_mismatched_components() {
        let good = toy::figure_1a();
        assert!(good.validate().is_ok());

        // Correlation partition over the wrong number of links.
        let bad = TopologyInstance {
            topology: good.topology.clone(),
            paths: good.paths.clone(),
            correlation: CorrelationPartition::singletons(2),
        };
        assert!(matches!(
            bad.validate(),
            Err(TopologyError::Inconsistent(_))
        ));
    }

    #[test]
    fn with_singleton_correlation_makes_every_link_independent() {
        let inst = toy::figure_1a();
        let indep = inst.with_singleton_correlation();
        assert_eq!(indep.num_correlation_sets(), indep.num_links());
        assert!(indep.validate().is_ok());
    }

    #[test]
    fn with_correlation_validates_the_new_partition() {
        let inst = toy::figure_1a();
        let ok = inst.with_correlation(CorrelationPartition::single_set(4));
        assert!(ok.is_ok());
        let err = inst.with_correlation(CorrelationPartition::single_set(3));
        assert!(err.is_err());
    }

    #[test]
    fn counts_are_exposed() {
        let inst = toy::figure_1a();
        assert_eq!(inst.num_links(), 4);
        assert_eq!(inst.num_paths(), 3);
        assert_eq!(inst.num_correlation_sets(), 3);
    }
}
