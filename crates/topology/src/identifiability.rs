//! Assumption 4 (identifiability) analysis.
//!
//! Assumption 4 of the paper requires that no two distinct correlation
//! subsets `A, B ∈ C̃` cover exactly the same set of paths
//! (`ψ(A) ≠ ψ(B)`). When it holds, the congestion probability of every set
//! of links is identifiable from end-to-end measurements (Theorem 1); when
//! it fails, the links that belong to the conflicting subsets are
//! *unidentifiable* — their congestion probability cannot be computed
//! accurately, although the rest of the network still can (Section 5,
//! "Unidentifiable Links").
//!
//! Two analyses are provided:
//!
//! * [`check_identifiability`] — the exact check: enumerate every
//!   correlation subset of every correlation set, compute its coverage
//!   signature and look for collisions. Exponential in the size of a
//!   correlation set, so sets larger than
//!   [`IdentifiabilityConfig::max_subset_size`] are only partially
//!   enumerated (all subsets up to size 2 plus the full set) and reported
//!   as truncated.
//! * [`node_heuristic_violations`] — the structural heuristic of
//!   Section 3.3: an intermediate node whose ingress links all belong to
//!   one correlation set and whose egress links all belong to one
//!   correlation set makes the two subsets cover the same paths.

use std::collections::{BTreeMap, BTreeSet};

use crate::correlation::CorrelationSetId;
use crate::graph::{LinkId, NodeId};
use crate::path::PathId;
use crate::TopologyInstance;

/// Configuration of the exhaustive identifiability check.
#[derive(Debug, Clone, Copy)]
pub struct IdentifiabilityConfig {
    /// Correlation sets with more links than this are not exhaustively
    /// enumerated; only their singletons, pairs and the full set are
    /// checked, and the set is reported in
    /// [`IdentifiabilityReport::truncated_sets`].
    pub max_subset_size: usize,
}

impl Default for IdentifiabilityConfig {
    fn default() -> Self {
        IdentifiabilityConfig {
            max_subset_size: 16,
        }
    }
}

/// A pair of correlation subsets that cover exactly the same set of paths,
/// violating Assumption 4.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CoverageConflict {
    /// The first subset.
    pub subset_a: Vec<LinkId>,
    /// The second subset.
    pub subset_b: Vec<LinkId>,
    /// The common coverage `ψ(A) = ψ(B)`.
    pub coverage: BTreeSet<PathId>,
}

/// The result of an identifiability analysis.
#[derive(Debug, Clone)]
pub struct IdentifiabilityReport {
    /// `true` if no coverage collision was found among the enumerated
    /// subsets (and no correlation set had to be truncated).
    pub holds: bool,
    /// Representative conflicting subset pairs (one per colliding coverage
    /// signature, pairing the first two subsets found).
    pub conflicts: Vec<CoverageConflict>,
    /// Links that belong to at least one conflicting correlation subset;
    /// these are the "unidentifiable links" of Section 5.
    pub unidentifiable_links: BTreeSet<LinkId>,
    /// Total number of correlation subsets whose coverage was computed.
    pub checked_subsets: usize,
    /// Correlation sets that were too large for exhaustive enumeration.
    pub truncated_sets: Vec<CorrelationSetId>,
}

impl IdentifiabilityReport {
    /// `true` if `link` was found to be unidentifiable.
    pub fn is_unidentifiable(&self, link: LinkId) -> bool {
        self.unidentifiable_links.contains(&link)
    }

    /// The identifiable links of the instance (complement of
    /// [`IdentifiabilityReport::unidentifiable_links`]).
    pub fn identifiable_links(&self, num_links: usize) -> Vec<LinkId> {
        (0..num_links)
            .map(LinkId)
            .filter(|l| !self.unidentifiable_links.contains(l))
            .collect()
    }
}

/// Runs the exact identifiability check on an instance.
pub fn check_identifiability(
    instance: &TopologyInstance,
    config: IdentifiabilityConfig,
) -> IdentifiabilityReport {
    let mut signature_to_subsets: BTreeMap<Vec<PathId>, Vec<Vec<LinkId>>> = BTreeMap::new();
    let mut truncated_sets = Vec::new();
    let mut checked_subsets = 0;

    for (set_id, links) in instance.correlation.sets() {
        let subsets: Vec<Vec<LinkId>> = if links.len() <= config.max_subset_size {
            instance
                .correlation
                .subsets_of_set(set_id, config.max_subset_size)
                .expect("size checked above")
        } else {
            truncated_sets.push(set_id);
            truncated_subsets(links)
        };
        for subset in subsets {
            let coverage: Vec<PathId> = instance.paths.coverage(&subset).into_iter().collect();
            checked_subsets += 1;
            signature_to_subsets
                .entry(coverage)
                .or_default()
                .push(subset);
        }
    }

    let mut conflicts = Vec::new();
    let mut unidentifiable_links = BTreeSet::new();
    for (signature, subsets) in &signature_to_subsets {
        if subsets.len() < 2 {
            continue;
        }
        for subset in subsets {
            unidentifiable_links.extend(subset.iter().copied());
        }
        conflicts.push(CoverageConflict {
            subset_a: subsets[0].clone(),
            subset_b: subsets[1].clone(),
            coverage: signature.iter().copied().collect(),
        });
    }

    IdentifiabilityReport {
        holds: conflicts.is_empty() && truncated_sets.is_empty(),
        conflicts,
        unidentifiable_links,
        checked_subsets,
        truncated_sets,
    }
}

/// Partial subset enumeration for oversized correlation sets: all
/// singletons, all pairs and the full set. Coverage collisions among these
/// small subsets catch the overwhelmingly common violations (they are the
/// ones produced by the structural pattern of Section 3.3) without the
/// exponential blow-up.
fn truncated_subsets(links: &[LinkId]) -> Vec<Vec<LinkId>> {
    let mut subsets: Vec<Vec<LinkId>> = Vec::new();
    for (i, &a) in links.iter().enumerate() {
        subsets.push(vec![a]);
        for &b in &links[i + 1..] {
            subsets.push(vec![a, b]);
        }
    }
    // The full set, unless it is already covered by the pair enumeration.
    if links.len() > 2 {
        subsets.push(links.to_vec());
    }
    subsets
}

/// The structural heuristic of Section 3.3: returns the intermediate nodes
/// whose ingress links all belong to one correlation set and whose egress
/// links all belong to one correlation set. Each such node makes the
/// correlation subset formed by its ingress links and the one formed by its
/// egress links cover (essentially) the same paths, so Assumption 4 is
/// expected to fail around it.
pub fn node_heuristic_violations(instance: &TopologyInstance) -> Vec<NodeId> {
    let mut violations = Vec::new();
    for node in instance.topology.node_ids() {
        if !instance.topology.is_intermediate(node) {
            continue;
        }
        let ingress = instance.topology.in_links(node);
        let egress = instance.topology.out_links(node);
        let ingress_sets: BTreeSet<CorrelationSetId> = ingress
            .iter()
            .map(|&l| instance.correlation.set_of(l))
            .collect();
        let egress_sets: BTreeSet<CorrelationSetId> = egress
            .iter()
            .map(|&l| instance.correlation.set_of(l))
            .collect();
        if ingress_sets.len() == 1 && egress_sets.len() == 1 {
            violations.push(node);
        }
    }
    violations
}

/// The links adjacent to any node flagged by
/// [`node_heuristic_violations`] — a cheap over-approximation of the
/// unidentifiable links, used by the evaluation harness when constructing
/// scenarios with a target fraction of unidentifiable links.
pub fn heuristic_unidentifiable_links(instance: &TopologyInstance) -> BTreeSet<LinkId> {
    let mut links = BTreeSet::new();
    for node in node_heuristic_violations(instance) {
        links.extend(instance.topology.in_links(node).iter().copied());
        links.extend(instance.topology.out_links(node).iter().copied());
    }
    links
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::toy;

    #[test]
    fn assumption_4_holds_on_figure_1a() {
        let inst = toy::figure_1a();
        let report = check_identifiability(&inst, IdentifiabilityConfig::default());
        assert!(report.holds, "conflicts: {:?}", report.conflicts);
        assert!(report.unidentifiable_links.is_empty());
        // |C̃| = 5 subsets checked.
        assert_eq!(report.checked_subsets, 5);
        assert!(report.truncated_sets.is_empty());
        assert!(node_heuristic_violations(&inst).is_empty());
    }

    #[test]
    fn assumption_4_fails_on_figure_1b() {
        let inst = toy::figure_1b();
        let report = check_identifiability(&inst, IdentifiabilityConfig::default());
        assert!(!report.holds);
        assert_eq!(report.conflicts.len(), 1);
        let conflict = &report.conflicts[0];
        // {e1, e2} vs {e3}, both covering {P1, P2}.
        let mut subsets = [conflict.subset_a.clone(), conflict.subset_b.clone()];
        subsets.sort();
        assert_eq!(subsets[0], vec![LinkId(0), LinkId(1)]);
        assert_eq!(subsets[1], vec![LinkId(2)]);
        assert_eq!(
            conflict.coverage,
            BTreeSet::from([crate::path::PathId(0), crate::path::PathId(1)])
        );
        // All three links are unidentifiable.
        assert_eq!(
            report.unidentifiable_links,
            BTreeSet::from([LinkId(0), LinkId(1), LinkId(2)])
        );
        assert!(report.identifiable_links(3).is_empty());
        // The structural heuristic flags node v3 (index 2).
        assert_eq!(node_heuristic_violations(&inst), vec![NodeId(2)]);
        assert_eq!(
            heuristic_unidentifiable_links(&inst),
            BTreeSet::from([LinkId(0), LinkId(1), LinkId(2)])
        );
    }

    #[test]
    fn single_correlation_set_fails_everywhere_on_figure_1a() {
        let inst = toy::figure_1a_single_set();
        let report = check_identifiability(&inst, IdentifiabilityConfig::default());
        assert!(!report.holds);
        // Node v3 has all ingress and egress links in the same set.
        assert_eq!(node_heuristic_violations(&inst), vec![NodeId(2)]);
        // e.g. {e3, e4} covers all three paths, just like {e1, e2}, etc.
        assert!(!report.conflicts.is_empty());
        assert!(!report.unidentifiable_links.is_empty());
    }

    #[test]
    fn lan_scenario_with_identifiable_structure() {
        let inst = toy::figure_2a_lan();
        let report = check_identifiability(&inst, IdentifiabilityConfig::default());
        // Every correlation subset of the LAN covers a distinct set of
        // paths because each router pair is reached via a distinct access
        // link combination.
        assert!(report.holds, "conflicts: {:?}", report.conflicts);
        assert!(node_heuristic_violations(&inst).is_empty());
    }

    #[test]
    fn truncated_enumeration_reports_oversized_sets() {
        let inst = toy::figure_1a();
        let config = IdentifiabilityConfig { max_subset_size: 1 };
        let report = check_identifiability(&inst, config);
        // The {e1, e2} set exceeds the limit, so the report cannot claim
        // that the assumption holds.
        assert!(!report.holds);
        assert_eq!(report.truncated_sets, vec![CorrelationSetId(0)]);
        // But no actual conflict exists among the enumerated subsets.
        assert!(report.conflicts.is_empty());
    }

    #[test]
    fn truncated_subsets_include_singletons_pairs_and_full_set() {
        let links: Vec<LinkId> = (0..5).map(LinkId).collect();
        let subsets = truncated_subsets(&links);
        // 5 singletons + 10 pairs + 1 full set.
        assert_eq!(subsets.len(), 16);
        assert!(subsets.contains(&vec![LinkId(0)]));
        assert!(subsets.contains(&vec![LinkId(1), LinkId(4)]));
        assert!(subsets.contains(&links));
    }

    #[test]
    fn report_accessors() {
        let inst = toy::figure_1b();
        let report = check_identifiability(&inst, IdentifiabilityConfig::default());
        assert!(report.is_unidentifiable(LinkId(0)));
        assert_eq!(report.identifiable_links(3).len(), 0);
        let inst_a = toy::figure_1a();
        let report_a = check_identifiability(&inst_a, IdentifiabilityConfig::default());
        assert!(!report_a.is_unidentifiable(LinkId(0)));
        assert_eq!(report_a.identifiable_links(4).len(), 4);
    }
}
