//! Correlation sets and correlation subsets.
//!
//! The paper's model (Section 2.1, "Link Correlation") partitions the link
//! set `E` into *correlation sets* `C = {C_1, ..., C_|C|}`: two links from
//! the same set may be correlated with one another, while links from
//! different sets are guaranteed to be uncorrelated. The operator knows the
//! partition (e.g. "all links of this LAN", "all links of that AS") but not
//! the degree of correlation inside each set.
//!
//! A *correlation subset* is any non-empty subset `A ⊆ C_p` of a
//! correlation set; the set of all correlation subsets is denoted `C̃`.
//! Correlation subsets are the unit of the identifiability analysis
//! (Assumption 4) and of the exact algorithm in the proof of Theorem 1.

use serde::{Deserialize, Serialize};
use std::fmt;

use crate::error::TopologyError;
use crate::graph::LinkId;

/// Identifier of a correlation set within a [`CorrelationPartition`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct CorrelationSetId(pub usize);

impl CorrelationSetId {
    /// The raw index of the correlation set.
    pub fn index(self) -> usize {
        self.0
    }
}

impl fmt::Display for CorrelationSetId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "C{}", self.0 + 1)
    }
}

/// Default limit on the size of a correlation set for exhaustive subset
/// enumeration (2^24 subsets is already ~16 M; anything larger is clearly a
/// job for the practical algorithm, not the exact one).
pub const DEFAULT_SUBSET_ENUMERATION_LIMIT: usize = 20;

/// A partition of the link set into correlation sets.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct CorrelationPartition {
    sets: Vec<Vec<LinkId>>,
    link_to_set: Vec<CorrelationSetId>,
}

impl CorrelationPartition {
    /// Builds a partition from explicit correlation sets.
    ///
    /// Every link `0..num_links` must appear in exactly one set, and sets
    /// must be non-empty. Link ids inside each set are sorted and
    /// de-duplicated representations are rejected (a duplicate makes the
    /// collection not a partition).
    pub fn from_sets(num_links: usize, sets: Vec<Vec<LinkId>>) -> Result<Self, TopologyError> {
        let mut occurrences = vec![0usize; num_links];
        let mut cleaned_sets = Vec::with_capacity(sets.len());
        for set in sets {
            if set.is_empty() {
                return Err(TopologyError::EmptyCorrelationSet);
            }
            let mut s = set;
            s.sort_unstable();
            for &l in &s {
                if l.index() >= num_links {
                    return Err(TopologyError::UnknownLink(l));
                }
                occurrences[l.index()] += 1;
            }
            cleaned_sets.push(s);
        }
        for (idx, &count) in occurrences.iter().enumerate() {
            if count != 1 {
                return Err(TopologyError::NotAPartition {
                    link: LinkId(idx),
                    occurrences: count,
                });
            }
        }
        let mut link_to_set = vec![CorrelationSetId(0); num_links];
        for (set_idx, set) in cleaned_sets.iter().enumerate() {
            for &l in set {
                link_to_set[l.index()] = CorrelationSetId(set_idx);
            }
        }
        Ok(CorrelationPartition {
            sets: cleaned_sets,
            link_to_set,
        })
    }

    /// The partition in which every link is its own correlation set, i.e.
    /// the classical "all links are independent" model.
    pub fn singletons(num_links: usize) -> Self {
        CorrelationPartition {
            sets: (0..num_links).map(|i| vec![LinkId(i)]).collect(),
            link_to_set: (0..num_links).map(CorrelationSetId).collect(),
        }
    }

    /// The partition in which all links belong to a single correlation set
    /// (the "everything may be correlated" extreme discussed in
    /// Section 3.3).
    pub fn single_set(num_links: usize) -> Self {
        CorrelationPartition {
            sets: vec![(0..num_links).map(LinkId).collect()],
            link_to_set: vec![CorrelationSetId(0); num_links],
        }
    }

    /// Number of links in the partition.
    pub fn num_links(&self) -> usize {
        self.link_to_set.len()
    }

    /// Number of correlation sets `|C|`.
    pub fn num_sets(&self) -> usize {
        self.sets.len()
    }

    /// The correlation set containing `link`.
    ///
    /// # Panics
    ///
    /// Panics if the link id is out of range.
    pub fn set_of(&self, link: LinkId) -> CorrelationSetId {
        self.link_to_set[link.index()]
    }

    /// The (sorted) links of a correlation set.
    ///
    /// # Panics
    ///
    /// Panics if the set id is out of range.
    pub fn set_links(&self, set: CorrelationSetId) -> &[LinkId] {
        &self.sets[set.index()]
    }

    /// Iterates over `(set id, links)` pairs.
    pub fn sets(&self) -> impl Iterator<Item = (CorrelationSetId, &[LinkId])> {
        self.sets
            .iter()
            .enumerate()
            .map(|(i, s)| (CorrelationSetId(i), s.as_slice()))
    }

    /// Iterates over all correlation set ids.
    pub fn set_ids(&self) -> impl Iterator<Item = CorrelationSetId> {
        (0..self.sets.len()).map(CorrelationSetId)
    }

    /// Size of the largest correlation set.
    pub fn max_set_size(&self) -> usize {
        self.sets.iter().map(Vec::len).max().unwrap_or(0)
    }

    /// Returns `true` if `a` and `b` are distinct links that may be
    /// correlated (i.e. they belong to the same correlation set).
    pub fn are_potentially_correlated(&self, a: LinkId, b: LinkId) -> bool {
        a != b && self.set_of(a) == self.set_of(b)
    }

    /// Returns `true` if the links in `links` are mutually uncorrelated,
    /// i.e. no two distinct links among them belong to the same correlation
    /// set. This is the eligibility test used by the practical algorithm to
    /// select usable paths and path pairs ("paths that do not involve any
    /// correlated links", Section 4).
    pub fn mutually_uncorrelated(&self, links: &[LinkId]) -> bool {
        let mut seen_sets = vec![false; self.num_sets()];
        let mut seen_links = std::collections::BTreeSet::new();
        for &l in links {
            if !seen_links.insert(l) {
                // The same link listed twice (e.g. shared by both paths of a
                // pair) does not make the collection correlated with itself.
                continue;
            }
            let s = self.set_of(l).index();
            if seen_sets[s] {
                return false;
            }
            seen_sets[s] = true;
        }
        true
    }

    /// The other links that `link` may be correlated with (its correlation
    /// set minus itself).
    pub fn correlated_partners(&self, link: LinkId) -> Vec<LinkId> {
        self.set_links(self.set_of(link))
            .iter()
            .copied()
            .filter(|&l| l != link)
            .collect()
    }

    /// Enumerates all non-empty subsets of one correlation set.
    ///
    /// Returns an error if the set has more than `limit` links (the number
    /// of subsets is `2^|C_p| − 1`). Subsets are returned in increasing
    /// order of their bitmask over the sorted set links, so the output is
    /// deterministic.
    pub fn subsets_of_set(
        &self,
        set: CorrelationSetId,
        limit: usize,
    ) -> Result<Vec<Vec<LinkId>>, TopologyError> {
        let links = self.set_links(set);
        if links.len() > limit {
            return Err(TopologyError::CorrelationSetTooLarge {
                size: links.len(),
                limit,
            });
        }
        let n = links.len();
        let mut subsets = Vec::with_capacity((1usize << n) - 1);
        for mask in 1u64..(1u64 << n) {
            let mut subset = Vec::with_capacity(mask.count_ones() as usize);
            for (bit, &link) in links.iter().enumerate() {
                if mask & (1 << bit) != 0 {
                    subset.push(link);
                }
            }
            subsets.push(subset);
        }
        Ok(subsets)
    }

    /// Enumerates the set of all correlation subsets `C̃` (every non-empty
    /// subset of every correlation set).
    ///
    /// Returns an error if any correlation set exceeds `limit` links.
    pub fn all_correlation_subsets(&self, limit: usize) -> Result<Vec<Vec<LinkId>>, TopologyError> {
        let mut all = Vec::new();
        for set in self.set_ids() {
            all.extend(self.subsets_of_set(set, limit)?);
        }
        Ok(all)
    }

    /// Total number of correlation subsets `|C̃| = Σ_p (2^|C_p| − 1)`,
    /// computed without enumerating them (saturating at `usize::MAX`).
    pub fn num_correlation_subsets(&self) -> usize {
        self.sets
            .iter()
            .map(|s| {
                if s.len() >= usize::BITS as usize - 1 {
                    usize::MAX
                } else {
                    (1usize << s.len()) - 1
                }
            })
            .fold(0usize, |acc, v| acc.saturating_add(v))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn fig1a_partition() -> CorrelationPartition {
        // C = {{e1, e2}, {e3}, {e4}}
        CorrelationPartition::from_sets(
            4,
            vec![vec![LinkId(0), LinkId(1)], vec![LinkId(2)], vec![LinkId(3)]],
        )
        .unwrap()
    }

    #[test]
    fn from_sets_builds_the_expected_partition() {
        let c = fig1a_partition();
        assert_eq!(c.num_links(), 4);
        assert_eq!(c.num_sets(), 3);
        assert_eq!(c.set_of(LinkId(0)), CorrelationSetId(0));
        assert_eq!(c.set_of(LinkId(1)), CorrelationSetId(0));
        assert_eq!(c.set_of(LinkId(2)), CorrelationSetId(1));
        assert_eq!(c.set_of(LinkId(3)), CorrelationSetId(2));
        assert_eq!(c.set_links(CorrelationSetId(0)), &[LinkId(0), LinkId(1)]);
        assert_eq!(c.max_set_size(), 2);
    }

    #[test]
    fn rejects_non_partitions() {
        // Missing link.
        let err =
            CorrelationPartition::from_sets(3, vec![vec![LinkId(0)], vec![LinkId(1)]]).unwrap_err();
        assert_eq!(
            err,
            TopologyError::NotAPartition {
                link: LinkId(2),
                occurrences: 0
            }
        );
        // Duplicated link.
        let err =
            CorrelationPartition::from_sets(2, vec![vec![LinkId(0), LinkId(1)], vec![LinkId(1)]])
                .unwrap_err();
        assert_eq!(
            err,
            TopologyError::NotAPartition {
                link: LinkId(1),
                occurrences: 2
            }
        );
        // Empty set.
        let err = CorrelationPartition::from_sets(1, vec![vec![LinkId(0)], vec![]]).unwrap_err();
        assert_eq!(err, TopologyError::EmptyCorrelationSet);
        // Unknown link.
        let err = CorrelationPartition::from_sets(1, vec![vec![LinkId(5)]]).unwrap_err();
        assert_eq!(err, TopologyError::UnknownLink(LinkId(5)));
    }

    #[test]
    fn singleton_and_single_set_extremes() {
        let singles = CorrelationPartition::singletons(3);
        assert_eq!(singles.num_sets(), 3);
        assert!(!singles.are_potentially_correlated(LinkId(0), LinkId(1)));

        let one = CorrelationPartition::single_set(3);
        assert_eq!(one.num_sets(), 1);
        assert!(one.are_potentially_correlated(LinkId(0), LinkId(2)));
        assert!(!one.are_potentially_correlated(LinkId(1), LinkId(1)));
    }

    #[test]
    fn correlation_queries_match_paper_example() {
        let c = fig1a_partition();
        assert!(c.are_potentially_correlated(LinkId(0), LinkId(1)));
        assert!(!c.are_potentially_correlated(LinkId(0), LinkId(2)));
        assert_eq!(c.correlated_partners(LinkId(0)), vec![LinkId(1)]);
        assert!(c.correlated_partners(LinkId(3)).is_empty());
    }

    #[test]
    fn mutually_uncorrelated_checks_all_pairs() {
        let c = fig1a_partition();
        // e1, e3: different sets -> uncorrelated.
        assert!(c.mutually_uncorrelated(&[LinkId(0), LinkId(2)]));
        // e1, e2: same set -> correlated.
        assert!(!c.mutually_uncorrelated(&[LinkId(0), LinkId(1)]));
        // A repeated link does not count as a correlated pair.
        assert!(c.mutually_uncorrelated(&[LinkId(2), LinkId(2), LinkId(3)]));
        // The union of P2 = {e3, e2} and P3 = {e4, e2} is fine (e2 repeats).
        assert!(c.mutually_uncorrelated(&[LinkId(2), LinkId(1), LinkId(3), LinkId(1)]));
        // Empty collection is trivially uncorrelated.
        assert!(c.mutually_uncorrelated(&[]));
    }

    #[test]
    fn subset_enumeration_matches_paper_c_tilde() {
        let c = fig1a_partition();
        let all = c
            .all_correlation_subsets(DEFAULT_SUBSET_ENUMERATION_LIMIT)
            .unwrap();
        // C̃ = {{e1}, {e2}, {e1,e2}, {e3}, {e4}}
        assert_eq!(all.len(), 5);
        assert!(all.contains(&vec![LinkId(0)]));
        assert!(all.contains(&vec![LinkId(1)]));
        assert!(all.contains(&vec![LinkId(0), LinkId(1)]));
        assert!(all.contains(&vec![LinkId(2)]));
        assert!(all.contains(&vec![LinkId(3)]));
        assert_eq!(c.num_correlation_subsets(), 5);
    }

    #[test]
    fn subset_enumeration_respects_limit() {
        let big = CorrelationPartition::single_set(30);
        assert!(matches!(
            big.all_correlation_subsets(20),
            Err(TopologyError::CorrelationSetTooLarge {
                size: 30,
                limit: 20
            })
        ));
        // The count is still available without enumeration.
        assert_eq!(big.num_correlation_subsets(), (1usize << 30) - 1);
    }

    #[test]
    fn set_iteration_is_ordered() {
        let c = fig1a_partition();
        let ids: Vec<usize> = c.set_ids().map(|s| s.index()).collect();
        assert_eq!(ids, vec![0, 1, 2]);
        let sizes: Vec<usize> = c.sets().map(|(_, links)| links.len()).collect();
        assert_eq!(sizes, vec![2, 1, 1]);
        assert_eq!(CorrelationSetId(0).to_string(), "C1");
    }
}
