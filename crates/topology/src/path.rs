//! Paths and the path-coverage function ψ.
//!
//! A *path* is a sequence of links whose congestion status can be observed
//! through end-to-end measurements (Section 2.1). Paths never cross the
//! same link twice and every link of the topology must participate in at
//! least one path.
//!
//! The *path coverage* function ψ maps a set of links `A ⊆ E` to the set of
//! paths that traverse at least one link of `A` (Equation 1 of the paper).
//! Coverage signatures are the central object of the identifiability
//! analysis: Assumption 4 requires that no two correlation subsets have the
//! same coverage.

use serde::{Deserialize, Serialize};
use std::collections::BTreeSet;
use std::fmt;

use crate::error::TopologyError;
use crate::graph::{LinkId, NodeId, Topology};

/// Identifier of a path.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct PathId(pub usize);

impl PathId {
    /// The raw index of the path.
    pub fn index(self) -> usize {
        self.0
    }
}

impl fmt::Display for PathId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "P{}", self.0 + 1)
    }
}

/// An end-to-end measurement path: an ordered, loop-free sequence of links.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Path {
    /// The path's identifier.
    pub id: PathId,
    /// The links traversed, in order.
    pub links: Vec<LinkId>,
}

impl Path {
    /// Number of links traversed (the `d` in the path congestion threshold
    /// `t_p = 1 − (1 − t_l)^d`).
    pub fn len(&self) -> usize {
        self.links.len()
    }

    /// Returns `true` if the path has no links (never the case for a
    /// validated path).
    pub fn is_empty(&self) -> bool {
        self.links.is_empty()
    }

    /// Returns `true` if the path traverses `link`.
    pub fn traverses(&self, link: LinkId) -> bool {
        self.links.contains(&link)
    }
}

/// The set of measurement paths `P` over a topology, with the link→paths
/// index needed to evaluate the coverage function ψ efficiently.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct PathSet {
    paths: Vec<Path>,
    /// For each link (by index), the paths that traverse it.
    link_to_paths: Vec<Vec<PathId>>,
    num_links: usize,
}

impl PathSet {
    /// Builds a path set over a topology from explicit link sequences.
    ///
    /// Each path is validated: it must be non-empty, loop-free (no repeated
    /// link) and contiguous (each link starts at the node where the previous
    /// one ends). In addition, every link of the topology must be traversed
    /// by at least one path, as required by the network model.
    pub fn new(
        topology: &Topology,
        link_sequences: Vec<Vec<LinkId>>,
    ) -> Result<Self, TopologyError> {
        let num_links = topology.num_links();
        let mut paths = Vec::with_capacity(link_sequences.len());
        let mut link_to_paths: Vec<Vec<PathId>> = vec![Vec::new(); num_links];

        for (i, links) in link_sequences.into_iter().enumerate() {
            let id = PathId(i);
            if links.is_empty() {
                return Err(TopologyError::EmptyPath);
            }
            let mut seen = BTreeSet::new();
            for &l in &links {
                if l.index() >= num_links {
                    return Err(TopologyError::UnknownLink(l));
                }
                if !seen.insert(l) {
                    return Err(TopologyError::PathHasLoop(l));
                }
            }
            for pair in links.windows(2) {
                let prev = topology.link(pair[0]);
                let next = topology.link(pair[1]);
                if prev.target != next.source {
                    return Err(TopologyError::PathNotContiguous {
                        previous: pair[0],
                        next: pair[1],
                    });
                }
            }
            for &l in &links {
                link_to_paths[l.index()].push(id);
            }
            paths.push(Path { id, links });
        }

        for (idx, covering) in link_to_paths.iter().enumerate() {
            if covering.is_empty() {
                return Err(TopologyError::UnusedLink(LinkId(idx)));
            }
        }

        Ok(PathSet {
            paths,
            link_to_paths,
            num_links,
        })
    }

    /// Number of paths `|P|`.
    pub fn num_paths(&self) -> usize {
        self.paths.len()
    }

    /// Number of links `|E|` of the underlying topology.
    pub fn num_links(&self) -> usize {
        self.num_links
    }

    /// Returns the path with the given id.
    ///
    /// # Panics
    ///
    /// Panics if the id is out of range.
    pub fn path(&self, id: PathId) -> &Path {
        &self.paths[id.index()]
    }

    /// Iterates over all paths.
    pub fn paths(&self) -> impl Iterator<Item = &Path> {
        self.paths.iter()
    }

    /// Iterates over all path ids.
    pub fn path_ids(&self) -> impl Iterator<Item = PathId> {
        (0..self.paths.len()).map(PathId)
    }

    /// The paths that traverse `link` (ψ({link})).
    ///
    /// # Panics
    ///
    /// Panics if the link id is out of range.
    pub fn paths_through(&self, link: LinkId) -> &[PathId] {
        &self.link_to_paths[link.index()]
    }

    /// The coverage function ψ(A): the set of paths that traverse at least
    /// one link of `A` (Equation 1).
    pub fn coverage(&self, links: &[LinkId]) -> BTreeSet<PathId> {
        let mut covered = BTreeSet::new();
        for &l in links {
            covered.extend(self.paths_through(l).iter().copied());
        }
        covered
    }

    /// |ψ(A)|: the number of paths covered by `A`.
    pub fn coverage_size(&self, links: &[LinkId]) -> usize {
        self.coverage(links).len()
    }

    /// The source node of a path (the source of its first link).
    pub fn source(&self, topology: &Topology, id: PathId) -> NodeId {
        topology.link(self.path(id).links[0]).source
    }

    /// The destination node of a path (the target of its last link).
    pub fn destination(&self, topology: &Topology, id: PathId) -> NodeId {
        topology
            .link(*self.path(id).links.last().expect("paths are non-empty"))
            .target
    }

    /// Returns `true` if any link of `path_a` and any link of `path_b`
    /// belong to the same group according to `same_group`. Used by the
    /// equation builder to exclude path pairs that involve correlated
    /// links.
    pub fn paths_share_group(
        &self,
        a: PathId,
        b: PathId,
        mut same_group: impl FnMut(LinkId, LinkId) -> bool,
    ) -> bool {
        for &la in &self.path(a).links {
            for &lb in &self.path(b).links {
                if la != lb && same_group(la, lb) {
                    return true;
                }
            }
        }
        false
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Builds the topology of Figure 1(a) by hand (the canonical fixture
    /// for this module; the `toy` module re-exposes it publicly).
    fn fig1a() -> (Topology, PathSet) {
        let mut t = Topology::new();
        let v = t.add_nodes(5); // v1..v5
        let e1 = t.add_link(v[2], v[0]).unwrap(); // v3 -> v1
        let e2 = t.add_link(v[2], v[1]).unwrap(); // v3 -> v2
        let e3 = t.add_link(v[3], v[2]).unwrap(); // v4 -> v3
        let e4 = t.add_link(v[4], v[2]).unwrap(); // v5 -> v3
        let paths = PathSet::new(&t, vec![vec![e3, e1], vec![e3, e2], vec![e4, e2]]).unwrap();
        (t, paths)
    }

    #[test]
    fn coverage_matches_paper_table_for_fig_1a() {
        let (_t, ps) = fig1a();
        let p = |i: usize| PathId(i);
        // ψ({e1}) = {P1}
        assert_eq!(ps.coverage(&[LinkId(0)]), BTreeSet::from([p(0)]));
        // ψ({e2}) = {P2, P3}
        assert_eq!(ps.coverage(&[LinkId(1)]), BTreeSet::from([p(1), p(2)]));
        // ψ({e1, e2}) = {P1, P2, P3}
        assert_eq!(
            ps.coverage(&[LinkId(0), LinkId(1)]),
            BTreeSet::from([p(0), p(1), p(2)])
        );
        // ψ({e3}) = {P1, P2}
        assert_eq!(ps.coverage(&[LinkId(2)]), BTreeSet::from([p(0), p(1)]));
        // ψ({e4}) = {P3}
        assert_eq!(ps.coverage(&[LinkId(3)]), BTreeSet::from([p(2)]));
    }

    #[test]
    fn coverage_size_counts_paths() {
        let (_t, ps) = fig1a();
        assert_eq!(ps.coverage_size(&[LinkId(0), LinkId(1)]), 3);
        assert_eq!(ps.coverage_size(&[]), 0);
    }

    #[test]
    fn path_endpoints_are_derived_from_links() {
        let (t, ps) = fig1a();
        assert_eq!(ps.source(&t, PathId(0)), NodeId(3)); // v4
        assert_eq!(ps.destination(&t, PathId(0)), NodeId(0)); // v1
        assert_eq!(ps.source(&t, PathId(2)), NodeId(4)); // v5
        assert_eq!(ps.destination(&t, PathId(2)), NodeId(1)); // v2
    }

    #[test]
    fn rejects_empty_paths() {
        let mut t = Topology::new();
        let v = t.add_nodes(2);
        t.add_link(v[0], v[1]).unwrap();
        let err = PathSet::new(&t, vec![vec![]]).unwrap_err();
        assert_eq!(err, TopologyError::EmptyPath);
    }

    #[test]
    fn rejects_paths_with_loops() {
        let mut t = Topology::new();
        let v = t.add_nodes(2);
        let a = t.add_link(v[0], v[1]).unwrap();
        let _b = t.add_link(v[1], v[0]).unwrap();
        let err = PathSet::new(&t, vec![vec![a, LinkId(1), a]]).unwrap_err();
        assert_eq!(err, TopologyError::PathHasLoop(a));
    }

    #[test]
    fn rejects_non_contiguous_paths() {
        let mut t = Topology::new();
        let v = t.add_nodes(4);
        let a = t.add_link(v[0], v[1]).unwrap();
        let b = t.add_link(v[2], v[3]).unwrap();
        let err = PathSet::new(&t, vec![vec![a, b], vec![b, a]]).unwrap_err();
        assert!(matches!(err, TopologyError::PathNotContiguous { .. }));
    }

    #[test]
    fn rejects_unused_links() {
        let mut t = Topology::new();
        let v = t.add_nodes(3);
        let a = t.add_link(v[0], v[1]).unwrap();
        let _unused = t.add_link(v[1], v[2]).unwrap();
        let err = PathSet::new(&t, vec![vec![a]]).unwrap_err();
        assert_eq!(err, TopologyError::UnusedLink(LinkId(1)));
    }

    #[test]
    fn rejects_unknown_links() {
        let mut t = Topology::new();
        let v = t.add_nodes(2);
        t.add_link(v[0], v[1]).unwrap();
        let err = PathSet::new(&t, vec![vec![LinkId(7)]]).unwrap_err();
        assert_eq!(err, TopologyError::UnknownLink(LinkId(7)));
    }

    #[test]
    fn paths_through_link_index_is_consistent_with_traverses() {
        let (_t, ps) = fig1a();
        for link in (0..ps.num_links()).map(LinkId) {
            for pid in ps.path_ids() {
                let indexed = ps.paths_through(link).contains(&pid);
                let scanned = ps.path(pid).traverses(link);
                assert_eq!(indexed, scanned, "link {link}, path {pid}");
            }
        }
    }

    #[test]
    fn paths_share_group_detects_cross_path_grouping() {
        let (_t, ps) = fig1a();
        // Group e1 (LinkId 0) and e2 (LinkId 1) together, as in Figure 1(a).
        let same_group = |a: LinkId, b: LinkId| (a.index() <= 1 && b.index() <= 1) && a != b;
        // P1 uses e1, P2 uses e2 -> they share the group.
        assert!(ps.paths_share_group(PathId(0), PathId(1), same_group));
        // P2 and P3 both use e2 but share no *distinct* grouped pair.
        assert!(!ps.paths_share_group(PathId(1), PathId(2), same_group));
    }

    #[test]
    fn display_of_path_ids() {
        assert_eq!(PathId(0).to_string(), "P1");
        assert_eq!(PathId(2).to_string(), "P3");
    }
}
