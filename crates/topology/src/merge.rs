//! The merging transformation of Section 3.3.
//!
//! When Assumption 4 fails because an intermediate node `v` has all its
//! ingress links in one correlation set and all its egress links in one
//! correlation set, the two correlation subsets formed by those link groups
//! cover exactly the same paths and cannot be told apart. The paper's
//! remedy is a topology transformation: remove `v` and its adjacent links,
//! and for every path that went consecutively through `v_last → v → v_next`
//! draw a *merged link* from `v_last` to `v_next`. Tomography then works on
//! the transformed graph, at the cost of granularity — it characterises the
//! merged links rather than the original ones.
//!
//! [`merge_indistinguishable`] applies the transformation repeatedly until
//! no more candidate nodes remain, and returns the transformed
//! [`TopologyInstance`] together with the mapping from each transformed
//! link to the original links it is composed of.

use std::collections::BTreeSet;

use crate::correlation::CorrelationPartition;
use crate::graph::{LinkId, NodeId, Topology};
use crate::path::PathSet;
use crate::{TopologyError, TopologyInstance};

/// The result of the merging transformation.
#[derive(Debug, Clone)]
pub struct MergeResult {
    /// The transformed instance (same node set — removed nodes simply
    /// become isolated — new link set, rewritten paths, updated correlation
    /// partition).
    pub instance: TopologyInstance,
    /// For each link of the transformed instance (indexed by its
    /// [`LinkId`]), the sorted original links it is composed of. A link
    /// that was not merged maps to a single-element vector containing its
    /// original id.
    pub merged_from: Vec<Vec<LinkId>>,
    /// The intermediate nodes that were removed, in removal order.
    pub removed_nodes: Vec<NodeId>,
    /// Number of node-removal rounds performed.
    pub rounds: usize,
}

impl MergeResult {
    /// Returns `true` if the transformation changed nothing (the input had
    /// no candidate node).
    pub fn is_identity(&self) -> bool {
        self.removed_nodes.is_empty()
    }

    /// Returns the transformed link that contains the original link
    /// `original`, if any (an original link adjacent to a removed node may
    /// appear in several merged links; the first match is returned).
    pub fn transformed_link_containing(&self, original: LinkId) -> Option<LinkId> {
        self.merged_from
            .iter()
            .position(|composition| composition.contains(&original))
            .map(LinkId)
    }
}

/// Internal working representation of a link during merging.
#[derive(Debug, Clone)]
struct WorkLink {
    source: NodeId,
    target: NodeId,
    /// Original links composing this (possibly merged) link.
    original: BTreeSet<LinkId>,
    /// Correlation group: an index into the union-find structure over the
    /// original correlation sets.
    group: usize,
}

/// Union-find over correlation-set indices.
#[derive(Debug, Clone)]
struct UnionFind {
    parent: Vec<usize>,
}

impl UnionFind {
    fn new(n: usize) -> Self {
        UnionFind {
            parent: (0..n).collect(),
        }
    }

    fn find(&mut self, x: usize) -> usize {
        if self.parent[x] != x {
            let root = self.find(self.parent[x]);
            self.parent[x] = root;
        }
        self.parent[x]
    }

    fn union(&mut self, a: usize, b: usize) {
        let ra = self.find(a);
        let rb = self.find(b);
        if ra != rb {
            self.parent[ra.max(rb)] = ra.min(rb);
        }
    }
}

/// Applies the merging transformation until no candidate node remains.
pub fn merge_indistinguishable(instance: &TopologyInstance) -> Result<MergeResult, TopologyError> {
    instance.validate()?;

    // Working copies.
    let mut links: Vec<WorkLink> = instance
        .topology
        .links()
        .map(|l| WorkLink {
            source: l.source,
            target: l.target,
            original: BTreeSet::from([l.id]),
            group: instance.correlation.set_of(l.id).index(),
        })
        .collect();
    let mut paths: Vec<Vec<usize>> = instance
        .paths
        .paths()
        .map(|p| p.links.iter().map(|l| l.index()).collect())
        .collect();
    let mut groups = UnionFind::new(instance.correlation.num_sets());
    let mut removed_nodes = Vec::new();
    let mut rounds = 0;

    loop {
        let candidate = find_candidate_node(instance, &links, &paths, &mut groups, &removed_nodes);
        let Some(node) = candidate else { break };
        merge_around_node(node, &mut links, &mut paths, &mut groups);
        removed_nodes.push(node);
        rounds += 1;
        if rounds > instance.topology.num_nodes() {
            return Err(TopologyError::Inconsistent(
                "merging did not terminate within |V| rounds".to_string(),
            ));
        }
    }

    // Rebuild a dense instance from the working representation. Links that
    // no longer appear on any path are dropped (the model requires every
    // link to be covered by a path).
    let mut used: Vec<bool> = vec![false; links.len()];
    for path in &paths {
        for &l in path {
            used[l] = true;
        }
    }
    let mut topology = Topology::new();
    for node in instance.topology.nodes() {
        topology.add_node(node.name.clone());
    }
    let mut work_to_new: Vec<Option<LinkId>> = vec![None; links.len()];
    let mut merged_from: Vec<Vec<LinkId>> = Vec::new();
    let mut group_of_new: Vec<usize> = Vec::new();
    for (idx, link) in links.iter().enumerate() {
        if !used[idx] {
            continue;
        }
        let new_id = topology.add_link(link.source, link.target)?;
        work_to_new[idx] = Some(new_id);
        merged_from.push(link.original.iter().copied().collect());
        group_of_new.push(groups.find(link.group));
    }
    let path_links: Vec<Vec<LinkId>> = paths
        .iter()
        .map(|p| {
            p.iter()
                .map(|&l| work_to_new[l].expect("used links have new ids"))
                .collect()
        })
        .collect();
    let path_set = PathSet::new(&topology, path_links)?;

    // Correlation partition: one set per surviving union-find root.
    let mut roots: Vec<usize> = group_of_new.clone();
    roots.sort_unstable();
    roots.dedup();
    let sets: Vec<Vec<LinkId>> = roots
        .iter()
        .map(|&root| {
            group_of_new
                .iter()
                .enumerate()
                .filter(|&(_, &g)| g == root)
                .map(|(i, _)| LinkId(i))
                .collect()
        })
        .collect();
    let correlation = CorrelationPartition::from_sets(topology.num_links(), sets)?;

    let merged_instance = TopologyInstance::new(topology, path_set, correlation)?;
    Ok(MergeResult {
        instance: merged_instance,
        merged_from,
        removed_nodes,
        rounds,
    })
}

/// Finds an intermediate node whose ingress links (in the working link set)
/// all belong to one correlation group and whose egress links all belong to
/// one correlation group, and which is not the endpoint of any path.
fn find_candidate_node(
    instance: &TopologyInstance,
    links: &[WorkLink],
    paths: &[Vec<usize>],
    groups: &mut UnionFind,
    removed: &[NodeId],
) -> Option<NodeId> {
    // Which links are still on some path (only those matter).
    let mut used: Vec<bool> = vec![false; links.len()];
    for path in paths {
        for &l in path {
            used[l] = true;
        }
    }
    // Nodes that are endpoints of some path cannot be removed.
    let mut is_endpoint = vec![false; instance.topology.num_nodes()];
    for path in paths {
        if path.is_empty() {
            continue;
        }
        is_endpoint[links[path[0]].source.index()] = true;
        is_endpoint[links[*path.last().expect("non-empty")].target.index()] = true;
    }

    for node in instance.topology.node_ids() {
        if removed.contains(&node) || is_endpoint[node.index()] {
            continue;
        }
        let ingress: Vec<usize> = (0..links.len())
            .filter(|&i| used[i] && links[i].target == node)
            .collect();
        let egress: Vec<usize> = (0..links.len())
            .filter(|&i| used[i] && links[i].source == node)
            .collect();
        if ingress.is_empty() || egress.is_empty() {
            continue;
        }
        let ingress_groups: BTreeSet<usize> = ingress
            .iter()
            .map(|&i| groups.find(links[i].group))
            .collect();
        let egress_groups: BTreeSet<usize> = egress
            .iter()
            .map(|&i| groups.find(links[i].group))
            .collect();
        if ingress_groups.len() == 1 && egress_groups.len() == 1 {
            return Some(node);
        }
    }
    None
}

/// Removes `node` from the working representation: every consecutive pair
/// (ingress link, egress link) that some path uses through `node` becomes a
/// merged link, and the paths are rewritten.
fn merge_around_node(
    node: NodeId,
    links: &mut Vec<WorkLink>,
    paths: &mut [Vec<usize>],
    groups: &mut UnionFind,
) {
    // Collect the distinct (ingress, egress) pairs used by paths through
    // the node, in deterministic order of first appearance.
    let mut pairs: Vec<(usize, usize)> = Vec::new();
    for path in paths.iter() {
        for w in path.windows(2) {
            if links[w[0]].target == node {
                let pair = (w[0], w[1]);
                if !pairs.contains(&pair) {
                    pairs.push(pair);
                }
            }
        }
    }
    if pairs.is_empty() {
        return;
    }
    // Unite the ingress and egress correlation groups.
    let (a0, b0) = pairs[0];
    let ga = groups.find(links[a0].group);
    let gb = groups.find(links[b0].group);
    groups.union(ga, gb);
    let merged_group = groups.find(ga);

    // Create one merged link per pair.
    let mut pair_to_merged: Vec<((usize, usize), usize)> = Vec::with_capacity(pairs.len());
    for &(a, b) in &pairs {
        let merged = WorkLink {
            source: links[a].source,
            target: links[b].target,
            original: links[a]
                .original
                .union(&links[b].original)
                .copied()
                .collect(),
            group: merged_group,
        };
        links.push(merged);
        pair_to_merged.push(((a, b), links.len() - 1));
    }

    // Rewrite the paths: replace every (a, b) pair through the node by its
    // merged link.
    for path in paths.iter_mut() {
        let mut rewritten = Vec::with_capacity(path.len());
        let mut i = 0;
        while i < path.len() {
            if i + 1 < path.len() && links[path[i]].target == node {
                let pair = (path[i], path[i + 1]);
                let merged = pair_to_merged
                    .iter()
                    .find(|(p, _)| *p == pair)
                    .map(|&(_, m)| m)
                    .expect("every pair through the node was registered");
                rewritten.push(merged);
                i += 2;
            } else {
                rewritten.push(path[i]);
                i += 1;
            }
        }
        *path = rewritten;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::identifiability::{check_identifiability, IdentifiabilityConfig};
    use crate::toy;

    #[test]
    fn figure_1a_is_untouched() {
        let inst = toy::figure_1a();
        let result = merge_indistinguishable(&inst).unwrap();
        assert!(result.is_identity());
        assert_eq!(result.instance.num_links(), 4);
        assert_eq!(result.instance.num_paths(), 3);
        assert_eq!(result.rounds, 0);
    }

    #[test]
    fn figure_1b_merges_into_two_links_in_one_set() {
        // The paper: remove v3 and its adjacent links (e1, e2, e3) and draw
        // two merged links, v4→v1 and v4→v2; they form a single correlation
        // set.
        let inst = toy::figure_1b();
        let result = merge_indistinguishable(&inst).unwrap();
        assert!(!result.is_identity());
        assert_eq!(result.removed_nodes, vec![NodeId(2)]); // v3
        let merged = &result.instance;
        assert_eq!(merged.num_links(), 2);
        assert_eq!(merged.num_paths(), 2);
        assert_eq!(merged.num_correlation_sets(), 1);
        // Each merged link is composed of two original links, both
        // containing e3 (LinkId 2).
        for composition in &result.merged_from {
            assert_eq!(composition.len(), 2);
            assert!(composition.contains(&LinkId(2)));
        }
        // Endpoints are v4→v1 and v4→v2.
        let endpoints: Vec<(usize, usize)> = merged
            .topology
            .links()
            .map(|l| (l.source.index(), l.target.index()))
            .collect();
        assert!(endpoints.contains(&(3, 0)));
        assert!(endpoints.contains(&(3, 1)));
        // After the transformation, Assumption 4 holds on the merged graph.
        let report = check_identifiability(merged, IdentifiabilityConfig::default());
        assert!(report.holds, "conflicts: {:?}", report.conflicts);
    }

    #[test]
    fn figure_1a_single_set_collapses_to_one_link_per_path() {
        // Section 3.3: with all four links in one correlation set, the
        // transformation removes v3 and leaves one merged link per
        // end-to-end path (v4→v1, v4→v2, v5→v2).
        let inst = toy::figure_1a_single_set();
        let result = merge_indistinguishable(&inst).unwrap();
        assert_eq!(result.removed_nodes, vec![NodeId(2)]); // v3
        let merged = &result.instance;
        assert_eq!(merged.num_links(), 3);
        assert_eq!(merged.num_paths(), 3);
        // Every path is now a single link.
        for path in merged.paths.paths() {
            assert_eq!(path.len(), 1);
        }
        let endpoints: Vec<(usize, usize)> = merged
            .topology
            .links()
            .map(|l| (l.source.index(), l.target.index()))
            .collect();
        assert!(endpoints.contains(&(3, 0)));
        assert!(endpoints.contains(&(3, 1)));
        assert!(endpoints.contains(&(4, 1)));
    }

    #[test]
    fn transformed_link_containing_finds_compositions() {
        let inst = toy::figure_1b();
        let result = merge_indistinguishable(&inst).unwrap();
        // e1 (LinkId 0) survives inside exactly one merged link.
        let containing = result.transformed_link_containing(LinkId(0)).unwrap();
        assert!(result.merged_from[containing.index()].contains(&LinkId(0)));
        // e3 (LinkId 2) appears in both merged links; some link is
        // returned.
        assert!(result.transformed_link_containing(LinkId(2)).is_some());
        // A non-existent original link is not found.
        assert!(result.transformed_link_containing(LinkId(99)).is_none());
    }

    #[test]
    fn merging_a_longer_chain_terminates_and_validates() {
        // A chain v1 -> v2 -> v3 -> v4 with one path across it and all
        // links in one correlation set: both intermediate nodes get merged
        // and a single link from v1 to v4 remains.
        let mut t = Topology::new();
        let v = t.add_nodes(4);
        let a = t.add_link(v[0], v[1]).unwrap();
        let b = t.add_link(v[1], v[2]).unwrap();
        let c = t.add_link(v[2], v[3]).unwrap();
        let paths = PathSet::new(&t, vec![vec![a, b, c]]).unwrap();
        let corr = CorrelationPartition::single_set(3);
        let inst = TopologyInstance::new(t, paths, corr).unwrap();
        let result = merge_indistinguishable(&inst).unwrap();
        assert_eq!(result.instance.num_links(), 1);
        assert_eq!(result.instance.num_paths(), 1);
        assert_eq!(result.instance.paths.path(crate::path::PathId(0)).len(), 1);
        assert_eq!(result.merged_from[0], vec![a, b, c]);
        assert_eq!(result.removed_nodes.len(), 2);
        result.instance.validate().unwrap();
    }

    #[test]
    fn nodes_with_mixed_correlation_sets_are_not_merged() {
        // Same chain as above but each link in its own correlation set:
        // intermediate nodes have ingress and egress in different sets, so
        // by the paper's rule they *are* candidates only when both sides
        // are each within a single set — which is the case here (each side
        // is a single link). The transformation therefore merges them.
        // To get a non-candidate, give an intermediate node two ingress
        // links from different sets.
        let mut t = Topology::new();
        let v = t.add_nodes(4);
        let a = t.add_link(v[0], v[2]).unwrap();
        let b = t.add_link(v[1], v[2]).unwrap();
        let c = t.add_link(v[2], v[3]).unwrap();
        let paths = PathSet::new(&t, vec![vec![a, c], vec![b, c]]).unwrap();
        let corr = CorrelationPartition::singletons(3);
        let inst = TopologyInstance::new(t, paths, corr).unwrap();
        let result = merge_indistinguishable(&inst).unwrap();
        // v3 (index 2) has ingress links a, b in *different* correlation
        // sets, so it is not a candidate and nothing changes.
        assert!(result.is_identity());
    }
}
