//! Branch-coverage tests for [`netcorr_core::solver::solve_equations`] on
//! the paper's toy topology of Figure 1(a).
//!
//! With both single-path and path-pair equations enabled, Figure 1(a)
//! yields exactly `N1 + N2 = 3 + 1 = 4 = |E|` independent equations, so the
//! solver must take the exact dense QR path. Dropping the pair equations
//! leaves 3 equations for 4 unknowns and forces the under-determined
//! minimum-L1-norm path. Both branches must reproduce the ground-truth
//! congestion probabilities the simulation was driven with.

use rand::rngs::StdRng;
use rand::SeedableRng;

use netcorr_core::equations::{build_equations, EquationConfig};
use netcorr_core::result::SolverKind;
use netcorr_core::solver::{solve_equations, SolverConfig};
use netcorr_measure::ProbabilityEstimator;
use netcorr_sim::{CongestionModelBuilder, SimulationConfig, Simulator};
use netcorr_topology::graph::LinkId;
use netcorr_topology::toy;

const SNAPSHOTS: usize = 6000;

/// Ground truth: e0/e1 jointly congested 20% of the time, e2 and e3
/// independently congested 10% of the time.
const TRUE_CONGESTION: [f64; 4] = [0.2, 0.2, 0.1, 0.1];

fn observations_on_figure_1a() -> (
    netcorr_topology::TopologyInstance,
    netcorr_measure::PathObservations,
) {
    let instance = toy::figure_1a();
    let model = CongestionModelBuilder::new(&instance.correlation)
        .joint_group(&[LinkId(0), LinkId(1)], TRUE_CONGESTION[0])
        .independent(LinkId(2), TRUE_CONGESTION[2])
        .independent(LinkId(3), TRUE_CONGESTION[3])
        .build()
        .expect("valid congestion model");
    let simulator = Simulator::new(&instance, &model, SimulationConfig::default())
        .expect("simulator construction succeeds");
    let observations = simulator.run(SNAPSHOTS, &mut StdRng::seed_from_u64(7));
    (instance, observations)
}

#[test]
fn square_system_takes_exact_qr_path() {
    let (instance, observations) = observations_on_figure_1a();
    let estimator = ProbabilityEstimator::new(&observations).expect("non-empty observations");
    let system = build_equations(&instance, &estimator, &EquationConfig::default())
        .expect("equation building succeeds");
    // Figure 1(a): 3 single-path equations plus 1 valid pair equation.
    assert_eq!(system.num_single, 3);
    assert_eq!(system.num_pair, 1);

    let outcome = solve_equations(&system, instance.num_links(), &SolverConfig::default())
        .expect("solve succeeds");
    assert_eq!(outcome.kind, SolverKind::DenseExact);
    assert!(!outcome.underdetermined);
    assert_eq!(
        outcome.used_single + outcome.used_pair,
        instance.num_links()
    );
    assert!(outcome.residual < 1e-9, "residual {}", outcome.residual);

    // x_k = log P(X_k = 0): the exact path must recover the ground truth up
    // to estimation noise.
    for (k, &p_congested) in TRUE_CONGESTION.iter().enumerate() {
        assert!(outcome.x[k] <= 0.0, "log-probability above 0 for link {k}");
        let estimated = 1.0 - outcome.x[k].exp();
        assert!(
            (estimated - p_congested).abs() < 0.05,
            "link {k}: estimated {estimated}, truth {p_congested}"
        );
    }
}

#[test]
fn underdetermined_system_takes_min_l1_path() {
    let (instance, observations) = observations_on_figure_1a();
    let estimator = ProbabilityEstimator::new(&observations).expect("non-empty observations");
    let config = EquationConfig {
        use_pairs: false,
        ..EquationConfig::default()
    };
    let system =
        build_equations(&instance, &estimator, &config).expect("equation building succeeds");
    assert_eq!(system.num_single, 3);
    assert_eq!(system.num_pair, 0);

    let outcome = solve_equations(&system, instance.num_links(), &SolverConfig::default())
        .expect("solve succeeds");
    assert_eq!(outcome.kind, SolverKind::DenseL1);
    assert!(outcome.underdetermined);
    assert_eq!(outcome.used_single, 3);
    assert_eq!(outcome.used_pair, 0);
    // The minimum-L1 solution still satisfies every kept equation.
    assert!(outcome.residual < 1e-6, "residual {}", outcome.residual);
    assert!(outcome.x.iter().all(|&x| x <= 0.0));
}
