//! Building the log-linear measurement equations (Section 4).
//!
//! Under the separability assumption, a path is good iff all its links are
//! good, so for any collection of paths whose links are *mutually
//! uncorrelated*
//!
//! ```text
//! P(all those paths good) = Π_k P(X_{e_k} = 0)   over the union of their links
//! ```
//!
//! and taking logarithms turns the product into a linear equation over the
//! unknowns `x_k = log P(X_{e_k} = 0)`. The paper's practical algorithm
//! therefore forms:
//!
//! * one equation per *usable path* — a path none of whose links are
//!   potentially correlated with each other (Eq. 9);
//! * one equation per *usable path pair* — a pair whose combined links are
//!   mutually uncorrelated (Eq. 10). Only pairs of paths that share at
//!   least one link are considered, because the equation of a disjoint pair
//!   is the sum of the two single-path equations and adds nothing.
//!
//! The independence baseline (Nguyen–Thiran \[12\]) uses exactly the same
//! construction but *assumes* every link is independent, i.e. it treats
//! every path and every intersecting pair as usable. That difference —
//! controlled here by [`EquationConfig::respect_correlation`] — is the
//! entire difference between the two algorithms compared in the paper's
//! evaluation.

use serde::{Deserialize, Serialize};

use netcorr_linalg::SparseMatrix;
use netcorr_measure::{ProbabilityEstimator, StreamingEstimator};
use netcorr_topology::graph::LinkId;
use netcorr_topology::path::PathId;
use netcorr_topology::TopologyInstance;

use crate::error::CoreError;

/// Where an equation came from.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum EquationSource {
    /// `P(Y_i = 0) = Π_{e ∈ P_i} P(X_e = 0)`.
    SinglePath(PathId),
    /// `P(Y_i = 0, Y_j = 0) = Π_{e ∈ P_i ∪ P_j} P(X_e = 0)`.
    PathPair(PathId, PathId),
}

/// Configuration of the equation builder.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct EquationConfig {
    /// If `true` (the correlation algorithm), only paths and path pairs
    /// whose links are mutually uncorrelated are used. If `false` (the
    /// independence baseline), every path and every intersecting pair is
    /// used.
    pub respect_correlation: bool,
    /// Whether path-pair equations are formed at all (ablation switch).
    pub use_pairs: bool,
    /// Maximum number of accepted path-pair equations, as a multiple of the
    /// number of links.
    pub max_pair_equations_per_link: f64,
    /// Maximum number of candidate pairs examined.
    pub max_pair_candidates: usize,
}

impl Default for EquationConfig {
    fn default() -> Self {
        EquationConfig {
            respect_correlation: true,
            use_pairs: true,
            max_pair_equations_per_link: 3.0,
            max_pair_candidates: 2_000_000,
        }
    }
}

/// The collected measurement equations `A x = y` over the unknowns
/// `x_k = log P(X_{e_k} = 0)`.
#[derive(Debug, Clone)]
pub struct EquationSystem {
    /// Sparse 0/1 incidence matrix (one row per equation, one column per
    /// link).
    pub matrix: SparseMatrix,
    /// Right-hand sides: clamped empirical log-probabilities.
    pub rhs: Vec<f64>,
    /// Provenance of every equation, parallel to the rows.
    pub sources: Vec<EquationSource>,
    /// Number of single-path equations (the paper's `N1` before
    /// independence selection).
    pub num_single: usize,
    /// Number of path-pair equations (the paper's `N2` before independence
    /// selection).
    pub num_pair: usize,
    /// For every link, whether it appears in at least one equation.
    pub covered: Vec<bool>,
}

impl EquationSystem {
    /// Number of equations collected.
    pub fn num_equations(&self) -> usize {
        self.rhs.len()
    }

    /// Number of links that appear in no equation.
    pub fn num_uncovered_links(&self) -> usize {
        self.covered.iter().filter(|&&c| !c).count()
    }
}

/// The observation-independent part of an equation system: the incidence
/// matrix, the provenance of every row, and the single paths / path pairs
/// whose empirical probabilities form the right-hand side.
///
/// The structure is a pure function of the topology instance and the
/// [`EquationConfig`] — it never looks at observations — so it can be
/// built **once** and re-used to refresh the RHS as measurements stream
/// in (see [`IncrementalEquationBuilder`]).
#[derive(Debug, Clone)]
pub struct EquationStructure {
    matrix: SparseMatrix,
    sources: Vec<EquationSource>,
    /// Usable single paths, in row order (rows `0..num_single`).
    single_paths: Vec<PathId>,
    /// Accepted path pairs, in row order (rows `num_single..`).
    pairs: Vec<(PathId, PathId)>,
    covered: Vec<bool>,
}

impl EquationStructure {
    /// Number of equations (rows) in the structure.
    pub fn num_equations(&self) -> usize {
        self.sources.len()
    }

    /// The accepted path pairs, in row order.
    pub fn pairs(&self) -> &[(PathId, PathId)] {
        &self.pairs
    }

    /// The sparse 0/1 incidence matrix (one row per equation, one column
    /// per link).
    pub fn matrix(&self) -> &SparseMatrix {
        &self.matrix
    }

    /// Provenance of every row, parallel to the matrix.
    pub fn sources(&self) -> &[EquationSource] {
        &self.sources
    }

    /// The usable single paths, in row order (rows
    /// `0..single_paths().len()`).
    pub fn single_paths(&self) -> &[PathId] {
        &self.single_paths
    }

    /// Number of links that appear in no equation.
    pub fn num_uncovered_links(&self) -> usize {
        self.covered.iter().filter(|&&c| !c).count()
    }
}

/// Builds the observation-independent equation structure for an instance.
pub fn equation_structure(
    instance: &TopologyInstance,
    config: &EquationConfig,
) -> Result<EquationStructure, CoreError> {
    let num_links = instance.num_links();
    let mut matrix = SparseMatrix::new(num_links);
    let mut sources = Vec::new();
    let mut covered = vec![false; num_links];

    let usable_path = |links: &[LinkId]| -> bool {
        !config.respect_correlation || instance.correlation.mutually_uncorrelated(links)
    };

    // --- Single-path equations (Eq. 9). ---
    let mut usable_paths: Vec<PathId> = Vec::new();
    for path in instance.paths.paths() {
        if !usable_path(&path.links) {
            continue;
        }
        usable_paths.push(path.id);
        let columns: Vec<usize> = path.links.iter().map(|l| l.index()).collect();
        matrix
            .push_indicator_row(&columns)
            .map_err(CoreError::Numerical)?;
        sources.push(EquationSource::SinglePath(path.id));
        for &c in &columns {
            covered[c] = true;
        }
    }

    // --- Path-pair equations (Eq. 10). ---
    //
    // Only pairs of paths that share at least one link can add information
    // beyond the two single-path equations (the union row of a disjoint
    // pair is the sum of the two single rows). Candidate pairs are
    // enumerated per shared link and consumed round-robin across links so
    // that the collected pair equations are structurally diverse — the
    // solver's independence selection then has good material to reach the
    // paper's `N1 + N2 ≈ |E|` regardless of which link the enumeration
    // started from.
    let mut pairs: Vec<(PathId, PathId)> = Vec::new();
    let mut num_pair = 0;
    if config.use_pairs {
        let max_pairs = (config.max_pair_equations_per_link * num_links as f64).ceil() as usize;
        let usable_flag = {
            let mut flags = vec![false; instance.num_paths()];
            for &p in &usable_paths {
                flags[p.index()] = true;
            }
            flags
        };
        // Candidate pairs per link (both paths individually usable).
        let mut candidates_per_link: Vec<Vec<(PathId, PathId)>> = Vec::with_capacity(num_links);
        let mut candidates_examined = 0usize;
        for link in instance.topology.link_ids() {
            let through = instance.paths.paths_through(link);
            let mut pairs = Vec::new();
            'link: for (a_idx, &pa) in through.iter().enumerate() {
                if !usable_flag[pa.index()] {
                    continue;
                }
                for &pb in &through[a_idx + 1..] {
                    candidates_examined += 1;
                    if candidates_examined > config.max_pair_candidates {
                        break 'link;
                    }
                    if !usable_flag[pb.index()] {
                        continue;
                    }
                    pairs.push((pa.min(pb), pa.max(pb)));
                }
            }
            candidates_per_link.push(pairs);
        }
        // Round-robin over links: the r-th candidate of every link, then
        // the (r+1)-th, and so on. Accepted pairs are only *collected*
        // here; their right-hand sides are fetched later — in one batch
        // through the estimator's AND/popcount kernels, or in O(1) each
        // from a streaming estimator's registered-pair accumulators.
        let mut accepted_pairs: Vec<(PathId, PathId)> = Vec::new();
        let mut seen_pairs = std::collections::BTreeSet::new();
        let max_rounds = candidates_per_link.iter().map(Vec::len).max().unwrap_or(0);
        'rounds: for round in 0..max_rounds {
            for pairs in &candidates_per_link {
                if num_pair >= max_pairs {
                    break 'rounds;
                }
                let Some(&key) = pairs.get(round) else {
                    continue;
                };
                if !seen_pairs.insert(key) {
                    continue;
                }
                // Union of the two paths' links.
                let mut union: Vec<LinkId> = instance.paths.path(key.0).links.clone();
                union.extend(instance.paths.path(key.1).links.iter().copied());
                union.sort_unstable();
                union.dedup();
                if !usable_path(&union) {
                    continue;
                }
                let columns: Vec<usize> = union.iter().map(|l| l.index()).collect();
                matrix
                    .push_indicator_row(&columns)
                    .map_err(CoreError::Numerical)?;
                sources.push(EquationSource::PathPair(key.0, key.1));
                accepted_pairs.push(key);
                for &c in &columns {
                    covered[c] = true;
                }
                num_pair += 1;
            }
        }
        pairs = accepted_pairs;
    }

    if sources.is_empty() {
        return Err(CoreError::NoUsableEquations);
    }

    Ok(EquationStructure {
        matrix,
        sources,
        single_paths: usable_paths,
        pairs,
        covered,
    })
}

/// Builds the measurement equations for an instance from recorded
/// observations: the observation-independent [`equation_structure`] plus
/// a right-hand side fetched through the batch estimator (singles one by
/// one, pairs in a single AND/popcount batch).
pub fn build_equations(
    instance: &TopologyInstance,
    estimator: &ProbabilityEstimator<'_>,
    config: &EquationConfig,
) -> Result<EquationSystem, CoreError> {
    let structure = equation_structure(instance, config)?;
    let mut rhs = Vec::with_capacity(structure.num_equations());
    for &path in &structure.single_paths {
        rhs.push(estimator.log_prob_paths_good(&[path])?);
    }
    rhs.extend(estimator.log_prob_pairs_good(&structure.pairs)?);
    Ok(structure.into_system(rhs))
}

impl EquationStructure {
    /// Assembles an [`EquationSystem`] from this structure and a
    /// fully-populated right-hand side (one entry per row).
    fn into_system(self, rhs: Vec<f64>) -> EquationSystem {
        debug_assert_eq!(rhs.len(), self.sources.len());
        let num_single = self.single_paths.len();
        let num_pair = self.pairs.len();
        EquationSystem {
            matrix: self.matrix,
            rhs,
            sources: self.sources,
            num_single,
            num_pair,
            covered: self.covered,
        }
    }
}

/// Incremental equation building over a [`StreamingEstimator`].
///
/// The builder computes the equation structure once (topology work only),
/// registers every accepted pair with the streaming estimator, and can
/// then refresh the right-hand side at any point of the measurement
/// stream in `O(num_equations)` — each RHS entry is an O(1) accumulator
/// read, with **no re-scan of the recorded lanes**
/// ([`IncrementalEquationBuilder::rhs`]; the convenience
/// [`IncrementalEquationBuilder::system`] additionally clones the
/// structure to return an owned system). This is the
/// long-running-deployment mode: push a snapshot, re-solve when desired,
/// never re-query history.
#[derive(Debug, Clone)]
pub struct IncrementalEquationBuilder {
    structure: EquationStructure,
    /// Accumulator handles of the accepted pairs, resolved once at
    /// registration — the RHS refresh reads them as plain array indices.
    pair_handles: Vec<usize>,
}

impl IncrementalEquationBuilder {
    /// Builds the equation structure for `instance` and registers every
    /// accepted path pair with `estimator` (idempotent; pairs registered
    /// after snapshots were already pushed are caught up with one kernel
    /// sweep each). The returned builder holds the resolved pair handles,
    /// so [`IncrementalEquationBuilder::system`] must be called with the
    /// **same** estimator.
    pub fn new(
        instance: &TopologyInstance,
        estimator: &mut StreamingEstimator,
        config: &EquationConfig,
    ) -> Result<Self, CoreError> {
        let structure = equation_structure(instance, config)?;
        let pair_handles = estimator
            .register_pairs(&structure.pairs)
            .map_err(CoreError::Measurement)?;
        Ok(IncrementalEquationBuilder {
            structure,
            pair_handles,
        })
    }

    /// The observation-independent structure.
    pub fn structure(&self) -> &EquationStructure {
        &self.structure
    }

    /// The right-hand side at the estimator's current snapshot count —
    /// one O(1) accumulator read per equation, parallel to the
    /// structure's rows. This is the true per-refresh cost: hot loops
    /// that re-solve repeatedly should call this and reuse a previously
    /// built [`EquationSystem`]'s matrix (or the [`EquationStructure`]),
    /// swapping only the RHS. Fails with [`CoreError::Measurement`] if no
    /// snapshots have been recorded yet (the RHS would be log 0
    /// everywhere).
    pub fn rhs(&self, estimator: &StreamingEstimator) -> Result<Vec<f64>, CoreError> {
        let mut rhs = Vec::with_capacity(self.structure.num_equations());
        for &path in &self.structure.single_paths {
            rhs.push(
                estimator
                    .log_prob_path_good(path)
                    .map_err(CoreError::Measurement)?,
            );
        }
        rhs.extend(
            estimator
                .log_prob_pairs_good_at(&self.pair_handles)
                .map_err(CoreError::Measurement)?,
        );
        Ok(rhs)
    }

    /// Produces a self-contained equation system at the estimator's
    /// current snapshot count. Note this **clones the structure** (the
    /// sparse matrix, sources and coverage) to hand out an owned
    /// [`EquationSystem`]; per-refresh loops should prefer
    /// [`IncrementalEquationBuilder::rhs`] and reuse the structure.
    pub fn system(&self, estimator: &StreamingEstimator) -> Result<EquationSystem, CoreError> {
        Ok(self.structure.clone().into_system(self.rhs(estimator)?))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use netcorr_measure::PathObservations;
    use netcorr_topology::toy;

    /// Observations over Figure 1(a)'s three paths where every path is good
    /// half the time (contents only matter for the RHS, not the structure).
    fn fig1a_observations() -> PathObservations {
        let mut obs = PathObservations::new(3);
        for i in 0..16 {
            let bit = i % 2 == 0;
            obs.record_snapshot(&[bit, !bit, bit]).unwrap();
        }
        obs
    }

    #[test]
    fn fig1a_produces_exactly_the_papers_equations() {
        let inst = toy::figure_1a();
        let obs = fig1a_observations();
        let est = ProbabilityEstimator::new(&obs).unwrap();
        let system = build_equations(&inst, &est, &EquationConfig::default()).unwrap();

        // All three paths avoid correlated links; the only usable pair is
        // (P2, P3) — exactly the example worked out in Section 4.
        assert_eq!(system.num_single, 3);
        assert_eq!(system.num_pair, 1);
        assert_eq!(system.num_equations(), 4);
        assert_eq!(system.num_uncovered_links(), 0);
        assert!(system
            .sources
            .contains(&EquationSource::PathPair(PathId(1), PathId(2))));
        assert!(!system
            .sources
            .iter()
            .any(|s| matches!(s, EquationSource::PathPair(PathId(0), _))));

        // The pair equation covers links e2, e3, e4 (columns 1, 2, 3).
        let pair_row = system.matrix.row(3);
        let cols: Vec<usize> = pair_row.iter().map(|&(c, _)| c).collect();
        assert_eq!(cols, vec![1, 2, 3]);
    }

    #[test]
    fn independence_mode_uses_all_paths_and_intersecting_pairs() {
        let inst = toy::figure_1a();
        let obs = fig1a_observations();
        let est = ProbabilityEstimator::new(&obs).unwrap();
        let config = EquationConfig {
            respect_correlation: false,
            ..EquationConfig::default()
        };
        let system = build_equations(&inst, &est, &config).unwrap();
        assert_eq!(system.num_single, 3);
        // Intersecting pairs: (P1,P2) share e3, (P2,P3) share e2 -> 2 pairs.
        assert_eq!(system.num_pair, 2);
    }

    #[test]
    fn pairs_can_be_disabled() {
        let inst = toy::figure_1a();
        let obs = fig1a_observations();
        let est = ProbabilityEstimator::new(&obs).unwrap();
        let config = EquationConfig {
            use_pairs: false,
            ..EquationConfig::default()
        };
        let system = build_equations(&inst, &est, &config).unwrap();
        assert_eq!(system.num_single, 3);
        assert_eq!(system.num_pair, 0);
    }

    #[test]
    fn correlated_paths_are_excluded() {
        // In Figure 1(b), every path is usable (each path's links are in
        // different sets), but with a partition that puts a whole path in
        // one set the path is excluded.
        let inst = toy::figure_1b();
        let all_in_one = inst
            .with_correlation(netcorr_topology::CorrelationPartition::single_set(3))
            .unwrap();
        let mut obs = PathObservations::new(2);
        for _ in 0..8 {
            obs.record_snapshot(&[false, true]).unwrap();
        }
        let est = ProbabilityEstimator::new(&obs).unwrap();
        let err = build_equations(&all_in_one, &est, &EquationConfig::default()).unwrap_err();
        assert_eq!(err, CoreError::NoUsableEquations);
        // The independence baseline still forms equations on the same
        // instance.
        let config = EquationConfig {
            respect_correlation: false,
            ..EquationConfig::default()
        };
        let system = build_equations(&all_in_one, &est, &config).unwrap();
        assert_eq!(system.num_single, 2);
    }

    #[test]
    fn rhs_is_the_clamped_log_frequency() {
        let inst = toy::figure_1a();
        let mut obs = PathObservations::new(3);
        // P1 good 3/4 of the time, P2 always good, P3 never good.
        for i in 0..8 {
            obs.record_snapshot(&[i % 4 == 0, false, true]).unwrap();
        }
        let est = ProbabilityEstimator::new(&obs).unwrap();
        let config = EquationConfig {
            use_pairs: false,
            ..EquationConfig::default()
        };
        let system = build_equations(&inst, &est, &config).unwrap();
        assert!((system.rhs[0] - (0.75f64).ln()).abs() < 1e-12);
        assert_eq!(system.rhs[1], 0.0);
        // Never-good path: clamped to 1/(2N) = 1/16.
        assert!((system.rhs[2] - (1.0 / 16.0f64).ln()).abs() < 1e-12);
    }

    #[test]
    fn pair_budget_is_respected() {
        let inst = toy::figure_1a();
        let obs = fig1a_observations();
        let est = ProbabilityEstimator::new(&obs).unwrap();
        let config = EquationConfig {
            respect_correlation: false,
            max_pair_equations_per_link: 0.25, // ceil(0.25 * 4) = 1 pair max
            ..EquationConfig::default()
        };
        let system = build_equations(&inst, &est, &config).unwrap();
        assert_eq!(system.num_pair, 1);
    }

    #[test]
    fn incremental_builder_matches_batch_at_every_prefix() {
        use netcorr_measure::StreamingEstimator;

        let inst = toy::figure_1a();
        let config = EquationConfig::default();
        let mut streaming = StreamingEstimator::new(3);
        let builder = IncrementalEquationBuilder::new(&inst, &mut streaming, &config).unwrap();

        // No snapshots yet: the RHS cannot be formed.
        assert!(matches!(
            builder.system(&streaming),
            Err(CoreError::Measurement(_))
        ));

        let mut obs = PathObservations::new(3);
        for i in 0..40 {
            let snapshot = [i % 2 == 0, i % 3 == 0, i % 5 == 0];
            streaming.push_snapshot(&snapshot).unwrap();
            obs.record_snapshot(&snapshot).unwrap();
            // After every push the incremental system equals the batch
            // system built from scratch on the same prefix.
            let incremental = builder.system(&streaming).unwrap();
            let est = ProbabilityEstimator::new(&obs).unwrap();
            let batch = build_equations(&inst, &est, &config).unwrap();
            assert_eq!(incremental.rhs, batch.rhs);
            assert_eq!(incremental.sources, batch.sources);
            assert_eq!(incremental.num_single, batch.num_single);
            assert_eq!(incremental.num_pair, batch.num_pair);
            assert_eq!(incremental.covered, batch.covered);
        }
    }

    #[test]
    fn incremental_builder_catches_up_on_late_construction() {
        use netcorr_measure::StreamingEstimator;

        // Builder created *after* the snapshots arrived: registration
        // performs the catch-up sweep and the system still matches batch.
        let inst = toy::figure_1a();
        let config = EquationConfig::default();
        let mut streaming = StreamingEstimator::new(3);
        for i in 0..25 {
            streaming
                .push_snapshot(&[i % 2 == 0, i % 3 == 0, i % 4 == 0])
                .unwrap();
        }
        let builder = IncrementalEquationBuilder::new(&inst, &mut streaming, &config).unwrap();
        let incremental = builder.system(&streaming).unwrap();
        let est = ProbabilityEstimator::new(streaming.observations()).unwrap();
        let batch = build_equations(&inst, &est, &config).unwrap();
        assert_eq!(incremental.rhs, batch.rhs);
        assert_eq!(builder.structure().pairs().len(), incremental.num_pair);
        // The RHS-only refresh (no structure clone) matches the full
        // system's RHS row for row.
        assert_eq!(builder.rhs(&streaming).unwrap(), incremental.rhs);
    }

    #[test]
    fn lan_topology_covers_every_link() {
        let inst = toy::figure_2a_lan();
        let mut obs = PathObservations::new(inst.num_paths());
        for _ in 0..4 {
            obs.record_snapshot(&vec![false; inst.num_paths()]).unwrap();
        }
        let est = ProbabilityEstimator::new(&obs).unwrap();
        let system = build_equations(&inst, &est, &EquationConfig::default()).unwrap();
        assert_eq!(system.num_uncovered_links(), 0);
        assert_eq!(system.num_single, inst.num_paths());
        assert!(system.num_pair > 0);
    }
}
