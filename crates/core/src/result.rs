//! The output of an inference run.

use serde::{Deserialize, Serialize};

use netcorr_topology::graph::LinkId;

/// Which numerical strategy produced an estimate.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum SolverKind {
    /// The paper-exact dense path: select `|E|` linearly independent
    /// equations and solve them exactly.
    DenseExact,
    /// The paper-exact dense path with fewer than `|E|` independent
    /// equations: the minimum-L1-norm solution consistent with them.
    DenseL1,
    /// The scalable path: regularised sparse least squares (CGLS) over all
    /// collected equations.
    SparseIterative,
}

/// Diagnostics accompanying an estimate: how many equations of each kind
/// were used, whether the system was under-determined, and the residual of
/// the solution on the collected equations.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Diagnostics {
    /// Number of links (unknowns).
    pub num_links: usize,
    /// Number of single-path equations used (the paper's `N1`).
    pub num_single_path_equations: usize,
    /// Number of path-pair equations used (the paper's `N2`).
    pub num_pair_equations: usize,
    /// Whether fewer independent equations than unknowns were available.
    pub underdetermined: bool,
    /// Which solver produced the estimate.
    pub solver: SolverKind,
    /// Euclidean residual of the solution over the collected equations.
    pub residual: f64,
    /// Number of links that appear in no usable equation (their estimate
    /// comes purely from the regularisation / minimum-norm choice).
    pub uncovered_links: usize,
    /// Iterations spent by the iterative solver (0 for the direct paths).
    pub iterations: usize,
}

/// Per-link congestion probabilities inferred from end-to-end measurements.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct TomographyEstimate {
    congestion_probabilities: Vec<f64>,
    /// Solver diagnostics.
    pub diagnostics: Diagnostics,
}

impl TomographyEstimate {
    /// Builds an estimate from the solved log-good-probabilities
    /// `x_k = log P(X_{e_k} = 0)`.
    pub fn from_log_good_probabilities(x: &[f64], diagnostics: Diagnostics) -> Self {
        let congestion_probabilities = x
            .iter()
            .map(|&xk| (1.0 - xk.min(0.0).exp()).clamp(0.0, 1.0))
            .collect();
        TomographyEstimate {
            congestion_probabilities,
            diagnostics,
        }
    }

    /// Builds an estimate directly from per-link congestion probabilities
    /// (used by the exact theorem algorithm).
    pub fn from_congestion_probabilities(
        probabilities: Vec<f64>,
        diagnostics: Diagnostics,
    ) -> Self {
        TomographyEstimate {
            congestion_probabilities: probabilities
                .into_iter()
                .map(|p| p.clamp(0.0, 1.0))
                .collect(),
            diagnostics,
        }
    }

    /// Number of links covered by the estimate.
    pub fn num_links(&self) -> usize {
        self.congestion_probabilities.len()
    }

    /// The inferred probability that `link` is congested, `P(X = 1)`.
    ///
    /// # Panics
    ///
    /// Panics if the link id is out of range.
    pub fn congestion_probability(&self, link: LinkId) -> f64 {
        self.congestion_probabilities[link.index()]
    }

    /// The inferred probability that `link` is good, `P(X = 0)`.
    ///
    /// # Panics
    ///
    /// Panics if the link id is out of range.
    pub fn good_probability(&self, link: LinkId) -> f64 {
        1.0 - self.congestion_probability(link)
    }

    /// All inferred congestion probabilities, indexed by link.
    pub fn probabilities(&self) -> &[f64] {
        &self.congestion_probabilities
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn diagnostics() -> Diagnostics {
        Diagnostics {
            num_links: 3,
            num_single_path_equations: 2,
            num_pair_equations: 1,
            underdetermined: false,
            solver: SolverKind::DenseExact,
            residual: 0.0,
            uncovered_links: 0,
            iterations: 0,
        }
    }

    #[test]
    fn log_probabilities_are_converted_and_clamped() {
        let x = [0.0, (0.5f64).ln(), -30.0, 0.2];
        let est = TomographyEstimate::from_log_good_probabilities(&x, diagnostics());
        assert_eq!(est.num_links(), 4);
        assert!((est.congestion_probability(LinkId(0)) - 0.0).abs() < 1e-12);
        assert!((est.congestion_probability(LinkId(1)) - 0.5).abs() < 1e-12);
        assert!(est.congestion_probability(LinkId(2)) > 0.999);
        // A (noisy) positive log-probability is clamped to "always good".
        assert_eq!(est.congestion_probability(LinkId(3)), 0.0);
        assert!((est.good_probability(LinkId(1)) - 0.5).abs() < 1e-12);
    }

    #[test]
    fn direct_probabilities_are_clamped_to_unit_interval() {
        let est =
            TomographyEstimate::from_congestion_probabilities(vec![-0.1, 0.4, 1.7], diagnostics());
        assert_eq!(est.congestion_probability(LinkId(0)), 0.0);
        assert!((est.congestion_probability(LinkId(1)) - 0.4).abs() < 1e-12);
        assert_eq!(est.congestion_probability(LinkId(2)), 1.0);
        assert_eq!(est.probabilities().len(), 3);
    }

    #[test]
    fn diagnostics_are_carried_through() {
        let est = TomographyEstimate::from_log_good_probabilities(&[0.0], diagnostics());
        assert_eq!(est.diagnostics.num_single_path_equations, 2);
        assert_eq!(est.diagnostics.solver, SolverKind::DenseExact);
    }
}
