//! The practical inference algorithms: the paper's correlation-aware
//! algorithm (Section 4) and the independence baseline it is compared
//! against (Nguyen–Thiran \[12\]).
//!
//! Both algorithms share the same pipeline — build log-linear measurement
//! equations, solve them, convert the solved log-good-probabilities into
//! per-link congestion probabilities. The only difference is whether the
//! equation builder respects the correlation partition:
//!
//! * [`CorrelationAlgorithm`] uses only paths and path pairs whose links
//!   are mutually uncorrelated, so every equation it forms is valid even
//!   when links inside a correlation set are arbitrarily dependent.
//! * [`IndependenceAlgorithm`] pretends every link is independent and uses
//!   every path and every intersecting path pair; when links are actually
//!   correlated, some of its equations are systematically wrong, which is
//!   exactly the effect the paper's evaluation quantifies.

use serde::{Deserialize, Serialize};

use netcorr_measure::{PathObservations, ProbabilityEstimator};
use netcorr_topology::TopologyInstance;

use crate::equations::{build_equations, EquationConfig};
use crate::error::CoreError;
use crate::result::{Diagnostics, TomographyEstimate};
use crate::solver::{solve_equations, SolverConfig};

/// Configuration shared by the practical algorithms.
#[derive(Debug, Clone, Copy, PartialEq, Default, Serialize, Deserialize)]
pub struct AlgorithmConfig {
    /// Equation-building options.
    pub equations: EquationConfig,
    /// Numerical solver options.
    pub solver: SolverConfig,
}

/// Shared pipeline: equations → solve → estimate.
fn infer_log_linear(
    instance: &TopologyInstance,
    observations: &PathObservations,
    config: &AlgorithmConfig,
) -> Result<TomographyEstimate, CoreError> {
    instance.validate()?;
    if observations.num_paths() != instance.num_paths() {
        return Err(CoreError::InvalidConfig(format!(
            "observations cover {} paths, instance has {}",
            observations.num_paths(),
            instance.num_paths()
        )));
    }
    let estimator = ProbabilityEstimator::new(observations)?;
    let system = build_equations(instance, &estimator, &config.equations)?;
    let outcome = solve_equations(&system, instance.num_links(), &config.solver)?;
    let diagnostics = Diagnostics {
        num_links: instance.num_links(),
        num_single_path_equations: outcome.used_single,
        num_pair_equations: outcome.used_pair,
        underdetermined: outcome.underdetermined,
        solver: outcome.kind,
        residual: outcome.residual,
        uncovered_links: system.num_uncovered_links(),
        iterations: outcome.iterations,
    };
    Ok(TomographyEstimate::from_log_good_probabilities(
        &outcome.x,
        diagnostics,
    ))
}

/// The paper's practical algorithm (Section 4): infers per-link congestion
/// probabilities from end-to-end measurements while accounting for the
/// known correlation sets.
#[derive(Debug, Clone)]
pub struct CorrelationAlgorithm<'a> {
    instance: &'a TopologyInstance,
    config: AlgorithmConfig,
}

impl<'a> CorrelationAlgorithm<'a> {
    /// Creates the algorithm with default configuration.
    pub fn new(instance: &'a TopologyInstance) -> Self {
        CorrelationAlgorithm {
            instance,
            config: AlgorithmConfig::default(),
        }
    }

    /// Creates the algorithm with a custom configuration.
    /// `respect_correlation` is forced on — that is what makes this the
    /// correlation algorithm.
    pub fn with_config(instance: &'a TopologyInstance, mut config: AlgorithmConfig) -> Self {
        config.equations.respect_correlation = true;
        CorrelationAlgorithm { instance, config }
    }

    /// The configuration in use.
    pub fn config(&self) -> &AlgorithmConfig {
        &self.config
    }

    /// Infers the congestion probability of every link from the recorded
    /// observations.
    pub fn infer(&self, observations: &PathObservations) -> Result<TomographyEstimate, CoreError> {
        let mut config = self.config;
        config.equations.respect_correlation = true;
        infer_log_linear(self.instance, observations, &config)
    }
}

/// The independence baseline (Nguyen–Thiran \[12\]): identical pipeline but
/// every link is assumed independent of every other, regardless of the
/// instance's correlation partition.
#[derive(Debug, Clone)]
pub struct IndependenceAlgorithm<'a> {
    instance: &'a TopologyInstance,
    config: AlgorithmConfig,
}

impl<'a> IndependenceAlgorithm<'a> {
    /// Creates the baseline with default configuration.
    pub fn new(instance: &'a TopologyInstance) -> Self {
        IndependenceAlgorithm {
            instance,
            config: AlgorithmConfig::default(),
        }
    }

    /// Creates the baseline with a custom configuration.
    /// `respect_correlation` is forced off.
    pub fn with_config(instance: &'a TopologyInstance, mut config: AlgorithmConfig) -> Self {
        config.equations.respect_correlation = false;
        IndependenceAlgorithm { instance, config }
    }

    /// The configuration in use.
    pub fn config(&self) -> &AlgorithmConfig {
        &self.config
    }

    /// Infers the congestion probability of every link, assuming all links
    /// are independent.
    pub fn infer(&self, observations: &PathObservations) -> Result<TomographyEstimate, CoreError> {
        let mut config = self.config;
        config.equations.respect_correlation = false;
        infer_log_linear(self.instance, observations, &config)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use netcorr_sim::{CongestionModelBuilder, SimulationConfig, Simulator, TransmissionModel};
    use netcorr_topology::graph::LinkId;
    use netcorr_topology::toy;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    /// Simulates Figure 1(a) with the canonical correlated model and
    /// returns (instance, observations, true marginals).
    fn simulate_fig1a(
        snapshots: usize,
        seed: u64,
    ) -> (TopologyInstance, PathObservations, Vec<f64>) {
        let inst = toy::figure_1a();
        let model = CongestionModelBuilder::new(&inst.correlation)
            .joint_group(&[LinkId(0), LinkId(1)], 0.3)
            .independent(LinkId(2), 0.1)
            .independent(LinkId(3), 0.15)
            .build()
            .unwrap();
        let truth = model.marginals();
        let config = SimulationConfig {
            transmission: TransmissionModel::Exact,
            ..SimulationConfig::default()
        };
        let sim = Simulator::new(&inst, &model, config).unwrap();
        let mut rng = StdRng::seed_from_u64(seed);
        let obs = sim.run(snapshots, &mut rng);
        (inst, obs, truth)
    }

    #[test]
    fn correlation_algorithm_recovers_marginals_on_fig1a() {
        let (inst, obs, truth) = simulate_fig1a(30_000, 7);
        let estimate = CorrelationAlgorithm::new(&inst).infer(&obs).unwrap();
        for link in inst.topology.link_ids() {
            let err = (estimate.congestion_probability(link) - truth[link.index()]).abs();
            assert!(
                err < 0.05,
                "link {link}: estimated {}, truth {}",
                estimate.congestion_probability(link),
                truth[link.index()]
            );
        }
        // Paper bookkeeping: 3 single-path + 1 pair equation, fully
        // determined.
        assert_eq!(estimate.diagnostics.num_single_path_equations, 3);
        assert_eq!(estimate.diagnostics.num_pair_equations, 1);
        assert!(!estimate.diagnostics.underdetermined);
    }

    #[test]
    fn independence_baseline_is_biased_on_correlated_links() {
        // The "domain chain" toy: path P1 crosses both links of the
        // correlation set {l2, l3}, which fail together 30% of the time.
        let inst = toy::correlated_chain();
        let model = CongestionModelBuilder::new(&inst.correlation)
            .joint_group(&[LinkId(1), LinkId(2)], 0.3)
            .independent(LinkId(0), 0.05)
            .independent(LinkId(3), 0.05)
            .build()
            .unwrap();
        let truth = model.marginals();
        let config = SimulationConfig {
            transmission: TransmissionModel::Exact,
            ..SimulationConfig::default()
        };
        let sim = Simulator::new(&inst, &model, config).unwrap();
        let mut rng = StdRng::seed_from_u64(11);
        let obs = sim.run(30_000, &mut rng);

        let corr = CorrelationAlgorithm::new(&inst).infer(&obs).unwrap();
        let indep = IndependenceAlgorithm::new(&inst).infer(&obs).unwrap();

        let max_error = |est: &TomographyEstimate| -> f64 {
            inst.topology
                .link_ids()
                .map(|l| (est.congestion_probability(l) - truth[l.index()]).abs())
                .fold(0.0, f64::max)
        };
        let corr_err = max_error(&corr);
        let indep_err = max_error(&indep);
        assert!(
            corr_err < 0.06,
            "correlation algorithm should be accurate, max error {corr_err}"
        );
        assert!(
            indep_err > 0.15,
            "independence baseline should be visibly biased, max error {indep_err}"
        );
        assert!(corr_err < indep_err);
    }

    #[test]
    fn both_algorithms_agree_when_links_are_truly_independent() {
        let inst = toy::figure_1a();
        // Truly independent links, even inside the declared correlation
        // set.
        let model = CongestionModelBuilder::new(&inst.correlation)
            .independent(LinkId(0), 0.2)
            .independent(LinkId(1), 0.25)
            .independent(LinkId(2), 0.1)
            .independent(LinkId(3), 0.15)
            .build()
            .unwrap();
        let truth = model.marginals();
        let config = SimulationConfig {
            transmission: TransmissionModel::Exact,
            ..SimulationConfig::default()
        };
        let sim = Simulator::new(&inst, &model, config).unwrap();
        let mut rng = StdRng::seed_from_u64(3);
        let obs = sim.run(30_000, &mut rng);
        let corr = CorrelationAlgorithm::new(&inst).infer(&obs).unwrap();
        let indep = IndependenceAlgorithm::new(&inst).infer(&obs).unwrap();
        for link in inst.topology.link_ids() {
            assert!((corr.congestion_probability(link) - truth[link.index()]).abs() < 0.06);
            assert!((indep.congestion_probability(link) - truth[link.index()]).abs() < 0.06);
        }
    }

    #[test]
    fn observation_width_mismatch_is_rejected() {
        let (inst, _, _) = simulate_fig1a(10, 1);
        let wrong = PathObservations::new(5);
        assert!(matches!(
            CorrelationAlgorithm::new(&inst).infer(&wrong),
            Err(CoreError::InvalidConfig(_))
        ));
    }

    #[test]
    fn empty_observations_are_rejected() {
        let (inst, _, _) = simulate_fig1a(10, 1);
        let empty = PathObservations::new(inst.num_paths());
        assert!(matches!(
            CorrelationAlgorithm::new(&inst).infer(&empty),
            Err(CoreError::Measurement(_))
        ));
    }

    #[test]
    fn with_config_forces_the_correlation_flags() {
        let (inst, obs, _) = simulate_fig1a(2000, 5);
        let mut config = AlgorithmConfig::default();
        config.equations.respect_correlation = false;
        let corr = CorrelationAlgorithm::with_config(&inst, config);
        assert!(corr.config().equations.respect_correlation);
        let estimate = corr.infer(&obs).unwrap();
        assert_eq!(estimate.diagnostics.num_pair_equations, 1);

        let mut config = AlgorithmConfig::default();
        config.equations.respect_correlation = true;
        let indep = IndependenceAlgorithm::with_config(&inst, config);
        assert!(!indep.config().equations.respect_correlation);
        let estimate = indep.infer(&obs).unwrap();
        assert_eq!(
            estimate.diagnostics.num_pair_equations, 1,
            "independent pairs beyond |E| are not needed"
        );
    }

    #[test]
    fn sparse_and_dense_solver_paths_agree_on_fig1a() {
        let (inst, obs, truth) = simulate_fig1a(20_000, 13);
        let dense = CorrelationAlgorithm::new(&inst).infer(&obs).unwrap();
        let mut sparse_config = AlgorithmConfig::default();
        sparse_config.solver.dense_threshold = 0;
        let sparse = CorrelationAlgorithm::with_config(&inst, sparse_config)
            .infer(&obs)
            .unwrap();
        for link in inst.topology.link_ids() {
            assert!(
                (dense.congestion_probability(link) - sparse.congestion_probability(link)).abs()
                    < 0.02,
                "link {link}: dense {} vs sparse {}",
                dense.congestion_probability(link),
                sparse.congestion_probability(link)
            );
            assert!((sparse.congestion_probability(link) - truth[link.index()]).abs() < 0.06);
        }
    }
}
