//! Solving the log-linear measurement system.
//!
//! The solver follows the paper's procedure (Section 4) for **both**
//! algorithms:
//!
//! 1. Consider the candidate equations in priority order — single-path
//!    equations first, then path-pair equations — and keep a maximal
//!    linearly-independent subset; the kept counts are the paper's `N1` and
//!    `N2`.
//! 2. If `N1 + N2 = |E|`, solve the square system exactly.
//! 3. If `N1 + N2 < |E|`, the system is under-determined and the solution
//!    that minimises the L1 norm is chosen (the unknowns are
//!    log-probabilities, `x ≤ 0`, so this is the least-congestion solution
//!    consistent with every kept equation).
//!
//! Selecting exactly the independent equations — rather than least-squares
//! over every redundant measurement — matters for fidelity: it is what
//! makes the independence baseline pay for its invalid equations (an
//! invalid pair equation enters the square system at full weight and its
//! bias propagates to the links it touches), which is precisely the effect
//! the paper's evaluation measures.
//!
//! Numerically, small instances use dense QR / an exact LP for the
//! minimum-L1 solution; large instances (above
//! [`SolverConfig::dense_threshold`] links) solve the selected equations
//! with sparse CGLS plus a small ridge, which approximates the minimum-norm
//! completion of the under-determined case at a cost linear in the number
//! of non-zeros.

use serde::{Deserialize, Serialize};

use netcorr_linalg::{
    cgls_blocked, l1::min_l1_norm_solution, l1::min_l1_norm_solution_nonneg, norms,
    rank::IndependentRowSelector, BlockedSparseMatrix, LinalgError, Matrix, QrDecomposition,
    SparseMatrix,
};

use crate::equations::{EquationSource, EquationSystem};
use crate::error::CoreError;
use crate::result::SolverKind;

/// Configuration of the numerical solver.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct SolverConfig {
    /// Relative tolerance for the linear-independence selection.
    pub independence_tolerance: f64,
    /// Instances with at most this many links use the dense exact path
    /// (QR for the determined case, an exact LP for the minimum-L1-norm
    /// under-determined case); larger instances solve the selected
    /// equations with sparse CGLS.
    pub dense_threshold: usize,
    /// Maximum CGLS iterations on the sparse path.
    pub cgls_iterations: usize,
    /// CGLS convergence tolerance (relative to the RHS norm).
    pub cgls_tolerance: f64,
    /// Ridge (Tikhonov) regularisation used on the sparse path.
    pub ridge: f64,
    /// Clamp the solved log-probabilities to `≤ 0` (probabilities never
    /// exceed 1). Only disabled in ablation experiments.
    pub clamp_nonpositive: bool,
}

impl Default for SolverConfig {
    fn default() -> Self {
        SolverConfig {
            independence_tolerance: 1e-9,
            dense_threshold: 400,
            cgls_iterations: 4000,
            cgls_tolerance: 1e-12,
            ridge: 1e-8,
            clamp_nonpositive: true,
        }
    }
}

/// The outcome of a solve: the log-good-probabilities plus bookkeeping used
/// to fill [`crate::result::Diagnostics`].
#[derive(Debug, Clone)]
pub struct SolveOutcome {
    /// Solved `x_k = log P(X_{e_k} = 0)` per link.
    pub x: Vec<f64>,
    /// Which numerical path produced the solution.
    pub kind: SolverKind,
    /// Residual over all collected equations.
    pub residual: f64,
    /// Number of single-path equations actually used (`N1`).
    pub used_single: usize,
    /// Number of path-pair equations actually used (`N2`).
    pub used_pair: usize,
    /// Whether fewer independent equations than unknowns were available.
    pub underdetermined: bool,
    /// Iterations spent by the iterative solver (0 for the direct paths).
    pub iterations: usize,
}

/// Selects a maximal linearly-independent subset of the rows of `matrix`,
/// in row order (the paper's priority order: the equation builder emits
/// single-path equations before pair equations).
///
/// The selection depends only on the matrix — never on a right-hand side —
/// so it can be computed once per equation structure and reused across
/// every trial that shares the structure (see [`crate::InferenceContext`]).
pub(crate) fn select_rows(matrix: &SparseMatrix, num_links: usize, tolerance: f64) -> Vec<usize> {
    let mut selector = IndependentRowSelector::new(num_links, tolerance);
    let mut selected: Vec<usize> = Vec::new();
    let mut dense_row = vec![0.0; num_links];
    for row_idx in 0..matrix.rows() {
        if selector.is_complete() {
            break;
        }
        for value in dense_row.iter_mut() {
            *value = 0.0;
        }
        for &(col, value) in matrix.row(row_idx) {
            dense_row[col] = value;
        }
        if selector.offer(&dense_row) {
            selected.push(row_idx);
        }
    }
    selected
}

/// Gathers the selected rows into a dense matrix (dense path).
pub(crate) fn gather_dense(matrix: &SparseMatrix, selected: &[usize], num_links: usize) -> Matrix {
    let mut a = Matrix::zeros(selected.len(), num_links);
    for (new_row, &row_idx) in selected.iter().enumerate() {
        for &(col, value) in matrix.row(row_idx) {
            a[(new_row, col)] = value;
        }
    }
    a
}

/// Gathers the selected rows into a sparse matrix (CGLS path).
pub(crate) fn gather_sparse(
    matrix: &SparseMatrix,
    selected: &[usize],
    num_links: usize,
) -> Result<SparseMatrix, CoreError> {
    let mut gathered = SparseMatrix::new(num_links);
    for &row_idx in selected {
        gathered
            .push_row(matrix.row(row_idx))
            .map_err(CoreError::Numerical)?;
    }
    Ok(gathered)
}

/// Gathers the right-hand-side entries of the selected rows.
pub(crate) fn gather_rhs(rhs: &[f64], selected: &[usize]) -> Vec<f64> {
    selected.iter().map(|&i| rhs[i]).collect()
}

/// Dense determined path: one back-substitution through a QR factorization
/// of the selected square system. The factorization depends only on the
/// matrix, so callers holding many right-hand sides over the same
/// structure factor once and call this (or
/// [`QrDecomposition::solve_many`]) per RHS.
pub(crate) fn solve_dense_determined(
    qr: &QrDecomposition,
    b: &[f64],
) -> Result<SolveOutcome, CoreError> {
    let x = qr.solve_least_squares(b).map_err(CoreError::Numerical)?;
    Ok(SolveOutcome {
        x,
        kind: SolverKind::DenseExact,
        residual: 0.0,
        used_single: 0,
        used_pair: 0,
        underdetermined: false,
        iterations: 0,
    })
}

/// Dense under-determined path: exact minimum-L1-norm LP. Substitute
/// `z = -x ≥ 0`, so the constraints become `A z = -b` with `z ≥ 0`.
pub(crate) fn solve_dense_l1(a: &Matrix, b: &[f64]) -> Result<SolveOutcome, CoreError> {
    let neg_b: Vec<f64> = b.iter().map(|v| -v).collect();
    let x = match min_l1_norm_solution_nonneg(a, &neg_b) {
        Ok(z) => z.into_iter().map(|v| -v).collect::<Vec<f64>>(),
        Err(LinalgError::Infeasible) => {
            // Measurement noise can make the sign-constrained program
            // infeasible; fall back to the free-sign formulation.
            min_l1_norm_solution(a, b).map_err(CoreError::Numerical)?
        }
        Err(e) => return Err(CoreError::Numerical(e)),
    };
    Ok(SolveOutcome {
        x,
        kind: SolverKind::DenseL1,
        residual: 0.0,
        used_single: 0,
        used_pair: 0,
        underdetermined: true,
        iterations: 0,
    })
}

/// Scalable path: sparse CGLS (plus a small ridge) over the selected
/// equations in blocked CSR form, optionally warm-started from a previous
/// solution (`initial`). A cold start (`None`) is bit-identical to the
/// historical `cgls` entry point.
pub(crate) fn solve_sparse_prepared(
    matrix: &BlockedSparseMatrix,
    b: &[f64],
    underdetermined: bool,
    config: &SolverConfig,
    initial: Option<&[f64]>,
) -> Result<SolveOutcome, CoreError> {
    let solution = cgls_blocked(
        matrix,
        b,
        config.ridge,
        config.cgls_iterations,
        config.cgls_tolerance,
        initial,
    )
    .map_err(CoreError::Numerical)?;
    Ok(SolveOutcome {
        x: solution.x,
        kind: SolverKind::SparseIterative,
        residual: solution.residual,
        used_single: 0,
        used_pair: 0,
        underdetermined,
        iterations: solution.iterations,
    })
}

/// Solves the collected measurement system for the per-link
/// log-good-probabilities.
pub fn solve_equations(
    system: &EquationSystem,
    num_links: usize,
    config: &SolverConfig,
) -> Result<SolveOutcome, CoreError> {
    if num_links == 0 {
        // No unknowns: both numerical paths agree on the empty solution
        // (the dispatch boundary is irrelevant), so report the dense exact
        // kind with the residual of the untouched right-hand side.
        return Ok(SolveOutcome {
            x: Vec::new(),
            kind: SolverKind::DenseExact,
            residual: norms::l2_norm(&system.rhs),
            used_single: 0,
            used_pair: 0,
            underdetermined: false,
            iterations: 0,
        });
    }

    // --- 1. Select a maximal linearly-independent subset of equations, in
    // the paper's priority order. ---
    let selected = select_rows(&system.matrix, num_links, config.independence_tolerance);
    let used_single = selected
        .iter()
        .filter(|&&i| matches!(system.sources[i], EquationSource::SinglePath(_)))
        .count();
    let used_pair = selected.len() - used_single;
    let underdetermined = selected.len() < num_links;
    let b = gather_rhs(&system.rhs, &selected);

    // --- 2./3. Solve the selected equations. `num_links == dense_threshold`
    // goes dense (the threshold is inclusive). ---
    let mut outcome = if num_links <= config.dense_threshold {
        let a = gather_dense(&system.matrix, &selected, num_links);
        if underdetermined {
            solve_dense_l1(&a, &b)?
        } else {
            let qr = QrDecomposition::new(&a).map_err(CoreError::Numerical)?;
            solve_dense_determined(&qr, &b)?
        }
    } else {
        let gathered = gather_sparse(&system.matrix, &selected, num_links)?;
        solve_sparse_prepared(&gathered.to_blocked(), &b, underdetermined, config, None)?
    };
    outcome.used_single = used_single;
    outcome.used_pair = used_pair;
    outcome.underdetermined = underdetermined;

    if config.clamp_nonpositive {
        for x in &mut outcome.x {
            if *x > 0.0 {
                *x = 0.0;
            }
        }
    }
    // Residual over every collected equation (after clamping), so the two
    // numerical paths are directly comparable.
    let ax = system
        .matrix
        .matvec(&outcome.x)
        .map_err(CoreError::Numerical)?;
    outcome.residual = norms::l2_norm(&norms::sub(&ax, &system.rhs));
    Ok(outcome)
}

/// Convenience for tests and ablations: solves the same system with both
/// numerical paths and returns `(dense, sparse)`.
pub fn solve_both_paths(
    system: &EquationSystem,
    num_links: usize,
    config: &SolverConfig,
) -> Result<(SolveOutcome, SolveOutcome), CoreError> {
    let dense_config = SolverConfig {
        dense_threshold: usize::MAX,
        ..*config
    };
    let sparse_config = SolverConfig {
        dense_threshold: 0,
        ..*config
    };
    Ok((
        solve_equations(system, num_links, &dense_config)?,
        solve_equations(system, num_links, &sparse_config)?,
    ))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::equations::EquationSource;
    use netcorr_linalg::SparseMatrix;
    use netcorr_topology::path::PathId;

    /// Builds an equation system by hand: the Figure 1(a) system of
    /// Section 4 with exact (noise-free) right-hand sides for
    /// P(e1 good) = 0.8, P(e2 good) = 0.8, P(e3 good) = 0.9,
    /// P(e4 good) = 0.9.
    fn fig1a_exact_system() -> (EquationSystem, Vec<f64>) {
        let x_true = vec![(0.8f64).ln(), (0.8f64).ln(), (0.9f64).ln(), (0.9f64).ln()];
        let rows: Vec<Vec<usize>> = vec![
            vec![0, 2],    // P1 = {e1, e3}
            vec![1, 2],    // P2 = {e2, e3}
            vec![1, 3],    // P3 = {e2, e4}
            vec![1, 2, 3], // pair (P2, P3)
        ];
        let mut matrix = SparseMatrix::new(4);
        let mut rhs = Vec::new();
        for row in &rows {
            matrix.push_indicator_row(row).unwrap();
            rhs.push(row.iter().map(|&c| x_true[c]).sum());
        }
        let sources = vec![
            EquationSource::SinglePath(PathId(0)),
            EquationSource::SinglePath(PathId(1)),
            EquationSource::SinglePath(PathId(2)),
            EquationSource::PathPair(PathId(1), PathId(2)),
        ];
        (
            EquationSystem {
                matrix,
                rhs,
                sources,
                num_single: 3,
                num_pair: 1,
                covered: vec![true; 4],
            },
            x_true,
        )
    }

    #[test]
    fn dense_exact_recovers_the_true_solution() {
        let (system, x_true) = fig1a_exact_system();
        let outcome = solve_equations(&system, 4, &SolverConfig::default()).unwrap();
        assert_eq!(outcome.kind, SolverKind::DenseExact);
        assert_eq!(outcome.used_single, 3);
        assert_eq!(outcome.used_pair, 1);
        assert!(!outcome.underdetermined);
        assert!(
            norms::approx_eq(&outcome.x, &x_true, 1e-9),
            "{:?}",
            outcome.x
        );
        assert!(outcome.residual < 1e-9);
    }

    #[test]
    fn sparse_path_matches_dense_on_small_systems() {
        let (system, x_true) = fig1a_exact_system();
        let (dense, sparse) = solve_both_paths(&system, 4, &SolverConfig::default()).unwrap();
        assert_eq!(dense.kind, SolverKind::DenseExact);
        assert_eq!(sparse.kind, SolverKind::SparseIterative);
        assert!(norms::approx_eq(&dense.x, &x_true, 1e-8));
        assert!(norms::approx_eq(&sparse.x, &x_true, 1e-3), "{:?}", sparse.x);
        // Both report the same equation bookkeeping.
        assert_eq!(dense.used_single, sparse.used_single);
        assert_eq!(dense.used_pair, sparse.used_pair);
    }

    #[test]
    fn underdetermined_dense_system_uses_min_l1() {
        // Drop the pair equation: only 3 equations for 4 unknowns. The
        // minimum-L1 solution concentrates mass consistent with x ≤ 0.
        let (mut system, _) = fig1a_exact_system();
        // Rebuild without the last row.
        let mut matrix = SparseMatrix::new(4);
        for i in 0..3 {
            let cols: Vec<usize> = system.matrix.row(i).iter().map(|&(c, _)| c).collect();
            matrix.push_indicator_row(&cols).unwrap();
        }
        system.matrix = matrix;
        system.rhs.truncate(3);
        system.sources.truncate(3);
        system.num_pair = 0;
        let outcome = solve_equations(&system, 4, &SolverConfig::default()).unwrap();
        assert_eq!(outcome.kind, SolverKind::DenseL1);
        assert!(outcome.underdetermined);
        assert_eq!(outcome.used_single, 3);
        assert_eq!(outcome.used_pair, 0);
        // All solved log-probabilities are ≤ 0 and the equations are
        // satisfied.
        assert!(outcome.x.iter().all(|&v| v <= 1e-9));
        let ax = system.matrix.matvec(&outcome.x).unwrap();
        assert!(norms::approx_eq(&ax, &system.rhs, 1e-6));
    }

    #[test]
    fn clamping_removes_positive_log_probabilities() {
        // A single equation x0 = +0.5 (impossible for a log-probability,
        // but measurement noise can produce it); clamping maps it to 0.
        let mut matrix = SparseMatrix::new(1);
        matrix.push_indicator_row(&[0]).unwrap();
        let system = EquationSystem {
            matrix,
            rhs: vec![0.5],
            sources: vec![EquationSource::SinglePath(PathId(0))],
            num_single: 1,
            num_pair: 0,
            covered: vec![true],
        };
        let outcome = solve_equations(&system, 1, &SolverConfig::default()).unwrap();
        assert_eq!(outcome.x, vec![0.0]);
        let unclamped = solve_equations(
            &system,
            1,
            &SolverConfig {
                clamp_nonpositive: false,
                ..SolverConfig::default()
            },
        )
        .unwrap();
        assert!((unclamped.x[0] - 0.5).abs() < 1e-9);
    }

    #[test]
    fn uncovered_links_default_to_good() {
        // Two links, but only link 0 appears in an equation; link 1 gets
        // log-probability 0 (good) from the minimum-norm / L1 choice.
        let mut matrix = SparseMatrix::new(2);
        matrix.push_indicator_row(&[0]).unwrap();
        let system = EquationSystem {
            matrix,
            rhs: vec![(0.7f64).ln()],
            sources: vec![EquationSource::SinglePath(PathId(0))],
            num_single: 1,
            num_pair: 0,
            covered: vec![true, false],
        };
        let outcome = solve_equations(&system, 2, &SolverConfig::default()).unwrap();
        assert!(outcome.underdetermined);
        assert!((outcome.x[0] - (0.7f64).ln()).abs() < 1e-6);
        assert!(outcome.x[1].abs() < 1e-9);
    }

    #[test]
    fn sparse_path_handles_underdetermined_systems() {
        let mut matrix = SparseMatrix::new(3);
        matrix.push_indicator_row(&[0, 1]).unwrap();
        matrix.push_indicator_row(&[1]).unwrap();
        let system = EquationSystem {
            matrix,
            rhs: vec![(0.5f64).ln(), (0.9f64).ln()],
            sources: vec![
                EquationSource::SinglePath(PathId(0)),
                EquationSource::SinglePath(PathId(1)),
            ],
            num_single: 2,
            num_pair: 0,
            covered: vec![true, true, false],
        };
        let config = SolverConfig {
            dense_threshold: 0,
            ..SolverConfig::default()
        };
        let outcome = solve_equations(&system, 3, &config).unwrap();
        assert_eq!(outcome.kind, SolverKind::SparseIterative);
        assert!(outcome.underdetermined);
        assert!(outcome.x[2].abs() < 1e-6);
        // The determined part is still recovered.
        assert!((outcome.x[1] - (0.9f64).ln()).abs() < 1e-3);
    }

    #[test]
    fn dense_path_handles_redundant_equations() {
        // Duplicate the first equation; the selector must skip it and the
        // solution must be unchanged.
        let (system, x_true) = fig1a_exact_system();
        let mut matrix = SparseMatrix::new(4);
        let mut rhs = Vec::new();
        let mut sources = Vec::new();
        for i in 0..system.num_equations() {
            let cols: Vec<usize> = system.matrix.row(i).iter().map(|&(c, _)| c).collect();
            matrix.push_indicator_row(&cols).unwrap();
            rhs.push(system.rhs[i]);
            sources.push(system.sources[i]);
            if i == 0 {
                matrix.push_indicator_row(&cols).unwrap();
                rhs.push(system.rhs[i]);
                sources.push(system.sources[i]);
            }
        }
        let redundant = EquationSystem {
            matrix,
            rhs,
            sources,
            num_single: 4,
            num_pair: 1,
            covered: vec![true; 4],
        };
        let outcome = solve_equations(&redundant, 4, &SolverConfig::default()).unwrap();
        assert_eq!(outcome.kind, SolverKind::DenseExact);
        assert_eq!(
            outcome.used_single, 3,
            "the duplicate row must not be counted"
        );
        assert!(norms::approx_eq(&outcome.x, &x_true, 1e-8));
    }

    #[test]
    fn an_inconsistent_equation_biases_the_exact_solution() {
        // This is the mechanism behind the paper's comparison: when an
        // invalid equation (here, a pair equation whose RHS is wrong
        // because the links are actually correlated) is part of the
        // selected square system, its bias lands on the links it touches.
        let (mut system, x_true) = fig1a_exact_system();
        // Corrupt the pair equation by the amount correlation would cause:
        // P(Y2 = 0, Y3 = 0) is larger than the independence assumption
        // predicts.
        system.rhs[3] += 0.3;
        let outcome = solve_equations(&system, 4, &SolverConfig::default()).unwrap();
        let error: f64 = outcome
            .x
            .iter()
            .zip(x_true.iter())
            .map(|(a, b)| (a - b).abs())
            .fold(0.0, f64::max);
        assert!(
            error > 0.2,
            "the corrupted equation should visibly bias the solution, max error {error}"
        );
    }

    #[test]
    fn dispatch_boundary_is_inclusive_at_the_dense_threshold() {
        // `num_links == dense_threshold` goes dense; one below goes
        // sparse; `dense_threshold: 0` sends every non-empty system to the
        // sparse path (the configuration `solve_both_paths` relies on).
        let (system, _) = fig1a_exact_system();
        let at = SolverConfig {
            dense_threshold: 4,
            ..SolverConfig::default()
        };
        assert_eq!(
            solve_equations(&system, 4, &at).unwrap().kind,
            SolverKind::DenseExact
        );
        let below = SolverConfig {
            dense_threshold: 3,
            ..SolverConfig::default()
        };
        assert_eq!(
            solve_equations(&system, 4, &below).unwrap().kind,
            SolverKind::SparseIterative
        );
        let zero = SolverConfig {
            dense_threshold: 0,
            ..SolverConfig::default()
        };
        assert_eq!(
            solve_equations(&system, 4, &zero).unwrap().kind,
            SolverKind::SparseIterative
        );
    }

    #[test]
    fn zero_link_systems_solve_to_the_empty_solution_on_both_paths() {
        // Degenerate direct call: no unknowns at all. Both dispatch
        // configurations must agree on the empty solution instead of the
        // dense path failing on a 0×0 factorization.
        let system = EquationSystem {
            matrix: SparseMatrix::new(0),
            rhs: Vec::new(),
            sources: Vec::new(),
            num_single: 0,
            num_pair: 0,
            covered: Vec::new(),
        };
        for dense_threshold in [0usize, 400] {
            let config = SolverConfig {
                dense_threshold,
                ..SolverConfig::default()
            };
            let outcome = solve_equations(&system, 0, &config).unwrap();
            assert!(outcome.x.is_empty());
            assert_eq!(outcome.kind, SolverKind::DenseExact);
            assert_eq!(outcome.residual, 0.0);
            assert!(!outcome.underdetermined);
        }
    }

    #[test]
    fn infeasible_nonneg_l1_falls_back_to_the_free_sign_formulation() {
        // One equation over two unknowns with a *positive* RHS: noise can
        // produce this, but `x0 + x1 = +0.5` has no solution with x ≤ 0,
        // so the sign-constrained LP is infeasible and the solver must
        // fall back to the free-sign minimum-L1 formulation.
        let mut matrix = SparseMatrix::new(2);
        matrix.push_indicator_row(&[0, 1]).unwrap();
        let system = EquationSystem {
            matrix,
            rhs: vec![0.5],
            sources: vec![EquationSource::SinglePath(PathId(0))],
            num_single: 1,
            num_pair: 0,
            covered: vec![true, true],
        };
        let config = SolverConfig {
            clamp_nonpositive: false,
            ..SolverConfig::default()
        };
        let outcome = solve_equations(&system, 2, &config).unwrap();
        assert_eq!(outcome.kind, SolverKind::DenseL1);
        assert!(outcome.underdetermined);
        // The free-sign solution satisfies the equation exactly.
        assert!((outcome.x.iter().sum::<f64>() - 0.5).abs() < 1e-9);
        assert!(outcome.residual < 1e-9);
        // With clamping on the positive mass is removed, as in production.
        let clamped = solve_equations(&system, 2, &SolverConfig::default()).unwrap();
        assert!(clamped.x.iter().all(|&v| v <= 0.0));
    }

    #[test]
    fn solver_config_default_is_sane() {
        let c = SolverConfig::default();
        assert!(c.dense_threshold >= 100);
        assert!(c.ridge > 0.0);
        assert!(c.clamp_nonpositive);
        assert!(c.cgls_iterations >= 1000);
    }
}
