//! The exact "theorem algorithm": the constructive procedure from the proof
//! of Theorem 1 (Appendix A).
//!
//! Unlike the practical algorithm of Section 4, which only recovers
//! per-link marginals, the theorem algorithm identifies the probability of
//! **every** set of links being congested:
//!
//! 1. measure `P(ψ(S) = ∅)` and `P(ψ(S) = ψ(A))` for every correlation
//!    subset `A ∈ C̃`;
//! 2. identify every congestion factor `α_A` by the recursion of Lemma 2
//!    (implemented in [`crate::factors`]);
//! 3. convert factors into probabilities with Lemma 3:
//!    `P(S^p = ∅) = 1 / (1 + Σ_A α_A)`, `P(S^p = A) = α_A · P(S^p = ∅)`,
//!    and `P(X_e = 1) = Σ_{A ∋ e} P(S^p = A)`.
//!
//! The cost is exponential in the size of the correlation sets (the number
//! of correlation subsets), which is exactly why the paper also gives the
//! practical algorithm; here the exact algorithm serves as an oracle for
//! small topologies, for the toy examples of Section 3.2, and for tests of
//! the practical algorithm.

use std::collections::{BTreeMap, BTreeSet};

use serde::{Deserialize, Serialize};

use netcorr_measure::{PathObservations, ProbabilityEstimator, StreamingEstimator};
use netcorr_topology::correlation::CorrelationSetId;
use netcorr_topology::graph::LinkId;
use netcorr_topology::path::PathId;
use netcorr_topology::TopologyInstance;

use crate::error::CoreError;
use crate::factors::{enumerate_subsets, identify_factors, EnumerationLimits, SubsetFactor};
use crate::result::{Diagnostics, SolverKind, TomographyEstimate};

/// Configuration of the exact algorithm.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize, Deserialize)]
pub struct TheoremConfig {
    /// Enumeration limits (set size / states per factor).
    pub limits: EnumerationLimits,
}

/// The output of the exact algorithm: per-link marginals plus the full
/// per-correlation-set joint distributions.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct TheoremEstimate {
    /// Per-link congestion probabilities (same shape as the practical
    /// algorithms' output).
    pub estimate: TomographyEstimate,
    /// Every correlation subset with its identified congestion factor.
    pub factors: Vec<SubsetFactor>,
    /// For every correlation set, `P(S^p = ∅)`.
    pub prob_set_all_good: Vec<f64>,
    num_sets: usize,
}

impl TheoremEstimate {
    /// The identified probability that, within its correlation set, exactly
    /// the links of `subset` are congested (`P(S^p = A)`). Returns `None`
    /// if the subset was not part of the enumeration (e.g. spans sets).
    pub fn set_state_probability(&self, subset: &[LinkId]) -> Option<f64> {
        let mut sorted = subset.to_vec();
        sorted.sort_unstable();
        self.factors
            .iter()
            .find(|f| f.links == sorted)
            .map(|f| f.alpha * self.prob_set_all_good[f.set.index()])
    }

    /// The identified probability that *all* the given links are congested.
    /// Links may span correlation sets (sets are independent); returns
    /// `None` if any per-set group is not a known correlation subset.
    pub fn joint_congestion_probability(&self, links: &[LinkId]) -> Option<f64> {
        if links.is_empty() {
            return Some(1.0);
        }
        // Group links by correlation set via the factors table.
        let mut groups: std::collections::BTreeMap<CorrelationSetId, Vec<LinkId>> =
            std::collections::BTreeMap::new();
        for &link in links {
            let set = self
                .factors
                .iter()
                .find(|f| f.links.contains(&link))
                .map(|f| f.set)?;
            groups.entry(set).or_default().push(link);
        }
        let mut product = 1.0;
        for (set, group) in groups {
            // P(all of `group` congested within its set) = Σ over subsets
            // B ⊇ group of P(S^p = B).
            let mut sorted = group.clone();
            sorted.sort_unstable();
            let prob: f64 = self
                .factors
                .iter()
                .filter(|f| f.set == set && sorted.iter().all(|l| f.links.contains(l)))
                .map(|f| f.alpha * self.prob_set_all_good[set.index()])
                .sum();
            product *= prob;
        }
        Some(product)
    }

    /// Number of correlation sets in the instance.
    pub fn num_correlation_sets(&self) -> usize {
        self.num_sets
    }
}

/// The exact algorithm from the proof of Theorem 1.
#[derive(Debug, Clone)]
pub struct TheoremAlgorithm<'a> {
    instance: &'a TopologyInstance,
    config: TheoremConfig,
}

impl<'a> TheoremAlgorithm<'a> {
    /// Creates the algorithm with default limits.
    pub fn new(instance: &'a TopologyInstance) -> Self {
        TheoremAlgorithm {
            instance,
            config: TheoremConfig::default(),
        }
    }

    /// Creates the algorithm with custom limits.
    pub fn with_config(instance: &'a TopologyInstance, config: TheoremConfig) -> Self {
        TheoremAlgorithm { instance, config }
    }

    fn check_width(&self, observed_paths: usize) -> Result<(), CoreError> {
        if observed_paths != self.instance.num_paths() {
            return Err(CoreError::InvalidConfig(format!(
                "observations cover {} paths, instance has {}",
                observed_paths,
                self.instance.num_paths()
            )));
        }
        Ok(())
    }

    /// Identifies the congestion probability of every set of links from the
    /// recorded observations.
    pub fn infer(&self, observations: &PathObservations) -> Result<TheoremEstimate, CoreError> {
        self.instance.validate()?;
        self.check_width(observations.num_paths())?;
        let estimator = ProbabilityEstimator::new(observations)?;
        let p_all_good = estimator.prob_all_paths_good();
        // Guarding before enumeration skips the subset enumeration and
        // the batch row-matching pass when the error is already
        // inevitable, and keeps the error precedence of the pre-refactor
        // code (insufficient observations before enumeration limits).
        Self::check_normalisable(p_all_good)?;

        let enumeration = enumerate_subsets(self.instance, &self.config.limits)?;
        // Measure P(ψ(S) = ψ(A)) for every correlation subset up front
        // through the estimator's batch API: all target patterns are packed
        // into word masks once and matched in a single streaming pass over
        // the packed snapshot rows.
        let coverages: Vec<BTreeSet<PathId>> = enumeration
            .subsets
            .iter()
            .map(|s| s.coverage.clone())
            .collect();
        let batch = estimator.prob_exactly_congested_batch(&coverages)?;
        let measured: BTreeMap<BTreeSet<PathId>, f64> =
            coverages.into_iter().zip(batch.iter().copied()).collect();
        self.complete(enumeration, p_all_good, &measured)
    }

    /// Identifies the congestion probabilities from a
    /// [`StreamingEstimator`]'s accumulators.
    ///
    /// Every correlation subset's coverage pattern is registered with the
    /// estimator (idempotent; a pattern registered after snapshots were
    /// already pushed is caught up with one kernel sweep), so the first
    /// call may scan, but every later call — as more snapshots stream in —
    /// reads each measurement as an O(1) counter, **never re-matching the
    /// recorded rows**. This is how long-running deployments re-run the
    /// exact algorithm per snapshot batch at constant incremental cost.
    pub fn infer_streaming(
        &self,
        estimator: &mut StreamingEstimator,
    ) -> Result<TheoremEstimate, CoreError> {
        self.instance.validate()?;
        self.check_width(estimator.num_paths())?;
        let p_all_good = estimator
            .prob_all_paths_good()
            .map_err(CoreError::Measurement)?;
        Self::check_normalisable(p_all_good)?;

        let enumeration = enumerate_subsets(self.instance, &self.config.limits)?;
        let mut measured: BTreeMap<BTreeSet<PathId>, f64> = BTreeMap::new();
        for subset in &enumeration.subsets {
            estimator
                .register_pattern(&subset.coverage)
                .map_err(CoreError::Measurement)?;
            let p = estimator
                .prob_exactly_congested(&subset.coverage)
                .map_err(CoreError::Measurement)?;
            measured.insert(subset.coverage.clone(), p);
        }
        self.complete(enumeration, p_all_good, &measured)
    }

    /// The congestion factors are normalised by `P(ψ(S) = ∅)`; a zero
    /// estimate means the observations cannot support the algorithm.
    fn check_normalisable(p_all_good: f64) -> Result<(), CoreError> {
        if p_all_good <= 0.0 {
            return Err(CoreError::InsufficientObservations {
                reason: "an all-paths-good snapshot was never observed",
            });
        }
        Ok(())
    }

    /// The shared back half of the exact algorithm: identify the factors
    /// from the measured coverage probabilities (Lemma 2), then convert
    /// factors into probabilities (Lemma 3). Expects `p_all_good` already
    /// validated by [`TheoremAlgorithm::check_normalisable`] at both call
    /// sites.
    fn complete(
        &self,
        mut enumeration: crate::factors::SubsetEnumeration,
        p_all_good: f64,
        measured: &BTreeMap<BTreeSet<PathId>, f64>,
    ) -> Result<TheoremEstimate, CoreError> {
        debug_assert!(p_all_good > 0.0);
        identify_factors(
            &mut enumeration,
            &self.config.limits,
            |coverage: &BTreeSet<PathId>| {
                // identify_factors only queries coverages taken from
                // `enumeration.subsets`, all of which were measured above.
                let p = measured[coverage];
                Ok(p / p_all_good)
            },
        )?;

        // Lemma 3: from factors to probabilities.
        let num_sets = self.instance.correlation.num_sets();
        let mut alpha_sum = vec![0.0; num_sets];
        for subset in &enumeration.subsets {
            alpha_sum[subset.set.index()] += subset.alpha;
        }
        let prob_set_all_good: Vec<f64> = alpha_sum.iter().map(|&s| 1.0 / (1.0 + s)).collect();
        let mut marginals = vec![0.0; self.instance.num_links()];
        for subset in &enumeration.subsets {
            let p_state = subset.alpha * prob_set_all_good[subset.set.index()];
            for &link in &subset.links {
                marginals[link.index()] += p_state;
            }
        }

        let diagnostics = Diagnostics {
            num_links: self.instance.num_links(),
            num_single_path_equations: 0,
            num_pair_equations: 0,
            underdetermined: false,
            solver: SolverKind::DenseExact,
            residual: 0.0,
            uncovered_links: 0,
            iterations: 0,
        };
        Ok(TheoremEstimate {
            estimate: TomographyEstimate::from_congestion_probabilities(marginals, diagnostics),
            factors: enumeration.subsets,
            prob_set_all_good,
            num_sets,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use netcorr_sim::{CongestionModelBuilder, SimulationConfig, Simulator, TransmissionModel};
    use netcorr_topology::toy;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn simulate_fig1a(
        joint_prob: f64,
        e3_prob: f64,
        e4_prob: f64,
        snapshots: usize,
        seed: u64,
    ) -> (TopologyInstance, PathObservations, Vec<f64>) {
        let inst = toy::figure_1a();
        let model = CongestionModelBuilder::new(&inst.correlation)
            .joint_group(&[LinkId(0), LinkId(1)], joint_prob)
            .independent(LinkId(2), e3_prob)
            .independent(LinkId(3), e4_prob)
            .build()
            .unwrap();
        let truth = model.marginals();
        let config = SimulationConfig {
            transmission: TransmissionModel::Exact,
            ..SimulationConfig::default()
        };
        let sim = Simulator::new(&inst, &model, config).unwrap();
        let mut rng = StdRng::seed_from_u64(seed);
        let obs = sim.run(snapshots, &mut rng);
        (inst, obs, truth)
    }

    #[test]
    fn recovers_marginals_and_joint_probabilities_on_fig1a() {
        let (inst, obs, truth) = simulate_fig1a(0.2, 0.1, 0.1, 60_000, 5);
        let result = TheoremAlgorithm::new(&inst).infer(&obs).unwrap();
        for link in inst.topology.link_ids() {
            let err = (result.estimate.congestion_probability(link) - truth[link.index()]).abs();
            assert!(
                err < 0.05,
                "link {link}: estimated {}, truth {}",
                result.estimate.congestion_probability(link),
                truth[link.index()]
            );
        }
        // Joint probability of the correlated pair ≈ 0.2 (not 0.04, which
        // is what independence would predict).
        let joint = result
            .joint_congestion_probability(&[LinkId(0), LinkId(1)])
            .unwrap();
        assert!((joint - 0.2).abs() < 0.05, "joint {joint}");
        // Cross-set joint probability multiplies.
        let cross = result
            .joint_congestion_probability(&[LinkId(0), LinkId(2)])
            .unwrap();
        assert!((cross - 0.2 * 0.1).abs() < 0.03, "cross {cross}");
        // P(S^1 = {e1, e2}) ≈ 0.2 and P(S^1 = {e1}) ≈ 0.
        let both = result
            .set_state_probability(&[LinkId(1), LinkId(0)])
            .unwrap();
        assert!((both - 0.2).abs() < 0.05);
        let single = result.set_state_probability(&[LinkId(0)]).unwrap();
        assert!(single < 0.05);
        assert_eq!(result.num_correlation_sets(), 3);
        // The empty collection of links is congested with probability 1.
        assert_eq!(result.joint_congestion_probability(&[]).unwrap(), 1.0);
    }

    #[test]
    fn congestion_factors_match_their_definition() {
        let (inst, obs, _) = simulate_fig1a(0.2, 0.1, 0.1, 60_000, 17);
        let result = TheoremAlgorithm::new(&inst).infer(&obs).unwrap();
        // α_{e1,e2} = P(S^1 = {e1,e2}) / P(S^1 = ∅) = 0.2 / 0.8 = 0.25.
        let factor = result
            .factors
            .iter()
            .find(|f| f.links == vec![LinkId(0), LinkId(1)])
            .unwrap();
        assert!((factor.alpha - 0.25).abs() < 0.06, "alpha {}", factor.alpha);
        // α_{e3} = 0.1 / 0.9 ≈ 0.111.
        let factor = result
            .factors
            .iter()
            .find(|f| f.links == vec![LinkId(2)])
            .unwrap();
        assert!(
            (factor.alpha - 1.0 / 9.0).abs() < 0.04,
            "alpha {}",
            factor.alpha
        );
        // P(S^p = ∅) per set.
        assert!((result.prob_set_all_good[0] - 0.8).abs() < 0.05);
        assert!((result.prob_set_all_good[1] - 0.9).abs() < 0.05);
    }

    #[test]
    fn agrees_with_the_practical_algorithm_on_identifiable_instances() {
        let (inst, obs, _) = simulate_fig1a(0.3, 0.15, 0.05, 40_000, 23);
        let exact = TheoremAlgorithm::new(&inst).infer(&obs).unwrap();
        let practical = crate::CorrelationAlgorithm::new(&inst).infer(&obs).unwrap();
        for link in inst.topology.link_ids() {
            let a = exact.estimate.congestion_probability(link);
            let b = practical.congestion_probability(link);
            assert!(
                (a - b).abs() < 0.05,
                "link {link}: exact {a}, practical {b}"
            );
        }
    }

    #[test]
    fn streaming_inference_matches_batch_inference() {
        let (inst, obs, _) = simulate_fig1a(0.2, 0.1, 0.1, 20_000, 5);
        let batch = TheoremAlgorithm::new(&inst).infer(&obs).unwrap();
        // Stream the same snapshots in and infer from the accumulators.
        let mut streaming = StreamingEstimator::new(obs.num_paths());
        for snapshot in obs.snapshots() {
            streaming.push_snapshot(&snapshot).unwrap();
        }
        let online = TheoremAlgorithm::new(&inst)
            .infer_streaming(&mut streaming)
            .unwrap();
        for link in inst.topology.link_ids() {
            assert_eq!(
                batch.estimate.congestion_probability(link),
                online.estimate.congestion_probability(link),
                "link {link}"
            );
        }
        assert_eq!(batch.prob_set_all_good, online.prob_set_all_good);
        // Push more snapshots and re-infer: the registered patterns are
        // answered from counters, and the result tracks the longer prefix.
        for snapshot in obs.snapshots().take(500) {
            streaming.push_snapshot(&snapshot).unwrap();
        }
        let refreshed = TheoremAlgorithm::new(&inst)
            .infer_streaming(&mut streaming)
            .unwrap();
        assert_eq!(streaming.num_snapshots(), 20_500);
        assert!(refreshed
            .estimate
            .probabilities()
            .iter()
            .all(|p| (0.0..=1.0).contains(p)));
    }

    #[test]
    fn unidentifiable_instances_are_rejected() {
        let inst = toy::figure_1b();
        let mut obs = PathObservations::new(2);
        for i in 0..100 {
            obs.record_snapshot(&[i % 3 == 0, i % 4 == 0]).unwrap();
        }
        let err = TheoremAlgorithm::new(&inst).infer(&obs).unwrap_err();
        assert!(matches!(err, CoreError::Unidentifiable { .. }));
    }

    #[test]
    fn requires_an_all_good_snapshot() {
        let inst = toy::figure_1a();
        let mut obs = PathObservations::new(3);
        for _ in 0..50 {
            obs.record_snapshot(&[true, false, false]).unwrap();
        }
        let err = TheoremAlgorithm::new(&inst).infer(&obs).unwrap_err();
        assert!(matches!(err, CoreError::InsufficientObservations { .. }));
    }

    #[test]
    fn observation_width_mismatch_is_rejected() {
        let inst = toy::figure_1a();
        let obs = PathObservations::new(7);
        assert!(matches!(
            TheoremAlgorithm::new(&inst).infer(&obs),
            Err(CoreError::InvalidConfig(_))
        ));
    }

    #[test]
    fn respects_custom_limits() {
        let (inst, obs, _) = simulate_fig1a(0.2, 0.1, 0.1, 500, 3);
        let config = TheoremConfig {
            limits: EnumerationLimits {
                max_set_size: 1,
                ..EnumerationLimits::default()
            },
        };
        assert!(matches!(
            TheoremAlgorithm::with_config(&inst, config).infer(&obs),
            Err(CoreError::EnumerationTooLarge { .. })
        ));
    }
}
