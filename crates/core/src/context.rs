//! Batched, factorization-reusing inference over a shared topology.
//!
//! [`crate::CorrelationAlgorithm::infer`] re-derives everything from
//! scratch on every call: the equation structure (a pure function of the
//! topology instance and the equation config), the independence selection
//! (a pure function of the structure's rows) and — on the dense path —
//! the QR factorization of the selected-equation matrix (a pure function
//! of the selected rows). Across a multi-trial experiment all of that
//! work is identical from trial to trial; only the right-hand side (the
//! measured log-probabilities) changes.
//!
//! [`InferenceContext`] hoists the observation-independent work out of
//! the per-trial loop:
//!
//! * the [`EquationStructure`] is built once;
//! * the linearly-independent row subset is selected once;
//! * dense determined systems keep the QR factorization, so each trial is
//!   one `Qᵀb` sweep plus one back-substitution, and whole batches go
//!   through the RHS-batched [`QrDecomposition::solve_many`];
//! * sparse systems keep the blocked CSR matrix, and batches warm-start
//!   CGLS from the previous right-hand side's solution in fixed-length
//!   chains ([`WARM_CHAIN`]) so the batched result does not depend on how
//!   a batch is later split across threads.
//!
//! Everything the context computes is **bit-identical** to the one-shot
//! algorithms: same structure, same selection, same arithmetic order.
//! [`ContextCache`] shares contexts across threads, keyed by the exact
//! structural identity of the instance + configuration (never by a digest
//! alone, so a hash collision cannot silently reuse the wrong
//! factorization).

use std::collections::HashMap;
use std::sync::{Arc, Mutex};

use netcorr_linalg::{norms, BlockedSparseMatrix, Matrix, QrDecomposition};
use netcorr_measure::{PathObservations, ProbabilityEstimator};
use netcorr_topology::TopologyInstance;

use crate::algorithm::AlgorithmConfig;
use crate::equations::{equation_structure, EquationSource, EquationStructure};
use crate::error::CoreError;
use crate::result::{Diagnostics, SolverKind, TomographyEstimate};
use crate::solver::{self, SolveOutcome};

/// Length of a warm-start chain in [`InferenceContext::solve_batch`]:
/// within each consecutive chunk of this many right-hand sides, the first
/// CGLS solve is cold and every following solve starts from the previous
/// solution. Fixing the chain length (instead of chaining through the
/// whole batch) keeps the batched result independent of how a caller
/// partitions the batch across threads at `WARM_CHAIN`-aligned
/// boundaries.
pub const WARM_CHAIN: usize = 8;

/// The prepared solve strategy for one structure (observation-free).
enum SolvePlan {
    /// No unknowns: every solve is the empty solution.
    Empty,
    /// Dense determined: the cached QR factorization of the selected
    /// square system. Per trial: apply `Qᵀ`, back-substitute.
    DenseFactored { qr: QrDecomposition },
    /// Dense under-determined: the gathered selected-equation matrix for
    /// the per-RHS minimum-L1-norm LP (no factorization to reuse).
    DenseL1 { a: Matrix },
    /// Sparse: the blocked CSR form of the selected equations, reused by
    /// every CGLS solve.
    Sparse { matrix: BlockedSparseMatrix },
}

/// Shared, observation-independent inference state for one topology
/// instance and algorithm configuration.
///
/// Construction performs all the per-topology work (structure, selection,
/// factorization); [`InferenceContext::infer`] then costs only the RHS
/// estimation plus a back-substitution (dense) or CGLS run (sparse) per
/// trial, and is bit-identical to
/// [`crate::CorrelationAlgorithm::infer`] /
/// [`crate::IndependenceAlgorithm::infer`] with the same configuration.
pub struct InferenceContext {
    num_links: usize,
    num_paths: usize,
    config: AlgorithmConfig,
    structure: EquationStructure,
    selected: Vec<usize>,
    used_single: usize,
    used_pair: usize,
    underdetermined: bool,
    uncovered_links: usize,
    plan: SolvePlan,
}

impl InferenceContext {
    /// Builds the context for an instance: equation structure,
    /// independence selection and the solve plan (QR factorization /
    /// gathered matrices). Uses `config.equations.respect_correlation` as
    /// given; see [`InferenceContext::for_correlation`] /
    /// [`InferenceContext::for_independence`] for the forced variants.
    pub fn new(instance: &TopologyInstance, config: &AlgorithmConfig) -> Result<Self, CoreError> {
        instance.validate()?;
        let num_links = instance.num_links();
        let structure = equation_structure(instance, &config.equations)?;
        let selected = solver::select_rows(
            structure.matrix(),
            num_links,
            config.solver.independence_tolerance,
        );
        let used_single = selected
            .iter()
            .filter(|&&i| matches!(structure.sources()[i], EquationSource::SinglePath(_)))
            .count();
        let used_pair = selected.len() - used_single;
        let underdetermined = selected.len() < num_links;
        let plan = if num_links == 0 {
            SolvePlan::Empty
        } else if num_links <= config.solver.dense_threshold {
            let a = solver::gather_dense(structure.matrix(), &selected, num_links);
            if underdetermined {
                SolvePlan::DenseL1 { a }
            } else {
                SolvePlan::DenseFactored {
                    qr: QrDecomposition::new(&a).map_err(CoreError::Numerical)?,
                }
            }
        } else {
            let gathered = solver::gather_sparse(structure.matrix(), &selected, num_links)?;
            SolvePlan::Sparse {
                matrix: gathered.to_blocked(),
            }
        };
        Ok(InferenceContext {
            num_links,
            num_paths: instance.num_paths(),
            config: *config,
            uncovered_links: structure.num_uncovered_links(),
            structure,
            selected,
            used_single,
            used_pair,
            underdetermined,
            plan,
        })
    }

    /// Context for the paper's correlation algorithm
    /// (`respect_correlation` forced on, like
    /// [`crate::CorrelationAlgorithm::with_config`]).
    pub fn for_correlation(
        instance: &TopologyInstance,
        mut config: AlgorithmConfig,
    ) -> Result<Self, CoreError> {
        config.equations.respect_correlation = true;
        Self::new(instance, &config)
    }

    /// Context for the independence baseline (`respect_correlation`
    /// forced off, like [`crate::IndependenceAlgorithm::with_config`]).
    pub fn for_independence(
        instance: &TopologyInstance,
        mut config: AlgorithmConfig,
    ) -> Result<Self, CoreError> {
        config.equations.respect_correlation = false;
        Self::new(instance, &config)
    }

    /// The configuration the context was built with.
    pub fn config(&self) -> &AlgorithmConfig {
        &self.config
    }

    /// The shared equation structure.
    pub fn structure(&self) -> &EquationStructure {
        &self.structure
    }

    /// Number of links (unknowns).
    pub fn num_links(&self) -> usize {
        self.num_links
    }

    /// Whether fewer independent equations than unknowns were available.
    pub fn underdetermined(&self) -> bool {
        self.underdetermined
    }

    /// Which numerical path solves this structure's systems.
    pub fn solver_kind(&self) -> SolverKind {
        match self.plan {
            SolvePlan::Empty | SolvePlan::DenseFactored { .. } => SolverKind::DenseExact,
            SolvePlan::DenseL1 { .. } => SolverKind::DenseL1,
            SolvePlan::Sparse { .. } => SolverKind::SparseIterative,
        }
    }

    /// The right-hand side of one trial's observations: one clamped
    /// empirical log-probability per structure row, in row order (singles
    /// one by one, pairs in one popcount batch) — exactly the RHS
    /// [`crate::equations::build_equations`] produces.
    pub fn rhs(&self, estimator: &ProbabilityEstimator<'_>) -> Result<Vec<f64>, CoreError> {
        let mut rhs = Vec::with_capacity(self.structure.num_equations());
        for &path in self.structure.single_paths() {
            rhs.push(estimator.log_prob_paths_good(&[path])?);
        }
        rhs.extend(estimator.log_prob_pairs_good(self.structure.pairs())?);
        Ok(rhs)
    }

    /// Solves one right-hand side (one entry per structure row) with the
    /// prepared plan. Bit-identical to
    /// [`crate::solver::solve_equations`] on the assembled system.
    pub fn solve(&self, rhs: &[f64]) -> Result<SolveOutcome, CoreError> {
        self.solve_with_warm_start(rhs, None)
    }

    /// Like [`InferenceContext::solve`], but on the sparse path CGLS
    /// starts from `initial` (a previous solution over the same
    /// structure) instead of zero. `initial` is ignored on the dense
    /// paths. A `None` start is bit-identical to [`InferenceContext::solve`].
    pub fn solve_with_warm_start(
        &self,
        rhs: &[f64],
        initial: Option<&[f64]>,
    ) -> Result<SolveOutcome, CoreError> {
        if rhs.len() != self.structure.num_equations() {
            return Err(CoreError::InvalidConfig(format!(
                "right-hand side has {} entries, structure has {} equations",
                rhs.len(),
                self.structure.num_equations()
            )));
        }
        let b = solver::gather_rhs(rhs, &self.selected);
        let outcome = match &self.plan {
            SolvePlan::Empty => SolveOutcome {
                x: Vec::new(),
                kind: SolverKind::DenseExact,
                residual: 0.0,
                used_single: 0,
                used_pair: 0,
                underdetermined: false,
                iterations: 0,
            },
            SolvePlan::DenseFactored { qr } => solver::solve_dense_determined(qr, &b)?,
            SolvePlan::DenseL1 { a } => solver::solve_dense_l1(a, &b)?,
            SolvePlan::Sparse { matrix } => solver::solve_sparse_prepared(
                matrix,
                &b,
                self.underdetermined,
                &self.config.solver,
                initial,
            )?,
        };
        self.finish(outcome, rhs)
    }

    /// Solves a batch of right-hand sides over the shared structure.
    ///
    /// Dense determined plans go through the RHS-batched
    /// [`QrDecomposition::solve_many`] (bit-identical to calling
    /// [`InferenceContext::solve`] per RHS); sparse plans warm-start each
    /// solve from the previous solution within fixed [`WARM_CHAIN`]
    /// chunks (numerically equal to cold solves within the CGLS
    /// tolerance, and deterministic for a given batch order).
    pub fn solve_batch(&self, rhs_batch: &[Vec<f64>]) -> Result<Vec<SolveOutcome>, CoreError> {
        match &self.plan {
            SolvePlan::DenseFactored { qr } => {
                let mut bs = Vec::with_capacity(rhs_batch.len());
                for rhs in rhs_batch {
                    if rhs.len() != self.structure.num_equations() {
                        return Err(CoreError::InvalidConfig(format!(
                            "right-hand side has {} entries, structure has {} equations",
                            rhs.len(),
                            self.structure.num_equations()
                        )));
                    }
                    bs.push(solver::gather_rhs(rhs, &self.selected));
                }
                let solutions = qr.solve_many(&bs).map_err(CoreError::Numerical)?;
                solutions
                    .into_iter()
                    .zip(rhs_batch)
                    .map(|(x, rhs)| {
                        self.finish(
                            SolveOutcome {
                                x,
                                kind: SolverKind::DenseExact,
                                residual: 0.0,
                                used_single: 0,
                                used_pair: 0,
                                underdetermined: false,
                                iterations: 0,
                            },
                            rhs,
                        )
                    })
                    .collect()
            }
            SolvePlan::Sparse { .. } => {
                let mut outcomes = Vec::with_capacity(rhs_batch.len());
                for chunk in rhs_batch.chunks(WARM_CHAIN) {
                    let mut warm: Option<Vec<f64>> = None;
                    for rhs in chunk {
                        let outcome = self.solve_with_warm_start(rhs, warm.as_deref())?;
                        warm = Some(outcome.x.clone());
                        outcomes.push(outcome);
                    }
                }
                Ok(outcomes)
            }
            _ => rhs_batch.iter().map(|rhs| self.solve(rhs)).collect(),
        }
    }

    /// Infers the per-link congestion probabilities for one trial's
    /// observations. Bit-identical to the one-shot
    /// [`crate::CorrelationAlgorithm::infer`] /
    /// [`crate::IndependenceAlgorithm::infer`] with the same
    /// configuration.
    pub fn infer(&self, observations: &PathObservations) -> Result<TomographyEstimate, CoreError> {
        let estimator = self.estimator(observations)?;
        let rhs = self.rhs(&estimator)?;
        let outcome = self.solve(&rhs)?;
        Ok(self.estimate(outcome))
    }

    /// The online (daemon) re-infer entry point: solves an already-built
    /// right-hand side — typically refreshed in `O(#equations)` by an
    /// [`crate::IncrementalEquationBuilder`] over a streaming estimator —
    /// and returns the estimate **plus the solved log-good-probabilities**,
    /// so the caller can seed the next refresh's warm start with them.
    ///
    /// On the dense plans `warm` is ignored and the result is bit-identical
    /// to [`InferenceContext::infer`] on the same observations; on the
    /// sparse plan CGLS starts from `warm` instead of zero, which converges
    /// in few iterations when consecutive refreshes are close relative to
    /// the solver tolerance (the live-stream case).
    pub fn reinfer(
        &self,
        rhs: &[f64],
        warm: Option<&[f64]>,
    ) -> Result<(TomographyEstimate, Vec<f64>), CoreError> {
        let outcome = self.solve_with_warm_start(rhs, warm)?;
        let x = outcome.x.clone();
        Ok((self.estimate(outcome), x))
    }

    /// Infers a whole batch of trials over the shared structure (see
    /// [`InferenceContext::solve_batch`] for the batching strategy).
    pub fn infer_batch(
        &self,
        observations: &[&PathObservations],
    ) -> Result<Vec<TomographyEstimate>, CoreError> {
        let mut batch = Vec::with_capacity(observations.len());
        for obs in observations {
            let estimator = self.estimator(obs)?;
            batch.push(self.rhs(&estimator)?);
        }
        Ok(self
            .solve_batch(&batch)?
            .into_iter()
            .map(|outcome| self.estimate(outcome))
            .collect())
    }

    fn estimator<'o>(
        &self,
        observations: &'o PathObservations,
    ) -> Result<ProbabilityEstimator<'o>, CoreError> {
        if observations.num_paths() != self.num_paths {
            return Err(CoreError::InvalidConfig(format!(
                "observations cover {} paths, instance has {}",
                observations.num_paths(),
                self.num_paths
            )));
        }
        Ok(ProbabilityEstimator::new(observations)?)
    }

    /// Clamp + full-system residual + bookkeeping, exactly as
    /// [`crate::solver::solve_equations`] finishes an outcome.
    fn finish(&self, mut outcome: SolveOutcome, rhs: &[f64]) -> Result<SolveOutcome, CoreError> {
        outcome.used_single = self.used_single;
        outcome.used_pair = self.used_pair;
        outcome.underdetermined = self.underdetermined;
        if self.config.solver.clamp_nonpositive {
            for x in &mut outcome.x {
                if *x > 0.0 {
                    *x = 0.0;
                }
            }
        }
        let ax = self
            .structure
            .matrix()
            .matvec(&outcome.x)
            .map_err(CoreError::Numerical)?;
        outcome.residual = norms::l2_norm(&norms::sub(&ax, rhs));
        Ok(outcome)
    }

    fn estimate(&self, outcome: SolveOutcome) -> TomographyEstimate {
        let diagnostics = Diagnostics {
            num_links: self.num_links,
            num_single_path_equations: outcome.used_single,
            num_pair_equations: outcome.used_pair,
            underdetermined: outcome.underdetermined,
            solver: outcome.kind,
            residual: outcome.residual,
            uncovered_links: self.uncovered_links,
            iterations: outcome.iterations,
        };
        TomographyEstimate::from_log_good_probabilities(&outcome.x, diagnostics)
    }
}

/// Exact structural identity of an `(instance, configuration)` pair — the
/// cache key of [`ContextCache`].
///
/// Two pairs map to the same key iff they produce the same equation
/// structure and solve plan: same link count, same paths (same link lists
/// in the same order), same correlation partition labels, and the same
/// equation/solver configuration (floats compared by bit pattern).
#[derive(Clone, PartialEq, Eq, Hash)]
struct ContextKey {
    num_links: usize,
    /// Flattened path table: for every path, its length followed by its
    /// link indices.
    paths: Vec<usize>,
    /// Correlation set label of every link.
    correlation_sets: Vec<usize>,
    /// `(respect_correlation, use_pairs, max_pair_equations_per_link bits,
    /// max_pair_candidates)`.
    equations: (bool, bool, u64, usize),
    /// `(independence_tolerance bits, dense_threshold, cgls_iterations,
    /// cgls_tolerance bits, ridge bits, clamp_nonpositive)`.
    solver: (u64, usize, usize, u64, u64, bool),
}

impl ContextKey {
    fn new(instance: &TopologyInstance, config: &AlgorithmConfig) -> Self {
        let mut paths = Vec::new();
        for path in instance.paths.paths() {
            paths.push(path.links.len());
            paths.extend(path.links.iter().map(|l| l.index()));
        }
        let correlation_sets = instance
            .topology
            .link_ids()
            .map(|l| instance.correlation.set_of(l).index())
            .collect();
        ContextKey {
            num_links: instance.num_links(),
            paths,
            correlation_sets,
            equations: (
                config.equations.respect_correlation,
                config.equations.use_pairs,
                config.equations.max_pair_equations_per_link.to_bits(),
                config.equations.max_pair_candidates,
            ),
            solver: (
                config.solver.independence_tolerance.to_bits(),
                config.solver.dense_threshold,
                config.solver.cgls_iterations,
                config.solver.cgls_tolerance.to_bits(),
                config.solver.ridge.to_bits(),
                config.solver.clamp_nonpositive,
            ),
        }
    }
}

/// A thread-safe cache of [`InferenceContext`]s keyed by the exact
/// structural identity of `(instance, configuration)`.
///
/// Multi-trial experiments re-draw the congestion *scenario* per trial,
/// but (unless links are hidden from the inference) the visible instance
/// is identical across trials — so every trial after the first gets its
/// context for the cost of a key build and a map lookup. Contexts are
/// built outside the lock; if two threads race to build the same key the
/// first insertion wins (both builds are deterministic and identical, so
/// which one survives is unobservable).
#[derive(Default)]
pub struct ContextCache {
    contexts: Mutex<HashMap<ContextKey, Arc<InferenceContext>>>,
}

impl ContextCache {
    /// An empty cache.
    pub fn new() -> Self {
        ContextCache::default()
    }

    /// The shared context for `(instance, config)`, building it on first
    /// use.
    pub fn context(
        &self,
        instance: &TopologyInstance,
        config: &AlgorithmConfig,
    ) -> Result<Arc<InferenceContext>, CoreError> {
        let key = ContextKey::new(instance, config);
        if let Some(context) = self
            .contexts
            .lock()
            .expect("context cache lock poisoned")
            .get(&key)
        {
            return Ok(Arc::clone(context));
        }
        let built = Arc::new(InferenceContext::new(instance, config)?);
        let mut contexts = self.contexts.lock().expect("context cache lock poisoned");
        Ok(Arc::clone(contexts.entry(key).or_insert(built)))
    }

    /// Number of distinct contexts currently cached.
    pub fn len(&self) -> usize {
        self.contexts
            .lock()
            .expect("context cache lock poisoned")
            .len()
    }

    /// Whether the cache holds no contexts yet.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::algorithm::{CorrelationAlgorithm, IndependenceAlgorithm};
    use netcorr_sim::{CongestionModelBuilder, SimulationConfig, Simulator, TransmissionModel};
    use netcorr_topology::graph::LinkId;
    use netcorr_topology::toy;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn fig1a_instance() -> TopologyInstance {
        toy::figure_1a()
    }

    fn simulate(inst: &TopologyInstance, snapshots: usize, seed: u64) -> PathObservations {
        let model = CongestionModelBuilder::new(&inst.correlation)
            .joint_group(&[LinkId(0), LinkId(1)], 0.3)
            .independent(LinkId(2), 0.1)
            .independent(LinkId(3), 0.15)
            .build()
            .unwrap();
        let config = SimulationConfig {
            transmission: TransmissionModel::Exact,
            ..SimulationConfig::default()
        };
        let sim = Simulator::new(inst, &model, config).unwrap();
        let mut rng = StdRng::seed_from_u64(seed);
        sim.run(snapshots, &mut rng)
    }

    #[test]
    fn context_infer_is_bit_identical_to_the_one_shot_algorithms() {
        let inst = fig1a_instance();
        let obs = simulate(&inst, 4_000, 9);
        let config = AlgorithmConfig::default();

        let corr_ctx = InferenceContext::for_correlation(&inst, config).unwrap();
        let one_shot = CorrelationAlgorithm::with_config(&inst, config)
            .infer(&obs)
            .unwrap();
        let cached = corr_ctx.infer(&obs).unwrap();
        assert_eq!(cached.probabilities(), one_shot.probabilities());
        assert_eq!(cached.diagnostics.residual, one_shot.diagnostics.residual);
        assert_eq!(cached.diagnostics.solver, one_shot.diagnostics.solver);

        let indep_ctx = InferenceContext::for_independence(&inst, config).unwrap();
        let one_shot = IndependenceAlgorithm::with_config(&inst, config)
            .infer(&obs)
            .unwrap();
        let cached = indep_ctx.infer(&obs).unwrap();
        assert_eq!(cached.probabilities(), one_shot.probabilities());

        // The sparse path too: force every solve through CGLS.
        let mut sparse = config;
        sparse.solver.dense_threshold = 0;
        let sparse_ctx = InferenceContext::for_correlation(&inst, sparse).unwrap();
        assert_eq!(sparse_ctx.solver_kind(), SolverKind::SparseIterative);
        let one_shot = CorrelationAlgorithm::with_config(&inst, sparse)
            .infer(&obs)
            .unwrap();
        let cached = sparse_ctx.infer(&obs).unwrap();
        assert_eq!(cached.probabilities(), one_shot.probabilities());
        assert_eq!(cached.diagnostics.residual, one_shot.diagnostics.residual);
    }

    #[test]
    fn dense_batch_is_bit_identical_to_sequential_solves() {
        let inst = fig1a_instance();
        let config = AlgorithmConfig::default();
        let ctx = InferenceContext::for_correlation(&inst, config).unwrap();
        assert_eq!(ctx.solver_kind(), SolverKind::DenseExact);
        let batch: Vec<PathObservations> = (0..5).map(|i| simulate(&inst, 1_000, 20 + i)).collect();
        let refs: Vec<&PathObservations> = batch.iter().collect();
        let batched = ctx.infer_batch(&refs).unwrap();
        for (estimate, obs) in batched.iter().zip(&batch) {
            let sequential = ctx.infer(obs).unwrap();
            assert_eq!(estimate.probabilities(), sequential.probabilities());
            assert_eq!(
                estimate.diagnostics.residual,
                sequential.diagnostics.residual
            );
        }
    }

    #[test]
    fn sparse_warm_batch_matches_cold_solves_within_tolerance() {
        let inst = fig1a_instance();
        let mut config = AlgorithmConfig::default();
        config.solver.dense_threshold = 0;
        let ctx = InferenceContext::for_correlation(&inst, config).unwrap();
        assert_eq!(ctx.solver_kind(), SolverKind::SparseIterative);
        // More observations than one warm chain, so the chunking runs too.
        let batch: Vec<PathObservations> = (0..WARM_CHAIN + 3)
            .map(|i| simulate(&inst, 1_000, 40 + i as u64))
            .collect();
        let refs: Vec<&PathObservations> = batch.iter().collect();
        let batched = ctx.infer_batch(&refs).unwrap();
        assert_eq!(batched.len(), batch.len());
        for (estimate, obs) in batched.iter().zip(&batch) {
            let cold = ctx.infer(obs).unwrap();
            assert_eq!(estimate.diagnostics.solver, SolverKind::SparseIterative);
            assert!(
                norms::approx_eq(estimate.probabilities(), cold.probabilities(), 1e-6),
                "warm {:?} vs cold {:?}",
                estimate.probabilities(),
                cold.probabilities()
            );
        }
    }

    #[test]
    fn reinfer_matches_infer_and_chains_warm_starts() {
        let inst = fig1a_instance();
        let obs = simulate(&inst, 2_000, 17);
        let estimator = ProbabilityEstimator::new(&obs).unwrap();

        // Dense plan: reinfer (with or without a warm seed) is bit-identical
        // to infer — the seed is ignored.
        let config = AlgorithmConfig::default();
        let ctx = InferenceContext::for_correlation(&inst, config).unwrap();
        let rhs = ctx.rhs(&estimator).unwrap();
        let reference = ctx.infer(&obs).unwrap();
        let (cold, x_cold) = ctx.reinfer(&rhs, None).unwrap();
        assert_eq!(cold.probabilities(), reference.probabilities());
        let (seeded, _) = ctx.reinfer(&rhs, Some(&x_cold)).unwrap();
        assert_eq!(seeded.probabilities(), reference.probabilities());

        // Sparse plan: a cold reinfer equals infer bit-identically, and a
        // warm reinfer seeded from the previous solution stays within the
        // CGLS tolerance of it.
        let mut sparse = config;
        sparse.solver.dense_threshold = 0;
        let ctx = InferenceContext::for_correlation(&inst, sparse).unwrap();
        assert_eq!(ctx.solver_kind(), SolverKind::SparseIterative);
        let rhs = ctx.rhs(&estimator).unwrap();
        let reference = ctx.infer(&obs).unwrap();
        let (cold, x_cold) = ctx.reinfer(&rhs, None).unwrap();
        assert_eq!(cold.probabilities(), reference.probabilities());
        let obs2 = simulate(&inst, 2_000, 18);
        let estimator2 = ProbabilityEstimator::new(&obs2).unwrap();
        let rhs2 = ctx.rhs(&estimator2).unwrap();
        let (warm, _) = ctx.reinfer(&rhs2, Some(&x_cold)).unwrap();
        let (cold2, _) = ctx.reinfer(&rhs2, None).unwrap();
        assert!(norms::approx_eq(
            warm.probabilities(),
            cold2.probabilities(),
            1e-6
        ));
    }

    #[test]
    fn context_cache_shares_contexts_per_exact_identity() {
        let inst = fig1a_instance();
        let config = AlgorithmConfig::default();
        let cache = ContextCache::new();
        assert!(cache.is_empty());
        let a = cache.context(&inst, &config).unwrap();
        let b = cache.context(&inst, &config).unwrap();
        assert!(Arc::ptr_eq(&a, &b), "identical identity must hit");
        assert_eq!(cache.len(), 1);
        // A different configuration is a different context.
        let mut indep = config;
        indep.equations.respect_correlation = false;
        let c = cache.context(&inst, &indep).unwrap();
        assert!(!Arc::ptr_eq(&a, &c));
        assert_eq!(cache.len(), 2);
        // A structurally identical clone of the instance still hits.
        let clone = fig1a_instance();
        let d = cache.context(&clone, &config).unwrap();
        assert!(Arc::ptr_eq(&a, &d));
        assert_eq!(cache.len(), 2);
    }

    #[test]
    fn mismatched_inputs_are_rejected() {
        let inst = fig1a_instance();
        let ctx = InferenceContext::for_correlation(&inst, AlgorithmConfig::default()).unwrap();
        let wrong = PathObservations::new(5);
        assert!(matches!(
            ctx.infer(&wrong),
            Err(CoreError::InvalidConfig(_))
        ));
        let short_rhs = vec![0.0; ctx.structure().num_equations() + 1];
        assert!(matches!(
            ctx.solve(&short_rhs),
            Err(CoreError::InvalidConfig(_))
        ));
        assert!(matches!(
            ctx.solve_batch(&[short_rhs]),
            Err(CoreError::InvalidConfig(_))
        ));
    }
}
