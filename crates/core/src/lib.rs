//! # netcorr-core — tomography on correlated links
//!
//! This crate implements the inference algorithms of *"Network Tomography
//! on Correlated Links"* (Ghita, Argyraki, Thiran — IMC 2010). Given
//!
//! * a [`netcorr_topology::TopologyInstance`] — the network graph, the
//!   measurement paths and the correlation partition of the links — and
//! * a [`netcorr_measure::PathObservations`] — which paths were congested
//!   in each measurement snapshot,
//!
//! the algorithms infer, for every link, the probability that the link is
//! congested:
//!
//! * [`CorrelationAlgorithm`] — the paper's practical algorithm
//!   (Section 4): log-linear equations built only from paths and path
//!   pairs whose links are mutually uncorrelated, solved exactly when
//!   enough independent equations exist and by minimum-L1-norm (or
//!   regularised least squares at scale) otherwise.
//! * [`IndependenceAlgorithm`] — the baseline that assumes every link is
//!   independent (Nguyen–Thiran \[12\]); the comparison between the two is
//!   the subject of the paper's evaluation.
//! * [`TheoremAlgorithm`] — the exact, exponential-cost procedure from the
//!   proof of Theorem 1: identifies the probability of *every* set of
//!   links being congested through the congestion factors `α_A`. Used as
//!   an oracle on small topologies.
//!
//! Lower-level building blocks (equation construction, solvers, congestion
//! factors) are exposed in the [`equations`], [`solver`] and [`factors`]
//! modules for ablation studies and custom pipelines. Multi-trial
//! workloads should go through the [`context`] module
//! ([`InferenceContext`] / [`ContextCache`]), which computes the equation
//! structure, independence selection and dense QR factorization **once**
//! per topology and reuses them across every trial's solve.

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod algorithm;
pub mod context;
pub mod equations;
pub mod error;
pub mod factors;
pub mod result;
pub mod solver;
pub mod theorem;

pub use algorithm::{AlgorithmConfig, CorrelationAlgorithm, IndependenceAlgorithm};
pub use context::{ContextCache, InferenceContext, WARM_CHAIN};
pub use equations::{
    EquationConfig, EquationSource, EquationStructure, EquationSystem, IncrementalEquationBuilder,
};
pub use error::CoreError;
pub use result::{Diagnostics, SolverKind, TomographyEstimate};
pub use solver::SolverConfig;
pub use theorem::{TheoremAlgorithm, TheoremConfig, TheoremEstimate};
