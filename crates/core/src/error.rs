//! Error type for the tomography algorithms.

use std::fmt;

use netcorr_linalg::LinalgError;
use netcorr_measure::MeasureError;
use netcorr_topology::graph::LinkId;
use netcorr_topology::TopologyError;

/// Errors produced by the inference algorithms.
#[derive(Debug, Clone, PartialEq)]
pub enum CoreError {
    /// A problem with the topology / correlation partition.
    Topology(TopologyError),
    /// A problem with the measurements (e.g. no snapshots recorded).
    Measurement(MeasureError),
    /// A numerical failure in the underlying solvers.
    Numerical(LinalgError),
    /// The observations do not allow any equation to be formed (for
    /// example, every path traverses correlated links).
    NoUsableEquations,
    /// The observations never show an all-paths-good snapshot, so the
    /// congestion factors of the exact algorithm cannot be normalised.
    InsufficientObservations {
        /// What was missing.
        reason: &'static str,
    },
    /// Assumption 4 does not hold: two correlation subsets cover exactly
    /// the same paths, so their congestion probabilities are not
    /// identifiable.
    Unidentifiable {
        /// One of the conflicting subsets.
        subset_a: Vec<LinkId>,
        /// The other conflicting subset.
        subset_b: Vec<LinkId>,
    },
    /// The exact (theorem) algorithm would have to enumerate more
    /// correlation subsets or network states than the configured limit.
    EnumerationTooLarge {
        /// A human-readable description of what exceeded the limit.
        what: &'static str,
        /// The configured limit.
        limit: usize,
    },
    /// The algorithm configuration is invalid.
    InvalidConfig(String),
}

impl fmt::Display for CoreError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CoreError::Topology(e) => write!(f, "topology error: {e}"),
            CoreError::Measurement(e) => write!(f, "measurement error: {e}"),
            CoreError::Numerical(e) => write!(f, "numerical error: {e}"),
            CoreError::NoUsableEquations => {
                write!(f, "no usable equations could be formed from the observations")
            }
            CoreError::InsufficientObservations { reason } => {
                write!(f, "insufficient observations: {reason}")
            }
            CoreError::Unidentifiable { subset_a, subset_b } => write!(
                f,
                "assumption 4 violated: correlation subsets {subset_a:?} and {subset_b:?} cover the same paths"
            ),
            CoreError::EnumerationTooLarge { what, limit } => {
                write!(f, "enumeration too large: {what} exceeds limit {limit}")
            }
            CoreError::InvalidConfig(msg) => write!(f, "invalid configuration: {msg}"),
        }
    }
}

impl std::error::Error for CoreError {}

impl From<TopologyError> for CoreError {
    fn from(e: TopologyError) -> Self {
        CoreError::Topology(e)
    }
}

impl From<MeasureError> for CoreError {
    fn from(e: MeasureError) -> Self {
        CoreError::Measurement(e)
    }
}

impl From<LinalgError> for CoreError {
    fn from(e: LinalgError) -> Self {
        CoreError::Numerical(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn conversions_and_display() {
        let e: CoreError = MeasureError::NoSnapshots.into();
        assert!(matches!(e, CoreError::Measurement(_)));
        assert!(e.to_string().contains("measurement"));

        let e: CoreError = LinalgError::Singular.into();
        assert!(matches!(e, CoreError::Numerical(_)));

        let e: CoreError = TopologyError::EmptyPath.into();
        assert!(matches!(e, CoreError::Topology(_)));

        assert!(CoreError::NoUsableEquations
            .to_string()
            .contains("equations"));
        assert!(CoreError::InsufficientObservations {
            reason: "all-good snapshot never observed"
        }
        .to_string()
        .contains("all-good"));
        assert!(CoreError::Unidentifiable {
            subset_a: vec![LinkId(0)],
            subset_b: vec![LinkId(1)]
        }
        .to_string()
        .contains("assumption 4"));
        assert!(CoreError::EnumerationTooLarge {
            what: "network states",
            limit: 10
        }
        .to_string()
        .contains("10"));
        assert!(CoreError::InvalidConfig("oops".into())
            .to_string()
            .contains("oops"));
    }
}
