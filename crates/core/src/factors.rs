//! Congestion factors α_A and their identification (Appendix A).
//!
//! For every correlation subset `A ⊆ C_p` the *congestion factor* is
//!
//! ```text
//! α_A = P(S^p = A) / P(S^p = ∅)
//! ```
//!
//! i.e. how often exactly the links of `A` are the congested links of their
//! correlation set, relative to how often the whole set is good. The proof
//! of Theorem 1 shows that all congestion factors are identifiable from
//! end-to-end measurements by working through the correlation subsets in
//! increasing order of how many paths they cover (the partial order `≺`):
//!
//! ```text
//! P(ψ(S) = ψ(A)) / P(ψ(S) = ∅)  =  α_A · Γ_A  +  Γ_Ā            (Eq. 18)
//! ```
//!
//! where `Γ_A` and `Γ_Ā` are sums, over the network states whose congested
//! paths are exactly `ψ(A)`, of products of congestion factors of *smaller*
//! subsets — all of which are already known when `A` is processed. This
//! module implements that recursion; the [`crate::theorem`] module wraps it
//! into the full estimation algorithm (measurement → factors → per-link
//! probabilities via Lemma 3).

use std::collections::BTreeSet;

use serde::{Deserialize, Serialize};

use netcorr_topology::correlation::CorrelationSetId;
use netcorr_topology::graph::LinkId;
use netcorr_topology::path::PathId;
use netcorr_topology::TopologyInstance;

use crate::error::CoreError;

/// A correlation subset together with its coverage and (once computed)
/// congestion factor.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct SubsetFactor {
    /// The correlation set this subset belongs to.
    pub set: CorrelationSetId,
    /// The links of the subset (sorted).
    pub links: Vec<LinkId>,
    /// The paths covered by the subset, `ψ(A)`.
    pub coverage: BTreeSet<PathId>,
    /// The congestion factor `α_A`.
    pub alpha: f64,
}

/// All correlation subsets of an instance, ordered by coverage size (the
/// partial order `≺` used by the identification recursion), before their
/// factors are known.
#[derive(Debug, Clone)]
pub struct SubsetEnumeration {
    /// Subsets in processing order (coverage size ascending).
    pub subsets: Vec<SubsetFactor>,
    /// For every correlation set, the indices (into `subsets`) of its
    /// subsets.
    pub per_set: Vec<Vec<usize>>,
}

/// Configuration limits for the exact algorithm.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct EnumerationLimits {
    /// Maximum number of links per correlation set (the number of subsets
    /// is exponential in this).
    pub max_set_size: usize,
    /// Maximum number of network states enumerated while computing one
    /// congestion factor.
    pub max_states_per_factor: usize,
}

impl Default for EnumerationLimits {
    fn default() -> Self {
        EnumerationLimits {
            max_set_size: 16,
            max_states_per_factor: 200_000,
        }
    }
}

/// Enumerates all correlation subsets of the instance, verifies
/// Assumption 4 over them, and returns them in processing order.
pub fn enumerate_subsets(
    instance: &TopologyInstance,
    limits: &EnumerationLimits,
) -> Result<SubsetEnumeration, CoreError> {
    if instance.correlation.max_set_size() > limits.max_set_size {
        return Err(CoreError::EnumerationTooLarge {
            what: "correlation set size",
            limit: limits.max_set_size,
        });
    }
    let mut subsets = Vec::new();
    for (set_id, _) in instance.correlation.sets() {
        for links in instance
            .correlation
            .subsets_of_set(set_id, limits.max_set_size)
            .map_err(CoreError::Topology)?
        {
            let coverage = instance.paths.coverage(&links);
            subsets.push(SubsetFactor {
                set: set_id,
                links,
                coverage,
                alpha: 0.0,
            });
        }
    }
    // Assumption 4: no two subsets may cover exactly the same paths.
    let mut by_coverage: std::collections::BTreeMap<Vec<PathId>, usize> =
        std::collections::BTreeMap::new();
    for (idx, subset) in subsets.iter().enumerate() {
        let key: Vec<PathId> = subset.coverage.iter().copied().collect();
        if let Some(&other) = by_coverage.get(&key) {
            return Err(CoreError::Unidentifiable {
                subset_a: subsets[other].links.clone(),
                subset_b: subset.links.clone(),
            });
        }
        by_coverage.insert(key, idx);
    }
    // Processing order: coverage size ascending (stable, so deterministic).
    subsets.sort_by_key(|s| (s.coverage.len(), s.links.clone()));
    let mut per_set = vec![Vec::new(); instance.correlation.num_sets()];
    for (idx, subset) in subsets.iter().enumerate() {
        per_set[subset.set.index()].push(idx);
    }
    Ok(SubsetEnumeration { subsets, per_set })
}

/// Identifies every congestion factor from the measured probabilities.
///
/// `measured_ratio(coverage)` must return the measured
/// `P(ψ(S) = ψ(A)) / P(ψ(S) = ∅)` for the given coverage; the enumeration
/// is updated in place with the computed `alpha` values.
pub fn identify_factors(
    enumeration: &mut SubsetEnumeration,
    limits: &EnumerationLimits,
    mut measured_ratio: impl FnMut(&BTreeSet<PathId>) -> Result<f64, CoreError>,
) -> Result<(), CoreError> {
    let num_sets = enumeration.per_set.len();
    for index in 0..enumeration.subsets.len() {
        let target_coverage = enumeration.subsets[index].coverage.clone();
        let target_set = enumeration.subsets[index].set;
        let target_links = enumeration.subsets[index].links.clone();

        // Candidate subsets per correlation set: those whose coverage is
        // contained in the target coverage (plus the empty subset, which is
        // always a candidate). Only already-processed subsets (strictly
        // smaller coverage) or the target itself can qualify, so their
        // alphas are known.
        let mut candidates: Vec<Vec<Option<usize>>> = vec![vec![None]; num_sets];
        for (idx, subset) in enumeration.subsets.iter().enumerate() {
            if subset.coverage.is_subset(&target_coverage) {
                candidates[subset.set.index()].push(Some(idx));
            }
        }

        // Enumerate the network states (one candidate per correlation set)
        // whose union of coverages equals the target coverage, accumulating
        // Γ_A (states where S^q = A) and Γ_Ā (the rest).
        let mut gamma_a = 0.0;
        let mut gamma_a_bar = 0.0;
        let mut states_visited = 0usize;
        let mut stack: Vec<(usize, BTreeSet<PathId>, f64, bool)> =
            vec![(0, BTreeSet::new(), 1.0, false)];
        while let Some((set_idx, covered, product, target_chosen)) = stack.pop() {
            if covered.len() > target_coverage.len() {
                continue;
            }
            if set_idx == num_sets {
                states_visited += 1;
                if states_visited > limits.max_states_per_factor {
                    return Err(CoreError::EnumerationTooLarge {
                        what: "network states per congestion factor",
                        limit: limits.max_states_per_factor,
                    });
                }
                if covered == target_coverage {
                    if target_chosen {
                        gamma_a += product;
                    } else {
                        gamma_a_bar += product;
                    }
                }
                continue;
            }
            for candidate in &candidates[set_idx] {
                match candidate {
                    None => {
                        // This correlation set is entirely good: alpha = 1
                        // multiplier, no extra coverage.
                        stack.push((set_idx + 1, covered.clone(), product, target_chosen));
                    }
                    Some(subset_idx) => {
                        let subset = &enumeration.subsets[*subset_idx];
                        let is_target = *subset_idx == index;
                        if !is_target && subset.coverage.len() >= target_coverage.len() {
                            // Not yet identified (processed later); by
                            // Lemma 1 such states cannot satisfy the
                            // coverage constraint unless the subset IS the
                            // target, so skip.
                            continue;
                        }
                        let mut new_covered = covered.clone();
                        new_covered.extend(subset.coverage.iter().copied());
                        if !new_covered.is_subset(&target_coverage) {
                            continue;
                        }
                        let factor = if is_target { 1.0 } else { subset.alpha };
                        stack.push((
                            set_idx + 1,
                            new_covered,
                            product * factor,
                            target_chosen || (is_target && subset.set == target_set),
                        ));
                    }
                }
            }
        }

        debug_assert!(
            gamma_a >= 1.0 - 1e-9,
            "Γ_A must include the state S = A itself (links {target_links:?})"
        );
        let measured = measured_ratio(&target_coverage)?;
        let alpha = ((measured - gamma_a_bar) / gamma_a).max(0.0);
        enumeration.subsets[index].alpha = alpha;
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use netcorr_topology::toy;

    #[test]
    fn enumeration_matches_the_paper_ordering_for_fig1a() {
        let inst = toy::figure_1a();
        let enumeration = enumerate_subsets(&inst, &EnumerationLimits::default()).unwrap();
        // |C̃| = 5 subsets.
        assert_eq!(enumeration.subsets.len(), 5);
        // Coverage sizes must be non-decreasing.
        let sizes: Vec<usize> = enumeration
            .subsets
            .iter()
            .map(|s| s.coverage.len())
            .collect();
        let mut sorted = sizes.clone();
        sorted.sort_unstable();
        assert_eq!(sizes, sorted);
        // The paper's ordering: {e1}, {e4} (1 path each), then {e3}, {e2}
        // (2 paths each), then {e1, e2} (3 paths).
        assert_eq!(enumeration.subsets[0].coverage.len(), 1);
        assert_eq!(enumeration.subsets[1].coverage.len(), 1);
        assert_eq!(enumeration.subsets[4].links, vec![LinkId(0), LinkId(1)]);
        // Per-set index covers every subset exactly once.
        let total: usize = enumeration.per_set.iter().map(Vec::len).sum();
        assert_eq!(total, 5);
    }

    #[test]
    fn enumeration_detects_assumption_4_violations() {
        let inst = toy::figure_1b();
        let err = enumerate_subsets(&inst, &EnumerationLimits::default()).unwrap_err();
        match err {
            CoreError::Unidentifiable { subset_a, subset_b } => {
                let mut pair = [subset_a, subset_b];
                pair.sort();
                assert_eq!(pair[0], vec![LinkId(0), LinkId(1)]);
                assert_eq!(pair[1], vec![LinkId(2)]);
            }
            other => panic!("expected Unidentifiable, got {other:?}"),
        }
    }

    #[test]
    fn enumeration_respects_the_set_size_limit() {
        let inst = toy::figure_1a();
        let limits = EnumerationLimits {
            max_set_size: 1,
            ..EnumerationLimits::default()
        };
        assert!(matches!(
            enumerate_subsets(&inst, &limits),
            Err(CoreError::EnumerationTooLarge { .. })
        ));
    }

    #[test]
    fn factors_are_identified_from_exact_ratios_on_fig1a() {
        // Ground truth: e1, e2 jointly congested with probability 0.2;
        // e3 and e4 independently congested with probability 0.1.
        // α_{e1} = α_{e2} = 0, α_{e1,e2} = 0.25, α_{e3} = α_{e4} = 1/9.
        let inst = toy::figure_1a();
        let mut enumeration = enumerate_subsets(&inst, &EnumerationLimits::default()).unwrap();

        // Exact measured ratios P(ψ(S) = ψ(A)) / P(ψ(S) = ∅), computed by
        // hand from the model (see the walk-through in Section 3.2):
        //   ψ({e1}) = {P1}:            α1 = 0
        //   ψ({e4}) = {P3}:            α4 = 1/9
        //   ψ({e3}) = {P1,P2}:         (1 + α1) α3 = 1/9
        //   ψ({e2}) = {P2,P3}:         α2 + α2·α4 + ... = 0
        //   ψ({e1,e2}) = {P1,P2,P3}:   see Appendix A illustration.
        let alpha_12 = 0.25_f64;
        let alpha_3 = 1.0 / 9.0;
        let alpha_4 = 1.0 / 9.0;
        let ratio = move |coverage: &BTreeSet<PathId>| -> Result<f64, CoreError> {
            let c: Vec<usize> = coverage.iter().map(|p| p.index()).collect();
            let value = match c.as_slice() {
                [0] => 0.0,        // only P1 congested
                [2] => alpha_4,    // only P3 congested
                [0, 1] => alpha_3, // P1, P2 congested
                [1, 2] => 0.0,     // P2, P3 congested (needs e2 alone)
                [0, 1, 2] => {
                    // All paths congested: states from the Appendix A
                    // illustration expressed in congestion factors.
                    alpha_12 * (1.0 + alpha_3 + alpha_4 + alpha_3 * alpha_4) + alpha_3 * alpha_4
                }
                other => panic!("unexpected coverage {other:?}"),
            };
            Ok(value)
        };
        identify_factors(&mut enumeration, &EnumerationLimits::default(), ratio).unwrap();

        let find = |links: &[LinkId]| -> f64 {
            enumeration
                .subsets
                .iter()
                .find(|s| s.links == links)
                .unwrap()
                .alpha
        };
        assert!((find(&[LinkId(0)]) - 0.0).abs() < 1e-9);
        assert!((find(&[LinkId(1)]) - 0.0).abs() < 1e-9);
        assert!((find(&[LinkId(0), LinkId(1)]) - 0.25).abs() < 1e-9);
        assert!((find(&[LinkId(2)]) - 1.0 / 9.0).abs() < 1e-9);
        assert!((find(&[LinkId(3)]) - 1.0 / 9.0).abs() < 1e-9);
    }

    #[test]
    fn negative_noise_is_clamped_to_zero() {
        let inst = toy::figure_1a();
        let mut enumeration = enumerate_subsets(&inst, &EnumerationLimits::default()).unwrap();
        // Slightly negative measured ratios (possible with noisy estimates
        // after subtracting Γ_Ā) must not produce negative factors.
        identify_factors(&mut enumeration, &EnumerationLimits::default(), |_| {
            Ok(-0.01)
        })
        .unwrap();
        assert!(enumeration.subsets.iter().all(|s| s.alpha >= 0.0));
    }
}
