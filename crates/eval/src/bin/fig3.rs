//! Reproduces Figure 3 (performance under ideal conditions, Brite
//! topology): the mean / 90th-percentile sweep over the congested-link
//! fraction and the two CDFs at 10% congested links.

use netcorr_eval::cli::{usage, CliOptions, CliOutcome};
use netcorr_eval::figures::fig3;
use netcorr_eval::report;
use netcorr_eval::scenario::CorrelationLevel;

fn main() {
    let options = match CliOptions::from_env() {
        Ok(CliOutcome::Run(options)) => options,
        Ok(CliOutcome::HelpRequested) => {
            println!("{}", usage());
            return;
        }
        Err(err) => {
            eprintln!("{err}");
            std::process::exit(2);
        }
    };
    if let Err(err) = run(&options) {
        eprintln!("fig3 failed: {err}");
        std::process::exit(1);
    }
}

fn run(options: &CliOptions) -> Result<(), netcorr_eval::EvalError> {
    println!("== Figure 3(a)/(b): error vs. fraction of congested links (highly correlated) ==");
    let sweep = fig3::congestion_sweep(
        options.scale,
        CorrelationLevel::HighlyCorrelated,
        &options.experiment,
    )?;
    println!(
        "{}",
        report::format_sweep_table("Figure 3(a) mean / 3(b) 90th percentile", &sweep)
    );
    report::write_sweep_csv(&options.out_dir.join("fig3ab.csv"), &sweep)?;

    println!("== Figure 3(c): CDF at 10% congested links, highly correlated ==");
    let fig3c = fig3::cdf_at_ten_percent(
        options.scale,
        CorrelationLevel::HighlyCorrelated,
        &options.experiment,
    )?;
    println!("{}", report::format_cdf_table(&fig3c));
    report::write_cdf_csv(&options.out_dir.join("fig3c.csv"), &fig3c)?;

    println!("== Figure 3(d): CDF at 10% congested links, loosely correlated ==");
    let fig3d = fig3::cdf_at_ten_percent(
        options.scale,
        CorrelationLevel::LooselyCorrelated,
        &options.experiment,
    )?;
    println!("{}", report::format_cdf_table(&fig3d));
    report::write_cdf_csv(&options.out_dir.join("fig3d.csv"), &fig3d)?;

    println!("CSV output written to {}", options.out_dir.display());
    Ok(())
}
