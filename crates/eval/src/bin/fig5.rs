//! Reproduces Figure 5 (unknown correlation patterns): error CDFs when
//! 25% / 50% of the congested links are mislabeled (the worm / flooding
//! scenario), on Brite- and PlanetLab-style topologies.

use netcorr_eval::cli::{usage, CliOptions, CliOutcome};
use netcorr_eval::figures::fig5;
use netcorr_eval::report;

fn main() {
    let options = match CliOptions::from_env() {
        Ok(CliOutcome::Run(options)) => options,
        Ok(CliOutcome::HelpRequested) => {
            println!("{}", usage());
            return;
        }
        Err(err) => {
            eprintln!("{err}");
            std::process::exit(2);
        }
    };
    if let Err(err) = run(&options) {
        eprintln!("fig5 failed: {err}");
        std::process::exit(1);
    }
}

fn run(options: &CliOptions) -> Result<(), netcorr_eval::EvalError> {
    let comparisons = fig5::full_figure(options.scale, &options.experiment)?;
    let names = ["fig5a", "fig5b", "fig5c", "fig5d"];
    for (comparison, name) in comparisons.iter().zip(names.iter()) {
        println!("== {name}: {} ==", comparison.label);
        println!("{}", report::format_cdf_table(comparison));
        report::write_cdf_csv(&options.out_dir.join(format!("{name}.csv")), comparison)?;
    }
    println!("CSV output written to {}", options.out_dir.display());
    Ok(())
}
