//! `netcorr-robustness` — runs the model-misspecification matrix and
//! either regenerates `ROBUSTNESS.json` or checks a fresh run against the
//! committed thresholds.
//!
//! ```text
//! netcorr-robustness [--out FILE]        run the matrix, write the report
//! netcorr-robustness --check [BASELINE]  run the matrix, compare against
//!                                        the committed report, exit 1 on
//!                                        any threshold regression
//! ```
//!
//! Further flags: `--trials N`, `--snapshots N`, `--seed N`, `--shards N`
//! override the smoke matrix; `--help` prints usage. The default baseline
//! path is `ROBUSTNESS.json` in the current directory (CI runs from the
//! workspace root); `BENCH_ROBUSTNESS_BASELINE` overrides it, mirroring
//! the other `bench_gate` baselines.

use std::path::PathBuf;

use netcorr_eval::robustness::{check_against_baseline, run_matrix, RobustnessConfig};
use netcorr_eval::EvalError;

const USAGE: &str = "usage: netcorr-robustness [--check [BASELINE]] [--out FILE] [--trials N] \
                     [--snapshots N] [--seed N] [--shards N]";

struct Options {
    config: RobustnessConfig,
    out: PathBuf,
    check: bool,
    baseline: PathBuf,
}

fn default_baseline() -> PathBuf {
    std::env::var("BENCH_ROBUSTNESS_BASELINE")
        .map(PathBuf::from)
        .unwrap_or_else(|_| PathBuf::from("ROBUSTNESS.json"))
}

fn parse_args() -> Result<Option<Options>, String> {
    let mut options = Options {
        config: RobustnessConfig::smoke(),
        out: PathBuf::from("ROBUSTNESS.json"),
        check: false,
        baseline: default_baseline(),
    };
    let mut args = std::env::args().skip(1).peekable();
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--help" | "-h" => return Ok(None),
            "--check" => {
                options.check = true;
                if let Some(next) = args.peek() {
                    if !next.starts_with("--") {
                        options.baseline = PathBuf::from(args.next().expect("peeked"));
                    }
                }
            }
            "--out" => {
                options.out = PathBuf::from(value(&mut args, "--out")?);
            }
            "--trials" => {
                options.config.trials = number(&mut args, "--trials")?;
            }
            "--snapshots" => {
                options.config.snapshots = number(&mut args, "--snapshots")?;
            }
            "--shards" => {
                options.config.shards = number(&mut args, "--shards")?;
            }
            "--seed" => {
                options.config.base_seed = value(&mut args, "--seed")?
                    .parse::<u64>()
                    .map_err(|_| "invalid number for --seed".to_string())?;
            }
            other => return Err(format!("unknown argument '{other}'\n{USAGE}")),
        }
    }
    Ok(Some(options))
}

fn value(args: &mut impl Iterator<Item = String>, flag: &str) -> Result<String, String> {
    args.next()
        .ok_or_else(|| format!("missing value for {flag}"))
}

fn number(args: &mut impl Iterator<Item = String>, flag: &str) -> Result<usize, String> {
    value(args, flag)?
        .parse::<usize>()
        .map_err(|_| format!("invalid number for {flag}"))
}

fn main() {
    let options = match parse_args() {
        Ok(Some(options)) => options,
        Ok(None) => {
            println!("{USAGE}");
            return;
        }
        Err(err) => {
            eprintln!("{err}");
            std::process::exit(2);
        }
    };
    if let Err(err) = run(&options) {
        eprintln!("netcorr-robustness failed: {err}");
        std::process::exit(1);
    }
}

fn run(options: &Options) -> Result<(), EvalError> {
    println!(
        "netcorr-robustness: {} trials x {} snapshots, seed {}",
        options.config.trials, options.config.snapshots, options.config.base_seed
    );
    let report = run_matrix(&options.config)?;
    println!(
        "  {} cells measured; worm scenario: correlation mean {:.4} vs independence {:.4}",
        report.cells.len(),
        report.worm.correlation.mean,
        report.worm.independence.mean
    );
    if let Err(message) = report.worm.check() {
        eprintln!("netcorr-robustness: {message}");
        std::process::exit(1);
    }

    if options.check {
        let baseline = std::fs::read_to_string(&options.baseline).map_err(|err| {
            EvalError::Io(format!(
                "cannot read baseline {}: {err}",
                options.baseline.display()
            ))
        })?;
        let checks = check_against_baseline(&report, &baseline)?;
        let mut failures = 0;
        for check in &checks {
            if !check.passes() {
                failures += 1;
                eprintln!(
                    "REGRESSION {}: mean error {:.4} (max {:.4}), detection rate {:.4} (min {:.4})",
                    check.cell,
                    check.measured_mean,
                    check.max_mean,
                    check.measured_detection,
                    check.min_detection
                );
            }
        }
        if failures > 0 {
            eprintln!(
                "netcorr-robustness: {failures}/{} cells regressed past the committed thresholds \
                 of {}",
                checks.len(),
                options.baseline.display()
            );
            std::process::exit(1);
        }
        println!(
            "netcorr-robustness: all {} cells within the committed thresholds of {}",
            checks.len(),
            options.baseline.display()
        );
    } else {
        report.write(&options.out)?;
        println!(
            "netcorr-robustness: report written to {}",
            options.out.display()
        );
    }
    Ok(())
}
