//! Runs the complete evaluation (Figures 3, 4 and 5) and prints a compact
//! summary comparing the measured numbers against the qualitative claims of
//! the paper. The full tables are written as CSV files; `EXPERIMENTS.md`
//! records a snapshot of this binary's output.

use netcorr_eval::cli::{usage, CliOptions, CliOutcome};
use netcorr_eval::figures::{fig3, fig4, fig5, CdfComparison};
use netcorr_eval::report;
use netcorr_eval::scenario::CorrelationLevel;

fn main() {
    let options = match CliOptions::from_env() {
        Ok(CliOutcome::Run(options)) => options,
        Ok(CliOutcome::HelpRequested) => {
            println!("{}", usage());
            return;
        }
        Err(err) => {
            eprintln!("{err}");
            std::process::exit(2);
        }
    };
    if let Err(err) = run(&options) {
        eprintln!("all_experiments failed: {err}");
        std::process::exit(1);
    }
}

fn check(label: &str, holds: bool) {
    println!("  [{}] {}", if holds { "ok" } else { "??" }, label);
}

fn summarize_cdf(name: &str, comparison: &CdfComparison) {
    let (corr_below, indep_below) = comparison.fraction_below(0.1);
    println!(
        "  {name}: err<=0.1 for {corr_below:.0}% (correlation) vs {indep_below:.0}% (independence); \
         mean {:.3} vs {:.3}",
        comparison.correlation_summary.mean, comparison.independence_summary.mean
    );
    check(
        "correlation algorithm at least as accurate as the baseline",
        comparison.correlation_summary.mean <= comparison.independence_summary.mean + 1e-9,
    );
}

fn run(options: &CliOptions) -> Result<(), netcorr_eval::EvalError> {
    println!("netcorr full evaluation ({:?} scale)", options.scale);
    println!(
        "trials: {}, snapshots per trial: {}, base seed: {}",
        options.experiment.trials, options.experiment.snapshots, options.experiment.base_seed
    );

    // ---- Figure 3 ----
    println!("\n=== Figure 3: ideal conditions (Brite) ===");
    let sweep = fig3::congestion_sweep(
        options.scale,
        CorrelationLevel::HighlyCorrelated,
        &options.experiment,
    )?;
    println!(
        "{}",
        report::format_sweep_table("Figure 3(a) mean / 3(b) 90th percentile", &sweep)
    );
    report::write_sweep_csv(&options.out_dir.join("fig3ab.csv"), &sweep)?;
    let first = sweep.first().expect("sweep is non-empty");
    let last = sweep.last().expect("sweep is non-empty");
    check(
        "correlation algorithm mean error stays below the baseline across the sweep",
        sweep
            .iter()
            .all(|p| p.correlation.mean <= p.independence.mean + 1e-9),
    );
    check(
        "baseline error grows with the fraction of congested links",
        last.independence.mean >= first.independence.mean,
    );

    let fig3c = fig3::cdf_at_ten_percent(
        options.scale,
        CorrelationLevel::HighlyCorrelated,
        &options.experiment,
    )?;
    report::write_cdf_csv(&options.out_dir.join("fig3c.csv"), &fig3c)?;
    summarize_cdf("Fig 3(c) highly correlated", &fig3c);
    let fig3d = fig3::cdf_at_ten_percent(
        options.scale,
        CorrelationLevel::LooselyCorrelated,
        &options.experiment,
    )?;
    report::write_cdf_csv(&options.out_dir.join("fig3d.csv"), &fig3d)?;
    summarize_cdf("Fig 3(d) loosely correlated", &fig3d);

    // ---- Figure 4 ----
    println!("\n=== Figure 4: unidentifiable links (10% congested) ===");
    let comparisons = fig4::full_figure(options.scale, &options.experiment)?;
    for (comparison, name) in comparisons.iter().zip(["fig4a", "fig4b", "fig4c", "fig4d"]) {
        report::write_cdf_csv(&options.out_dir.join(format!("{name}.csv")), comparison)?;
        summarize_cdf(name, comparison);
    }

    // ---- Figure 5 ----
    println!("\n=== Figure 5: unknown correlation patterns (10% congested) ===");
    let comparisons = fig5::full_figure(options.scale, &options.experiment)?;
    for (comparison, name) in comparisons.iter().zip(["fig5a", "fig5b", "fig5c", "fig5d"]) {
        report::write_cdf_csv(&options.out_dir.join(format!("{name}.csv")), comparison)?;
        summarize_cdf(name, comparison);
    }

    println!("\nCSV output written to {}", options.out_dir.display());
    Ok(())
}
