//! Reproduces Figure 4 (unidentifiable links): error CDFs when 25% / 50% of
//! the congested links are unidentifiable, on Brite- and PlanetLab-style
//! topologies.

use netcorr_eval::cli::{usage, CliOptions, CliOutcome};
use netcorr_eval::figures::fig4;
use netcorr_eval::report;

fn main() {
    let options = match CliOptions::from_env() {
        Ok(CliOutcome::Run(options)) => options,
        Ok(CliOutcome::HelpRequested) => {
            println!("{}", usage());
            return;
        }
        Err(err) => {
            eprintln!("{err}");
            std::process::exit(2);
        }
    };
    if let Err(err) = run(&options) {
        eprintln!("fig4 failed: {err}");
        std::process::exit(1);
    }
}

fn run(options: &CliOptions) -> Result<(), netcorr_eval::EvalError> {
    let comparisons = fig4::full_figure(options.scale, &options.experiment)?;
    let names = ["fig4a", "fig4b", "fig4c", "fig4d"];
    for (comparison, name) in comparisons.iter().zip(names.iter()) {
        println!("== {name}: {} ==", comparison.label);
        println!("{}", report::format_cdf_table(comparison));
        report::write_cdf_csv(&options.out_dir.join(format!("{name}.csv")), comparison)?;
    }
    println!("CSV output written to {}", options.out_dir.display());
    Ok(())
}
