//! Error type for the evaluation harness.

use std::fmt;

use netcorr_core::CoreError;
use netcorr_measure::MeasureError;
use netcorr_sim::SimError;
use netcorr_topology::TopologyError;

/// Errors produced while building scenarios or running experiments.
#[derive(Debug, Clone, PartialEq)]
pub enum EvalError {
    /// A topology problem.
    Topology(TopologyError),
    /// A simulator / congestion-model problem.
    Simulation(SimError),
    /// An inference problem.
    Inference(CoreError),
    /// A measurement problem.
    Measurement(MeasureError),
    /// The scenario configuration is invalid (e.g. a fraction outside
    /// [0, 1]).
    InvalidScenario(String),
    /// The scenario could not be realised on the given topology (e.g. not
    /// enough correlation sets with three or more links for a
    /// highly-correlated scenario).
    ScenarioInfeasible(String),
    /// Writing a report failed.
    Io(String),
    /// Reading, parsing or writing a persisted file failed; keeps the
    /// file path and the underlying cause so corrupt-file (and failed
    /// atomic-write) failures are diagnosable.
    Persist {
        /// The file being read or written.
        path: String,
        /// The underlying I/O or parse error.
        cause: String,
    },
}

impl fmt::Display for EvalError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            EvalError::Topology(e) => write!(f, "topology error: {e}"),
            EvalError::Simulation(e) => write!(f, "simulation error: {e}"),
            EvalError::Inference(e) => write!(f, "inference error: {e}"),
            EvalError::Measurement(e) => write!(f, "measurement error: {e}"),
            EvalError::InvalidScenario(msg) => write!(f, "invalid scenario: {msg}"),
            EvalError::ScenarioInfeasible(msg) => write!(f, "scenario infeasible: {msg}"),
            EvalError::Io(msg) => write!(f, "i/o error: {msg}"),
            EvalError::Persist { path, cause } => {
                write!(f, "persistence error at {path}: {cause}")
            }
        }
    }
}

impl std::error::Error for EvalError {}

impl From<TopologyError> for EvalError {
    fn from(e: TopologyError) -> Self {
        EvalError::Topology(e)
    }
}

impl From<SimError> for EvalError {
    fn from(e: SimError) -> Self {
        EvalError::Simulation(e)
    }
}

impl From<CoreError> for EvalError {
    fn from(e: CoreError) -> Self {
        EvalError::Inference(e)
    }
}

impl From<MeasureError> for EvalError {
    fn from(e: MeasureError) -> Self {
        EvalError::Measurement(e)
    }
}

impl From<std::io::Error> for EvalError {
    fn from(e: std::io::Error) -> Self {
        EvalError::Io(e.to_string())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn conversions_and_display() {
        let e: EvalError = TopologyError::EmptyPath.into();
        assert!(matches!(e, EvalError::Topology(_)));
        let e: EvalError = SimError::EmptyGroup.into();
        assert!(matches!(e, EvalError::Simulation(_)));
        let e: EvalError = CoreError::NoUsableEquations.into();
        assert!(e.to_string().contains("inference"));
        let e: EvalError = MeasureError::NoSnapshots.into();
        assert!(matches!(e, EvalError::Measurement(_)));
        let e: EvalError = std::io::Error::other("disk full").into();
        assert!(e.to_string().contains("disk full"));
        assert!(EvalError::InvalidScenario("bad fraction".into())
            .to_string()
            .contains("bad fraction"));
        assert!(EvalError::ScenarioInfeasible("too few sets".into())
            .to_string()
            .contains("too few sets"));
        let e = EvalError::Persist {
            path: "runs/obs.bin".into(),
            cause: "truncated header".into(),
        };
        assert!(e.to_string().contains("runs/obs.bin"));
        assert!(e.to_string().contains("truncated header"));
    }
}
