//! Minimal command-line parsing shared by the experiment binaries.
//!
//! The binaries accept a small, uniform set of flags:
//!
//! ```text
//! --scale smoke|paper     topology size (default: paper)
//! --trials N              trials per experiment (default: 3)
//! --snapshots N           measurement snapshots per trial (default: 800)
//! --seed N                base random seed (default: 42)
//! --out DIR               directory for CSV output (default: target/experiments)
//! --sequential            disable trial-level parallelism
//! ```

use std::path::PathBuf;

use crate::error::EvalError;
use crate::figures::Scale;
use crate::runner::ExperimentConfig;

/// Parsed command-line options for the experiment binaries.
#[derive(Debug, Clone, PartialEq)]
pub struct CliOptions {
    /// Topology scale.
    pub scale: Scale,
    /// Experiment configuration (trials, snapshots, seed, parallelism).
    pub experiment: ExperimentConfig,
    /// Output directory for CSV files.
    pub out_dir: PathBuf,
}

impl Default for CliOptions {
    fn default() -> Self {
        CliOptions {
            scale: Scale::Paper,
            experiment: ExperimentConfig::default(),
            out_dir: PathBuf::from("target/experiments"),
        }
    }
}

impl CliOptions {
    /// Parses options from an argument iterator (excluding the program
    /// name).
    pub fn parse<I>(args: I) -> Result<Self, EvalError>
    where
        I: IntoIterator<Item = String>,
    {
        let mut options = CliOptions::default();
        let mut args = args.into_iter();
        while let Some(arg) = args.next() {
            match arg.as_str() {
                "--scale" => {
                    let value = expect_value(&mut args, "--scale")?;
                    options.scale = match value.as_str() {
                        "smoke" => Scale::Smoke,
                        "paper" => Scale::Paper,
                        other => {
                            return Err(EvalError::InvalidScenario(format!(
                                "unknown scale '{other}' (expected 'smoke' or 'paper')"
                            )))
                        }
                    };
                }
                "--trials" => {
                    options.experiment.trials =
                        parse_number(&expect_value(&mut args, "--trials")?, "--trials")?;
                }
                "--snapshots" => {
                    options.experiment.snapshots =
                        parse_number(&expect_value(&mut args, "--snapshots")?, "--snapshots")?;
                }
                "--seed" => {
                    options.experiment.base_seed =
                        parse_number(&expect_value(&mut args, "--seed")?, "--seed")? as u64;
                }
                "--out" => {
                    options.out_dir = PathBuf::from(expect_value(&mut args, "--out")?);
                }
                "--sequential" => {
                    options.experiment.parallel = false;
                }
                "--help" | "-h" => {
                    return Err(EvalError::InvalidScenario(usage().to_string()));
                }
                other => {
                    return Err(EvalError::InvalidScenario(format!(
                        "unknown argument '{other}'\n{}",
                        usage()
                    )));
                }
            }
        }
        Ok(options)
    }

    /// Parses options from the process arguments.
    pub fn from_env() -> Result<Self, EvalError> {
        CliOptions::parse(std::env::args().skip(1))
    }
}

/// Usage string shown on `--help` or argument errors.
pub fn usage() -> &'static str {
    "usage: <binary> [--scale smoke|paper] [--trials N] [--snapshots N] [--seed N] [--out DIR] [--sequential]"
}

fn expect_value(args: &mut impl Iterator<Item = String>, flag: &str) -> Result<String, EvalError> {
    args.next()
        .ok_or_else(|| EvalError::InvalidScenario(format!("missing value for {flag}")))
}

fn parse_number(value: &str, flag: &str) -> Result<usize, EvalError> {
    value
        .parse::<usize>()
        .map_err(|_| EvalError::InvalidScenario(format!("invalid number '{value}' for {flag}")))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn parse(args: &[&str]) -> Result<CliOptions, EvalError> {
        CliOptions::parse(args.iter().map(|s| s.to_string()))
    }

    #[test]
    fn defaults_are_paper_scale() {
        let options = parse(&[]).unwrap();
        assert_eq!(options.scale, Scale::Paper);
        assert_eq!(options.experiment.trials, 3);
        assert!(options.experiment.parallel);
        assert_eq!(options.out_dir, PathBuf::from("target/experiments"));
    }

    #[test]
    fn all_flags_are_parsed() {
        let options = parse(&[
            "--scale",
            "smoke",
            "--trials",
            "5",
            "--snapshots",
            "123",
            "--seed",
            "99",
            "--out",
            "/tmp/x",
            "--sequential",
        ])
        .unwrap();
        assert_eq!(options.scale, Scale::Smoke);
        assert_eq!(options.experiment.trials, 5);
        assert_eq!(options.experiment.snapshots, 123);
        assert_eq!(options.experiment.base_seed, 99);
        assert_eq!(options.out_dir, PathBuf::from("/tmp/x"));
        assert!(!options.experiment.parallel);
    }

    #[test]
    fn errors_are_reported() {
        assert!(parse(&["--scale", "huge"]).is_err());
        assert!(parse(&["--trials"]).is_err());
        assert!(parse(&["--trials", "abc"]).is_err());
        assert!(parse(&["--bogus"]).is_err());
        assert!(parse(&["--help"]).is_err());
    }
}
