//! Minimal command-line parsing shared by the experiment binaries.
//!
//! The binaries accept a small, uniform set of flags:
//!
//! ```text
//! --scale smoke|paper     topology size (default: paper)
//! --trials N              trials per experiment (default: 3)
//! --snapshots N           measurement snapshots per trial (default: 800)
//! --seed N                base random seed (default: 42)
//! --out DIR               directory for CSV output (default: target/experiments)
//! --sequential            disable trial-level parallelism
//! --trial-threads N       max worker threads for trials (0 = one per trial)
//! --shards N              within-trial measurement shards (0 = auto)
//! ```
//!
//! The thread and shard counts can also come from the environment —
//! `NETCORR_TRIAL_THREADS` and `NETCORR_SHARDS` — which
//! [`CliOptions::from_env`] applies before the flags, so an explicit flag
//! always wins over the environment.

use std::path::PathBuf;

use crate::error::EvalError;
use crate::figures::Scale;
use crate::runner::ExperimentConfig;

/// Parsed command-line options for the experiment binaries.
#[derive(Debug, Clone, PartialEq)]
pub struct CliOptions {
    /// Topology scale.
    pub scale: Scale,
    /// Experiment configuration (trials, snapshots, seed, parallelism).
    pub experiment: ExperimentConfig,
    /// Output directory for CSV files.
    pub out_dir: PathBuf,
}

/// The outcome of a successful argument parse: either resolved options to
/// run with, or an explicit help request (`--help` / `-h`). Help is **not
/// an error** — the binaries print [`usage`] to stdout and exit 0 —
/// whereas malformed arguments stay `Err` and exit nonzero.
#[derive(Debug, Clone, PartialEq)]
pub enum CliOutcome {
    /// Run with these options.
    Run(CliOptions),
    /// `--help` / `-h` was given: print usage and exit successfully.
    HelpRequested,
}

impl CliOutcome {
    /// The options of a `Run` outcome; panics on `HelpRequested` (test
    /// convenience).
    #[cfg(test)]
    fn unwrap_run(self) -> CliOptions {
        match self {
            CliOutcome::Run(options) => options,
            CliOutcome::HelpRequested => panic!("expected options, got a help request"),
        }
    }
}

impl Default for CliOptions {
    fn default() -> Self {
        CliOptions {
            scale: Scale::Paper,
            experiment: ExperimentConfig::default(),
            out_dir: PathBuf::from("target/experiments"),
        }
    }
}

impl CliOptions {
    /// Parses options from an argument iterator (excluding the program
    /// name), starting from the defaults.
    pub fn parse<I>(args: I) -> Result<CliOutcome, EvalError>
    where
        I: IntoIterator<Item = String>,
    {
        Self::parse_onto(CliOptions::default(), args)
    }

    /// Parses options from an argument iterator onto already-resolved
    /// base options (used to layer flags over environment overrides).
    fn parse_onto<I>(base: Self, args: I) -> Result<CliOutcome, EvalError>
    where
        I: IntoIterator<Item = String>,
    {
        let mut options = base;
        let mut args = args.into_iter();
        while let Some(arg) = args.next() {
            match arg.as_str() {
                "--scale" => {
                    let value = expect_value(&mut args, "--scale")?;
                    options.scale = match value.as_str() {
                        "smoke" => Scale::Smoke,
                        "paper" => Scale::Paper,
                        other => {
                            return Err(EvalError::InvalidScenario(format!(
                                "unknown scale '{other}' (expected 'smoke' or 'paper')"
                            )))
                        }
                    };
                }
                "--trials" => {
                    options.experiment.trials =
                        parse_number(&expect_value(&mut args, "--trials")?, "--trials")?;
                }
                "--snapshots" => {
                    options.experiment.snapshots =
                        parse_number(&expect_value(&mut args, "--snapshots")?, "--snapshots")?;
                }
                "--seed" => {
                    // Parsed as `u64` directly (not through `usize`), so
                    // full-range seeds round-trip on 32-bit targets too.
                    options.experiment.base_seed =
                        parse_u64(&expect_value(&mut args, "--seed")?, "--seed")?;
                }
                "--out" => {
                    options.out_dir = PathBuf::from(expect_value(&mut args, "--out")?);
                }
                "--sequential" => {
                    options.experiment.parallel = false;
                }
                "--trial-threads" => {
                    options.experiment.trial_threads = parse_number(
                        &expect_value(&mut args, "--trial-threads")?,
                        "--trial-threads",
                    )?;
                }
                "--shards" => {
                    options.experiment.shards =
                        parse_number(&expect_value(&mut args, "--shards")?, "--shards")?;
                }
                "--help" | "-h" => {
                    return Ok(CliOutcome::HelpRequested);
                }
                other => {
                    return Err(EvalError::InvalidScenario(format!(
                        "unknown argument '{other}'\n{}",
                        usage()
                    )));
                }
            }
        }
        Ok(CliOutcome::Run(options))
    }

    /// Applies environment-variable overrides (`NETCORR_TRIAL_THREADS`,
    /// `NETCORR_SHARDS`) from a lookup function. Unset variables leave
    /// the options untouched; malformed values are errors.
    pub fn apply_env_overrides(
        &mut self,
        get: impl Fn(&str) -> Option<String>,
    ) -> Result<(), EvalError> {
        if let Some(value) = get("NETCORR_TRIAL_THREADS") {
            self.experiment.trial_threads = parse_number(&value, "NETCORR_TRIAL_THREADS")?;
        }
        if let Some(value) = get("NETCORR_SHARDS") {
            self.experiment.shards = parse_number(&value, "NETCORR_SHARDS")?;
        }
        Ok(())
    }

    /// Parses options from the process environment and arguments:
    /// defaults, then `NETCORR_*` environment overrides, then flags (so
    /// flags always win).
    pub fn from_env() -> Result<CliOutcome, EvalError> {
        let mut options = CliOptions::default();
        options.apply_env_overrides(|key| std::env::var(key).ok())?;
        CliOptions::parse_onto(options, std::env::args().skip(1))
    }
}

/// Usage string shown on `--help` or argument errors.
pub fn usage() -> &'static str {
    "usage: <binary> [--scale smoke|paper] [--trials N] [--snapshots N] [--seed N] [--out DIR] \
     [--sequential] [--trial-threads N] [--shards N]"
}

fn expect_value(args: &mut impl Iterator<Item = String>, flag: &str) -> Result<String, EvalError> {
    args.next()
        .ok_or_else(|| EvalError::InvalidScenario(format!("missing value for {flag}")))
}

fn parse_number(value: &str, flag: &str) -> Result<usize, EvalError> {
    value
        .parse::<usize>()
        .map_err(|_| EvalError::InvalidScenario(format!("invalid number '{value}' for {flag}")))
}

fn parse_u64(value: &str, flag: &str) -> Result<u64, EvalError> {
    value
        .parse::<u64>()
        .map_err(|_| EvalError::InvalidScenario(format!("invalid number '{value}' for {flag}")))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn parse(args: &[&str]) -> Result<CliOutcome, EvalError> {
        CliOptions::parse(args.iter().map(|s| s.to_string()))
    }

    #[test]
    fn defaults_are_paper_scale() {
        let options = parse(&[]).unwrap().unwrap_run();
        assert_eq!(options.scale, Scale::Paper);
        assert_eq!(options.experiment.trials, 3);
        assert!(options.experiment.parallel);
        assert_eq!(options.out_dir, PathBuf::from("target/experiments"));
    }

    #[test]
    fn all_flags_are_parsed() {
        let options = parse(&[
            "--scale",
            "smoke",
            "--trials",
            "5",
            "--snapshots",
            "123",
            "--seed",
            "99",
            "--out",
            "/tmp/x",
            "--sequential",
            "--trial-threads",
            "4",
            "--shards",
            "8",
        ])
        .unwrap()
        .unwrap_run();
        assert_eq!(options.scale, Scale::Smoke);
        assert_eq!(options.experiment.trials, 5);
        assert_eq!(options.experiment.snapshots, 123);
        assert_eq!(options.experiment.base_seed, 99);
        assert_eq!(options.out_dir, PathBuf::from("/tmp/x"));
        assert!(!options.experiment.parallel);
        assert_eq!(options.experiment.trial_threads, 4);
        assert_eq!(options.experiment.shards, 8);
    }

    #[test]
    fn env_overrides_apply_and_flags_win() {
        let env = |key: &str| match key {
            "NETCORR_TRIAL_THREADS" => Some("3".to_string()),
            "NETCORR_SHARDS" => Some("6".to_string()),
            _ => None,
        };
        let mut options = CliOptions::default();
        options.apply_env_overrides(env).unwrap();
        assert_eq!(options.experiment.trial_threads, 3);
        assert_eq!(options.experiment.shards, 6);
        // A flag layered on top of the environment wins.
        let options = CliOptions::parse_onto(options, ["--shards".to_string(), "2".to_string()])
            .unwrap()
            .unwrap_run();
        assert_eq!(options.experiment.shards, 2);
        assert_eq!(options.experiment.trial_threads, 3);
        // Malformed environment values are reported.
        let mut bad = CliOptions::default();
        assert!(bad
            .apply_env_overrides(|_| Some("lots".to_string()))
            .is_err());
        // Unset variables leave the defaults alone.
        let mut untouched = CliOptions::default();
        untouched.apply_env_overrides(|_| None).unwrap();
        assert_eq!(untouched, CliOptions::default());
    }

    #[test]
    fn smoke_run_with_thread_and_shard_flags() {
        // End-to-end: a tiny experiment driven entirely through the CLI
        // surface, with explicit thread and shard counts.
        use crate::runner::run_experiment;
        use crate::scenario::ScenarioConfig;
        use netcorr_topology::generators::planetlab;
        use rand::rngs::StdRng;
        use rand::SeedableRng;

        let options = parse(&[
            "--scale",
            "smoke",
            "--trials",
            "2",
            "--snapshots",
            "150",
            "--trial-threads",
            "2",
            "--shards",
            "2",
        ])
        .unwrap()
        .unwrap_run();
        let base = planetlab::generate(
            &planetlab::PlanetLabConfig::small(),
            &mut StdRng::seed_from_u64(1),
        )
        .unwrap();
        let result =
            run_experiment(&base, &ScenarioConfig::default(), &options.experiment).unwrap();
        assert_eq!(result.trials.len(), 2);
        assert!(!result.correlation_errors.is_empty());
    }

    #[test]
    fn errors_are_reported() {
        assert!(parse(&["--scale", "huge"]).is_err());
        assert!(parse(&["--trials"]).is_err());
        assert!(parse(&["--trials", "abc"]).is_err());
        assert!(parse(&["--bogus"]).is_err());
        assert!(parse(&["--seed", "-1"]).is_err());
    }

    #[test]
    fn help_is_an_outcome_not_an_error() {
        // `--help` / `-h` are deliberate requests, not argument mistakes:
        // the binaries print usage to stdout and exit 0 on this outcome.
        assert_eq!(parse(&["--help"]).unwrap(), CliOutcome::HelpRequested);
        assert_eq!(parse(&["-h"]).unwrap(), CliOutcome::HelpRequested);
        // Help wins even with other (valid) flags before it.
        assert_eq!(
            parse(&["--trials", "5", "--help"]).unwrap(),
            CliOutcome::HelpRequested
        );
    }

    #[test]
    fn seeds_cover_the_full_u64_range() {
        let options = parse(&["--seed", "18446744073709551615"])
            .unwrap()
            .unwrap_run();
        assert_eq!(options.experiment.base_seed, u64::MAX);
    }
}
