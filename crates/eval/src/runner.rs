//! The experiment runner: simulate → infer (both algorithms) → score.
//!
//! Every *trial* instantiates a fresh congestion scenario on the base
//! topology, simulates a number of measurement snapshots, runs the
//! correlation algorithm and the independence baseline on the same
//! observations, and records the absolute error of each over the
//! potentially congested links. An *experiment* pools several trials
//! (optionally in parallel) so the reported CDFs / means are not dominated
//! by one random draw — the same methodology as the paper's "extensive
//! simulations".

use rand::rngs::StdRng;
use rand::SeedableRng;
use serde::{Deserialize, Serialize};

use netcorr_core::{AlgorithmConfig, ContextCache, Diagnostics};
use netcorr_measure::bitset::WORD_BITS;
use netcorr_measure::PathObservations;
use netcorr_sim::{PerturbationPlan, PerturbedSimulator, SimulationConfig, Simulator};
use netcorr_topology::TopologyInstance;

use crate::error::EvalError;
use crate::metrics::{absolute_errors, potentially_congested_links, ErrorSummary};
use crate::scenario::{CongestionScenario, ScenarioBuilder, ScenarioConfig};

/// Configuration of an experiment.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ExperimentConfig {
    /// Number of measurement snapshots per trial.
    pub snapshots: usize,
    /// Number of independent trials (fresh scenario + fresh measurements).
    pub trials: usize,
    /// Base random seed; trial `i` uses `base_seed + i`.
    pub base_seed: u64,
    /// Simulator configuration (thresholds, probes per path, transmission
    /// model).
    pub simulation: SimulationConfig,
    /// Inference configuration shared by both algorithms.
    pub algorithm: AlgorithmConfig,
    /// Run trials on separate threads.
    pub parallel: bool,
    /// Maximum number of worker threads for trial-level parallelism
    /// (`0` = one thread per trial).
    pub trial_threads: usize,
    /// Number of within-trial measurement shards: the snapshot range of a
    /// trial is split at word-aligned boundaries across this many scoped
    /// threads, each simulating and packing its own lanes, merged by
    /// word-level concatenation. Per-snapshot seeding makes the result
    /// bit-identical for **any** shard count (`0` = auto-detect from the
    /// available parallelism).
    pub shards: usize,
}

impl Default for ExperimentConfig {
    fn default() -> Self {
        ExperimentConfig {
            snapshots: 800,
            trials: 3,
            base_seed: 42,
            simulation: SimulationConfig::default(),
            algorithm: AlgorithmConfig::default(),
            parallel: true,
            trial_threads: 0,
            shards: 0,
        }
    }
}

impl ExperimentConfig {
    /// A quick configuration for unit tests and smoke runs.
    pub fn smoke() -> Self {
        ExperimentConfig {
            snapshots: 400,
            trials: 2,
            base_seed: 7,
            simulation: SimulationConfig::default(),
            algorithm: AlgorithmConfig::default(),
            parallel: false,
            trial_threads: 0,
            shards: 1,
        }
    }
}

/// Resolves a configured shard count: `0` means auto (the machine's
/// available parallelism), and the count is capped at one shard per
/// 64-snapshot word so every shard boundary except the last stays
/// word-aligned.
pub fn effective_shards(configured: usize, snapshots: usize) -> usize {
    let auto = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1);
    let requested = if configured == 0 { auto } else { configured };
    requested.clamp(1, snapshots.div_ceil(WORD_BITS).max(1))
}

/// Simulates `snapshots` snapshots of a trial split across `shards`
/// scoped worker threads.
///
/// The shard count is resolved through [`effective_shards`], so `0` means
/// auto-detect from the machine's available parallelism — the same
/// convention as [`ExperimentConfig::shards`] and the `--shards` CLI flag.
/// Every shard covers a word-aligned sub-range (a multiple of 64
/// snapshots, except possibly the last), simulates it independently via
/// [`Simulator::run_range`] — per-snapshot seeding makes shard boundaries
/// invisible to the RNG — and packs its own lanes; the shards are then
/// merged in order by word-level concatenation. The result is
/// bit-identical to `simulator.run_seeded(snapshots, seed)` for any
/// shard count.
pub fn sharded_observations(
    simulator: &Simulator<'_>,
    snapshots: usize,
    seed: u64,
    shards: usize,
) -> PathObservations {
    let shards = effective_shards(shards, snapshots);
    if shards <= 1 {
        return simulator.run_seeded(snapshots, seed);
    }
    // Word-aligned shard width so the merge is a memcpy per lane.
    let per_shard = snapshots.div_ceil(shards).next_multiple_of(WORD_BITS);
    let ranges: Vec<std::ops::Range<usize>> = (0..shards)
        .map(|i| (i * per_shard).min(snapshots)..((i + 1) * per_shard).min(snapshots))
        .filter(|r| !r.is_empty())
        .collect();
    let mut parts: Vec<Option<PathObservations>> = Vec::new();
    parts.resize_with(ranges.len(), || None);
    std::thread::scope(|scope| {
        for (slot, range) in parts.iter_mut().zip(&ranges) {
            scope.spawn(move || {
                *slot = Some(simulator.run_range(range.clone(), seed));
            });
        }
    });
    let mut merged = parts.remove(0).expect("shard 0 was simulated");
    for part in parts {
        merged
            .concat(&part.expect("every shard was simulated"))
            .expect("shards share the path count");
    }
    merged
}

/// Sharded measurement of a *perturbed* trial, bit-identical to
/// `perturbed.run_seeded(snapshots, seed)` for any shard count.
///
/// The temporally correlated perturbation state (burst chains, churn
/// routes) is materialised **once** into a [`PerturbationPlan`] that all
/// shards share; the per-snapshot measurement streams are counter-seeded
/// exactly as in [`sharded_observations`], so shard boundaries stay
/// invisible. With [`netcorr_sim::PerturbationConfig::none`] this is
/// bit-identical to [`sharded_observations`] over the wrapped simulator.
pub fn sharded_perturbed_observations(
    perturbed: &PerturbedSimulator<'_>,
    snapshots: usize,
    seed: u64,
    shards: usize,
) -> PathObservations {
    let plan: PerturbationPlan = perturbed.plan(snapshots, seed);
    let shards = effective_shards(shards, snapshots);
    if shards <= 1 {
        return perturbed.run_range_planned(0..snapshots, seed, &plan);
    }
    let per_shard = snapshots.div_ceil(shards).next_multiple_of(WORD_BITS);
    let ranges: Vec<std::ops::Range<usize>> = (0..shards)
        .map(|i| (i * per_shard).min(snapshots)..((i + 1) * per_shard).min(snapshots))
        .filter(|r| !r.is_empty())
        .collect();
    let mut parts: Vec<Option<PathObservations>> = Vec::new();
    parts.resize_with(ranges.len(), || None);
    std::thread::scope(|scope| {
        for (slot, range) in parts.iter_mut().zip(&ranges) {
            let plan = &plan;
            scope.spawn(move || {
                *slot = Some(perturbed.run_range_planned(range.clone(), seed, plan));
            });
        }
    });
    let mut merged = parts.remove(0).expect("shard 0 was simulated");
    for part in parts {
        merged
            .concat(&part.expect("every shard was simulated"))
            .expect("shards share the path count");
    }
    merged
}

/// The outcome of one trial.
#[derive(Debug, Clone)]
pub struct TrialResult {
    /// Per-link absolute errors of the correlation algorithm over the
    /// potentially congested links.
    pub correlation_errors: Vec<f64>,
    /// Per-link absolute errors of the independence baseline over the same
    /// links.
    pub independence_errors: Vec<f64>,
    /// Diagnostics of the correlation algorithm's solve.
    pub correlation_diagnostics: Diagnostics,
    /// Diagnostics of the independence baseline's solve.
    pub independence_diagnostics: Diagnostics,
    /// Number of potentially congested links in this trial.
    pub potentially_congested: usize,
}

/// The pooled outcome of an experiment.
#[derive(Debug, Clone)]
pub struct ExperimentResult {
    /// Individual trials.
    pub trials: Vec<TrialResult>,
    /// All correlation-algorithm errors pooled across trials.
    pub correlation_errors: Vec<f64>,
    /// All independence-baseline errors pooled across trials.
    pub independence_errors: Vec<f64>,
}

impl ExperimentResult {
    fn from_trials(trials: Vec<TrialResult>) -> Self {
        let correlation_errors = trials
            .iter()
            .flat_map(|t| t.correlation_errors.iter().copied())
            .collect();
        let independence_errors = trials
            .iter()
            .flat_map(|t| t.independence_errors.iter().copied())
            .collect();
        ExperimentResult {
            trials,
            correlation_errors,
            independence_errors,
        }
    }

    /// Summary statistics of the correlation algorithm's pooled errors.
    pub fn correlation_summary(&self) -> ErrorSummary {
        ErrorSummary::from_errors(&self.correlation_errors)
    }

    /// Summary statistics of the independence baseline's pooled errors.
    pub fn independence_summary(&self) -> ErrorSummary {
        ErrorSummary::from_errors(&self.independence_errors)
    }
}

/// Runs a single trial on an already-built scenario.
///
/// Convenience wrapper over [`run_trial_cached`] with a private,
/// single-use [`ContextCache`]; multi-trial callers should share a cache
/// so the equation structure and dense factorization are built once.
pub fn run_trial(
    scenario: &CongestionScenario,
    config: &ExperimentConfig,
    seed: u64,
) -> Result<TrialResult, EvalError> {
    run_trial_cached(scenario, config, seed, &ContextCache::new())
}

/// Runs a single trial, fetching both algorithms' inference contexts
/// (equation structure + independence selection + dense QR factorization
/// or blocked sparse matrix) from `contexts`.
///
/// Scenarios drawn for different trials of one experiment share the same
/// visible instance (unless links are hidden), so a shared cache reduces
/// every trial after the first to RHS assembly plus a back-substitution /
/// CGLS run. Results are bit-identical to the one-shot algorithms for any
/// cache-sharing pattern.
pub fn run_trial_cached(
    scenario: &CongestionScenario,
    config: &ExperimentConfig,
    seed: u64,
    contexts: &ContextCache,
) -> Result<TrialResult, EvalError> {
    let simulator = Simulator::new(&scenario.instance, &scenario.model, config.simulation)
        .map_err(EvalError::Simulation)?;
    let observations = sharded_observations(&simulator, config.snapshots, seed, config.shards);
    run_trial_observations(scenario, config, &observations, contexts)
}

/// The inference half of a trial: runs both algorithms over
/// already-measured observations and scores them against the scenario's
/// ground truth.
///
/// This is the entry point for callers that produce their observations
/// elsewhere — notably the robustness harness, whose perturbed simulator
/// feeds the exact same estimator → equations → inference pipeline.
pub fn run_trial_observations(
    scenario: &CongestionScenario,
    config: &ExperimentConfig,
    observations: &PathObservations,
    contexts: &ContextCache,
) -> Result<TrialResult, EvalError> {
    let links = potentially_congested_links(&scenario.instance, observations);

    let mut correlation_config = config.algorithm;
    correlation_config.equations.respect_correlation = true;
    let correlation = contexts
        .context(&scenario.instance, &correlation_config)
        .and_then(|context| context.infer(observations))
        .map_err(EvalError::Inference)?;
    let mut independence_config = config.algorithm;
    independence_config.equations.respect_correlation = false;
    let independence = contexts
        .context(&scenario.instance, &independence_config)
        .and_then(|context| context.infer(observations))
        .map_err(EvalError::Inference)?;

    Ok(TrialResult {
        correlation_errors: absolute_errors(&correlation, &scenario.true_marginals, &links),
        independence_errors: absolute_errors(&independence, &scenario.true_marginals, &links),
        correlation_diagnostics: correlation.diagnostics,
        independence_diagnostics: independence.diagnostics,
        potentially_congested: links.len(),
    })
}

/// Runs a full experiment: `config.trials` trials, each with a fresh
/// scenario drawn on the base instance, pooling the per-link errors.
pub fn run_experiment(
    base: &TopologyInstance,
    scenario_config: &ScenarioConfig,
    config: &ExperimentConfig,
) -> Result<ExperimentResult, EvalError> {
    if config.trials == 0 {
        return Err(EvalError::InvalidScenario(
            "an experiment needs at least one trial".to_string(),
        ));
    }
    let builder = ScenarioBuilder::new(*scenario_config)?;

    let parallel_trials = config.parallel && config.trials > 1;
    // `trial_threads` caps the number of workers (0 = one per trial).
    let workers = if !parallel_trials {
        1
    } else if config.trial_threads == 0 {
        config.trials
    } else {
        config.trial_threads.clamp(1, config.trials)
    };
    // Resolve an auto shard count (0) here, where the number of
    // concurrent trial workers is known: the shard budget is the
    // machine's parallelism *divided across workers*, so the default
    // never oversubscribes with workers × cores threads (a single
    // parallel trial gets the whole machine). With `parallel` off the
    // auto default stays 1 — `--sequential` means single-threaded unless
    // `--shards` asks otherwise. (Shard counts never affect results,
    // only scheduling.)
    let mut trial_config = *config;
    if trial_config.shards == 0 {
        trial_config.shards = if config.parallel {
            let available = std::thread::available_parallelism()
                .map(|n| n.get())
                .unwrap_or(1);
            (available / workers).max(1)
        } else {
            1
        };
    }
    let trial_config = &trial_config;

    // One inference-context cache for the whole experiment: trials share
    // the equation structure, independence selection and dense QR
    // factorization (or blocked sparse matrix) whenever their visible
    // instances coincide, which they do unless links are hidden. The
    // cache is only an optimisation — per-trial results are bit-identical
    // with or without hits, so parallel workers stay equal to the
    // sequential order.
    let contexts = ContextCache::new();
    let contexts = &contexts;

    let run_one = move |trial_index: usize| -> Result<TrialResult, EvalError> {
        let scenario_seed = config.base_seed.wrapping_add(trial_index as u64);
        let mut scenario_rng = StdRng::seed_from_u64(scenario_seed);
        let scenario = builder.build(base, &mut scenario_rng)?;
        run_trial_cached(
            &scenario,
            trial_config,
            config.base_seed.wrapping_add(1000 + trial_index as u64),
            contexts,
        )
    };

    let trials: Vec<TrialResult> = if parallel_trials {
        // Lock-free result collection: every worker owns a disjoint
        // contiguous chunk of `&mut` slots (handed out by `chunks_mut`),
        // so no mutex is needed and no writer can contend with another.
        let chunk = config.trials.div_ceil(workers);
        let mut slots: Vec<Option<Result<TrialResult, EvalError>>> = Vec::new();
        slots.resize_with(config.trials, || None);
        std::thread::scope(|scope| {
            for (worker, worker_slots) in slots.chunks_mut(chunk).enumerate() {
                let run_one = &run_one;
                scope.spawn(move || {
                    for (offset, slot) in worker_slots.iter_mut().enumerate() {
                        let trial_index = worker * chunk + offset;
                        // A panicking trial must surface as an `EvalError`
                        // to the caller, not tear down the whole experiment
                        // (scoped threads re-raise unjoined panics on scope
                        // exit).
                        *slot = Some(
                            std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
                                run_one(trial_index)
                            }))
                            .unwrap_or_else(|_| {
                                Err(EvalError::Io("a trial thread panicked".to_string()))
                            }),
                        );
                    }
                });
            }
        });
        slots
            .into_iter()
            .map(|r| r.expect("every trial slot was filled"))
            .collect::<Result<Vec<_>, _>>()?
    } else {
        (0..config.trials)
            .map(run_one)
            .collect::<Result<Vec<_>, _>>()?
    };

    Ok(ExperimentResult::from_trials(trials))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scenario::CorrelationLevel;
    use netcorr_topology::generators::planetlab;

    fn base() -> TopologyInstance {
        planetlab::generate(
            &planetlab::PlanetLabConfig::small(),
            &mut StdRng::seed_from_u64(100),
        )
        .unwrap()
    }

    #[test]
    fn single_trial_produces_errors_for_potentially_congested_links() {
        let base = base();
        let scenario_config = ScenarioConfig {
            correlation_level: CorrelationLevel::LooselyCorrelated,
            ..ScenarioConfig::default()
        };
        let scenario = ScenarioBuilder::new(scenario_config)
            .unwrap()
            .build(&base, &mut StdRng::seed_from_u64(1))
            .unwrap();
        let config = ExperimentConfig::smoke();
        let trial = run_trial(&scenario, &config, 5).unwrap();
        assert!(trial.potentially_congested > 0);
        assert_eq!(trial.correlation_errors.len(), trial.potentially_congested);
        assert_eq!(trial.independence_errors.len(), trial.potentially_congested);
        assert!(trial
            .correlation_errors
            .iter()
            .chain(trial.independence_errors.iter())
            .all(|e| (0.0..=1.0).contains(e)));
    }

    #[test]
    fn experiment_pools_trials_and_is_deterministic() {
        let base = base();
        let scenario_config = ScenarioConfig {
            correlation_level: CorrelationLevel::LooselyCorrelated,
            ..ScenarioConfig::default()
        };
        let config = ExperimentConfig {
            trials: 2,
            snapshots: 200,
            parallel: false,
            ..ExperimentConfig::smoke()
        };
        let a = run_experiment(&base, &scenario_config, &config).unwrap();
        let b = run_experiment(&base, &scenario_config, &config).unwrap();
        assert_eq!(a.trials.len(), 2);
        assert_eq!(a.correlation_errors, b.correlation_errors);
        assert_eq!(a.independence_errors, b.independence_errors);
        let total: usize = a.trials.iter().map(|t| t.potentially_congested).sum();
        assert_eq!(a.correlation_errors.len(), total);
        // Summaries are consistent with the pooled errors.
        assert_eq!(a.correlation_summary().count, total);
    }

    #[test]
    fn parallel_and_sequential_execution_agree() {
        let base = base();
        let scenario_config = ScenarioConfig {
            correlation_level: CorrelationLevel::LooselyCorrelated,
            ..ScenarioConfig::default()
        };
        let mut config = ExperimentConfig {
            trials: 2,
            snapshots: 150,
            ..ExperimentConfig::smoke()
        };
        config.parallel = false;
        let sequential = run_experiment(&base, &scenario_config, &config).unwrap();
        config.parallel = true;
        let parallel = run_experiment(&base, &scenario_config, &config).unwrap();
        assert_eq!(sequential.correlation_errors, parallel.correlation_errors);
        assert_eq!(sequential.independence_errors, parallel.independence_errors);
    }

    #[test]
    fn sharded_observations_are_bit_identical_for_any_shard_count() {
        // The acceptance pin: shard counts 1, 2 and 7 produce the same
        // PathObservations under the same seed, including a snapshot
        // count that is not a multiple of the word size.
        let base = base();
        let scenario = ScenarioBuilder::new(ScenarioConfig::default())
            .unwrap()
            .build(&base, &mut StdRng::seed_from_u64(3))
            .unwrap();
        let simulator = Simulator::new(
            &scenario.instance,
            &scenario.model,
            SimulationConfig::default(),
        )
        .unwrap();
        for snapshots in [400usize, 333] {
            let reference = sharded_observations(&simulator, snapshots, 77, 1);
            assert_eq!(reference.num_snapshots(), snapshots);
            // `0` is auto-detect (resolved through `effective_shards`,
            // not silently clamped to 1): still bit-identical.
            for shards in [0usize, 2, 7] {
                let sharded = sharded_observations(&simulator, snapshots, 77, shards);
                assert_eq!(sharded, reference, "{shards} shards, {snapshots} snapshots");
            }
        }
    }

    #[test]
    fn shared_context_cache_matches_fresh_per_trial_caches() {
        use netcorr_core::ContextCache;

        let base = base();
        let scenario_config = ScenarioConfig {
            correlation_level: CorrelationLevel::LooselyCorrelated,
            ..ScenarioConfig::default()
        };
        let builder = ScenarioBuilder::new(scenario_config).unwrap();
        let config = ExperimentConfig::smoke();
        let cache = ContextCache::new();
        for trial in 0..3u64 {
            let scenario = builder
                .build(&base, &mut StdRng::seed_from_u64(trial))
                .unwrap();
            let fresh = run_trial(&scenario, &config, 1000 + trial).unwrap();
            let cached = run_trial_cached(&scenario, &config, 1000 + trial, &cache).unwrap();
            assert_eq!(fresh.correlation_errors, cached.correlation_errors);
            assert_eq!(fresh.independence_errors, cached.independence_errors);
            assert_eq!(
                fresh.correlation_diagnostics.residual,
                cached.correlation_diagnostics.residual
            );
        }
        // All trials share the same visible instance, so the cache holds
        // exactly one context per algorithm.
        assert_eq!(cache.len(), 2);
    }

    #[test]
    fn trial_results_do_not_depend_on_shard_or_thread_count() {
        let base = base();
        let scenario_config = ScenarioConfig {
            correlation_level: CorrelationLevel::LooselyCorrelated,
            ..ScenarioConfig::default()
        };
        let mut config = ExperimentConfig {
            trials: 3,
            snapshots: 200,
            parallel: true,
            ..ExperimentConfig::smoke()
        };
        config.shards = 1;
        config.trial_threads = 0;
        let a = run_experiment(&base, &scenario_config, &config).unwrap();
        config.shards = 7;
        config.trial_threads = 2;
        let b = run_experiment(&base, &scenario_config, &config).unwrap();
        config.shards = 0; // auto
        config.trial_threads = 1;
        let c = run_experiment(&base, &scenario_config, &config).unwrap();
        assert_eq!(a.correlation_errors, b.correlation_errors);
        assert_eq!(a.independence_errors, b.independence_errors);
        assert_eq!(a.correlation_errors, c.correlation_errors);
    }

    #[test]
    fn effective_shards_resolves_auto_and_caps() {
        // Explicit counts pass through, capped at one shard per word.
        assert_eq!(effective_shards(3, 400), 3);
        assert_eq!(effective_shards(100, 130), 3); // ceil(130/64) = 3
        assert_eq!(effective_shards(5, 1), 1);
        // Auto never yields zero.
        assert!(effective_shards(0, 4096) >= 1);
    }

    #[test]
    fn zero_trials_are_rejected() {
        let base = base();
        let config = ExperimentConfig {
            trials: 0,
            ..ExperimentConfig::smoke()
        };
        assert!(run_experiment(&base, &ScenarioConfig::default(), &config).is_err());
    }

    #[test]
    fn correlation_algorithm_beats_the_baseline_on_a_correlated_scenario() {
        // The headline qualitative result of the paper, at smoke scale: on
        // a scenario with highly correlated congestion, the correlation
        // algorithm's mean absolute error is smaller than the independence
        // baseline's.
        let base = base();
        let scenario_config = ScenarioConfig {
            congested_fraction: 0.15,
            correlation_level: CorrelationLevel::HighlyCorrelated,
            ..ScenarioConfig::default()
        };
        let config = ExperimentConfig {
            trials: 2,
            snapshots: 600,
            parallel: true,
            ..ExperimentConfig::smoke()
        };
        let result = run_experiment(&base, &scenario_config, &config).unwrap();
        let corr = result.correlation_summary();
        let indep = result.independence_summary();
        assert!(
            corr.mean <= indep.mean,
            "correlation mean {} vs independence mean {}",
            corr.mean,
            indep.mean
        );
    }
}
