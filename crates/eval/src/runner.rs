//! The experiment runner: simulate → infer (both algorithms) → score.
//!
//! Every *trial* instantiates a fresh congestion scenario on the base
//! topology, simulates a number of measurement snapshots, runs the
//! correlation algorithm and the independence baseline on the same
//! observations, and records the absolute error of each over the
//! potentially congested links. An *experiment* pools several trials
//! (optionally in parallel) so the reported CDFs / means are not dominated
//! by one random draw — the same methodology as the paper's "extensive
//! simulations".

use rand::rngs::StdRng;
use rand::SeedableRng;
use serde::{Deserialize, Serialize};

use netcorr_core::{AlgorithmConfig, CorrelationAlgorithm, Diagnostics, IndependenceAlgorithm};
use netcorr_sim::{SimulationConfig, Simulator};
use netcorr_topology::TopologyInstance;

use crate::error::EvalError;
use crate::metrics::{absolute_errors, potentially_congested_links, ErrorSummary};
use crate::scenario::{CongestionScenario, ScenarioBuilder, ScenarioConfig};

/// Configuration of an experiment.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ExperimentConfig {
    /// Number of measurement snapshots per trial.
    pub snapshots: usize,
    /// Number of independent trials (fresh scenario + fresh measurements).
    pub trials: usize,
    /// Base random seed; trial `i` uses `base_seed + i`.
    pub base_seed: u64,
    /// Simulator configuration (thresholds, probes per path, transmission
    /// model).
    pub simulation: SimulationConfig,
    /// Inference configuration shared by both algorithms.
    pub algorithm: AlgorithmConfig,
    /// Run trials on separate threads.
    pub parallel: bool,
}

impl Default for ExperimentConfig {
    fn default() -> Self {
        ExperimentConfig {
            snapshots: 800,
            trials: 3,
            base_seed: 42,
            simulation: SimulationConfig::default(),
            algorithm: AlgorithmConfig::default(),
            parallel: true,
        }
    }
}

impl ExperimentConfig {
    /// A quick configuration for unit tests and smoke runs.
    pub fn smoke() -> Self {
        ExperimentConfig {
            snapshots: 400,
            trials: 2,
            base_seed: 7,
            simulation: SimulationConfig::default(),
            algorithm: AlgorithmConfig::default(),
            parallel: false,
        }
    }
}

/// The outcome of one trial.
#[derive(Debug, Clone)]
pub struct TrialResult {
    /// Per-link absolute errors of the correlation algorithm over the
    /// potentially congested links.
    pub correlation_errors: Vec<f64>,
    /// Per-link absolute errors of the independence baseline over the same
    /// links.
    pub independence_errors: Vec<f64>,
    /// Diagnostics of the correlation algorithm's solve.
    pub correlation_diagnostics: Diagnostics,
    /// Diagnostics of the independence baseline's solve.
    pub independence_diagnostics: Diagnostics,
    /// Number of potentially congested links in this trial.
    pub potentially_congested: usize,
}

/// The pooled outcome of an experiment.
#[derive(Debug, Clone)]
pub struct ExperimentResult {
    /// Individual trials.
    pub trials: Vec<TrialResult>,
    /// All correlation-algorithm errors pooled across trials.
    pub correlation_errors: Vec<f64>,
    /// All independence-baseline errors pooled across trials.
    pub independence_errors: Vec<f64>,
}

impl ExperimentResult {
    fn from_trials(trials: Vec<TrialResult>) -> Self {
        let correlation_errors = trials
            .iter()
            .flat_map(|t| t.correlation_errors.iter().copied())
            .collect();
        let independence_errors = trials
            .iter()
            .flat_map(|t| t.independence_errors.iter().copied())
            .collect();
        ExperimentResult {
            trials,
            correlation_errors,
            independence_errors,
        }
    }

    /// Summary statistics of the correlation algorithm's pooled errors.
    pub fn correlation_summary(&self) -> ErrorSummary {
        ErrorSummary::from_errors(&self.correlation_errors)
    }

    /// Summary statistics of the independence baseline's pooled errors.
    pub fn independence_summary(&self) -> ErrorSummary {
        ErrorSummary::from_errors(&self.independence_errors)
    }
}

/// Runs a single trial on an already-built scenario.
pub fn run_trial(
    scenario: &CongestionScenario,
    config: &ExperimentConfig,
    seed: u64,
) -> Result<TrialResult, EvalError> {
    let simulator = Simulator::new(&scenario.instance, &scenario.model, config.simulation)
        .map_err(EvalError::Simulation)?;
    let mut rng = StdRng::seed_from_u64(seed);
    let observations = simulator.run(config.snapshots, &mut rng);

    let links = potentially_congested_links(&scenario.instance, &observations);

    let correlation = CorrelationAlgorithm::with_config(&scenario.instance, config.algorithm)
        .infer(&observations)
        .map_err(EvalError::Inference)?;
    let independence = IndependenceAlgorithm::with_config(&scenario.instance, config.algorithm)
        .infer(&observations)
        .map_err(EvalError::Inference)?;

    Ok(TrialResult {
        correlation_errors: absolute_errors(&correlation, &scenario.true_marginals, &links),
        independence_errors: absolute_errors(&independence, &scenario.true_marginals, &links),
        correlation_diagnostics: correlation.diagnostics,
        independence_diagnostics: independence.diagnostics,
        potentially_congested: links.len(),
    })
}

/// Runs a full experiment: `config.trials` trials, each with a fresh
/// scenario drawn on the base instance, pooling the per-link errors.
pub fn run_experiment(
    base: &TopologyInstance,
    scenario_config: &ScenarioConfig,
    config: &ExperimentConfig,
) -> Result<ExperimentResult, EvalError> {
    if config.trials == 0 {
        return Err(EvalError::InvalidScenario(
            "an experiment needs at least one trial".to_string(),
        ));
    }
    let builder = ScenarioBuilder::new(*scenario_config)?;

    let run_one = |trial_index: usize| -> Result<TrialResult, EvalError> {
        let scenario_seed = config.base_seed.wrapping_add(trial_index as u64);
        let mut scenario_rng = StdRng::seed_from_u64(scenario_seed);
        let scenario = builder.build(base, &mut scenario_rng)?;
        run_trial(
            &scenario,
            config,
            config.base_seed.wrapping_add(1000 + trial_index as u64),
        )
    };

    let trials: Vec<TrialResult> = if config.parallel && config.trials > 1 {
        // Lock-free result collection: every thread owns exactly one
        // disjoint `&mut` slot (handed out by `iter_mut`), so no mutex is
        // needed and no writer can contend with another.
        let mut slots: Vec<Option<Result<TrialResult, EvalError>>> = Vec::new();
        slots.resize_with(config.trials, || None);
        std::thread::scope(|scope| {
            for (trial_index, slot) in slots.iter_mut().enumerate() {
                let run_one = &run_one;
                scope.spawn(move || {
                    // A panicking trial must surface as an `EvalError` to the
                    // caller, not tear down the whole experiment (scoped
                    // threads re-raise unjoined panics on scope exit).
                    *slot = Some(
                        std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
                            run_one(trial_index)
                        }))
                        .unwrap_or_else(|_| {
                            Err(EvalError::Io("a trial thread panicked".to_string()))
                        }),
                    );
                });
            }
        });
        slots
            .into_iter()
            .map(|r| r.expect("every trial slot was filled"))
            .collect::<Result<Vec<_>, _>>()?
    } else {
        (0..config.trials)
            .map(run_one)
            .collect::<Result<Vec<_>, _>>()?
    };

    Ok(ExperimentResult::from_trials(trials))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scenario::CorrelationLevel;
    use netcorr_topology::generators::planetlab;

    fn base() -> TopologyInstance {
        planetlab::generate(
            &planetlab::PlanetLabConfig::small(),
            &mut StdRng::seed_from_u64(100),
        )
        .unwrap()
    }

    #[test]
    fn single_trial_produces_errors_for_potentially_congested_links() {
        let base = base();
        let scenario_config = ScenarioConfig {
            correlation_level: CorrelationLevel::LooselyCorrelated,
            ..ScenarioConfig::default()
        };
        let scenario = ScenarioBuilder::new(scenario_config)
            .unwrap()
            .build(&base, &mut StdRng::seed_from_u64(1))
            .unwrap();
        let config = ExperimentConfig::smoke();
        let trial = run_trial(&scenario, &config, 5).unwrap();
        assert!(trial.potentially_congested > 0);
        assert_eq!(trial.correlation_errors.len(), trial.potentially_congested);
        assert_eq!(trial.independence_errors.len(), trial.potentially_congested);
        assert!(trial
            .correlation_errors
            .iter()
            .chain(trial.independence_errors.iter())
            .all(|e| (0.0..=1.0).contains(e)));
    }

    #[test]
    fn experiment_pools_trials_and_is_deterministic() {
        let base = base();
        let scenario_config = ScenarioConfig {
            correlation_level: CorrelationLevel::LooselyCorrelated,
            ..ScenarioConfig::default()
        };
        let config = ExperimentConfig {
            trials: 2,
            snapshots: 200,
            parallel: false,
            ..ExperimentConfig::smoke()
        };
        let a = run_experiment(&base, &scenario_config, &config).unwrap();
        let b = run_experiment(&base, &scenario_config, &config).unwrap();
        assert_eq!(a.trials.len(), 2);
        assert_eq!(a.correlation_errors, b.correlation_errors);
        assert_eq!(a.independence_errors, b.independence_errors);
        let total: usize = a.trials.iter().map(|t| t.potentially_congested).sum();
        assert_eq!(a.correlation_errors.len(), total);
        // Summaries are consistent with the pooled errors.
        assert_eq!(a.correlation_summary().count, total);
    }

    #[test]
    fn parallel_and_sequential_execution_agree() {
        let base = base();
        let scenario_config = ScenarioConfig {
            correlation_level: CorrelationLevel::LooselyCorrelated,
            ..ScenarioConfig::default()
        };
        let mut config = ExperimentConfig {
            trials: 2,
            snapshots: 150,
            ..ExperimentConfig::smoke()
        };
        config.parallel = false;
        let sequential = run_experiment(&base, &scenario_config, &config).unwrap();
        config.parallel = true;
        let parallel = run_experiment(&base, &scenario_config, &config).unwrap();
        assert_eq!(sequential.correlation_errors, parallel.correlation_errors);
        assert_eq!(sequential.independence_errors, parallel.independence_errors);
    }

    #[test]
    fn zero_trials_are_rejected() {
        let base = base();
        let config = ExperimentConfig {
            trials: 0,
            ..ExperimentConfig::smoke()
        };
        assert!(run_experiment(&base, &ScenarioConfig::default(), &config).is_err());
    }

    #[test]
    fn correlation_algorithm_beats_the_baseline_on_a_correlated_scenario() {
        // The headline qualitative result of the paper, at smoke scale: on
        // a scenario with highly correlated congestion, the correlation
        // algorithm's mean absolute error is smaller than the independence
        // baseline's.
        let base = base();
        let scenario_config = ScenarioConfig {
            congested_fraction: 0.15,
            correlation_level: CorrelationLevel::HighlyCorrelated,
            ..ScenarioConfig::default()
        };
        let config = ExperimentConfig {
            trials: 2,
            snapshots: 600,
            parallel: true,
            ..ExperimentConfig::smoke()
        };
        let result = run_experiment(&base, &scenario_config, &config).unwrap();
        let corr = result.correlation_summary();
        let indep = result.independence_summary();
        assert!(
            corr.mean <= indep.mean,
            "correlation mean {} vs independence mean {}",
            corr.mean,
            indep.mean
        );
    }
}
