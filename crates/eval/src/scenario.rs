//! Congestion-scenario generation (Section 5, "Simulator" and the setups of
//! Figures 3, 4 and 5).
//!
//! A scenario fixes, at the beginning of an experiment:
//!
//! * which links are *congested* (have a non-zero congestion probability) —
//!   a configurable fraction of all links;
//! * how the congested links are correlated **inside** their correlation
//!   sets — *highly* (groups of more than two links that fail together) or
//!   *loosely* (at most two per set), the two regimes of Figure 3;
//! * which congested links are *unidentifiable* (Figure 4): the correlation
//!   partition handed to the algorithms is coarsened around selected
//!   intermediate nodes so that Assumption 4 no longer holds for them;
//! * which congested links are *mislabeled* (Figure 5): an unknown
//!   correlation pattern — the paper's worm / flooding scenario — makes
//!   links from different correlation sets fail together, but the
//!   algorithms are not told about it.
//!
//! The ground truth is realised as a [`SubstrateModel`]: every correlated
//! group (and the worm) is one hidden substrate element that fails
//! independently with a probability drawn from a configurable range, and a
//! link is congested iff one of its substrate elements has failed.

use rand::{Rng, RngExt};
use serde::{Deserialize, Serialize};

use netcorr_sim::{CongestionModel, SubstrateModel};
use netcorr_topology::correlation::CorrelationPartition;
use netcorr_topology::graph::LinkId;
use netcorr_topology::TopologyInstance;

use crate::error::EvalError;

/// How strongly the congested links are correlated inside their correlation
/// sets (Figure 3's two regimes).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum CorrelationLevel {
    /// More than two congested links per correlation set fail together.
    HighlyCorrelated,
    /// At most two congested links per correlation set.
    LooselyCorrelated,
}

/// Configuration of a congestion scenario.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ScenarioConfig {
    /// Fraction of all links that are congested (the x-axis of
    /// Figures 3(a)/(b); 0.10 elsewhere).
    pub congested_fraction: f64,
    /// Correlation regime of the congested links.
    pub correlation_level: CorrelationLevel,
    /// Fraction of the congested links that are made unidentifiable by
    /// coarsening the correlation partition (Figure 4).
    pub unidentifiable_fraction: f64,
    /// Fraction of the congested links that participate in an unknown
    /// correlation pattern (Figure 5).
    pub mislabeled_fraction: f64,
    /// Range from which each correlated group's (and the worm's)
    /// congestion probability is drawn uniformly.
    pub congestion_probability_range: (f64, f64),
}

impl Default for ScenarioConfig {
    fn default() -> Self {
        ScenarioConfig {
            congested_fraction: 0.10,
            correlation_level: CorrelationLevel::HighlyCorrelated,
            unidentifiable_fraction: 0.0,
            mislabeled_fraction: 0.0,
            congestion_probability_range: (0.05, 0.7),
        }
    }
}

impl ScenarioConfig {
    /// Validates the configuration.
    pub fn validate(&self) -> Result<(), EvalError> {
        for (name, value) in [
            ("congested_fraction", self.congested_fraction),
            ("unidentifiable_fraction", self.unidentifiable_fraction),
            ("mislabeled_fraction", self.mislabeled_fraction),
        ] {
            if !(0.0..=1.0).contains(&value) || !value.is_finite() {
                return Err(EvalError::InvalidScenario(format!(
                    "{name} must be in [0, 1], got {value}"
                )));
            }
        }
        let (lo, hi) = self.congestion_probability_range;
        if !(0.0..=1.0).contains(&lo) || !(0.0..=1.0).contains(&hi) || lo > hi {
            return Err(EvalError::InvalidScenario(format!(
                "congestion_probability_range ({lo}, {hi}) is not a valid sub-range of [0, 1]"
            )));
        }
        if self.congested_fraction <= 0.0 {
            return Err(EvalError::InvalidScenario(
                "congested_fraction must be positive".to_string(),
            ));
        }
        Ok(())
    }
}

/// A fully instantiated congestion scenario.
#[derive(Debug, Clone)]
pub struct CongestionScenario {
    /// The instance handed to the inference algorithms. Its correlation
    /// partition reflects what the operator *believes*: it has been
    /// coarsened around unidentifiable nodes, and it does **not** include
    /// the unknown (mislabeled) correlation pattern.
    pub instance: TopologyInstance,
    /// The ground-truth congestion process.
    pub model: CongestionModel,
    /// Ground-truth marginal congestion probability of every link.
    pub true_marginals: Vec<f64>,
    /// The links with a non-zero congestion probability.
    pub congested_links: Vec<LinkId>,
    /// Congested links rendered unidentifiable by the partition coarsening.
    pub unidentifiable_links: Vec<LinkId>,
    /// Congested links participating in the unknown correlation pattern.
    pub mislabeled_links: Vec<LinkId>,
}

/// Builds [`CongestionScenario`]s from a [`ScenarioConfig`].
#[derive(Debug, Clone)]
pub struct ScenarioBuilder {
    config: ScenarioConfig,
}

impl ScenarioBuilder {
    /// Creates a builder after validating the configuration.
    pub fn new(config: ScenarioConfig) -> Result<Self, EvalError> {
        config.validate()?;
        Ok(ScenarioBuilder { config })
    }

    /// The configuration in use.
    pub fn config(&self) -> &ScenarioConfig {
        &self.config
    }

    /// Instantiates a scenario on the given base instance.
    pub fn build(
        &self,
        base: &TopologyInstance,
        rng: &mut impl Rng,
    ) -> Result<CongestionScenario, EvalError> {
        let num_links = base.num_links();
        let congested_target =
            ((self.config.congested_fraction * num_links as f64).round() as usize).max(1);
        let mislabeled_target =
            (self.config.mislabeled_fraction * congested_target as f64).round() as usize;
        let unidentifiable_target =
            (self.config.unidentifiable_fraction * congested_target as f64).round() as usize;

        // --- 1. Mislabeled links: one link from each of `mislabeled_target`
        // distinct correlation sets, so that without the worm they would be
        // uncorrelated. ---
        let mut set_order: Vec<usize> = (0..base.correlation.num_sets()).collect();
        shuffle(&mut set_order, rng);
        let mut mislabeled: Vec<LinkId> = Vec::new();
        let mut used_sets: Vec<bool> = vec![false; base.correlation.num_sets()];
        for &set_idx in &set_order {
            if mislabeled.len() >= mislabeled_target {
                break;
            }
            let links = base
                .correlation
                .set_links(netcorr_topology::correlation::CorrelationSetId(set_idx));
            let pick = links[rng.random_range(0..links.len())];
            mislabeled.push(pick);
            used_sets[set_idx] = true;
        }
        if mislabeled.len() < mislabeled_target {
            return Err(EvalError::ScenarioInfeasible(format!(
                "only {} correlation sets available for {} mislabeled links",
                base.correlation.num_sets(),
                mislabeled_target
            )));
        }

        // --- 2. Correlated congested groups inside correlation sets. ---
        let remaining_target = congested_target.saturating_sub(mislabeled.len());
        let mut groups: Vec<Vec<LinkId>> = Vec::new();
        let mut selected = 0usize;
        let (min_group, max_group) = match self.config.correlation_level {
            CorrelationLevel::HighlyCorrelated => (3usize, 6usize),
            CorrelationLevel::LooselyCorrelated => (1usize, 2usize),
        };
        // First pass: sets large enough for the requested group size.
        for &set_idx in &set_order {
            if selected >= remaining_target {
                break;
            }
            if used_sets[set_idx] {
                continue;
            }
            let links = base
                .correlation
                .set_links(netcorr_topology::correlation::CorrelationSetId(set_idx));
            if links.len() < min_group {
                continue;
            }
            let size = min_group
                .max(rng.random_range(min_group..=max_group.min(links.len())))
                .min(remaining_target - selected)
                .min(links.len());
            if size == 0 {
                continue;
            }
            let group = sample_links(links, size, rng);
            selected += group.len();
            used_sets[set_idx] = true;
            groups.push(group);
        }
        // Second pass (fallback): if the topology does not have enough
        // large correlation sets, fill up with whatever sets remain so the
        // congested fraction is still met.
        if selected < remaining_target {
            for &set_idx in &set_order {
                if selected >= remaining_target {
                    break;
                }
                if used_sets[set_idx] {
                    continue;
                }
                let links = base
                    .correlation
                    .set_links(netcorr_topology::correlation::CorrelationSetId(set_idx));
                let size = links.len().min(max_group).min(remaining_target - selected);
                if size == 0 {
                    continue;
                }
                let group = sample_links(links, size, rng);
                selected += group.len();
                used_sets[set_idx] = true;
                groups.push(group);
            }
        }
        if groups.is_empty() && mislabeled.is_empty() {
            return Err(EvalError::ScenarioInfeasible(
                "no congested links could be selected".to_string(),
            ));
        }

        // --- 3. Ground-truth substrate model: one hidden element per group
        // plus one for the worm. ---
        let (lo, hi) = self.config.congestion_probability_range;
        let mut substrate_probs: Vec<f64> = Vec::new();
        let mut dependencies: Vec<Vec<usize>> = vec![Vec::new(); num_links];
        for group in &groups {
            let element = substrate_probs.len();
            substrate_probs.push(draw_probability(lo, hi, rng));
            for &link in group {
                dependencies[link.index()].push(element);
            }
        }
        if !mislabeled.is_empty() {
            let worm = substrate_probs.len();
            substrate_probs.push(draw_probability(lo, hi, rng));
            for &link in &mislabeled {
                dependencies[link.index()].push(worm);
            }
        }
        let model: CongestionModel = SubstrateModel::new(substrate_probs, dependencies)
            .map_err(EvalError::Simulation)?
            .into();
        let true_marginals = model.marginals();
        let mut congested_links: Vec<LinkId> = (0..num_links)
            .map(LinkId)
            .filter(|l| true_marginals[l.index()] > 0.0)
            .collect();
        congested_links.sort_unstable();

        // --- 4. Unidentifiable links: coarsen the partition around
        // intermediate nodes adjacent to congested links until the target
        // fraction of congested links sits next to an Assumption-4
        // violation. ---
        let mut partition_sets: Vec<usize> = (0..num_links)
            .map(|l| base.correlation.set_of(LinkId(l)).index())
            .collect();
        let mut unidentifiable: Vec<LinkId> = Vec::new();
        if unidentifiable_target > 0 {
            let mut node_order: Vec<usize> = (0..base.topology.num_nodes()).collect();
            shuffle(&mut node_order, rng);
            let congested_flag: Vec<bool> =
                (0..num_links).map(|l| true_marginals[l] > 0.0).collect();
            for &node_idx in &node_order {
                if unidentifiable.len() >= unidentifiable_target {
                    break;
                }
                let node = netcorr_topology::graph::NodeId(node_idx);
                if !base.topology.is_intermediate(node) {
                    continue;
                }
                let mut adjacent: Vec<LinkId> = base.topology.in_links(node).to_vec();
                adjacent.extend(base.topology.out_links(node).iter().copied());
                let new_congested: Vec<LinkId> = adjacent
                    .iter()
                    .copied()
                    .filter(|l| congested_flag[l.index()] && !unidentifiable.contains(l))
                    .collect();
                if new_congested.is_empty() {
                    continue;
                }
                // Merge the correlation sets of every adjacent link into
                // one: the node now has all its ingress links in one set
                // and all its egress links in the same set, so Assumption 4
                // fails around it (Section 3.3).
                let merged_root = adjacent
                    .iter()
                    .map(|l| partition_sets[l.index()])
                    .min()
                    .expect("node is intermediate, so it has adjacent links");
                let to_merge: Vec<usize> =
                    adjacent.iter().map(|l| partition_sets[l.index()]).collect();
                for value in &mut partition_sets {
                    if to_merge.contains(value) {
                        *value = merged_root;
                    }
                }
                unidentifiable.extend(new_congested);
            }
            if unidentifiable.is_empty() {
                return Err(EvalError::ScenarioInfeasible(
                    "no intermediate node adjacent to a congested link could be coarsened"
                        .to_string(),
                ));
            }
        }
        unidentifiable.sort_unstable();
        unidentifiable.dedup();

        // Rebuild the algorithm-visible partition from the (possibly
        // merged) set labels.
        let mut sets_by_label: std::collections::BTreeMap<usize, Vec<LinkId>> =
            std::collections::BTreeMap::new();
        for (link_idx, &label) in partition_sets.iter().enumerate() {
            sets_by_label
                .entry(label)
                .or_default()
                .push(LinkId(link_idx));
        }
        let visible_partition =
            CorrelationPartition::from_sets(num_links, sets_by_label.into_values().collect())
                .map_err(EvalError::Topology)?;
        let instance = base
            .with_correlation(visible_partition)
            .map_err(EvalError::Topology)?;

        let mut mislabeled_links = mislabeled;
        mislabeled_links.sort_unstable();
        Ok(CongestionScenario {
            instance,
            model,
            true_marginals,
            congested_links,
            unidentifiable_links: unidentifiable,
            mislabeled_links,
        })
    }
}

/// Draws a congestion probability uniformly from `[lo, hi]`.
fn draw_probability(lo: f64, hi: f64, rng: &mut impl Rng) -> f64 {
    if (hi - lo).abs() < f64::EPSILON {
        lo
    } else {
        lo + (hi - lo) * rng.random::<f64>()
    }
}

/// Fisher–Yates shuffle (kept local to avoid depending on `rand::seq`).
fn shuffle<T>(items: &mut [T], rng: &mut impl Rng) {
    for i in (1..items.len()).rev() {
        let j = rng.random_range(0..=i);
        items.swap(i, j);
    }
}

/// Samples `count` distinct links from a slice.
fn sample_links(links: &[LinkId], count: usize, rng: &mut impl Rng) -> Vec<LinkId> {
    let mut indices: Vec<usize> = (0..links.len()).collect();
    shuffle(&mut indices, rng);
    indices.into_iter().take(count).map(|i| links[i]).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use netcorr_topology::generators::{brite, planetlab};
    use netcorr_topology::identifiability::node_heuristic_violations;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn planetlab_base(seed: u64) -> TopologyInstance {
        planetlab::generate(
            &planetlab::PlanetLabConfig::small(),
            &mut StdRng::seed_from_u64(seed),
        )
        .unwrap()
    }

    fn brite_base(seed: u64) -> TopologyInstance {
        brite::generate(
            &brite::BriteConfig::small(),
            &mut StdRng::seed_from_u64(seed),
        )
        .unwrap()
        .instance
    }

    #[test]
    fn congested_fraction_is_approximately_met() {
        let base = planetlab_base(1);
        let config = ScenarioConfig {
            congested_fraction: 0.15,
            correlation_level: CorrelationLevel::LooselyCorrelated,
            ..ScenarioConfig::default()
        };
        let scenario = ScenarioBuilder::new(config)
            .unwrap()
            .build(&base, &mut StdRng::seed_from_u64(2))
            .unwrap();
        let target = (0.15 * base.num_links() as f64).round() as usize;
        let got = scenario.congested_links.len();
        assert!(
            got + 2 >= target && got <= target + 2,
            "target {target}, got {got}"
        );
        // Every congested link has a positive marginal; the rest are zero.
        for link in base.topology.link_ids() {
            let marginal = scenario.true_marginals[link.index()];
            if scenario.congested_links.contains(&link) {
                assert!(marginal > 0.0);
                assert!(marginal <= 0.7 + 1e-9);
            } else {
                assert_eq!(marginal, 0.0);
            }
        }
    }

    #[test]
    fn loosely_correlated_scenarios_cap_groups_at_two() {
        let base = planetlab_base(3);
        let config = ScenarioConfig {
            correlation_level: CorrelationLevel::LooselyCorrelated,
            ..ScenarioConfig::default()
        };
        let scenario = ScenarioBuilder::new(config)
            .unwrap()
            .build(&base, &mut StdRng::seed_from_u64(4))
            .unwrap();
        for (_, links) in scenario.instance.correlation.sets() {
            let congested_in_set = links
                .iter()
                .filter(|l| scenario.congested_links.contains(l))
                .count();
            assert!(
                congested_in_set <= 2,
                "{congested_in_set} congested links in one set"
            );
        }
    }

    #[test]
    fn highly_correlated_scenarios_have_larger_groups_on_brite() {
        let base = brite_base(5);
        let config = ScenarioConfig {
            congested_fraction: 0.2,
            correlation_level: CorrelationLevel::HighlyCorrelated,
            ..ScenarioConfig::default()
        };
        let scenario = ScenarioBuilder::new(config)
            .unwrap()
            .build(&base, &mut StdRng::seed_from_u64(6))
            .unwrap();
        let max_per_set = scenario
            .instance
            .correlation
            .sets()
            .map(|(_, links)| {
                links
                    .iter()
                    .filter(|l| scenario.congested_links.contains(l))
                    .count()
            })
            .max()
            .unwrap_or(0);
        assert!(
            max_per_set >= 3,
            "expected a correlation set with more than two congested links, max {max_per_set}"
        );
    }

    #[test]
    fn mislabeled_links_fail_together_but_span_sets() {
        let base = planetlab_base(7);
        let config = ScenarioConfig {
            mislabeled_fraction: 0.5,
            correlation_level: CorrelationLevel::LooselyCorrelated,
            ..ScenarioConfig::default()
        };
        let scenario = ScenarioBuilder::new(config)
            .unwrap()
            .build(&base, &mut StdRng::seed_from_u64(8))
            .unwrap();
        assert!(!scenario.mislabeled_links.is_empty());
        // They come from distinct correlation sets of the visible
        // partition.
        let sets: std::collections::BTreeSet<_> = scenario
            .mislabeled_links
            .iter()
            .map(|&l| scenario.instance.correlation.set_of(l))
            .collect();
        assert_eq!(sets.len(), scenario.mislabeled_links.len());
        // And they fail together in the ground truth: sample states and
        // check they are always jointly congested or jointly good... except
        // that each also belongs to no other group, so equality holds.
        let mut rng = StdRng::seed_from_u64(9);
        for _ in 0..200 {
            let state = scenario.model.sample_state(&mut rng);
            let values: std::collections::BTreeSet<bool> = scenario
                .mislabeled_links
                .iter()
                .map(|l| state[l.index()])
                .collect();
            assert_eq!(values.len(), 1, "mislabeled links must fail together");
        }
    }

    #[test]
    fn unidentifiable_scenarios_break_assumption_4_around_nodes() {
        let base = planetlab_base(11);
        let config = ScenarioConfig {
            unidentifiable_fraction: 0.5,
            correlation_level: CorrelationLevel::LooselyCorrelated,
            ..ScenarioConfig::default()
        };
        let scenario = ScenarioBuilder::new(config)
            .unwrap()
            .build(&base, &mut StdRng::seed_from_u64(12))
            .unwrap();
        assert!(!scenario.unidentifiable_links.is_empty());
        // The visible partition is coarser than the original one.
        assert!(scenario.instance.correlation.num_sets() < base.correlation.num_sets());
        // The structural heuristic of Section 3.3 confirms that some node
        // now violates Assumption 4.
        assert!(!node_heuristic_violations(&scenario.instance).is_empty());
        // Unidentifiable links are congested links.
        for link in &scenario.unidentifiable_links {
            assert!(scenario.congested_links.contains(link));
        }
    }

    #[test]
    fn fractions_are_validated() {
        let bad = ScenarioConfig {
            congested_fraction: 1.5,
            ..ScenarioConfig::default()
        };
        assert!(ScenarioBuilder::new(bad).is_err());
        let bad = ScenarioConfig {
            mislabeled_fraction: -0.1,
            ..ScenarioConfig::default()
        };
        assert!(ScenarioBuilder::new(bad).is_err());
        let bad = ScenarioConfig {
            congestion_probability_range: (0.8, 0.2),
            ..ScenarioConfig::default()
        };
        assert!(ScenarioBuilder::new(bad).is_err());
        let bad = ScenarioConfig {
            congested_fraction: 0.0,
            ..ScenarioConfig::default()
        };
        assert!(ScenarioBuilder::new(bad).is_err());
    }

    #[test]
    fn scenario_generation_is_deterministic_per_seed() {
        let base = planetlab_base(13);
        let config = ScenarioConfig::default();
        let a = ScenarioBuilder::new(config)
            .unwrap()
            .build(&base, &mut StdRng::seed_from_u64(14))
            .unwrap();
        let b = ScenarioBuilder::new(config)
            .unwrap()
            .build(&base, &mut StdRng::seed_from_u64(14))
            .unwrap();
        assert_eq!(a.congested_links, b.congested_links);
        assert_eq!(a.true_marginals, b.true_marginals);
        assert_eq!(a.mislabeled_links, b.mislabeled_links);
    }

    #[test]
    fn probability_range_is_respected() {
        let base = planetlab_base(15);
        let config = ScenarioConfig {
            congestion_probability_range: (0.3, 0.3),
            correlation_level: CorrelationLevel::LooselyCorrelated,
            ..ScenarioConfig::default()
        };
        let scenario = ScenarioBuilder::new(config)
            .unwrap()
            .build(&base, &mut StdRng::seed_from_u64(16))
            .unwrap();
        for &link in &scenario.congested_links {
            assert!((scenario.true_marginals[link.index()] - 0.3).abs() < 1e-9);
        }
    }
}
