//! Persistence of recorded observations and simulation traces.
//!
//! Experiments at production scale are expensive to simulate (or, in a
//! real deployment, to measure); persisting the [`PathObservations`] of a
//! trial lets inference be re-run — with different algorithm
//! configurations, or after a code change — without re-measuring. Two
//! on-disk representations are supported:
//!
//! * the textual, line-oriented hex format pinned by
//!   [`netcorr_measure::observation::WIRE_FORMAT`] (`v2`) — the
//!   debuggable variant;
//! * the binary lane-word dump pinned by
//!   [`netcorr_measure::observation::BINARY_MAGIC`] (`v3`) — the raw
//!   little-endian lane words behind a fixed header, loadable into the
//!   packed lane view without per-bit parsing (PlanetLab-scale replay
//!   without parse cost).
//!
//! [`read_observations`] sniffs the leading bytes, so either format loads
//! transparently. [`map_observations`] opens a `v3` file through the
//! zero-copy tier instead — the lane words are memory-mapped and served
//! in place (see [`netcorr_measure::MappedObservations`]), so a
//! multi-gigabyte history becomes query-ready without the word copy and
//! row rebuild a [`read_observations`] load pays. [`write_trace`] /
//! [`read_trace`] additionally persist a full [`SimulationTrace`] — the
//! observations *plus* the ground-truth per-snapshot link states (packed
//! [`BitMatrix`]) — so separability studies can re-run inference against
//! the truth that generated it.

use std::fs;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};

use netcorr_measure::observation::{parse_binary_header, BINARY_HEADER_LEN, BINARY_MAGIC};
use netcorr_measure::{BitMatrix, MappedObservations, PathObservations};
use netcorr_sim::SimulationTrace;

use crate::error::EvalError;

/// Magic bytes opening a persisted [`SimulationTrace`] (`netcorr-trace
/// v1`): the observation binary block, then the packed link-state matrix.
pub const TRACE_MAGIC: &[u8; 8] = b"NCTRCv1\n";

/// Builds the [`EvalError::Persist`] for a failure at `path`.
fn persist_err(path: &Path, cause: impl std::fmt::Display) -> EvalError {
    EvalError::Persist {
        path: path.display().to_string(),
        cause: cause.to_string(),
    }
}

/// Per-process staging counter, so concurrent writers to the same target
/// never share a temp file.
static STAGE_COUNTER: AtomicU64 = AtomicU64::new(0);

/// Writes `bytes` to a unique temporary file **in the same directory** as
/// `path` (so the commit rename below cannot cross a filesystem boundary)
/// and returns the staged path. Until [`commit`] renames it over the
/// target, the target is untouched — a writer that crashes mid-write
/// leaves only an orphaned `.tmp` file, never a torn target.
fn stage(path: &Path, bytes: &[u8]) -> Result<PathBuf, EvalError> {
    let file_name = path
        .file_name()
        .ok_or_else(|| persist_err(path, "path has no file name"))?;
    let tag = STAGE_COUNTER.fetch_add(1, Ordering::Relaxed);
    let tmp_name = format!(
        ".{}.tmp.{}.{}",
        file_name.to_string_lossy(),
        std::process::id(),
        tag
    );
    let tmp = path.with_file_name(tmp_name);
    fs::write(&tmp, bytes).map_err(|e| persist_err(&tmp, e))?;
    Ok(tmp)
}

/// Atomically publishes a staged file at the target path.
fn commit(tmp: &Path, path: &Path) -> Result<(), EvalError> {
    fs::rename(tmp, path).map_err(|e| {
        // Leave no orphan behind on a failed publish; the error reported
        // is the rename failure, not the (best-effort) cleanup.
        let _ = fs::remove_file(tmp);
        persist_err(path, e)
    })
}

/// Atomically replaces the file at `path` with `bytes`: the content is
/// staged to a temporary file in the same directory and renamed over the
/// target, so readers (and format sniffers) only ever see the old complete
/// file or the new complete file — never a torn intermediate, even if the
/// writer crashes mid-write or two writers race. Parent directories are
/// created as needed.
///
/// Public because the serve daemon persists its observation history
/// through this path: rename-replacement never truncates the published
/// file in place, so a mapping of the *previous* history file
/// ([`map_observations`]) stays valid while the new one is written.
pub fn atomic_write(path: &Path, bytes: &[u8]) -> Result<(), EvalError> {
    if let Some(parent) = path.parent() {
        if !parent.as_os_str().is_empty() {
            fs::create_dir_all(parent).map_err(|e| persist_err(path, e))?;
        }
    }
    let tmp = stage(path, bytes)?;
    commit(&tmp, path)
}

/// Writes observations to `path` in the textual (`v2`) wire format,
/// atomically (temp file + rename) and creating parent directories as
/// needed.
pub fn write_observations(path: &Path, observations: &PathObservations) -> Result<(), EvalError> {
    atomic_write(path, observations.to_wire().as_bytes())
}

/// Writes observations to `path` in the binary (`v3`) wire format,
/// atomically (temp file + rename) and creating parent directories as
/// needed.
pub fn write_observations_binary(
    path: &Path,
    observations: &PathObservations,
) -> Result<(), EvalError> {
    atomic_write(path, &observations.to_binary())
}

/// Reads observations previously written by [`write_observations`] or
/// [`write_observations_binary`], sniffing the format from the leading
/// bytes.
///
/// Every failure — the read itself, a corrupt binary block, an invalid
/// text body — is reported as [`EvalError::Persist`] carrying the file
/// path and the underlying cause.
pub fn read_observations(path: &Path) -> Result<PathObservations, EvalError> {
    let persist = |cause: String| EvalError::Persist {
        path: path.display().to_string(),
        cause,
    };
    let bytes = fs::read(path).map_err(|e| persist(e.to_string()))?;
    if bytes.starts_with(BINARY_MAGIC) {
        // Crash-safe history files are a v3 payload plus a generation
        // footer; a validated footer locates the payload, anything else
        // is treated as a bare v3 block.
        if let Some(footer) = validate_history_bytes(&bytes) {
            return PathObservations::from_binary(&bytes[..footer.payload_len])
                .map_err(|e| persist(format!("invalid binary v3 observations: {e}")));
        }
        return PathObservations::from_binary(&bytes)
            .map_err(|e| persist(format!("invalid binary v3 observations: {e}")));
    }
    match String::from_utf8(bytes) {
        Ok(text) => PathObservations::from_wire(&text)
            .map_err(|e| persist(format!("invalid v2 text observations: {e}"))),
        Err(e) => Err(persist(format!(
            "neither binary v3 nor valid UTF-8 text: {e}"
        ))),
    }
}

/// Opens a binary (`v3`) observation file through the zero-copy tier:
/// the file is memory-mapped (heap fallback off Linux/x86-64), the
/// header and per-lane zero-tail invariant are validated, and the lane
/// words are served in place — no copy, no row rebuild. Corrupt files
/// (truncated, dirty tails, bad magic) and text (`v2`) files surface as
/// [`EvalError::Persist`] carrying the file path, never a panic.
pub fn map_observations(path: &Path) -> Result<MappedObservations, EvalError> {
    MappedObservations::open(path).map_err(|e| persist_err(path, e))
}

/// Like [`map_observations`], but only the first `payload_len` bytes of
/// the file are treated as the v3 block — the prefix-aware open used for
/// crash-safe history files, whose trailing
/// [`HISTORY_FOOTER_LEN`]-byte generation footer must stay invisible to
/// the lane-word view.
pub fn map_observations_prefix(
    path: &Path,
    payload_len: usize,
) -> Result<MappedObservations, EvalError> {
    MappedObservations::open_prefix(path, payload_len).map_err(|e| persist_err(path, e))
}

/// Magic bytes opening the crash-safe history footer (`netcorr history
/// generation v1`). The footer trails the v3 payload:
///
/// ```text
/// <v3 observation block>            the payload (header + lane words)
/// NCHGEN1\n                         footer magic
/// generation   u64 LE               1-based ingest generation counter
/// payload_len  u64 LE               byte length of the v3 block above
/// checksum     u64 LE               history_checksum(payload, generation)
/// ```
///
/// The footer is self-locating from the end of the file, so a reader can
/// validate a history file without knowing its generation in advance,
/// and any strict prefix of the file (a torn write) fails validation:
/// either the trailing magic is gone, or `payload_len` no longer matches
/// the file length.
pub const HISTORY_FOOTER_MAGIC: &[u8; 8] = b"NCHGEN1\n";

/// Byte length of the history footer (magic + generation + payload
/// length + checksum).
pub const HISTORY_FOOTER_LEN: usize = 32;

/// Checksum sealing a history generation: a 64-bit FNV-1a variant folded
/// over whole little-endian words (fast enough to stay well under the
/// mapped-attach cost on large histories), keyed by the generation and
/// closed over the payload length so truncations and padding collide
/// with nothing.
pub fn history_checksum(payload: &[u8], generation: u64) -> u64 {
    const OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
    const PRIME: u64 = 0x0000_0100_0000_01b3;
    let mut h = OFFSET ^ generation.wrapping_mul(0x9e37_79b9_7f4a_7c15);
    let mut chunks = payload.chunks_exact(8);
    for chunk in &mut chunks {
        let word = u64::from_le_bytes(chunk.try_into().expect("8-byte chunk"));
        h = (h ^ word).wrapping_mul(PRIME);
        h ^= h >> 29;
    }
    let rem = chunks.remainder();
    if !rem.is_empty() {
        let mut buf = [0u8; 8];
        buf[..rem.len()].copy_from_slice(rem);
        h = (h ^ u64::from_le_bytes(buf)).wrapping_mul(PRIME);
        h ^= h >> 29;
    }
    h = (h ^ payload.len() as u64).wrapping_mul(PRIME);
    h ^ (h >> 31)
}

/// Seals a v3 observation payload into the on-disk history layout:
/// payload followed by the [`HISTORY_FOOTER_MAGIC`] footer for
/// `generation`.
pub fn encode_history(payload: &[u8], generation: u64) -> Vec<u8> {
    let mut out = Vec::with_capacity(payload.len() + HISTORY_FOOTER_LEN);
    out.extend_from_slice(payload);
    out.extend_from_slice(HISTORY_FOOTER_MAGIC);
    out.extend_from_slice(&generation.to_le_bytes());
    out.extend_from_slice(&(payload.len() as u64).to_le_bytes());
    out.extend_from_slice(&history_checksum(payload, generation).to_le_bytes());
    out
}

/// Where the previous fully-acked generation of `path` is rotated to
/// before each history write (`<path>.prev`).
pub fn history_prev_path(path: &Path) -> PathBuf {
    let mut name = path.as_os_str().to_os_string();
    name.push(".prev");
    PathBuf::from(name)
}

/// Where an unrecoverable torn history file is quarantined
/// (`<path>.torn`) so recovery can proceed without destroying the
/// forensic evidence.
pub fn history_torn_path(path: &Path) -> PathBuf {
    let mut name = path.as_os_str().to_os_string();
    name.push(".torn");
    PathBuf::from(name)
}

/// A validated history file: its generation and the byte length of the
/// v3 payload it carries.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct HistoryFooter {
    /// 1-based ingest generation (0 for legacy footer-less files).
    pub generation: u64,
    /// Byte length of the v3 observation payload.
    pub payload_len: usize,
    /// Whether the file carried an explicit footer (`false` for legacy
    /// footer-less v3 files, accepted as generation 0).
    pub footered: bool,
}

/// Validates an in-memory history image: either a footered file (magic
/// in place, `payload_len` consistent with the file length, checksum
/// matching, payload header parseable) or a legacy footer-less v3 block
/// (accepted as generation 0 so pre-footer histories keep loading).
/// Returns `None` for anything torn or corrupt.
pub fn validate_history_bytes(bytes: &[u8]) -> Option<HistoryFooter> {
    if bytes.len() >= BINARY_HEADER_LEN + HISTORY_FOOTER_LEN {
        let foot = &bytes[bytes.len() - HISTORY_FOOTER_LEN..];
        if &foot[..8] == HISTORY_FOOTER_MAGIC {
            let generation = u64::from_le_bytes(foot[8..16].try_into().expect("8 bytes"));
            let payload_len = usize::try_from(u64::from_le_bytes(
                foot[16..24].try_into().expect("8 bytes"),
            ))
            .ok()?;
            let checksum = u64::from_le_bytes(foot[24..32].try_into().expect("8 bytes"));
            if payload_len == bytes.len() - HISTORY_FOOTER_LEN
                && checksum == history_checksum(&bytes[..payload_len], generation)
                && parse_binary_header(&bytes[..payload_len]).is_ok()
            {
                return Some(HistoryFooter {
                    generation,
                    payload_len,
                    footered: true,
                });
            }
            return None;
        }
    }
    if parse_binary_header(bytes).is_ok() {
        return Some(HistoryFooter {
            generation: 0,
            payload_len: bytes.len(),
            footered: false,
        });
    }
    None
}

/// The outcome of [`recover_history`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct HistoryRecovery {
    /// Byte length of the valid v3 payload now at the primary path, or
    /// `None` when no usable history exists (start fresh).
    pub payload_len: Option<usize>,
    /// Generation of the recovered history (0 when fresh or legacy).
    pub generation: u64,
    /// Whether startup had to fall back — a torn or missing current
    /// file was replaced by the rotated previous generation (or
    /// discarded entirely when no previous generation existed).
    pub recovered: bool,
}

fn read_if_exists(path: &Path) -> Result<Option<Vec<u8>>, EvalError> {
    match fs::read(path) {
        Ok(bytes) => Ok(Some(bytes)),
        Err(e) if e.kind() == std::io::ErrorKind::NotFound => Ok(None),
        Err(e) => Err(persist_err(path, e)),
    }
}

/// Crash-safe history startup: validates the file at `path` and falls
/// back to the rotated `<path>.prev` generation when the current file is
/// torn or missing, so a daemon restarted after a crash mid-write
/// resumes from the last fully-acked generation instead of refusing to
/// start.
///
/// The single-crash model this recovers from is the write protocol used
/// by the serving layer: rotate current → `.prev`, then write the new
/// generation at `path`, then ack. Outcomes:
///
/// * current valid → use it (`recovered = false`);
/// * current torn or missing, `.prev` valid → promote `.prev` back to
///   `path` (atomically), quarantine the torn bytes at `<path>.torn`,
///   `recovered = true`;
/// * current torn, no `.prev` → the very first generation tore:
///   quarantine and start fresh (`payload_len = None`, `recovered =
///   true`);
/// * neither file exists → fresh history, `recovered = false`;
/// * both files torn → an error: that takes two independent corruptions
///   and is outside the crash model, so it is surfaced instead of
///   silently discarding data.
///
/// A footer-less current file next to a *footered* `.prev` is treated as
/// torn (a legacy file can never coexist with a footered rotation — only
/// a write torn exactly at the payload boundary produces that shape).
pub fn recover_history(path: &Path) -> Result<HistoryRecovery, EvalError> {
    let prev_path = history_prev_path(path);
    let current = read_if_exists(path)?;
    let previous = read_if_exists(&prev_path)?;
    let current_footer = current.as_deref().and_then(validate_history_bytes);
    let prev_footer = previous.as_deref().and_then(validate_history_bytes);

    if let Some(footer) = current_footer {
        let torn_at_payload_boundary = !footer.footered && prev_footer.is_some_and(|p| p.footered);
        if !torn_at_payload_boundary {
            return Ok(HistoryRecovery {
                payload_len: Some(footer.payload_len),
                generation: footer.generation,
                recovered: false,
            });
        }
    }

    let quarantine_current = || {
        if current.is_some() {
            let _ = fs::rename(path, history_torn_path(path));
        }
    };

    match (prev_footer, previous) {
        (Some(footer), Some(bytes)) => {
            quarantine_current();
            atomic_write(path, &bytes)?;
            Ok(HistoryRecovery {
                payload_len: Some(footer.payload_len),
                generation: footer.generation,
                recovered: true,
            })
        }
        (None, Some(_)) => Err(persist_err(
            path,
            format!(
                "history file and its rotated previous generation ({}) are both corrupt; \
                 refusing to guess which bytes to trust",
                prev_path.display()
            ),
        )),
        (_, None) => {
            let torn = current.is_some();
            quarantine_current();
            Ok(HistoryRecovery {
                payload_len: None,
                generation: 0,
                recovered: torn,
            })
        }
    }
}

/// Writes a full simulation trace — observations plus ground-truth link
/// states — to `path` (`netcorr-trace v1`):
///
/// ```text
/// NCTRCv1\n
/// obs_len   u64 LE      length of the embedded v3 observation block
/// <obs_len bytes>       PathObservations::to_binary
/// width     u64 LE      links per snapshot
/// rows      u64 LE      snapshots
/// <rows × ceil(width/64) u64 LE>   packed link-state rows
/// ```
pub fn write_trace(path: &Path, trace: &SimulationTrace) -> Result<(), EvalError> {
    if let Some(parent) = path.parent() {
        fs::create_dir_all(parent)?;
    }
    let obs = trace.observations.to_binary();
    let states = &trace.link_states;
    let mut out = Vec::with_capacity(8 + 8 + obs.len() + 16 + states.words().len() * 8);
    out.extend_from_slice(TRACE_MAGIC);
    out.extend_from_slice(&(obs.len() as u64).to_le_bytes());
    out.extend_from_slice(&obs);
    out.extend_from_slice(&(states.width() as u64).to_le_bytes());
    out.extend_from_slice(&(states.num_rows() as u64).to_le_bytes());
    for &word in states.words() {
        out.extend_from_slice(&word.to_le_bytes());
    }
    atomic_write(path, &out)
}

/// Reads a trace previously written by [`write_trace`].
///
/// Every failure — the read itself, a corrupt header or body, an invalid
/// embedded observation block — is reported as [`EvalError::Persist`]
/// carrying the file path and the underlying cause (matching
/// [`read_observations`]).
pub fn read_trace(path: &Path) -> Result<SimulationTrace, EvalError> {
    let bytes = fs::read(path).map_err(|e| persist_err(path, e))?;
    let corrupt = |reason: &str| persist_err(path, format!("corrupt trace file: {reason}"));
    if bytes.len() < 16 || &bytes[..8] != TRACE_MAGIC {
        return Err(corrupt("missing NCTRCv1 header"));
    }
    let read_u64 = |offset: usize| -> Result<u64, EvalError> {
        bytes
            .get(offset..offset + 8)
            .map(|b| u64::from_le_bytes(b.try_into().expect("8-byte slice")))
            .ok_or_else(|| corrupt("truncated header field"))
    };
    let obs_len = usize::try_from(read_u64(8)?).map_err(|_| corrupt("block size overflow"))?;
    let obs_end = 16usize
        .checked_add(obs_len)
        .ok_or_else(|| corrupt("block size overflow"))?;
    let obs_bytes = bytes
        .get(16..obs_end)
        .ok_or_else(|| corrupt("truncated observation block"))?;
    let observations = PathObservations::from_binary(obs_bytes)
        .map_err(|e| persist_err(path, format!("invalid embedded observation block: {e}")))?;

    let width = usize::try_from(read_u64(obs_end)?).map_err(|_| corrupt("width overflow"))?;
    let rows = usize::try_from(read_u64(obs_end + 8)?).map_err(|_| corrupt("rows overflow"))?;
    let words_per_row = netcorr_measure::bitset::words_for(width);
    let expected = rows
        .checked_mul(words_per_row)
        .and_then(|w| w.checked_mul(8))
        .ok_or_else(|| corrupt("link-state region overflow"))?;
    let word_bytes = bytes
        .get(obs_end + 16..)
        .ok_or_else(|| corrupt("truncated link-state header"))?;
    if word_bytes.len() != expected {
        return Err(corrupt(&format!(
            "expected {expected} link-state bytes, got {}",
            word_bytes.len()
        )));
    }
    let words: Vec<u64> = word_bytes
        .chunks_exact(8)
        .map(|c| u64::from_le_bytes(c.try_into().expect("8-byte chunk")))
        .collect();
    // Validate the zero-tail invariant here so a corrupt file surfaces as
    // an error instead of a panic inside `BitMatrix::from_words`.
    let mask = netcorr_measure::bitset::tail_mask(width);
    for chunk in words.chunks_exact(words_per_row) {
        if chunk[words_per_row - 1] & !mask != 0 {
            return Err(corrupt("link-state row has bits beyond the width"));
        }
    }
    let link_states = BitMatrix::from_words(width, rows, words);
    if link_states.num_rows() != observations.num_snapshots() {
        return Err(corrupt(&format!(
            "{} link-state rows for {} snapshots",
            link_states.num_rows(),
            observations.num_snapshots()
        )));
    }
    Ok(SimulationTrace {
        observations,
        link_states,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use netcorr_sim::{SimulationConfig, Simulator};
    use netcorr_topology::toy;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn observations_round_trip_through_disk() {
        let inst = toy::figure_1a();
        let model = netcorr_sim::CongestionModelBuilder::new(&inst.correlation)
            .joint_group(
                &[
                    netcorr_topology::graph::LinkId(0),
                    netcorr_topology::graph::LinkId(1),
                ],
                0.2,
            )
            .independent(netcorr_topology::graph::LinkId(2), 0.1)
            .independent(netcorr_topology::graph::LinkId(3), 0.1)
            .build()
            .unwrap();
        let sim = Simulator::new(&inst, &model, SimulationConfig::default()).unwrap();
        let obs = sim.run(500, &mut StdRng::seed_from_u64(3));

        let dir = std::env::temp_dir().join("netcorr_eval_persist_test");
        let file = dir.join("observations.ncobs");
        write_observations(&file, &obs).unwrap();
        let back = read_observations(&file).unwrap();
        assert_eq!(obs, back);
        std::fs::remove_dir_all(&dir).ok();
    }

    fn fig1a_simulator() -> (
        netcorr_topology::TopologyInstance,
        netcorr_sim::CongestionModel,
    ) {
        let inst = toy::figure_1a();
        let model = netcorr_sim::CongestionModelBuilder::new(&inst.correlation)
            .joint_group(
                &[
                    netcorr_topology::graph::LinkId(0),
                    netcorr_topology::graph::LinkId(1),
                ],
                0.2,
            )
            .independent(netcorr_topology::graph::LinkId(2), 0.1)
            .independent(netcorr_topology::graph::LinkId(3), 0.1)
            .build()
            .unwrap();
        (inst, model)
    }

    #[test]
    fn binary_observations_round_trip_and_sniff() {
        let (inst, model) = fig1a_simulator();
        let sim = Simulator::new(&inst, &model, SimulationConfig::default()).unwrap();
        let obs = sim.run(300, &mut StdRng::seed_from_u64(9));

        let dir = std::env::temp_dir().join("netcorr_eval_persist_binary_test");
        let text_file = dir.join("observations.ncobs");
        let binary_file = dir.join("observations.ncobs3");
        write_observations(&text_file, &obs).unwrap();
        write_observations_binary(&binary_file, &obs).unwrap();
        // `read_observations` sniffs either format.
        assert_eq!(read_observations(&text_file).unwrap(), obs);
        assert_eq!(read_observations(&binary_file).unwrap(), obs);
        // The binary file is smaller than the hex dump.
        let text_len = std::fs::metadata(&text_file).unwrap().len();
        let binary_len = std::fs::metadata(&binary_file).unwrap().len();
        assert!(
            binary_len < text_len,
            "binary {binary_len} vs text {text_len}"
        );
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn mapped_observations_match_the_copying_loader() {
        let (inst, model) = fig1a_simulator();
        let sim = Simulator::new(&inst, &model, SimulationConfig::default()).unwrap();
        let obs = sim.run(250, &mut StdRng::seed_from_u64(13));

        let dir = std::env::temp_dir().join("netcorr_eval_persist_map_test");
        let file = dir.join("observations.ncobs3");
        write_observations_binary(&file, &obs).unwrap();
        let mapped = map_observations(&file).unwrap();
        assert_eq!(mapped.num_paths(), obs.num_paths());
        assert_eq!(mapped.num_snapshots(), 250);
        assert_eq!(mapped.view().to_observations().unwrap(), obs);
        assert_eq!(read_observations(&file).unwrap(), obs);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn corrupt_mapped_files_error_with_the_file_path() {
        let (inst, model) = fig1a_simulator();
        let sim = Simulator::new(&inst, &model, SimulationConfig::default()).unwrap();
        let obs = sim.run(100, &mut StdRng::seed_from_u64(14));
        let dir = std::env::temp_dir().join("netcorr_eval_persist_map_corrupt_test");
        std::fs::create_dir_all(&dir).unwrap();
        let file = dir.join("history.ncobs3");
        let block = obs.to_binary();

        let expect_persist = |fragment: &str| match map_observations(&file) {
            Err(EvalError::Persist { path, cause }) => {
                assert!(path.contains("history.ncobs3"), "{path}");
                assert!(cause.contains(fragment), "{cause}");
            }
            other => panic!("expected a Persist error, got {other:?}"),
        };

        // Truncated lane region.
        std::fs::write(&file, &block[..block.len() - 8]).unwrap();
        expect_persist("expected");
        // Dirty tail: a bit set beyond the declared snapshot count.
        let mut dirty = block.clone();
        let last = dirty.len() - 1;
        dirty[last] |= 0x80;
        std::fs::write(&file, &dirty).unwrap();
        expect_persist("beyond slot");
        // The text format cannot be mapped (no magic).
        std::fs::write(&file, obs.to_wire()).unwrap();
        expect_persist("magic");
        // Both loaders agree the *same* corrupt file is corrupt.
        std::fs::write(&file, &block[..block.len() - 8]).unwrap();
        assert!(read_observations(&file).is_err());
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn traces_round_trip_through_disk() {
        let (inst, model) = fig1a_simulator();
        let sim = Simulator::new(&inst, &model, SimulationConfig::default()).unwrap();
        let trace = sim.run_detailed_range(0..200, 11);

        let dir = std::env::temp_dir().join("netcorr_eval_persist_trace_test");
        let file = dir.join("trial.nctrc");
        write_trace(&file, &trace).unwrap();
        let back = read_trace(&file).unwrap();
        assert_eq!(back.observations, trace.observations);
        assert_eq!(back.link_states, trace.link_states);
        std::fs::remove_dir_all(&dir).ok();
    }

    /// Asserts the error is a `Persist` carrying `bad.nctrc` as the path
    /// and `fragment` inside the cause.
    fn assert_trace_persist_error(result: Result<SimulationTrace, EvalError>, fragment: &str) {
        match result {
            Err(EvalError::Persist { path, cause }) => {
                assert!(path.contains("bad.nctrc"), "{path}");
                assert!(cause.contains(fragment), "{cause}");
            }
            Ok(_) => panic!("expected a Persist error, got a trace"),
            Err(other) => panic!("expected a Persist error, got {other:?}"),
        }
    }

    #[test]
    fn corrupt_traces_are_rejected_with_the_file_path() {
        let dir = std::env::temp_dir().join("netcorr_eval_persist_trace_corrupt_test");
        std::fs::create_dir_all(&dir).unwrap();
        let file = dir.join("bad.nctrc");
        std::fs::write(&file, b"junk").unwrap();
        assert_trace_persist_error(read_trace(&file), "missing NCTRCv1 header");
        // Valid magic but truncated body.
        std::fs::write(&file, b"NCTRCv1\n\x10\x00\x00\x00\x00\x00\x00\x00").unwrap();
        assert_trace_persist_error(read_trace(&file), "truncated observation block");
        // A full trace with one flipped link-state byte (tail violation).
        let (inst, model) = fig1a_simulator();
        let sim = Simulator::new(&inst, &model, SimulationConfig::default()).unwrap();
        let trace = sim.run_detailed_range(0..10, 3);
        write_trace(&file, &trace).unwrap();
        let good_bytes = std::fs::read(&file).unwrap();
        let mut bytes = good_bytes.clone();
        let last = bytes.len() - 1;
        bytes[last] = 0xff;
        std::fs::write(&file, &bytes).unwrap();
        assert_trace_persist_error(read_trace(&file), "bits beyond the width");
        // A corrupted *embedded* observation block also names the file.
        let mut bytes = good_bytes;
        bytes[20] ^= 0xff; // inside the NCOBSv3 header of the embedded block
        std::fs::write(&file, &bytes).unwrap();
        assert_trace_persist_error(read_trace(&file), "invalid embedded observation block");
        // A failed read (missing file) carries the path and the I/O cause.
        match read_trace(&dir.join("missing.nctrc")) {
            Err(EvalError::Persist { path, cause }) => {
                assert!(path.contains("missing.nctrc"), "{path}");
                assert!(!cause.is_empty());
            }
            other => panic!("expected a Persist error, got {other:?}"),
        }
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn partial_writes_never_become_visible_at_the_target_path() {
        let (inst, model) = fig1a_simulator();
        let sim = Simulator::new(&inst, &model, SimulationConfig::default()).unwrap();
        let obs = sim.run(200, &mut StdRng::seed_from_u64(5));

        let dir = std::env::temp_dir().join("netcorr_eval_persist_atomic_test");
        std::fs::remove_dir_all(&dir).ok();
        let file = dir.join("observations.ncobs3");
        write_observations_binary(&file, &obs).unwrap();

        // Simulate a writer that crashes mid-write: the staged temp file
        // exists (in the same directory, so the commit rename would be
        // atomic), but the commit never happens. The target file still
        // holds the previous complete content — format sniffing never sees
        // the torn bytes.
        let torn = &obs.to_binary()[..10];
        let staged = stage(&file, torn).unwrap();
        assert!(staged.exists());
        assert_eq!(staged.parent(), file.parent());
        assert_ne!(staged, file);
        assert_eq!(read_observations(&file).unwrap(), obs);

        // A second writer completing normally replaces the target wholly,
        // regardless of the orphaned staging file.
        let other = sim.run(100, &mut StdRng::seed_from_u64(6));
        write_observations_binary(&file, &other).unwrap();
        assert_eq!(read_observations(&file).unwrap(), other);

        // Committing the stale staged bytes is the crash-free path of the
        // same writer; only then does the target change.
        commit(&staged, &file).unwrap();
        assert!(!staged.exists());
        assert!(read_observations(&file).is_err(), "torn bytes now visible");

        // Atomic text writes go through the same staging machinery.
        let text_file = dir.join("observations.ncobs");
        write_observations(&text_file, &obs).unwrap();
        assert_eq!(read_observations(&text_file).unwrap(), obs);
        std::fs::remove_dir_all(&dir).ok();
    }

    /// Distinct observation block for history tests: `n` snapshots over
    /// 3 paths with a `tag`-dependent pattern.
    fn history_block(tag: usize, n: usize) -> PathObservations {
        let mut obs = PathObservations::new(3);
        let mut row = [false; 3];
        for s in 0..n {
            for (p, bit) in row.iter_mut().enumerate() {
                *bit = (s * 7 + p * 5 + tag * 3).is_multiple_of(4);
            }
            obs.record_snapshot(&row).unwrap();
        }
        obs
    }

    #[test]
    fn history_footer_round_trips_and_rejects_corruption() {
        let payload = history_block(1, 40).to_binary();
        let sealed = encode_history(&payload, 7);
        assert_eq!(sealed.len(), payload.len() + HISTORY_FOOTER_LEN);
        let footer = validate_history_bytes(&sealed).expect("sealed file validates");
        assert_eq!(footer.generation, 7);
        assert_eq!(footer.payload_len, payload.len());
        assert!(footer.footered);

        // A legacy footer-less v3 block is accepted as generation 0.
        let legacy = validate_history_bytes(&payload).expect("legacy file validates");
        assert_eq!(legacy.generation, 0);
        assert!(!legacy.footered);

        // Every strict prefix of the sealed file fails validation as a
        // footered file; the only prefix that validates at all is the
        // exact payload boundary (indistinguishable from a legacy file,
        // handled by recover_history's rotation rule).
        for cut in 0..sealed.len() {
            match validate_history_bytes(&sealed[..cut]) {
                None => {}
                Some(f) => {
                    assert!(!f.footered, "torn prefix at {cut} validated as footered");
                    assert_eq!(cut, payload.len(), "unexpected valid prefix at {cut}");
                }
            }
        }

        // A flipped payload byte breaks the checksum.
        let mut flipped = sealed.clone();
        flipped[BINARY_HEADER_LEN + 3] ^= 0x01;
        assert!(validate_history_bytes(&flipped).is_none());
        // A flipped generation breaks the checksum too.
        let mut regen = sealed.clone();
        regen[payload.len() + 8] ^= 0x01;
        assert!(validate_history_bytes(&regen).is_none());
        // Checksums are generation-keyed: same payload, different
        // generation, different checksum.
        assert_ne!(history_checksum(&payload, 1), history_checksum(&payload, 2));
    }

    #[test]
    fn history_recovery_promotes_the_previous_generation() {
        let dir = std::env::temp_dir().join("netcorr_eval_persist_recover_test");
        std::fs::remove_dir_all(&dir).ok();
        std::fs::create_dir_all(&dir).unwrap();
        let file = dir.join("history.ncobs3");
        let prev = history_prev_path(&file);

        // No files at all: fresh, not recovered.
        let fresh = recover_history(&file).unwrap();
        assert_eq!(fresh.payload_len, None);
        assert!(!fresh.recovered);

        // A valid current file is used as-is.
        let gen1 = encode_history(&history_block(1, 30).to_binary(), 1);
        std::fs::write(&file, &gen1).unwrap();
        let ok = recover_history(&file).unwrap();
        assert_eq!(ok.generation, 1);
        assert_eq!(ok.payload_len, Some(gen1.len() - HISTORY_FOOTER_LEN));
        assert!(!ok.recovered);

        // Torn current at EVERY byte offset + valid .prev: recovery
        // always lands on the previous generation, never a partial one.
        let gen2_payload = {
            let mut merged = history_block(1, 30);
            merged.concat(&history_block(2, 25)).unwrap();
            merged.to_binary()
        };
        let gen2 = encode_history(&gen2_payload, 2);
        for cut in 0..gen2.len() {
            std::fs::write(&prev, &gen1).unwrap();
            std::fs::write(&file, &gen2[..cut]).unwrap();
            let r = recover_history(&file)
                .unwrap_or_else(|e| panic!("recovery failed at cut {cut}: {e}"));
            assert_eq!(r.generation, 1, "cut {cut}");
            assert!(r.recovered, "cut {cut}");
            assert_eq!(std::fs::read(&file).unwrap(), gen1, "cut {cut}");
        }
        // The completed write (crash after write, before ack) recovers
        // forward to generation 2 — the at-least-once boundary.
        std::fs::write(&prev, &gen1).unwrap();
        std::fs::write(&file, &gen2).unwrap();
        let forward = recover_history(&file).unwrap();
        assert_eq!(forward.generation, 2);
        assert!(!forward.recovered);

        // Current missing entirely (crash between rotate and write).
        std::fs::remove_file(&file).unwrap();
        let promoted = recover_history(&file).unwrap();
        assert_eq!(promoted.generation, 1);
        assert!(promoted.recovered);
        assert_eq!(std::fs::read(&file).unwrap(), gen1);

        // First-generation tear, no .prev: quarantined, fresh start.
        std::fs::remove_file(&prev).unwrap();
        std::fs::write(&file, &gen1[..10]).unwrap();
        let torn = recover_history(&file).unwrap();
        assert_eq!(torn.payload_len, None);
        assert!(torn.recovered);
        assert!(!file.exists());
        assert!(history_torn_path(&file).exists());

        // Both torn: an error, not silent data loss.
        std::fs::write(&file, &gen2[..13]).unwrap();
        std::fs::write(&prev, &gen1[..11]).unwrap();
        match recover_history(&file) {
            Err(EvalError::Persist { cause, .. }) => {
                assert!(cause.contains("both corrupt"), "{cause}");
            }
            other => panic!("expected a Persist error, got {other:?}"),
        }
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn footered_history_files_map_through_the_prefix_open() {
        let dir = std::env::temp_dir().join("netcorr_eval_persist_prefix_map_test");
        std::fs::remove_dir_all(&dir).ok();
        std::fs::create_dir_all(&dir).unwrap();
        let file = dir.join("history.ncobs3");
        let obs = history_block(3, 64);
        let payload = obs.to_binary();
        std::fs::write(&file, encode_history(&payload, 5)).unwrap();

        let footer = validate_history_bytes(&std::fs::read(&file).unwrap()).unwrap();
        let mapped = map_observations_prefix(&file, footer.payload_len).unwrap();
        assert_eq!(mapped.num_snapshots(), 64);
        assert_eq!(mapped.view().to_observations().unwrap(), obs);
        // The whole-file open rejects the footered layout, so the prefix
        // form is the only way in.
        assert!(map_observations(&file).is_err());
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn corrupted_files_are_rejected() {
        let dir = std::env::temp_dir().join("netcorr_eval_persist_corrupt_test");
        let file = dir.join("observations.ncobs");
        std::fs::create_dir_all(&dir).unwrap();
        std::fs::write(&file, "not the wire format").unwrap();
        // A parse failure names the file and carries the parser's cause.
        match read_observations(&file) {
            Err(EvalError::Persist { path, cause }) => {
                assert!(path.contains("observations.ncobs"), "{path}");
                assert!(cause.contains("invalid v2 text observations"), "{cause}");
            }
            other => panic!("expected a Persist error, got {other:?}"),
        }
        // A failed read (missing file) does too, with the I/O cause.
        match read_observations(&dir.join("missing.ncobs")) {
            Err(EvalError::Persist { path, cause }) => {
                assert!(path.contains("missing.ncobs"), "{path}");
                assert!(!cause.is_empty());
            }
            other => panic!("expected a Persist error, got {other:?}"),
        }
        // Invalid UTF-8 that is not binary v3 is reported the same way.
        let garbled = dir.join("garbled.ncobs");
        std::fs::write(&garbled, [0x80u8, 0xff, 0x01]).unwrap();
        match read_observations(&garbled) {
            Err(EvalError::Persist { cause, .. }) => {
                assert!(cause.contains("neither binary v3"), "{cause}");
            }
            other => panic!("expected a Persist error, got {other:?}"),
        }
        // A corrupt binary v3 block keeps the underlying parse error.
        let (inst, model) = fig1a_simulator();
        let sim = Simulator::new(&inst, &model, SimulationConfig::default()).unwrap();
        let obs = sim.run(100, &mut StdRng::seed_from_u64(4));
        let mut bytes = obs.to_binary();
        let last = bytes.len() - 1;
        bytes.truncate(last);
        let broken = dir.join("broken.ncobs3");
        std::fs::write(&broken, &bytes).unwrap();
        match read_observations(&broken) {
            Err(EvalError::Persist { cause, .. }) => {
                assert!(cause.contains("invalid binary v3 observations"), "{cause}");
            }
            other => panic!("expected a Persist error, got {other:?}"),
        }
        std::fs::remove_dir_all(&dir).ok();
    }
}
