//! Persistence of recorded observations in the versioned wire format.
//!
//! Experiments at production scale are expensive to simulate (or, in a
//! real deployment, to measure); persisting the [`PathObservations`] of a
//! trial lets inference be re-run — with different algorithm
//! configurations, or after a code change — without re-measuring. The
//! on-disk representation is the bit-packed, path-major wire format pinned
//! by [`netcorr_measure::observation::WIRE_FORMAT`]: roughly one bit per
//! path × snapshot cell, ~8× smaller than the textual CSV a boolean dump
//! would need.

use std::fs;
use std::path::Path;

use netcorr_measure::PathObservations;

use crate::error::EvalError;

/// Writes observations to `path` in the wire format, creating parent
/// directories as needed.
pub fn write_observations(path: &Path, observations: &PathObservations) -> Result<(), EvalError> {
    if let Some(parent) = path.parent() {
        fs::create_dir_all(parent)?;
    }
    fs::write(path, observations.to_wire())?;
    Ok(())
}

/// Reads observations previously written by [`write_observations`].
pub fn read_observations(path: &Path) -> Result<PathObservations, EvalError> {
    let text = fs::read_to_string(path)?;
    PathObservations::from_wire(&text).map_err(EvalError::Measurement)
}

#[cfg(test)]
mod tests {
    use super::*;
    use netcorr_sim::{SimulationConfig, Simulator};
    use netcorr_topology::toy;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn observations_round_trip_through_disk() {
        let inst = toy::figure_1a();
        let model = netcorr_sim::CongestionModelBuilder::new(&inst.correlation)
            .joint_group(
                &[
                    netcorr_topology::graph::LinkId(0),
                    netcorr_topology::graph::LinkId(1),
                ],
                0.2,
            )
            .independent(netcorr_topology::graph::LinkId(2), 0.1)
            .independent(netcorr_topology::graph::LinkId(3), 0.1)
            .build()
            .unwrap();
        let sim = Simulator::new(&inst, &model, SimulationConfig::default()).unwrap();
        let obs = sim.run(500, &mut StdRng::seed_from_u64(3));

        let dir = std::env::temp_dir().join("netcorr_eval_persist_test");
        let file = dir.join("observations.ncobs");
        write_observations(&file, &obs).unwrap();
        let back = read_observations(&file).unwrap();
        assert_eq!(obs, back);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn corrupted_files_are_rejected() {
        let dir = std::env::temp_dir().join("netcorr_eval_persist_corrupt_test");
        let file = dir.join("observations.ncobs");
        std::fs::create_dir_all(&dir).unwrap();
        std::fs::write(&file, "not the wire format").unwrap();
        assert!(matches!(
            read_observations(&file),
            Err(EvalError::Measurement(_))
        ));
        assert!(read_observations(&dir.join("missing.ncobs")).is_err());
        std::fs::remove_dir_all(&dir).ok();
    }
}
