//! Persistence of recorded observations and simulation traces.
//!
//! Experiments at production scale are expensive to simulate (or, in a
//! real deployment, to measure); persisting the [`PathObservations`] of a
//! trial lets inference be re-run — with different algorithm
//! configurations, or after a code change — without re-measuring. Two
//! on-disk representations are supported:
//!
//! * the textual, line-oriented hex format pinned by
//!   [`netcorr_measure::observation::WIRE_FORMAT`] (`v2`) — the
//!   debuggable variant;
//! * the binary lane-word dump pinned by
//!   [`netcorr_measure::observation::BINARY_MAGIC`] (`v3`) — the raw
//!   little-endian lane words behind a fixed header, loadable into the
//!   packed lane view without per-bit parsing (PlanetLab-scale replay
//!   without parse cost).
//!
//! [`read_observations`] sniffs the leading bytes, so either format loads
//! transparently. [`map_observations`] opens a `v3` file through the
//! zero-copy tier instead — the lane words are memory-mapped and served
//! in place (see [`netcorr_measure::MappedObservations`]), so a
//! multi-gigabyte history becomes query-ready without the word copy and
//! row rebuild a [`read_observations`] load pays. [`write_trace`] /
//! [`read_trace`] additionally persist a full [`SimulationTrace`] — the
//! observations *plus* the ground-truth per-snapshot link states (packed
//! [`BitMatrix`]) — so separability studies can re-run inference against
//! the truth that generated it.

use std::fs;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};

use netcorr_measure::observation::BINARY_MAGIC;
use netcorr_measure::{BitMatrix, MappedObservations, PathObservations};
use netcorr_sim::SimulationTrace;

use crate::error::EvalError;

/// Magic bytes opening a persisted [`SimulationTrace`] (`netcorr-trace
/// v1`): the observation binary block, then the packed link-state matrix.
pub const TRACE_MAGIC: &[u8; 8] = b"NCTRCv1\n";

/// Builds the [`EvalError::Persist`] for a failure at `path`.
fn persist_err(path: &Path, cause: impl std::fmt::Display) -> EvalError {
    EvalError::Persist {
        path: path.display().to_string(),
        cause: cause.to_string(),
    }
}

/// Per-process staging counter, so concurrent writers to the same target
/// never share a temp file.
static STAGE_COUNTER: AtomicU64 = AtomicU64::new(0);

/// Writes `bytes` to a unique temporary file **in the same directory** as
/// `path` (so the commit rename below cannot cross a filesystem boundary)
/// and returns the staged path. Until [`commit`] renames it over the
/// target, the target is untouched — a writer that crashes mid-write
/// leaves only an orphaned `.tmp` file, never a torn target.
fn stage(path: &Path, bytes: &[u8]) -> Result<PathBuf, EvalError> {
    let file_name = path
        .file_name()
        .ok_or_else(|| persist_err(path, "path has no file name"))?;
    let tag = STAGE_COUNTER.fetch_add(1, Ordering::Relaxed);
    let tmp_name = format!(
        ".{}.tmp.{}.{}",
        file_name.to_string_lossy(),
        std::process::id(),
        tag
    );
    let tmp = path.with_file_name(tmp_name);
    fs::write(&tmp, bytes).map_err(|e| persist_err(&tmp, e))?;
    Ok(tmp)
}

/// Atomically publishes a staged file at the target path.
fn commit(tmp: &Path, path: &Path) -> Result<(), EvalError> {
    fs::rename(tmp, path).map_err(|e| {
        // Leave no orphan behind on a failed publish; the error reported
        // is the rename failure, not the (best-effort) cleanup.
        let _ = fs::remove_file(tmp);
        persist_err(path, e)
    })
}

/// Atomically replaces the file at `path` with `bytes`: the content is
/// staged to a temporary file in the same directory and renamed over the
/// target, so readers (and format sniffers) only ever see the old complete
/// file or the new complete file — never a torn intermediate, even if the
/// writer crashes mid-write or two writers race. Parent directories are
/// created as needed.
///
/// Public because the serve daemon persists its observation history
/// through this path: rename-replacement never truncates the published
/// file in place, so a mapping of the *previous* history file
/// ([`map_observations`]) stays valid while the new one is written.
pub fn atomic_write(path: &Path, bytes: &[u8]) -> Result<(), EvalError> {
    if let Some(parent) = path.parent() {
        if !parent.as_os_str().is_empty() {
            fs::create_dir_all(parent).map_err(|e| persist_err(path, e))?;
        }
    }
    let tmp = stage(path, bytes)?;
    commit(&tmp, path)
}

/// Writes observations to `path` in the textual (`v2`) wire format,
/// atomically (temp file + rename) and creating parent directories as
/// needed.
pub fn write_observations(path: &Path, observations: &PathObservations) -> Result<(), EvalError> {
    atomic_write(path, observations.to_wire().as_bytes())
}

/// Writes observations to `path` in the binary (`v3`) wire format,
/// atomically (temp file + rename) and creating parent directories as
/// needed.
pub fn write_observations_binary(
    path: &Path,
    observations: &PathObservations,
) -> Result<(), EvalError> {
    atomic_write(path, &observations.to_binary())
}

/// Reads observations previously written by [`write_observations`] or
/// [`write_observations_binary`], sniffing the format from the leading
/// bytes.
///
/// Every failure — the read itself, a corrupt binary block, an invalid
/// text body — is reported as [`EvalError::Persist`] carrying the file
/// path and the underlying cause.
pub fn read_observations(path: &Path) -> Result<PathObservations, EvalError> {
    let persist = |cause: String| EvalError::Persist {
        path: path.display().to_string(),
        cause,
    };
    let bytes = fs::read(path).map_err(|e| persist(e.to_string()))?;
    if bytes.starts_with(BINARY_MAGIC) {
        return PathObservations::from_binary(&bytes)
            .map_err(|e| persist(format!("invalid binary v3 observations: {e}")));
    }
    match String::from_utf8(bytes) {
        Ok(text) => PathObservations::from_wire(&text)
            .map_err(|e| persist(format!("invalid v2 text observations: {e}"))),
        Err(e) => Err(persist(format!(
            "neither binary v3 nor valid UTF-8 text: {e}"
        ))),
    }
}

/// Opens a binary (`v3`) observation file through the zero-copy tier:
/// the file is memory-mapped (heap fallback off Linux/x86-64), the
/// header and per-lane zero-tail invariant are validated, and the lane
/// words are served in place — no copy, no row rebuild. Corrupt files
/// (truncated, dirty tails, bad magic) and text (`v2`) files surface as
/// [`EvalError::Persist`] carrying the file path, never a panic.
pub fn map_observations(path: &Path) -> Result<MappedObservations, EvalError> {
    MappedObservations::open(path).map_err(|e| persist_err(path, e))
}

/// Writes a full simulation trace — observations plus ground-truth link
/// states — to `path` (`netcorr-trace v1`):
///
/// ```text
/// NCTRCv1\n
/// obs_len   u64 LE      length of the embedded v3 observation block
/// <obs_len bytes>       PathObservations::to_binary
/// width     u64 LE      links per snapshot
/// rows      u64 LE      snapshots
/// <rows × ceil(width/64) u64 LE>   packed link-state rows
/// ```
pub fn write_trace(path: &Path, trace: &SimulationTrace) -> Result<(), EvalError> {
    if let Some(parent) = path.parent() {
        fs::create_dir_all(parent)?;
    }
    let obs = trace.observations.to_binary();
    let states = &trace.link_states;
    let mut out = Vec::with_capacity(8 + 8 + obs.len() + 16 + states.words().len() * 8);
    out.extend_from_slice(TRACE_MAGIC);
    out.extend_from_slice(&(obs.len() as u64).to_le_bytes());
    out.extend_from_slice(&obs);
    out.extend_from_slice(&(states.width() as u64).to_le_bytes());
    out.extend_from_slice(&(states.num_rows() as u64).to_le_bytes());
    for &word in states.words() {
        out.extend_from_slice(&word.to_le_bytes());
    }
    atomic_write(path, &out)
}

/// Reads a trace previously written by [`write_trace`].
///
/// Every failure — the read itself, a corrupt header or body, an invalid
/// embedded observation block — is reported as [`EvalError::Persist`]
/// carrying the file path and the underlying cause (matching
/// [`read_observations`]).
pub fn read_trace(path: &Path) -> Result<SimulationTrace, EvalError> {
    let bytes = fs::read(path).map_err(|e| persist_err(path, e))?;
    let corrupt = |reason: &str| persist_err(path, format!("corrupt trace file: {reason}"));
    if bytes.len() < 16 || &bytes[..8] != TRACE_MAGIC {
        return Err(corrupt("missing NCTRCv1 header"));
    }
    let read_u64 = |offset: usize| -> Result<u64, EvalError> {
        bytes
            .get(offset..offset + 8)
            .map(|b| u64::from_le_bytes(b.try_into().expect("8-byte slice")))
            .ok_or_else(|| corrupt("truncated header field"))
    };
    let obs_len = usize::try_from(read_u64(8)?).map_err(|_| corrupt("block size overflow"))?;
    let obs_end = 16usize
        .checked_add(obs_len)
        .ok_or_else(|| corrupt("block size overflow"))?;
    let obs_bytes = bytes
        .get(16..obs_end)
        .ok_or_else(|| corrupt("truncated observation block"))?;
    let observations = PathObservations::from_binary(obs_bytes)
        .map_err(|e| persist_err(path, format!("invalid embedded observation block: {e}")))?;

    let width = usize::try_from(read_u64(obs_end)?).map_err(|_| corrupt("width overflow"))?;
    let rows = usize::try_from(read_u64(obs_end + 8)?).map_err(|_| corrupt("rows overflow"))?;
    let words_per_row = netcorr_measure::bitset::words_for(width);
    let expected = rows
        .checked_mul(words_per_row)
        .and_then(|w| w.checked_mul(8))
        .ok_or_else(|| corrupt("link-state region overflow"))?;
    let word_bytes = bytes
        .get(obs_end + 16..)
        .ok_or_else(|| corrupt("truncated link-state header"))?;
    if word_bytes.len() != expected {
        return Err(corrupt(&format!(
            "expected {expected} link-state bytes, got {}",
            word_bytes.len()
        )));
    }
    let words: Vec<u64> = word_bytes
        .chunks_exact(8)
        .map(|c| u64::from_le_bytes(c.try_into().expect("8-byte chunk")))
        .collect();
    // Validate the zero-tail invariant here so a corrupt file surfaces as
    // an error instead of a panic inside `BitMatrix::from_words`.
    let mask = netcorr_measure::bitset::tail_mask(width);
    for chunk in words.chunks_exact(words_per_row) {
        if chunk[words_per_row - 1] & !mask != 0 {
            return Err(corrupt("link-state row has bits beyond the width"));
        }
    }
    let link_states = BitMatrix::from_words(width, rows, words);
    if link_states.num_rows() != observations.num_snapshots() {
        return Err(corrupt(&format!(
            "{} link-state rows for {} snapshots",
            link_states.num_rows(),
            observations.num_snapshots()
        )));
    }
    Ok(SimulationTrace {
        observations,
        link_states,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use netcorr_sim::{SimulationConfig, Simulator};
    use netcorr_topology::toy;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn observations_round_trip_through_disk() {
        let inst = toy::figure_1a();
        let model = netcorr_sim::CongestionModelBuilder::new(&inst.correlation)
            .joint_group(
                &[
                    netcorr_topology::graph::LinkId(0),
                    netcorr_topology::graph::LinkId(1),
                ],
                0.2,
            )
            .independent(netcorr_topology::graph::LinkId(2), 0.1)
            .independent(netcorr_topology::graph::LinkId(3), 0.1)
            .build()
            .unwrap();
        let sim = Simulator::new(&inst, &model, SimulationConfig::default()).unwrap();
        let obs = sim.run(500, &mut StdRng::seed_from_u64(3));

        let dir = std::env::temp_dir().join("netcorr_eval_persist_test");
        let file = dir.join("observations.ncobs");
        write_observations(&file, &obs).unwrap();
        let back = read_observations(&file).unwrap();
        assert_eq!(obs, back);
        std::fs::remove_dir_all(&dir).ok();
    }

    fn fig1a_simulator() -> (
        netcorr_topology::TopologyInstance,
        netcorr_sim::CongestionModel,
    ) {
        let inst = toy::figure_1a();
        let model = netcorr_sim::CongestionModelBuilder::new(&inst.correlation)
            .joint_group(
                &[
                    netcorr_topology::graph::LinkId(0),
                    netcorr_topology::graph::LinkId(1),
                ],
                0.2,
            )
            .independent(netcorr_topology::graph::LinkId(2), 0.1)
            .independent(netcorr_topology::graph::LinkId(3), 0.1)
            .build()
            .unwrap();
        (inst, model)
    }

    #[test]
    fn binary_observations_round_trip_and_sniff() {
        let (inst, model) = fig1a_simulator();
        let sim = Simulator::new(&inst, &model, SimulationConfig::default()).unwrap();
        let obs = sim.run(300, &mut StdRng::seed_from_u64(9));

        let dir = std::env::temp_dir().join("netcorr_eval_persist_binary_test");
        let text_file = dir.join("observations.ncobs");
        let binary_file = dir.join("observations.ncobs3");
        write_observations(&text_file, &obs).unwrap();
        write_observations_binary(&binary_file, &obs).unwrap();
        // `read_observations` sniffs either format.
        assert_eq!(read_observations(&text_file).unwrap(), obs);
        assert_eq!(read_observations(&binary_file).unwrap(), obs);
        // The binary file is smaller than the hex dump.
        let text_len = std::fs::metadata(&text_file).unwrap().len();
        let binary_len = std::fs::metadata(&binary_file).unwrap().len();
        assert!(
            binary_len < text_len,
            "binary {binary_len} vs text {text_len}"
        );
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn mapped_observations_match_the_copying_loader() {
        let (inst, model) = fig1a_simulator();
        let sim = Simulator::new(&inst, &model, SimulationConfig::default()).unwrap();
        let obs = sim.run(250, &mut StdRng::seed_from_u64(13));

        let dir = std::env::temp_dir().join("netcorr_eval_persist_map_test");
        let file = dir.join("observations.ncobs3");
        write_observations_binary(&file, &obs).unwrap();
        let mapped = map_observations(&file).unwrap();
        assert_eq!(mapped.num_paths(), obs.num_paths());
        assert_eq!(mapped.num_snapshots(), 250);
        assert_eq!(mapped.view().to_observations().unwrap(), obs);
        assert_eq!(read_observations(&file).unwrap(), obs);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn corrupt_mapped_files_error_with_the_file_path() {
        let (inst, model) = fig1a_simulator();
        let sim = Simulator::new(&inst, &model, SimulationConfig::default()).unwrap();
        let obs = sim.run(100, &mut StdRng::seed_from_u64(14));
        let dir = std::env::temp_dir().join("netcorr_eval_persist_map_corrupt_test");
        std::fs::create_dir_all(&dir).unwrap();
        let file = dir.join("history.ncobs3");
        let block = obs.to_binary();

        let expect_persist = |fragment: &str| match map_observations(&file) {
            Err(EvalError::Persist { path, cause }) => {
                assert!(path.contains("history.ncobs3"), "{path}");
                assert!(cause.contains(fragment), "{cause}");
            }
            other => panic!("expected a Persist error, got {other:?}"),
        };

        // Truncated lane region.
        std::fs::write(&file, &block[..block.len() - 8]).unwrap();
        expect_persist("expected");
        // Dirty tail: a bit set beyond the declared snapshot count.
        let mut dirty = block.clone();
        let last = dirty.len() - 1;
        dirty[last] |= 0x80;
        std::fs::write(&file, &dirty).unwrap();
        expect_persist("beyond slot");
        // The text format cannot be mapped (no magic).
        std::fs::write(&file, obs.to_wire()).unwrap();
        expect_persist("magic");
        // Both loaders agree the *same* corrupt file is corrupt.
        std::fs::write(&file, &block[..block.len() - 8]).unwrap();
        assert!(read_observations(&file).is_err());
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn traces_round_trip_through_disk() {
        let (inst, model) = fig1a_simulator();
        let sim = Simulator::new(&inst, &model, SimulationConfig::default()).unwrap();
        let trace = sim.run_detailed_range(0..200, 11);

        let dir = std::env::temp_dir().join("netcorr_eval_persist_trace_test");
        let file = dir.join("trial.nctrc");
        write_trace(&file, &trace).unwrap();
        let back = read_trace(&file).unwrap();
        assert_eq!(back.observations, trace.observations);
        assert_eq!(back.link_states, trace.link_states);
        std::fs::remove_dir_all(&dir).ok();
    }

    /// Asserts the error is a `Persist` carrying `bad.nctrc` as the path
    /// and `fragment` inside the cause.
    fn assert_trace_persist_error(result: Result<SimulationTrace, EvalError>, fragment: &str) {
        match result {
            Err(EvalError::Persist { path, cause }) => {
                assert!(path.contains("bad.nctrc"), "{path}");
                assert!(cause.contains(fragment), "{cause}");
            }
            Ok(_) => panic!("expected a Persist error, got a trace"),
            Err(other) => panic!("expected a Persist error, got {other:?}"),
        }
    }

    #[test]
    fn corrupt_traces_are_rejected_with_the_file_path() {
        let dir = std::env::temp_dir().join("netcorr_eval_persist_trace_corrupt_test");
        std::fs::create_dir_all(&dir).unwrap();
        let file = dir.join("bad.nctrc");
        std::fs::write(&file, b"junk").unwrap();
        assert_trace_persist_error(read_trace(&file), "missing NCTRCv1 header");
        // Valid magic but truncated body.
        std::fs::write(&file, b"NCTRCv1\n\x10\x00\x00\x00\x00\x00\x00\x00").unwrap();
        assert_trace_persist_error(read_trace(&file), "truncated observation block");
        // A full trace with one flipped link-state byte (tail violation).
        let (inst, model) = fig1a_simulator();
        let sim = Simulator::new(&inst, &model, SimulationConfig::default()).unwrap();
        let trace = sim.run_detailed_range(0..10, 3);
        write_trace(&file, &trace).unwrap();
        let good_bytes = std::fs::read(&file).unwrap();
        let mut bytes = good_bytes.clone();
        let last = bytes.len() - 1;
        bytes[last] = 0xff;
        std::fs::write(&file, &bytes).unwrap();
        assert_trace_persist_error(read_trace(&file), "bits beyond the width");
        // A corrupted *embedded* observation block also names the file.
        let mut bytes = good_bytes;
        bytes[20] ^= 0xff; // inside the NCOBSv3 header of the embedded block
        std::fs::write(&file, &bytes).unwrap();
        assert_trace_persist_error(read_trace(&file), "invalid embedded observation block");
        // A failed read (missing file) carries the path and the I/O cause.
        match read_trace(&dir.join("missing.nctrc")) {
            Err(EvalError::Persist { path, cause }) => {
                assert!(path.contains("missing.nctrc"), "{path}");
                assert!(!cause.is_empty());
            }
            other => panic!("expected a Persist error, got {other:?}"),
        }
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn partial_writes_never_become_visible_at_the_target_path() {
        let (inst, model) = fig1a_simulator();
        let sim = Simulator::new(&inst, &model, SimulationConfig::default()).unwrap();
        let obs = sim.run(200, &mut StdRng::seed_from_u64(5));

        let dir = std::env::temp_dir().join("netcorr_eval_persist_atomic_test");
        std::fs::remove_dir_all(&dir).ok();
        let file = dir.join("observations.ncobs3");
        write_observations_binary(&file, &obs).unwrap();

        // Simulate a writer that crashes mid-write: the staged temp file
        // exists (in the same directory, so the commit rename would be
        // atomic), but the commit never happens. The target file still
        // holds the previous complete content — format sniffing never sees
        // the torn bytes.
        let torn = &obs.to_binary()[..10];
        let staged = stage(&file, torn).unwrap();
        assert!(staged.exists());
        assert_eq!(staged.parent(), file.parent());
        assert_ne!(staged, file);
        assert_eq!(read_observations(&file).unwrap(), obs);

        // A second writer completing normally replaces the target wholly,
        // regardless of the orphaned staging file.
        let other = sim.run(100, &mut StdRng::seed_from_u64(6));
        write_observations_binary(&file, &other).unwrap();
        assert_eq!(read_observations(&file).unwrap(), other);

        // Committing the stale staged bytes is the crash-free path of the
        // same writer; only then does the target change.
        commit(&staged, &file).unwrap();
        assert!(!staged.exists());
        assert!(read_observations(&file).is_err(), "torn bytes now visible");

        // Atomic text writes go through the same staging machinery.
        let text_file = dir.join("observations.ncobs");
        write_observations(&text_file, &obs).unwrap();
        assert_eq!(read_observations(&text_file).unwrap(), obs);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn corrupted_files_are_rejected() {
        let dir = std::env::temp_dir().join("netcorr_eval_persist_corrupt_test");
        let file = dir.join("observations.ncobs");
        std::fs::create_dir_all(&dir).unwrap();
        std::fs::write(&file, "not the wire format").unwrap();
        // A parse failure names the file and carries the parser's cause.
        match read_observations(&file) {
            Err(EvalError::Persist { path, cause }) => {
                assert!(path.contains("observations.ncobs"), "{path}");
                assert!(cause.contains("invalid v2 text observations"), "{cause}");
            }
            other => panic!("expected a Persist error, got {other:?}"),
        }
        // A failed read (missing file) does too, with the I/O cause.
        match read_observations(&dir.join("missing.ncobs")) {
            Err(EvalError::Persist { path, cause }) => {
                assert!(path.contains("missing.ncobs"), "{path}");
                assert!(!cause.is_empty());
            }
            other => panic!("expected a Persist error, got {other:?}"),
        }
        // Invalid UTF-8 that is not binary v3 is reported the same way.
        let garbled = dir.join("garbled.ncobs");
        std::fs::write(&garbled, [0x80u8, 0xff, 0x01]).unwrap();
        match read_observations(&garbled) {
            Err(EvalError::Persist { cause, .. }) => {
                assert!(cause.contains("neither binary v3"), "{cause}");
            }
            other => panic!("expected a Persist error, got {other:?}"),
        }
        // A corrupt binary v3 block keeps the underlying parse error.
        let (inst, model) = fig1a_simulator();
        let sim = Simulator::new(&inst, &model, SimulationConfig::default()).unwrap();
        let obs = sim.run(100, &mut StdRng::seed_from_u64(4));
        let mut bytes = obs.to_binary();
        let last = bytes.len() - 1;
        bytes.truncate(last);
        let broken = dir.join("broken.ncobs3");
        std::fs::write(&broken, &bytes).unwrap();
        match read_observations(&broken) {
            Err(EvalError::Persist { cause, .. }) => {
                assert!(cause.contains("invalid binary v3 observations"), "{cause}");
            }
            other => panic!("expected a Persist error, got {other:?}"),
        }
        std::fs::remove_dir_all(&dir).ok();
    }
}
