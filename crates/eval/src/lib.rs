//! # netcorr-eval — the evaluation harness
//!
//! Reproduces the evaluation of *"Network Tomography on Correlated Links"*
//! (Section 5): for every figure of the paper there is a scenario
//! generator, an experiment runner and a reporting function that prints the
//! same series the paper plots.
//!
//! * [`scenario`] — turns a topology instance into a congestion scenario:
//!   which links are congested, how strongly they are correlated inside
//!   their correlation sets, which of them are *unidentifiable*
//!   (Assumption 4 broken around them) and which are *mislabeled*
//!   (correlated by an unknown pattern such as a worm flood).
//! * [`metrics`] — absolute error over the potentially congested links,
//!   mean / 90th-percentile summaries and empirical CDFs — the three ways
//!   the paper presents accuracy.
//! * [`runner`] — runs trials (simulate → infer with both algorithms →
//!   score) in parallel and pools the per-link errors.
//! * [`persist`] — saves/loads recorded observations in the bit-packed
//!   wire format, so expensive measurement runs can be re-analysed without
//!   re-simulation.
//! * [`figures`] — one module per paper figure (3, 4, 5) that performs the
//!   corresponding parameter sweep.
//! * [`report`] — plain-text tables and CSV emission used by the
//!   `fig3` / `fig4` / `fig5` / `all_experiments` binaries.
//! * [`robustness`] — the model-misspecification matrix: perturbation
//!   family × intensity × topology degradation curves with committed
//!   regression thresholds (`netcorr-robustness`, `ROBUSTNESS.json`).

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod cli;
pub mod error;
pub mod figures;
pub mod metrics;
pub mod persist;
pub mod report;
pub mod robustness;
pub mod runner;
pub mod scenario;

pub use error::EvalError;
pub use metrics::ErrorSummary;
pub use robustness::{PerturbationFamily, RobustnessConfig, RobustnessReport, RobustnessTopology};
pub use runner::{ExperimentConfig, ExperimentResult, TrialResult};
pub use scenario::{CongestionScenario, CorrelationLevel, ScenarioBuilder, ScenarioConfig};
