//! Accuracy metrics (Section 5, "Metrics").
//!
//! The paper evaluates an algorithm by the **absolute error** between the
//! actual congestion probability of a link and the probability the
//! algorithm computed, restricted to the *potentially congested links* —
//! the links that participate in at least one congested path. Three views
//! of the error distribution are used: its CDF, its mean, and its 90th
//! percentile; all three are provided here.

use netcorr_core::TomographyEstimate;
use netcorr_measure::PathObservations;
use netcorr_topology::graph::LinkId;
use netcorr_topology::TopologyInstance;

/// The links that participate in at least one path that was observed
/// congested during the experiment — the paper's "potentially congested
/// links", over which all error statistics are computed.
pub fn potentially_congested_links(
    instance: &TopologyInstance,
    observations: &PathObservations,
) -> Vec<LinkId> {
    let mut potentially = vec![false; instance.num_links()];
    for path_id in observations.ever_congested_paths() {
        for &link in &instance.paths.path(path_id).links {
            potentially[link.index()] = true;
        }
    }
    (0..instance.num_links())
        .map(LinkId)
        .filter(|l| potentially[l.index()])
        .collect()
}

/// Absolute error `|p̂ − p|` of an estimate against the ground-truth
/// marginals, over the given links.
pub fn absolute_errors(estimate: &TomographyEstimate, truth: &[f64], links: &[LinkId]) -> Vec<f64> {
    links
        .iter()
        .map(|&l| (estimate.congestion_probability(l) - truth[l.index()]).abs())
        .collect()
}

/// Summary statistics of an error sample.
#[derive(Debug, Clone, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct ErrorSummary {
    /// Number of links in the sample.
    pub count: usize,
    /// Mean absolute error.
    pub mean: f64,
    /// Median absolute error.
    pub median: f64,
    /// 90th percentile of the absolute error.
    pub p90: f64,
    /// Maximum absolute error.
    pub max: f64,
}

impl ErrorSummary {
    /// Computes the summary of an error sample. An empty sample yields all
    /// zeros.
    pub fn from_errors(errors: &[f64]) -> Self {
        if errors.is_empty() {
            return ErrorSummary {
                count: 0,
                mean: 0.0,
                median: 0.0,
                p90: 0.0,
                max: 0.0,
            };
        }
        let mut sorted = errors.to_vec();
        sorted.sort_by(|a, b| a.partial_cmp(b).expect("errors are finite"));
        let mean = sorted.iter().sum::<f64>() / sorted.len() as f64;
        ErrorSummary {
            count: sorted.len(),
            mean,
            median: percentile_of_sorted(&sorted, 0.5),
            p90: percentile_of_sorted(&sorted, 0.9),
            max: *sorted.last().expect("non-empty"),
        }
    }
}

/// Congestion-detection counts of an estimate against the ground truth,
/// used by the robustness harness: beyond the absolute error of the
/// inferred probabilities, a degraded run should still *detect* which
/// links are congested at all.
///
/// A link counts as congested (truly or by the estimate) when its
/// congestion probability is at least `threshold`.
#[derive(Debug, Clone, Copy, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct DetectionSummary {
    /// The probability threshold above which a link counts as congested.
    pub threshold: f64,
    /// Links whose true marginal is ≥ threshold (within the scored set).
    pub actual_congested: usize,
    /// Truly congested links the estimate also flags.
    pub detected: usize,
    /// Links whose true marginal is < threshold (within the scored set).
    pub actual_clear: usize,
    /// Truly clear links the estimate flags anyway.
    pub false_alarms: usize,
}

impl DetectionSummary {
    /// An empty summary (no links scored yet) at the given threshold.
    pub fn empty(threshold: f64) -> Self {
        DetectionSummary {
            threshold,
            actual_congested: 0,
            detected: 0,
            actual_clear: 0,
            false_alarms: 0,
        }
    }

    /// Fraction of truly congested links the estimate detected (1.0 when
    /// nothing was truly congested).
    pub fn detection_rate(&self) -> f64 {
        if self.actual_congested == 0 {
            1.0
        } else {
            self.detected as f64 / self.actual_congested as f64
        }
    }

    /// Fraction of truly clear links the estimate flagged (0.0 when
    /// nothing was truly clear).
    pub fn false_alarm_rate(&self) -> f64 {
        if self.actual_clear == 0 {
            0.0
        } else {
            self.false_alarms as f64 / self.actual_clear as f64
        }
    }

    /// Accumulates another summary's counts (thresholds must agree).
    pub fn merge(&mut self, other: &DetectionSummary) {
        debug_assert_eq!(self.threshold, other.threshold);
        self.actual_congested += other.actual_congested;
        self.detected += other.detected;
        self.actual_clear += other.actual_clear;
        self.false_alarms += other.false_alarms;
    }
}

/// Scores congestion detection of an estimate over the given links: a
/// link is truly congested when `truth[link] ≥ threshold`, detected when
/// the estimate's probability is ≥ threshold as well.
pub fn detection_summary(
    estimate: &TomographyEstimate,
    truth: &[f64],
    links: &[LinkId],
    threshold: f64,
) -> DetectionSummary {
    let mut summary = DetectionSummary::empty(threshold);
    for &link in links {
        let actually = truth[link.index()] >= threshold;
        let flagged = estimate.congestion_probability(link) >= threshold;
        if actually {
            summary.actual_congested += 1;
            if flagged {
                summary.detected += 1;
            }
        } else {
            summary.actual_clear += 1;
            if flagged {
                summary.false_alarms += 1;
            }
        }
    }
    summary
}

/// The `q`-quantile of an already-sorted sample (nearest-rank convention,
/// matching "the absolute error that corresponds to a value of y = 90% of
/// the CDF").
pub fn percentile_of_sorted(sorted: &[f64], q: f64) -> f64 {
    if sorted.is_empty() {
        return 0.0;
    }
    let q = q.clamp(0.0, 1.0);
    let rank = (q * sorted.len() as f64).ceil() as usize;
    sorted[rank.saturating_sub(1).min(sorted.len() - 1)]
}

/// The empirical CDF of an error sample evaluated at the given thresholds:
/// for each `x`, the fraction of links whose error is ≤ `x` (in percent, as
/// the paper's y-axes are "% of potentially congested links").
pub fn cdf_at(errors: &[f64], thresholds: &[f64]) -> Vec<(f64, f64)> {
    thresholds
        .iter()
        .map(|&x| {
            let fraction = if errors.is_empty() {
                0.0
            } else {
                errors.iter().filter(|&&e| e <= x).count() as f64 / errors.len() as f64
            };
            (x, 100.0 * fraction)
        })
        .collect()
}

/// The default CDF grid used by the figure reproductions (0.0 to 1.0 in
/// steps of 0.05, matching the paper's x-axes).
pub fn default_cdf_grid() -> Vec<f64> {
    (0..=20).map(|i| i as f64 * 0.05).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use netcorr_core::{Diagnostics, SolverKind};
    use netcorr_topology::toy;

    fn estimate(probs: Vec<f64>) -> TomographyEstimate {
        TomographyEstimate::from_congestion_probabilities(
            probs,
            Diagnostics {
                num_links: 0,
                num_single_path_equations: 0,
                num_pair_equations: 0,
                underdetermined: false,
                solver: SolverKind::DenseExact,
                residual: 0.0,
                uncovered_links: 0,
                iterations: 0,
            },
        )
    }

    #[test]
    fn potentially_congested_links_follow_observed_congestion() {
        let inst = toy::figure_1a();
        let mut obs = PathObservations::new(3);
        // Only P3 = {e4, e2} is ever congested.
        obs.record_snapshot(&[false, false, true]).unwrap();
        obs.record_snapshot(&[false, false, false]).unwrap();
        let links = potentially_congested_links(&inst, &obs);
        assert_eq!(links, vec![LinkId(1), LinkId(3)]);
        // No congestion at all: no potentially congested links.
        let mut quiet = PathObservations::new(3);
        quiet.record_snapshot(&[false, false, false]).unwrap();
        assert!(potentially_congested_links(&inst, &quiet).is_empty());
    }

    #[test]
    fn absolute_errors_are_per_link_differences() {
        let est = estimate(vec![0.1, 0.5, 0.0]);
        let truth = [0.2, 0.5, 0.3];
        let errors = absolute_errors(&est, &truth, &[LinkId(0), LinkId(1), LinkId(2)]);
        assert!((errors[0] - 0.1).abs() < 1e-12);
        assert_eq!(errors[1], 0.0);
        assert!((errors[2] - 0.3).abs() < 1e-12);
        // Restricting to a subset of links restricts the sample.
        let errors = absolute_errors(&est, &truth, &[LinkId(2)]);
        assert_eq!(errors.len(), 1);
    }

    #[test]
    fn summary_statistics() {
        let errors = [0.0, 0.1, 0.2, 0.3, 0.4, 0.5, 0.6, 0.7, 0.8, 0.9];
        let s = ErrorSummary::from_errors(&errors);
        assert_eq!(s.count, 10);
        assert!((s.mean - 0.45).abs() < 1e-12);
        assert!((s.p90 - 0.8).abs() < 1e-12);
        assert!((s.median - 0.4).abs() < 1e-12);
        assert!((s.max - 0.9).abs() < 1e-12);

        let empty = ErrorSummary::from_errors(&[]);
        assert_eq!(empty.count, 0);
        assert_eq!(empty.mean, 0.0);
    }

    #[test]
    fn detection_summary_counts_hits_and_false_alarms() {
        // truth: links 0 and 1 congested at 0.2; 2 and 3 clear.
        let truth = [0.2, 0.2, 0.0, 0.01];
        // estimate: detects link 0, misses link 1, falsely flags link 2.
        let est = estimate(vec![0.3, 0.01, 0.4, 0.0]);
        let links: Vec<LinkId> = (0..4).map(LinkId).collect();
        let s = detection_summary(&est, &truth, &links, 0.05);
        assert_eq!(s.actual_congested, 2);
        assert_eq!(s.detected, 1);
        assert_eq!(s.actual_clear, 2);
        assert_eq!(s.false_alarms, 1);
        assert_eq!(s.detection_rate(), 0.5);
        assert_eq!(s.false_alarm_rate(), 0.5);

        // Degenerate cases: nothing congested → rate 1; nothing clear →
        // false-alarm rate 0.
        let s = detection_summary(&est, &[0.0; 4], &[], 0.05);
        assert_eq!(s.detection_rate(), 1.0);
        assert_eq!(s.false_alarm_rate(), 0.0);

        // Merging pools the counts.
        let mut acc = DetectionSummary::empty(0.05);
        acc.merge(&detection_summary(&est, &truth, &links, 0.05));
        acc.merge(&detection_summary(&est, &truth, &links, 0.05));
        assert_eq!(acc.actual_congested, 4);
        assert_eq!(acc.detected, 2);
    }

    #[test]
    fn percentile_nearest_rank_convention() {
        let sorted = [1.0, 2.0, 3.0, 4.0];
        assert_eq!(percentile_of_sorted(&sorted, 0.25), 1.0);
        assert_eq!(percentile_of_sorted(&sorted, 0.5), 2.0);
        assert_eq!(percentile_of_sorted(&sorted, 0.75), 3.0);
        assert_eq!(percentile_of_sorted(&sorted, 1.0), 4.0);
        assert_eq!(percentile_of_sorted(&sorted, 0.0), 1.0);
        assert_eq!(percentile_of_sorted(&[], 0.5), 0.0);
    }

    #[test]
    fn cdf_is_monotone_and_reaches_100() {
        let errors = [0.05, 0.1, 0.4];
        let grid = default_cdf_grid();
        let cdf = cdf_at(&errors, &grid);
        assert_eq!(cdf.len(), grid.len());
        for pair in cdf.windows(2) {
            assert!(pair[1].1 >= pair[0].1, "CDF must be non-decreasing");
        }
        assert_eq!(cdf.last().unwrap().1, 100.0);
        // At x = 0.1, two of three errors are ≤ 0.1.
        let at_01 = cdf.iter().find(|(x, _)| (*x - 0.1).abs() < 1e-9).unwrap();
        assert!((at_01.1 - 200.0 / 3.0).abs() < 1e-9);
        // Empty sample: flat zero.
        assert!(cdf_at(&[], &grid).iter().all(|&(_, y)| y == 0.0));
    }
}
