//! Plain-text tables and CSV emission for the figure reproductions.

use std::fmt::Write as _;
use std::fs;
use std::path::Path;

use crate::error::EvalError;
use crate::figures::fig3::Fig3Point;
use crate::figures::CdfComparison;

/// Formats the Figure 3(a)/(b) sweep as a plain-text table.
pub fn format_sweep_table(title: &str, points: &[Fig3Point]) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "{title}");
    let _ = writeln!(
        out,
        "{:>12} | {:>12} {:>12} | {:>12} {:>12}",
        "congested %", "corr mean", "indep mean", "corr p90", "indep p90"
    );
    let _ = writeln!(out, "{}", "-".repeat(70));
    for point in points {
        let _ = writeln!(
            out,
            "{:>12.0} | {:>12.4} {:>12.4} | {:>12.4} {:>12.4}",
            point.congested_percent,
            point.correlation.mean,
            point.independence.mean,
            point.correlation.p90,
            point.independence.p90
        );
    }
    out
}

/// Formats a CDF comparison as a plain-text table (one row per error
/// threshold).
pub fn format_cdf_table(comparison: &CdfComparison) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "{}", comparison.label);
    let _ = writeln!(
        out,
        "{:>10} | {:>16} | {:>16}",
        "abs error", "correlation (%)", "independence (%)"
    );
    let _ = writeln!(out, "{}", "-".repeat(50));
    for ((x, corr), (_, indep)) in comparison
        .correlation
        .iter()
        .zip(comparison.independence.iter())
    {
        let _ = writeln!(out, "{:>10.2} | {:>16.1} | {:>16.1}", x, corr, indep);
    }
    let _ = writeln!(
        out,
        "mean: correlation {:.4}, independence {:.4}; p90: correlation {:.4}, independence {:.4}",
        comparison.correlation_summary.mean,
        comparison.independence_summary.mean,
        comparison.correlation_summary.p90,
        comparison.independence_summary.p90
    );
    out
}

/// Writes the Figure 3(a)/(b) sweep as CSV
/// (`congested_percent,corr_mean,indep_mean,corr_p90,indep_p90`).
pub fn write_sweep_csv(path: &Path, points: &[Fig3Point]) -> Result<(), EvalError> {
    let mut out = String::from("congested_percent,corr_mean,indep_mean,corr_p90,indep_p90\n");
    for point in points {
        let _ = writeln!(
            out,
            "{},{},{},{},{}",
            point.congested_percent,
            point.correlation.mean,
            point.independence.mean,
            point.correlation.p90,
            point.independence.p90
        );
    }
    write_file(path, &out)
}

/// Writes a CDF comparison as CSV (`abs_error,correlation_pct,independence_pct`).
pub fn write_cdf_csv(path: &Path, comparison: &CdfComparison) -> Result<(), EvalError> {
    let mut out = String::from("abs_error,correlation_pct,independence_pct\n");
    for ((x, corr), (_, indep)) in comparison
        .correlation
        .iter()
        .zip(comparison.independence.iter())
    {
        let _ = writeln!(out, "{x},{corr},{indep}");
    }
    write_file(path, &out)
}

/// Writes a string to a file, creating parent directories as needed.
pub fn write_file(path: &Path, contents: &str) -> Result<(), EvalError> {
    if let Some(parent) = path.parent() {
        fs::create_dir_all(parent)?;
    }
    fs::write(path, contents)?;
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::metrics::ErrorSummary;
    use crate::runner::ExperimentResult;

    fn sample_points() -> Vec<Fig3Point> {
        vec![Fig3Point {
            congested_percent: 5.0,
            correlation: ErrorSummary::from_errors(&[0.01, 0.02]),
            independence: ErrorSummary::from_errors(&[0.1, 0.2]),
        }]
    }

    fn sample_cdf() -> CdfComparison {
        let result = ExperimentResult {
            trials: Vec::new(),
            correlation_errors: vec![0.01, 0.05],
            independence_errors: vec![0.2, 0.4],
        };
        CdfComparison::from_result("sample", &result)
    }

    #[test]
    fn sweep_table_contains_all_points() {
        let table = format_sweep_table("Fig 3(a)/(b)", &sample_points());
        assert!(table.contains("Fig 3(a)/(b)"));
        assert!(table.contains("5"));
        assert!(table.contains("0.0150")); // correlation mean
        assert!(table.contains("0.1500")); // independence mean
    }

    #[test]
    fn cdf_table_lists_thresholds_and_summaries() {
        let table = format_cdf_table(&sample_cdf());
        assert!(table.contains("sample"));
        assert!(table.contains("0.05"));
        assert!(table.contains("mean"));
    }

    #[test]
    fn csv_files_are_written() {
        let dir = std::env::temp_dir().join("netcorr_eval_report_test");
        let sweep_path = dir.join("sweep.csv");
        write_sweep_csv(&sweep_path, &sample_points()).unwrap();
        let contents = std::fs::read_to_string(&sweep_path).unwrap();
        assert!(contents.starts_with("congested_percent"));
        assert_eq!(contents.lines().count(), 2);

        let cdf_path = dir.join("cdf.csv");
        write_cdf_csv(&cdf_path, &sample_cdf()).unwrap();
        let contents = std::fs::read_to_string(&cdf_path).unwrap();
        assert!(contents.starts_with("abs_error"));
        assert!(contents.lines().count() > 10);
        std::fs::remove_dir_all(&dir).ok();
    }
}
