//! Figure 5: performance with unknown correlation patterns.
//!
//! 10% of the links are congested; a fraction of the congested links (25%
//! or 50%) are *mislabeled*: a worm-like flood makes links from different
//! correlation sets fail together, but the correlation partition handed to
//! the algorithms does not record this pattern, so both algorithms treat
//! those links as uncorrelated. The CDFs of the absolute error are reported
//! for a BRITE-style topology (Figures 5(a), 5(b)) and a PlanetLab-style
//! topology (Figures 5(c), 5(d)).

use crate::error::EvalError;
use crate::figures::{base_instance, CdfComparison, Scale, TopologyFamily};
use crate::runner::{run_experiment, ExperimentConfig};
use crate::scenario::{CorrelationLevel, ScenarioConfig};

/// The mislabeled fractions used by the paper (25% and 50% of the congested
/// links).
pub const MISLABELED_FRACTIONS: [f64; 2] = [0.25, 0.50];

/// Runs one Figure 5 experiment: the error CDFs when `mislabeled_fraction`
/// of the congested links participate in an unknown correlation pattern.
pub fn mislabeled_cdf(
    family: TopologyFamily,
    scale: Scale,
    mislabeled_fraction: f64,
    experiment: &ExperimentConfig,
) -> Result<CdfComparison, EvalError> {
    let base = base_instance(family, scale, experiment.base_seed)?;
    let scenario = ScenarioConfig {
        congested_fraction: 0.10,
        correlation_level: CorrelationLevel::HighlyCorrelated,
        mislabeled_fraction,
        ..ScenarioConfig::default()
    };
    let result = run_experiment(&base, &scenario, experiment)?;
    let label = format!(
        "Fig 5: {:.0}% of congested links mislabeled, 10% congested, {family}",
        mislabeled_fraction * 100.0
    );
    Ok(CdfComparison::from_result(label, &result))
}

/// Runs the full Figure 5 set: (25%, 50%) × (Brite, PlanetLab), i.e.
/// Figures 5(a)–5(d) in the paper's order.
pub fn full_figure(
    scale: Scale,
    experiment: &ExperimentConfig,
) -> Result<Vec<CdfComparison>, EvalError> {
    let mut comparisons = Vec::with_capacity(4);
    for family in [TopologyFamily::Brite, TopologyFamily::PlanetLab] {
        for &fraction in &MISLABELED_FRACTIONS {
            comparisons.push(mislabeled_cdf(family, scale, fraction, experiment)?);
        }
    }
    Ok(comparisons)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mislabeled_cdf_runs_on_both_families() {
        let experiment = ExperimentConfig {
            trials: 1,
            snapshots: 250,
            parallel: false,
            ..ExperimentConfig::smoke()
        };
        for family in [TopologyFamily::Brite, TopologyFamily::PlanetLab] {
            let comparison = mislabeled_cdf(family, Scale::Smoke, 0.5, &experiment).unwrap();
            assert!(comparison.label.contains("50%"));
            assert!(comparison.correlation_summary.count > 0);
        }
    }
}
