//! Figure 4: performance with unidentifiable links.
//!
//! 10% of the links are congested; a fraction of those congested links
//! (25% or 50%) are made *unidentifiable* by coarsening the correlation
//! partition around intermediate nodes so that Assumption 4 no longer
//! holds for them. The CDFs of the absolute error are reported for a
//! BRITE-style topology (Figures 4(a), 4(b)) and a PlanetLab-style topology
//! (Figures 4(c), 4(d)).

use crate::error::EvalError;
use crate::figures::{base_instance, CdfComparison, Scale, TopologyFamily};
use crate::runner::{run_experiment, ExperimentConfig};
use crate::scenario::{CorrelationLevel, ScenarioConfig};

/// The unidentifiable fractions used by the paper (25% and 50% of the
/// congested links).
pub const UNIDENTIFIABLE_FRACTIONS: [f64; 2] = [0.25, 0.50];

/// Runs one Figure 4 experiment: the error CDFs when
/// `unidentifiable_fraction` of the congested links are unidentifiable.
pub fn unidentifiable_cdf(
    family: TopologyFamily,
    scale: Scale,
    unidentifiable_fraction: f64,
    experiment: &ExperimentConfig,
) -> Result<CdfComparison, EvalError> {
    let base = base_instance(family, scale, experiment.base_seed)?;
    let scenario = ScenarioConfig {
        congested_fraction: 0.10,
        correlation_level: CorrelationLevel::HighlyCorrelated,
        unidentifiable_fraction,
        ..ScenarioConfig::default()
    };
    let result = run_experiment(&base, &scenario, experiment)?;
    let label = format!(
        "Fig 4: {:.0}% of congested links unidentifiable, 10% congested, {family}",
        unidentifiable_fraction * 100.0
    );
    Ok(CdfComparison::from_result(label, &result))
}

/// Runs the full Figure 4 set: (25%, 50%) × (Brite, PlanetLab), i.e.
/// Figures 4(a)–4(d) in the paper's order.
pub fn full_figure(
    scale: Scale,
    experiment: &ExperimentConfig,
) -> Result<Vec<CdfComparison>, EvalError> {
    let mut comparisons = Vec::with_capacity(4);
    for family in [TopologyFamily::Brite, TopologyFamily::PlanetLab] {
        for &fraction in &UNIDENTIFIABLE_FRACTIONS {
            comparisons.push(unidentifiable_cdf(family, scale, fraction, experiment)?);
        }
    }
    Ok(comparisons)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn unidentifiable_cdf_runs_on_both_families() {
        let experiment = ExperimentConfig {
            trials: 1,
            snapshots: 250,
            parallel: false,
            ..ExperimentConfig::smoke()
        };
        for family in [TopologyFamily::Brite, TopologyFamily::PlanetLab] {
            let comparison = unidentifiable_cdf(family, Scale::Smoke, 0.25, &experiment).unwrap();
            assert!(comparison.label.contains("25%"));
            assert!(comparison.correlation_summary.count > 0);
        }
    }
}
