//! Figure 3: performance under ideal conditions.
//!
//! All links are identifiable and there are no unknown correlation
//! patterns; the congested-link fraction is swept from 5% to 25% on a
//! BRITE-style topology.
//!
//! * **Figure 3(a)** — mean absolute error vs. fraction of congested links,
//!   highly correlated congestion.
//! * **Figure 3(b)** — 90th percentile of the absolute error, same sweep.
//! * **Figure 3(c)** — CDF of the absolute error at 10% congested links,
//!   highly correlated.
//! * **Figure 3(d)** — CDF at 10% congested links, loosely correlated.

use serde::{Deserialize, Serialize};

use crate::error::EvalError;
use crate::figures::{base_instance, CdfComparison, Scale, TopologyFamily};
use crate::metrics::ErrorSummary;
use crate::runner::{run_experiment, ExperimentConfig};
use crate::scenario::{CorrelationLevel, ScenarioConfig};

/// The congested-link fractions swept by Figures 3(a) and 3(b).
pub const CONGESTED_FRACTIONS: [f64; 5] = [0.05, 0.10, 0.15, 0.20, 0.25];

/// One point of the Figure 3(a)/(b) sweep.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Fig3Point {
    /// Fraction of congested links (x-axis, as a percentage).
    pub congested_percent: f64,
    /// Pooled error summary of the correlation algorithm.
    pub correlation: ErrorSummary,
    /// Pooled error summary of the independence baseline.
    pub independence: ErrorSummary,
}

/// Runs the Figure 3(a)/(b) sweep: mean and 90th-percentile absolute error
/// as the fraction of congested links grows, with highly correlated
/// congestion on a BRITE-style topology.
pub fn congestion_sweep(
    scale: Scale,
    level: CorrelationLevel,
    experiment: &ExperimentConfig,
) -> Result<Vec<Fig3Point>, EvalError> {
    let base = base_instance(TopologyFamily::Brite, scale, experiment.base_seed)?;
    let mut points = Vec::with_capacity(CONGESTED_FRACTIONS.len());
    for &fraction in &CONGESTED_FRACTIONS {
        let scenario = ScenarioConfig {
            congested_fraction: fraction,
            correlation_level: level,
            ..ScenarioConfig::default()
        };
        let result = run_experiment(&base, &scenario, experiment)?;
        points.push(Fig3Point {
            congested_percent: fraction * 100.0,
            correlation: result.correlation_summary(),
            independence: result.independence_summary(),
        });
    }
    Ok(points)
}

/// Runs the Figure 3(c)/(d) experiment: the CDF of the absolute error at
/// 10% congested links, for the given correlation level, on a BRITE-style
/// topology.
pub fn cdf_at_ten_percent(
    scale: Scale,
    level: CorrelationLevel,
    experiment: &ExperimentConfig,
) -> Result<CdfComparison, EvalError> {
    let base = base_instance(TopologyFamily::Brite, scale, experiment.base_seed)?;
    let scenario = ScenarioConfig {
        congested_fraction: 0.10,
        correlation_level: level,
        ..ScenarioConfig::default()
    };
    let result = run_experiment(&base, &scenario, experiment)?;
    let label = match level {
        CorrelationLevel::HighlyCorrelated => {
            "Fig 3(c): 10% congested links, highly correlated, Brite"
        }
        CorrelationLevel::LooselyCorrelated => {
            "Fig 3(d): 10% congested links, loosely correlated, Brite"
        }
    };
    Ok(CdfComparison::from_result(label, &result))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sweep_produces_one_point_per_fraction() {
        let experiment = ExperimentConfig {
            trials: 1,
            snapshots: 200,
            parallel: false,
            ..ExperimentConfig::smoke()
        };
        let points = congestion_sweep(
            Scale::Smoke,
            CorrelationLevel::LooselyCorrelated,
            &experiment,
        )
        .unwrap();
        assert_eq!(points.len(), CONGESTED_FRACTIONS.len());
        assert_eq!(points[0].congested_percent, 5.0);
        assert_eq!(points.last().unwrap().congested_percent, 25.0);
        for point in &points {
            assert!(point.correlation.count > 0);
            assert!(point.correlation.mean <= 1.0);
            assert!(point.independence.mean <= 1.0);
        }
    }

    #[test]
    fn cdf_experiment_produces_comparable_series() {
        let experiment = ExperimentConfig {
            trials: 1,
            snapshots: 300,
            parallel: false,
            ..ExperimentConfig::smoke()
        };
        let comparison = cdf_at_ten_percent(
            Scale::Smoke,
            CorrelationLevel::HighlyCorrelated,
            &experiment,
        )
        .unwrap();
        assert!(comparison.label.contains("highly"));
        assert_eq!(comparison.correlation.len(), comparison.independence.len());
        // Both CDFs end at 100%.
        assert_eq!(comparison.correlation.last().unwrap().1, 100.0);
        assert_eq!(comparison.independence.last().unwrap().1, 100.0);
    }
}
