//! Reproduction of the paper's evaluation figures.
//!
//! Each submodule corresponds to one figure of Section 5:
//!
//! * [`fig3`] — performance under ideal conditions (all links identifiable,
//!   no unknown correlation patterns) on BRITE-style topologies, as the
//!   fraction of congested links and the correlation level vary.
//! * [`fig4`] — performance when a fraction of the congested links are
//!   *unidentifiable* (Assumption 4 broken), on BRITE-style and
//!   PlanetLab-style topologies.
//! * [`fig5`] — performance when a fraction of the congested links are
//!   *mislabeled* (an unknown correlation pattern, the worm scenario), on
//!   both topology families.
//!
//! Figures can be produced at two scales: [`Scale::Smoke`] (small
//! topologies, used by tests and the Criterion benchmarks) and
//! [`Scale::Paper`] (the paper's ~1500-path topologies, used by the
//! `fig3` / `fig4` / `fig5` binaries and recorded in `EXPERIMENTS.md`).

pub mod fig3;
pub mod fig4;
pub mod fig5;

use rand::rngs::StdRng;
use rand::SeedableRng;
use serde::{Deserialize, Serialize};

use netcorr_topology::generators::{brite, planetlab};
use netcorr_topology::TopologyInstance;

use crate::error::EvalError;
use crate::metrics::{cdf_at, default_cdf_grid, ErrorSummary};
use crate::runner::ExperimentResult;

/// Which synthetic topology family an experiment runs on.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum TopologyFamily {
    /// BRITE-style two-level (AS + router) topology.
    Brite,
    /// PlanetLab-style traceroute-derived topology.
    PlanetLab,
}

impl std::fmt::Display for TopologyFamily {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            TopologyFamily::Brite => write!(f, "Brite"),
            TopologyFamily::PlanetLab => write!(f, "PlanetLab"),
        }
    }
}

/// Size of the generated topologies.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum Scale {
    /// Small topologies for tests and benchmarks.
    Smoke,
    /// Paper-scale topologies (~1500 measurement paths).
    Paper,
}

/// Generates the base topology instance for a figure.
pub fn base_instance(
    family: TopologyFamily,
    scale: Scale,
    seed: u64,
) -> Result<TopologyInstance, EvalError> {
    let mut rng = StdRng::seed_from_u64(seed);
    match family {
        TopologyFamily::Brite => {
            let config = match scale {
                Scale::Smoke => brite::BriteConfig::small(),
                Scale::Paper => brite::BriteConfig::default(),
            };
            Ok(brite::generate(&config, &mut rng)?.instance)
        }
        TopologyFamily::PlanetLab => {
            let config = match scale {
                Scale::Smoke => planetlab::PlanetLabConfig::small(),
                Scale::Paper => planetlab::PlanetLabConfig::default(),
            };
            Ok(planetlab::generate(&config, &mut rng)?)
        }
    }
}

/// A pair of error CDFs (correlation algorithm vs. independence baseline),
/// the format of Figures 3(c)–(d), 4 and 5.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct CdfComparison {
    /// Human-readable description of the setup (used as a table/CSV
    /// header).
    pub label: String,
    /// CDF of the correlation algorithm's absolute error:
    /// `(error threshold, % of potentially congested links)`.
    pub correlation: Vec<(f64, f64)>,
    /// CDF of the independence baseline's absolute error.
    pub independence: Vec<(f64, f64)>,
    /// Summary statistics of the correlation algorithm.
    pub correlation_summary: ErrorSummary,
    /// Summary statistics of the independence baseline.
    pub independence_summary: ErrorSummary,
}

impl CdfComparison {
    /// Builds a comparison from a pooled experiment result.
    pub fn from_result(label: impl Into<String>, result: &ExperimentResult) -> Self {
        let grid = default_cdf_grid();
        CdfComparison {
            label: label.into(),
            correlation: cdf_at(&result.correlation_errors, &grid),
            independence: cdf_at(&result.independence_errors, &grid),
            correlation_summary: result.correlation_summary(),
            independence_summary: result.independence_summary(),
        }
    }

    /// The fraction (in %) of links whose error is below `threshold` for
    /// `(correlation, independence)`.
    pub fn fraction_below(&self, threshold: f64) -> (f64, f64) {
        let lookup = |cdf: &[(f64, f64)]| -> f64 {
            cdf.iter()
                .filter(|(x, _)| *x <= threshold + 1e-12)
                .map(|&(_, y)| y)
                .next_back()
                .unwrap_or(0.0)
        };
        (lookup(&self.correlation), lookup(&self.independence))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn base_instances_are_generated_for_both_families() {
        let brite = base_instance(TopologyFamily::Brite, Scale::Smoke, 1).unwrap();
        assert!(brite.num_links() > 0);
        let planetlab = base_instance(TopologyFamily::PlanetLab, Scale::Smoke, 1).unwrap();
        assert!(planetlab.num_links() > 0);
        assert_eq!(TopologyFamily::Brite.to_string(), "Brite");
        assert_eq!(TopologyFamily::PlanetLab.to_string(), "PlanetLab");
    }

    #[test]
    fn cdf_comparison_reports_fractions() {
        let result = ExperimentResult {
            trials: Vec::new(),
            correlation_errors: vec![0.01, 0.02, 0.5],
            independence_errors: vec![0.2, 0.3, 0.6],
        };
        let comparison = CdfComparison::from_result("test", &result);
        let (corr, indep) = comparison.fraction_below(0.1);
        assert!((corr - 200.0 / 3.0).abs() < 1e-9);
        assert!(indep < 1e-9);
        assert_eq!(comparison.label, "test");
        assert!(comparison.correlation_summary.mean < comparison.independence_summary.mean);
    }
}
