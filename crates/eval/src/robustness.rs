//! The robustness harness: model-misspecification degradation curves.
//!
//! The inference guarantees of the paper hold under its own generative
//! model. This module measures what happens when that model is wrong, by
//! sweeping the perturbation families of [`netcorr_sim::perturb`] (plus
//! the paper's own worm / mislabeling scenario) over an intensity grid on
//! several topologies, running the full estimator → equations → inference
//! pipeline per cell, and scoring accuracy ([`ErrorSummary`]) and
//! identifiability ([`DetectionSummary`]) degradation.
//!
//! The output is a committed `ROBUSTNESS.json` report: per-cell
//! degradation curves **plus regression thresholds** derived from the
//! measured values. `bench_gate` (and `netcorr-robustness --check`)
//! re-runs the same seeded matrix and fails when any cell degrades past
//! its committed threshold, so a code change that silently hurts
//! robustness fails CI.
//!
//! Everything is deterministic: cell seeds derive from the report's base
//! seed, the perturbed simulator is bit-reproducible from
//! `(seed, PerturbationConfig)`, and the scenario / measurement seeds are
//! shared across families and intensities of one topology — so the
//! `intensity = 0` column of every family is the *same* unperturbed
//! baseline and the curves are directly comparable.

use std::path::Path;

use rand::rngs::StdRng;
use rand::SeedableRng;
use serde::{Deserialize, Serialize};

use netcorr_core::{AlgorithmConfig, ContextCache};
use netcorr_sim::{
    GilbertElliottConfig, LossDriftConfig, MissingRowsConfig, PerturbationConfig,
    PerturbedSimulator, RoutingChurnConfig, SimulationConfig, Simulator,
};
use netcorr_topology::{toy, TopologyInstance};

use crate::error::EvalError;
use crate::figures::{base_instance, Scale, TopologyFamily};
use crate::metrics::{
    absolute_errors, detection_summary, potentially_congested_links, DetectionSummary, ErrorSummary,
};
use crate::persist::atomic_write;
use crate::runner::{run_trial_observations, sharded_perturbed_observations, ExperimentConfig};
use crate::scenario::{CorrelationLevel, ScenarioBuilder, ScenarioConfig};

/// The topologies the robustness matrix runs on.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum RobustnessTopology {
    /// The paper's Figure 1(a) toy topology (4 links, 3 paths).
    Fig1a,
    /// The smoke-scale PlanetLab-style topology.
    PlanetLabSmoke,
    /// The smoke-scale BRITE-style topology.
    BriteSmoke,
}

impl RobustnessTopology {
    /// Every topology of the matrix.
    pub const ALL: [RobustnessTopology; 3] = [
        RobustnessTopology::Fig1a,
        RobustnessTopology::PlanetLabSmoke,
        RobustnessTopology::BriteSmoke,
    ];

    /// Stable identifier used in cell keys and the JSON report.
    pub fn key(self) -> &'static str {
        match self {
            RobustnessTopology::Fig1a => "fig1a",
            RobustnessTopology::PlanetLabSmoke => "planetlab-smoke",
            RobustnessTopology::BriteSmoke => "brite-smoke",
        }
    }

    /// Builds the base instance (seeded, deterministic).
    pub fn instance(self, seed: u64) -> Result<TopologyInstance, EvalError> {
        match self {
            RobustnessTopology::Fig1a => Ok(toy::figure_1a()),
            RobustnessTopology::PlanetLabSmoke => {
                base_instance(TopologyFamily::PlanetLab, Scale::Smoke, seed)
            }
            RobustnessTopology::BriteSmoke => {
                base_instance(TopologyFamily::Brite, Scale::Smoke, seed)
            }
        }
    }

    /// The base scenario knobs for this topology. The toy topology has
    /// only 4 links, so it congests half of them; the generated
    /// topologies use the paper's 10%.
    pub fn scenario_config(self) -> ScenarioConfig {
        let congested_fraction = match self {
            RobustnessTopology::Fig1a => 0.5,
            _ => 0.10,
        };
        ScenarioConfig {
            congested_fraction,
            correlation_level: CorrelationLevel::HighlyCorrelated,
            ..ScenarioConfig::default()
        }
    }
}

/// The perturbation families of the matrix.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum PerturbationFamily {
    /// Gilbert–Elliott burst chains (temporally correlated congestion).
    Burst,
    /// Non-stationary loss-rate drift.
    Drift,
    /// Missing `(snapshot, path)` measurements.
    Missing,
    /// Mid-trial routing churn.
    Churn,
    /// The paper's worm scenario: a fraction of congested links carries
    /// an unknown correlation pattern (model perturbation, not a
    /// simulator perturbation).
    Worm,
}

impl PerturbationFamily {
    /// Every family of the matrix.
    pub const ALL: [PerturbationFamily; 5] = [
        PerturbationFamily::Burst,
        PerturbationFamily::Drift,
        PerturbationFamily::Missing,
        PerturbationFamily::Churn,
        PerturbationFamily::Worm,
    ];

    /// Stable identifier used in cell keys and the JSON report.
    pub fn key(self) -> &'static str {
        match self {
            PerturbationFamily::Burst => "burst",
            PerturbationFamily::Drift => "drift",
            PerturbationFamily::Missing => "missing",
            PerturbationFamily::Churn => "churn",
            PerturbationFamily::Worm => "worm",
        }
    }

    /// The simulator perturbation realising this family at `intensity`.
    pub fn perturbation(self, intensity: f64) -> PerturbationConfig {
        let mut config = PerturbationConfig::none();
        if intensity <= 0.0 {
            return config;
        }
        match self {
            PerturbationFamily::Burst => {
                config.gilbert_elliott = Some(GilbertElliottConfig::with_intensity(intensity));
            }
            PerturbationFamily::Drift => {
                config.loss_drift = Some(LossDriftConfig::with_intensity(intensity));
            }
            PerturbationFamily::Missing => {
                // Full row loss leaves nothing to infer from; cap at 60%.
                config.missing_rows = Some(MissingRowsConfig::with_intensity(intensity * 0.6));
            }
            PerturbationFamily::Churn => {
                config.routing_churn = Some(RoutingChurnConfig::with_intensity(intensity));
            }
            PerturbationFamily::Worm => {}
        }
        config
    }

    /// The scenario knobs realising this family at `intensity` (only the
    /// worm family perturbs the scenario rather than the simulator).
    pub fn scenario_config(self, base: ScenarioConfig, intensity: f64) -> ScenarioConfig {
        match self {
            PerturbationFamily::Worm => ScenarioConfig {
                mislabeled_fraction: intensity,
                ..base
            },
            _ => base,
        }
    }
}

/// Configuration of a robustness matrix run.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct RobustnessConfig {
    /// Trials per cell (scenario + measurement seeds shared across the
    /// families and intensities of one topology).
    pub trials: usize,
    /// Snapshots per trial.
    pub snapshots: usize,
    /// Base seed of the whole matrix.
    pub base_seed: u64,
    /// The intensity grid (must contain `0.0` for the baseline column).
    pub intensities: Vec<f64>,
    /// Simulator configuration.
    pub simulation: SimulationConfig,
    /// Inference configuration shared by both algorithms.
    pub algorithm: AlgorithmConfig,
    /// Probability threshold of the detection metrics.
    pub detection_threshold: f64,
    /// Within-trial measurement shards (0 = auto).
    pub shards: usize,
}

impl RobustnessConfig {
    /// The committed smoke matrix: 3 topologies × 5 families × 4
    /// intensities, 3 trials of 512 snapshots each — small enough for CI,
    /// large enough that the degradation curves are stable.
    pub fn smoke() -> Self {
        RobustnessConfig {
            trials: 3,
            snapshots: 512,
            base_seed: 0xb0b5,
            intensities: vec![0.0, 0.2, 0.4, 0.8],
            simulation: SimulationConfig::default(),
            algorithm: AlgorithmConfig::default(),
            detection_threshold: 0.05,
            shards: 1,
        }
    }
}

/// The pooled measurement of one matrix cell.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct CellOutcome {
    /// Pooled absolute-error summary of the correlation algorithm.
    pub correlation: ErrorSummary,
    /// Pooled absolute-error summary of the independence baseline.
    pub independence: ErrorSummary,
    /// Pooled detection counts of the correlation algorithm.
    pub detection: DetectionSummary,
}

/// One cell of the committed report: measurement plus the regression
/// thresholds `bench_gate` enforces.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct RobustnessCell {
    /// Topology identifier ([`RobustnessTopology::key`]).
    pub topology: String,
    /// Family identifier ([`PerturbationFamily::key`]).
    pub family: String,
    /// Perturbation intensity in `[0, 1]`.
    pub intensity: f64,
    /// Measured outcome.
    pub outcome: CellOutcome,
    /// Ceiling on the correlation algorithm's mean absolute error.
    pub max_correlation_mean_error: f64,
    /// Floor on the correlation algorithm's detection rate.
    pub min_detection_rate: f64,
}

impl RobustnessCell {
    /// The unique `topology/family/intensity` key of the cell.
    pub fn key(&self) -> String {
        cell_key(&self.topology, &self.family, self.intensity)
    }
}

/// Formats the canonical cell key.
pub fn cell_key(topology: &str, family: &str, intensity: f64) -> String {
    format!("{topology}/{family}/{intensity:.2}")
}

/// A full matrix run.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct RobustnessReport {
    /// The configuration the matrix ran with.
    pub config: RobustnessConfig,
    /// One cell per topology × family × intensity.
    pub cells: Vec<RobustnessCell>,
    /// The asserted worm scenario (promoted from `examples/worm_attack`).
    pub worm: WormOutcome,
}

/// Runs one cell: `trials` perturbed trials through the full pipeline,
/// pooling errors and detection counts.
pub fn run_cell(
    instance: &TopologyInstance,
    scenario_config: &ScenarioConfig,
    perturbation: &PerturbationConfig,
    config: &RobustnessConfig,
    topology_seed: u64,
) -> Result<CellOutcome, EvalError> {
    let builder = ScenarioBuilder::new(*scenario_config)?;
    let experiment = ExperimentConfig {
        snapshots: config.snapshots,
        trials: config.trials,
        base_seed: topology_seed,
        simulation: config.simulation,
        algorithm: config.algorithm,
        parallel: false,
        trial_threads: 1,
        shards: config.shards,
    };
    let contexts = ContextCache::new();
    let mut correlation_errors = Vec::new();
    let mut independence_errors = Vec::new();
    let mut detection = DetectionSummary::empty(config.detection_threshold);
    for trial in 0..config.trials {
        // Seeds depend only on (topology, trial): families and
        // intensities of one topology share scenarios and measurement
        // streams, so their curves are directly comparable and the
        // intensity-0 column is the common baseline.
        let scenario_seed = topology_seed.wrapping_add(trial as u64);
        let sim_seed = topology_seed.wrapping_add(1000 + trial as u64);
        let scenario = builder.build(instance, &mut StdRng::seed_from_u64(scenario_seed))?;
        let simulator = PerturbedSimulator::new(
            &scenario.instance,
            &scenario.model,
            config.simulation,
            *perturbation,
        )
        .map_err(EvalError::Simulation)?;
        let observations =
            sharded_perturbed_observations(&simulator, config.snapshots, sim_seed, config.shards);
        let trial_result =
            run_trial_observations(&scenario, &experiment, &observations, &contexts)?;
        correlation_errors.extend_from_slice(&trial_result.correlation_errors);
        independence_errors.extend_from_slice(&trial_result.independence_errors);

        // Detection is scored for the correlation algorithm over the
        // same potentially congested links the errors use.
        let links = potentially_congested_links(&scenario.instance, &observations);
        let mut correlation_config = config.algorithm;
        correlation_config.equations.respect_correlation = true;
        let estimate = contexts
            .context(&scenario.instance, &correlation_config)
            .and_then(|context| context.infer(&observations))
            .map_err(EvalError::Inference)?;
        detection.merge(&detection_summary(
            &estimate,
            &scenario.true_marginals,
            &links,
            config.detection_threshold,
        ));
    }
    Ok(CellOutcome {
        correlation: ErrorSummary::from_errors(&correlation_errors),
        independence: ErrorSummary::from_errors(&independence_errors),
        detection,
    })
}

/// Rounds `value` up to 4 decimals (threshold ceilings).
fn ceil4(value: f64) -> f64 {
    (value * 1e4).ceil() / 1e4
}

/// Rounds `value` down to 4 decimals (threshold floors), clamped at 0.
fn floor4(value: f64) -> f64 {
    ((value * 1e4).floor() / 1e4).max(0.0)
}

/// Derives the committed regression thresholds from a measured outcome:
/// a 1.5× + 0.02 margin on the mean error ceiling and a 0.8× − 0.05
/// margin on the detection-rate floor — wide enough for legitimate
/// numeric churn, tight enough that a real degradation (a broken
/// estimator, a mis-selected equation system) trips the gate.
pub fn derive_thresholds(outcome: &CellOutcome) -> (f64, f64) {
    let max_mean = ceil4(outcome.correlation.mean * 1.5 + 0.02);
    let min_detection = floor4(outcome.detection.detection_rate() * 0.8 - 0.05);
    (max_mean, min_detection)
}

/// Runs the full matrix: every topology × family × intensity cell, plus
/// the asserted worm scenario.
pub fn run_matrix(config: &RobustnessConfig) -> Result<RobustnessReport, EvalError> {
    if config.trials == 0 || config.snapshots == 0 || config.intensities.is_empty() {
        return Err(EvalError::InvalidScenario(
            "a robustness matrix needs trials, snapshots and intensities".to_string(),
        ));
    }
    let mut cells = Vec::new();
    for (topo_index, &topology) in RobustnessTopology::ALL.iter().enumerate() {
        let instance = topology.instance(config.base_seed)?;
        let topology_seed = config
            .base_seed
            .wrapping_add(0x1_0000u64.wrapping_mul(topo_index as u64 + 1));
        let base_scenario = topology.scenario_config();
        // The unperturbed cell is identical for every family (shared
        // seeds, no perturbation): compute it once per topology.
        let mut baseline: Option<CellOutcome> = None;
        for &family in &PerturbationFamily::ALL {
            for &intensity in &config.intensities {
                let outcome = if intensity <= 0.0 {
                    if baseline.is_none() {
                        baseline = Some(run_cell(
                            &instance,
                            &base_scenario,
                            &PerturbationConfig::none(),
                            config,
                            topology_seed,
                        )?);
                    }
                    baseline.clone().expect("baseline just computed")
                } else {
                    let scenario_config = family.scenario_config(base_scenario, intensity);
                    let perturbation = family.perturbation(intensity);
                    run_cell(
                        &instance,
                        &scenario_config,
                        &perturbation,
                        config,
                        topology_seed,
                    )?
                };
                let (max_mean, min_detection) = derive_thresholds(&outcome);
                cells.push(RobustnessCell {
                    topology: topology.key().to_string(),
                    family: family.key().to_string(),
                    intensity,
                    outcome,
                    max_correlation_mean_error: max_mean,
                    min_detection_rate: min_detection,
                });
            }
        }
    }
    let worm = run_worm_scenario(config.base_seed)?;
    Ok(RobustnessReport {
        config: config.clone(),
        cells,
        worm,
    })
}

/// The measured, asserted worm scenario (the promotion of
/// `examples/worm_attack` into the matrix): PlanetLab-style topology,
/// half of the congested links flooded together by a worm the algorithms
/// are not told about.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct WormOutcome {
    /// Number of potentially congested links scored.
    pub links_scored: usize,
    /// Number of mislabeled (worm-flooded) links.
    pub mislabeled_links: usize,
    /// Error summary of the correlation algorithm over the scored links.
    pub correlation: ErrorSummary,
    /// Error summary of the independence baseline over the scored links.
    pub independence: ErrorSummary,
    /// Correlation algorithm's mean error over the mislabeled links only.
    pub correlation_mislabeled_mean: f64,
    /// Independence baseline's mean error over the mislabeled links only.
    pub independence_mislabeled_mean: f64,
}

impl WormOutcome {
    /// The scenario's assertion — the paper's Figure 5 observation: the
    /// correlation algorithm ignores only the worm's (unknown) pattern
    /// while the baseline ignores every correlation set, so it must not
    /// be less accurate than the baseline.
    pub fn check(&self) -> Result<(), String> {
        if self.correlation.mean <= self.independence.mean {
            Ok(())
        } else {
            Err(format!(
                "worm scenario regressed: correlation mean error {:.4} exceeds the independence \
                 baseline's {:.4}",
                self.correlation.mean, self.independence.mean
            ))
        }
    }
}

/// Trials pooled by [`run_worm_scenario`] — single-trial comparisons of
/// two estimators on a small topology are seed lotteries; the paper's
/// Figure 5 claim is about the pooled error.
pub const WORM_TRIALS: usize = 4;

/// Snapshots per worm trial (the scale of `examples/worm_attack`).
pub const WORM_SNAPSHOTS: usize = 1500;

/// Runs the worm scenario deterministically from `seed` and scores both
/// algorithms (the measured form of `examples/worm_attack`): pooled over
/// [`WORM_TRIALS`] seeded trials of [`WORM_SNAPSHOTS`] snapshots each on
/// PlanetLab-style topologies with half of the congested links flooded
/// together by the worm.
pub fn run_worm_scenario(seed: u64) -> Result<WormOutcome, EvalError> {
    let scenario_config = ScenarioConfig {
        congested_fraction: 0.10,
        correlation_level: CorrelationLevel::HighlyCorrelated,
        mislabeled_fraction: 0.5,
        ..ScenarioConfig::default()
    };
    let builder = ScenarioBuilder::new(scenario_config)?;
    let contexts = ContextCache::new();
    let mut links_scored = 0;
    let mut mislabeled_links = 0;
    let mut correlation_errors = Vec::new();
    let mut independence_errors = Vec::new();
    let mut correlation_mislabeled = Vec::new();
    let mut independence_mislabeled = Vec::new();
    for trial in 0..WORM_TRIALS {
        let trial_seed = seed ^ 0x3075u64.wrapping_add((trial as u64) << 32);
        let base = base_instance(TopologyFamily::PlanetLab, Scale::Smoke, trial_seed)?;
        let mut rng = StdRng::seed_from_u64(trial_seed);
        let scenario = builder.build(&base, &mut rng)?;
        let simulator = Simulator::new(
            &scenario.instance,
            &scenario.model,
            SimulationConfig::default(),
        )
        .map_err(EvalError::Simulation)?;
        let observations = simulator.run_seeded(WORM_SNAPSHOTS, trial_seed ^ 0x5eed);

        let mut correlation_config = AlgorithmConfig::default();
        correlation_config.equations.respect_correlation = true;
        let correlation = contexts
            .context(&scenario.instance, &correlation_config)
            .and_then(|context| context.infer(&observations))
            .map_err(EvalError::Inference)?;
        let mut independence_config = AlgorithmConfig::default();
        independence_config.equations.respect_correlation = false;
        let independence = contexts
            .context(&scenario.instance, &independence_config)
            .and_then(|context| context.infer(&observations))
            .map_err(EvalError::Inference)?;

        let links = potentially_congested_links(&scenario.instance, &observations);
        links_scored += links.len();
        mislabeled_links += scenario.mislabeled_links.len();
        correlation_errors.extend(absolute_errors(
            &correlation,
            &scenario.true_marginals,
            &links,
        ));
        independence_errors.extend(absolute_errors(
            &independence,
            &scenario.true_marginals,
            &links,
        ));
        correlation_mislabeled.extend(absolute_errors(
            &correlation,
            &scenario.true_marginals,
            &scenario.mislabeled_links,
        ));
        independence_mislabeled.extend(absolute_errors(
            &independence,
            &scenario.true_marginals,
            &scenario.mislabeled_links,
        ));
    }
    Ok(WormOutcome {
        links_scored,
        mislabeled_links,
        correlation: ErrorSummary::from_errors(&correlation_errors),
        independence: ErrorSummary::from_errors(&independence_errors),
        correlation_mislabeled_mean: ErrorSummary::from_errors(&correlation_mislabeled).mean,
        independence_mislabeled_mean: ErrorSummary::from_errors(&independence_mislabeled).mean,
    })
}

impl RobustnessReport {
    /// Serialises the report as deterministic, human-diffable JSON. The
    /// layout is hand-rolled so that `--check` and `bench_gate` can read
    /// the thresholds back with a plain text scan (the vendored
    /// `serde_json` shim only serializes).
    pub fn to_json(&self) -> String {
        let mut out = String::new();
        out.push_str("{\n");
        out.push_str("  \"format\": \"netcorr-robustness v1\",\n");
        out.push_str(&format!("  \"trials\": {},\n", self.config.trials));
        out.push_str(&format!("  \"snapshots\": {},\n", self.config.snapshots));
        out.push_str(&format!("  \"base_seed\": {},\n", self.config.base_seed));
        out.push_str(&format!(
            "  \"detection_threshold\": {},\n",
            self.config.detection_threshold
        ));
        let intensities: Vec<String> = self
            .config
            .intensities
            .iter()
            .map(|i| format!("{i:.2}"))
            .collect();
        out.push_str(&format!(
            "  \"intensities\": [{}],\n",
            intensities.join(", ")
        ));
        out.push_str("  \"worm_scenario\": {\n");
        out.push_str(&format!(
            "    \"links_scored\": {},\n    \"mislabeled_links\": {},\n",
            self.worm.links_scored, self.worm.mislabeled_links
        ));
        out.push_str(&format!(
            "    \"correlation_mean_error\": {:.6},\n    \"independence_mean_error\": {:.6},\n",
            self.worm.correlation.mean, self.worm.independence.mean
        ));
        out.push_str(&format!(
            "    \"correlation_mislabeled_mean\": {:.6},\n    \
             \"independence_mislabeled_mean\": {:.6}\n",
            self.worm.correlation_mislabeled_mean, self.worm.independence_mislabeled_mean
        ));
        out.push_str("  },\n");
        out.push_str("  \"cells\": [\n");
        for (i, cell) in self.cells.iter().enumerate() {
            out.push_str("    {\n");
            out.push_str(&format!("      \"cell\": \"{}\",\n", cell.key()));
            out.push_str(&format!("      \"topology\": \"{}\",\n", cell.topology));
            out.push_str(&format!("      \"family\": \"{}\",\n", cell.family));
            out.push_str(&format!("      \"intensity\": {:.2},\n", cell.intensity));
            out.push_str(&format!(
                "      \"correlation_mean_error\": {:.6},\n",
                cell.outcome.correlation.mean
            ));
            out.push_str(&format!(
                "      \"correlation_p90_error\": {:.6},\n",
                cell.outcome.correlation.p90
            ));
            out.push_str(&format!(
                "      \"correlation_max_error\": {:.6},\n",
                cell.outcome.correlation.max
            ));
            out.push_str(&format!(
                "      \"independence_mean_error\": {:.6},\n",
                cell.outcome.independence.mean
            ));
            out.push_str(&format!(
                "      \"detection_rate\": {:.6},\n",
                cell.outcome.detection.detection_rate()
            ));
            out.push_str(&format!(
                "      \"false_alarm_rate\": {:.6},\n",
                cell.outcome.detection.false_alarm_rate()
            ));
            out.push_str(&format!(
                "      \"links_scored\": {},\n",
                cell.outcome.correlation.count
            ));
            out.push_str(&format!(
                "      \"max_correlation_mean_error\": {:.4},\n",
                cell.max_correlation_mean_error
            ));
            out.push_str(&format!(
                "      \"min_detection_rate\": {:.4}\n",
                cell.min_detection_rate
            ));
            out.push_str(if i + 1 == self.cells.len() {
                "    }\n"
            } else {
                "    },\n"
            });
        }
        out.push_str("  ]\n}\n");
        out
    }

    /// Atomically writes the JSON report to `path`.
    pub fn write(&self, path: &Path) -> Result<(), EvalError> {
        atomic_write(path, self.to_json().as_bytes())
    }
}

/// The comparison of one freshly measured cell against the committed
/// thresholds of a baseline report.
#[derive(Debug, Clone)]
pub struct CellCheck {
    /// The cell key (`topology/family/intensity`).
    pub cell: String,
    /// Freshly measured correlation mean error.
    pub measured_mean: f64,
    /// Committed ceiling for the mean error.
    pub max_mean: f64,
    /// Freshly measured detection rate.
    pub measured_detection: f64,
    /// Committed floor for the detection rate.
    pub min_detection: f64,
}

impl CellCheck {
    /// Whether the fresh measurement respects both committed thresholds.
    pub fn passes(&self) -> bool {
        self.measured_mean <= self.max_mean && self.measured_detection >= self.min_detection
    }
}

/// Extracts `"<key>": <number>` from `text` starting at `from`, stopping
/// at `limit` — the same plain text scan `bench_gate` uses (the vendored
/// `serde_json` shim only serializes).
fn scan_number(text: &str, from: usize, limit: usize, key: &str) -> Option<f64> {
    let needle = format!("\"{key}\":");
    let window = &text[from..limit];
    let start = window.find(&needle)? + needle.len();
    let rest = window[start..].trim_start();
    let end = rest
        .find(|c: char| !(c.is_ascii_digit() || c == '.' || c == '-'))
        .unwrap_or(rest.len());
    rest[..end].parse().ok()
}

/// Compares a freshly run report against the committed baseline text,
/// cell by cell. Returns one [`CellCheck`] per fresh cell; a fresh cell
/// missing from the baseline is an error (the committed report is stale —
/// regenerate it with `netcorr-robustness`).
pub fn check_against_baseline(
    report: &RobustnessReport,
    baseline: &str,
) -> Result<Vec<CellCheck>, EvalError> {
    let mut checks = Vec::new();
    for cell in &report.cells {
        let key = cell.key();
        let marker = format!("\"cell\": \"{key}\"");
        let start = baseline.find(&marker).ok_or_else(|| {
            EvalError::InvalidScenario(format!(
                "cell {key} is missing from the committed baseline — regenerate ROBUSTNESS.json \
                 with `cargo run --release -p netcorr-eval --bin netcorr-robustness`"
            ))
        })? + marker.len();
        // Thresholds live inside this cell's object: stop the scan at the
        // next cell marker (or the end of the file for the last cell).
        let limit = baseline[start..]
            .find("\"cell\":")
            .map(|o| start + o)
            .unwrap_or(baseline.len());
        let max_mean = scan_number(baseline, start, limit, "max_correlation_mean_error")
            .ok_or_else(|| {
                EvalError::InvalidScenario(format!(
                    "cell {key} has no max_correlation_mean_error in the committed baseline"
                ))
            })?;
        let min_detection =
            scan_number(baseline, start, limit, "min_detection_rate").ok_or_else(|| {
                EvalError::InvalidScenario(format!(
                    "cell {key} has no min_detection_rate in the committed baseline"
                ))
            })?;
        checks.push(CellCheck {
            cell: key,
            measured_mean: cell.outcome.correlation.mean,
            max_mean,
            measured_detection: cell.outcome.detection.detection_rate(),
            min_detection,
        });
    }
    Ok(checks)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny_config() -> RobustnessConfig {
        RobustnessConfig {
            trials: 1,
            snapshots: 192,
            base_seed: 0xb0b5,
            intensities: vec![0.0, 0.5],
            ..RobustnessConfig::smoke()
        }
    }

    #[test]
    fn cells_are_deterministic_and_families_share_the_baseline() {
        let instance = RobustnessTopology::Fig1a.instance(1).unwrap();
        let config = tiny_config();
        let scenario = RobustnessTopology::Fig1a.scenario_config();
        let a = run_cell(
            &instance,
            &scenario,
            &PerturbationConfig::none(),
            &config,
            7,
        )
        .unwrap();
        let b = run_cell(
            &instance,
            &scenario,
            &PerturbationConfig::none(),
            &config,
            7,
        )
        .unwrap();
        assert_eq!(a.correlation, b.correlation);
        assert_eq!(a.detection, b.detection);
        // A perturbed cell differs from the baseline.
        let burst = run_cell(
            &instance,
            &scenario,
            &PerturbationFamily::Burst.perturbation(0.8),
            &config,
            7,
        )
        .unwrap();
        assert_ne!(a.correlation, burst.correlation);
    }

    #[test]
    fn matrix_covers_every_cell_and_checks_against_its_own_report() {
        let mut config = tiny_config();
        config.snapshots = 128;
        let report = run_matrix(&config).unwrap();
        assert_eq!(
            report.cells.len(),
            RobustnessTopology::ALL.len() * PerturbationFamily::ALL.len() * 2
        );
        // Intensity-0 cells of one topology are the shared baseline.
        let fig1a_zero: Vec<&RobustnessCell> = report
            .cells
            .iter()
            .filter(|c| c.topology == "fig1a" && c.intensity == 0.0)
            .collect();
        assert_eq!(fig1a_zero.len(), PerturbationFamily::ALL.len());
        for cell in &fig1a_zero {
            assert_eq!(
                cell.outcome.correlation, fig1a_zero[0].outcome.correlation,
                "intensity-0 cells must share the baseline outcome"
            );
        }
        // A report always passes a check against its own thresholds.
        let json = report.to_json();
        let checks = check_against_baseline(&report, &json).unwrap();
        assert_eq!(checks.len(), report.cells.len());
        assert!(checks.iter().all(CellCheck::passes));
        // A stale baseline (missing cell) is an error, not a silent pass.
        assert!(check_against_baseline(&report, "{}").is_err());
        // A degraded measurement fails its check.
        let mut degraded = report.clone();
        degraded.cells[0].outcome.correlation.mean += 1.0;
        let checks = check_against_baseline(&degraded, &json).unwrap();
        assert!(!checks[0].passes());
    }

    #[test]
    fn worm_scenario_is_asserted_not_just_printed() {
        let worm = run_worm_scenario(RobustnessConfig::smoke().base_seed).unwrap();
        assert!(worm.links_scored > 0);
        assert!(worm.mislabeled_links > 0);
        // The paper's Figure 5 claim, now a regression assertion: the
        // correlation algorithm must not lose to the baseline even under
        // an unknown correlation pattern.
        worm.check().expect("worm scenario assertion holds");
    }
}
