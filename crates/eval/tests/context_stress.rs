//! Concurrency stress test for the shared [`ContextCache`]: many trial
//! workers racing on one cache, while perturbed trials keep changing the
//! equation structure mid-experiment (hidden links alter the visible
//! instance, churn and bursts alter which paths fire), must produce
//! results bit-identical to a fresh-cache sequential run.

use netcorr_core::ContextCache;
use netcorr_eval::runner::{run_trial_observations, sharded_perturbed_observations};
use netcorr_eval::scenario::{CorrelationLevel, ScenarioBuilder, ScenarioConfig};
use netcorr_eval::ExperimentConfig;
use netcorr_sim::{
    GilbertElliottConfig, MissingRowsConfig, PerturbationConfig, PerturbedSimulator,
    RoutingChurnConfig, SimulationConfig,
};
use netcorr_topology::generators::planetlab::{self, PlanetLabConfig};
use rand::rngs::StdRng;
use rand::SeedableRng;

const SNAPSHOTS: usize = 256;

/// One unit of work: a scenario variant (its own equation structure) plus
/// a perturbed trial over it.
struct Task {
    scenario_config: ScenarioConfig,
    perturbation: PerturbationConfig,
    scenario_seed: u64,
    sim_seed: u64,
}

fn tasks() -> Vec<Task> {
    let mut tasks = Vec::new();
    // Variants with different unidentifiable / mislabeled fractions hide
    // different links, so their visible instances — and therefore their
    // cached equation structures — genuinely differ.
    let variants = [(0.0, 0.0), (0.2, 0.0), (0.0, 0.3), (0.2, 0.3)];
    let perturbations = [
        PerturbationConfig::none(),
        PerturbationConfig {
            gilbert_elliott: Some(GilbertElliottConfig::with_intensity(0.5)),
            routing_churn: Some(RoutingChurnConfig::with_intensity(0.4)),
            ..PerturbationConfig::none()
        },
        PerturbationConfig {
            missing_rows: Some(MissingRowsConfig::with_intensity(0.3)),
            ..PerturbationConfig::none()
        },
    ];
    for (v, &(unidentifiable, mislabeled)) in variants.iter().enumerate() {
        for (p, perturbation) in perturbations.iter().enumerate() {
            for trial in 0..2u64 {
                tasks.push(Task {
                    scenario_config: ScenarioConfig {
                        correlation_level: CorrelationLevel::HighlyCorrelated,
                        unidentifiable_fraction: unidentifiable,
                        mislabeled_fraction: mislabeled,
                        ..ScenarioConfig::default()
                    },
                    perturbation: *perturbation,
                    scenario_seed: 100 + (v as u64) * 10 + trial,
                    sim_seed: 9000 + (p as u64) * 100 + trial,
                });
            }
        }
    }
    tasks
}

/// Runs one task against the given (shared or private) context cache and
/// returns both algorithms' error vectors — a bit-level fingerprint of
/// the inferred probabilities.
fn run_task(task: &Task, contexts: &ContextCache) -> (Vec<f64>, Vec<f64>) {
    let base = planetlab::generate(&PlanetLabConfig::small(), &mut StdRng::seed_from_u64(42))
        .expect("topology generation succeeds");
    let scenario = ScenarioBuilder::new(task.scenario_config)
        .expect("valid scenario config")
        .build(&base, &mut StdRng::seed_from_u64(task.scenario_seed))
        .expect("scenario build succeeds");
    let simulator = PerturbedSimulator::new(
        &scenario.instance,
        &scenario.model,
        SimulationConfig::default(),
        task.perturbation,
    )
    .expect("perturbed simulator construction succeeds");
    let observations = sharded_perturbed_observations(&simulator, SNAPSHOTS, task.sim_seed, 2);
    let experiment = ExperimentConfig {
        snapshots: SNAPSHOTS,
        trials: 1,
        base_seed: task.sim_seed,
        ..ExperimentConfig::default()
    };
    let result = run_trial_observations(&scenario, &experiment, &observations, contexts)
        .expect("trial inference succeeds");
    (result.correlation_errors, result.independence_errors)
}

#[test]
fn shared_cache_under_concurrent_structure_churn_is_bit_identical() {
    let tasks = tasks();

    // Reference: every task with its own fresh cache, sequentially.
    let reference: Vec<(Vec<f64>, Vec<f64>)> = tasks
        .iter()
        .map(|task| run_task(task, &ContextCache::new()))
        .collect();

    // Stress: all tasks race on one shared cache across scoped threads,
    // several times so cache hits and misses interleave differently.
    for round in 0..3 {
        let shared = ContextCache::new();
        let mut results: Vec<Option<(Vec<f64>, Vec<f64>)>> = Vec::new();
        results.resize_with(tasks.len(), || None);
        std::thread::scope(|scope| {
            // 4 workers over contiguous chunks of the task list, all
            // hitting the same cache entries for the repeated
            // (instance, config) pairs.
            let per_worker = tasks.len().div_ceil(4);
            for (worker, chunk) in results.chunks_mut(per_worker).enumerate() {
                let tasks = &tasks;
                let shared = &shared;
                scope.spawn(move || {
                    for (i, slot) in chunk.iter_mut().enumerate() {
                        *slot = Some(run_task(&tasks[worker * per_worker + i], shared));
                    }
                });
            }
        });
        for (index, (result, expected)) in results.iter().zip(&reference).enumerate() {
            let result = result.as_ref().expect("every task ran");
            assert_eq!(
                result, expected,
                "round {round}, task {index}: shared-cache result diverged from the \
                 fresh-cache sequential reference"
            );
        }
    }
}
