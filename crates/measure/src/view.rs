//! Zero-copy estimator queries over borrowed lane words.
//!
//! [`ObservationsView`] is the read-only counterpart of
//! [`PathObservations`](crate::observation::PathObservations): the same
//! path-major packed lanes, but *borrowed* — from a heap-owned store,
//! from a byte buffer holding a v3 binary block, or from a memory-mapped
//! v3 file ([`crate::mapped::MappedObservations`]). No lane word is ever
//! copied and no snapshot-major row view is materialised; row-shaped
//! queries (`P(ψ(S) = ∅)`, `P(ψ(S) = ψ(A))`) are answered from the lanes
//! instead, as AND-of-(possibly complemented)-lane sweeps.
//!
//! Every query is **bit-identical** to the corresponding
//! [`ProbabilityEstimator`](crate::estimator::ProbabilityEstimator)
//! query: both sides compute the same integer count and divide by the
//! same snapshot total, so the resulting `f64`s agree to the last bit
//! (the differential tests pin this).

// `align_to::<u64>` is the only unsafe here: reinterpreting bytes as
// `u64`s is valid for every bit pattern, and the empty-prefix/suffix
// check guarantees the whole region was covered.
#![allow(unsafe_code)]

use std::collections::BTreeSet;

use netcorr_topology::path::PathId;

use crate::bitset::{simd, tail_mask, BitLanesView, WORD_BITS};
use crate::error::MeasureError;
use crate::observation::{parse_binary_header, PathObservations, BINARY_HEADER_LEN, BINARY_MAGIC};

/// Read-only, borrow-based view of path observations: `num_paths` packed
/// lanes, one bit per snapshot, answering every estimator query without
/// owning (or copying) the underlying words.
#[derive(Debug, Clone, Copy)]
pub struct ObservationsView<'a> {
    lanes: BitLanesView<'a>,
}

impl<'a> ObservationsView<'a> {
    /// Wraps a validated lane view.
    pub fn new(lanes: BitLanesView<'a>) -> Self {
        ObservationsView { lanes }
    }

    /// Borrows a heap-owned observation store (the heap tier seen through
    /// the common view interface).
    pub fn from_observations(observations: &'a PathObservations) -> Self {
        ObservationsView {
            lanes: observations.lanes().as_view(),
        }
    }

    /// Parses a v3 binary observation block **in place**: the header is
    /// validated, the lane-word region is reinterpreted as little-endian
    /// `u64`s without copying, and the zero-tail invariant is checked per
    /// lane. The bytes must keep the words 8-byte aligned (a mapped file
    /// or any allocation whose word region starts at a multiple of 8);
    /// misaligned buffers are rejected — copy through
    /// [`PathObservations::from_binary`] instead.
    ///
    /// Only available on little-endian hosts, where the wire byte order
    /// *is* the in-memory byte order.
    #[cfg(target_endian = "little")]
    pub fn parse(bytes: &'a [u8]) -> Result<Self, MeasureError> {
        let (num_paths, num_snapshots) = parse_binary_header(bytes)?;
        let region = &bytes[BINARY_HEADER_LEN..];
        // SAFETY: every bit pattern is a valid `u64`; `align_to` returns
        // word-aligned, in-bounds subslices by contract. The empty
        // prefix/suffix check below guarantees the whole region was
        // reinterpreted.
        let (prefix, words, suffix) = unsafe { region.align_to::<u64>() };
        if !prefix.is_empty() || !suffix.is_empty() {
            return Err(MeasureError::Wire(format!(
                "lane region is not 8-byte aligned (offset {}): zero-copy parse needs an \
                 aligned buffer",
                prefix.len()
            )));
        }
        let lanes = BitLanesView::try_from_lane_words(num_paths, num_snapshots, words)?;
        Ok(ObservationsView { lanes })
    }

    /// Number of paths per snapshot.
    pub fn num_paths(&self) -> usize {
        self.lanes.num_lanes()
    }

    /// Number of snapshots covered by the view.
    pub fn num_snapshots(&self) -> usize {
        self.lanes.num_slots()
    }

    /// Returns `true` if the view covers no snapshots.
    pub fn is_empty(&self) -> bool {
        self.num_snapshots() == 0
    }

    /// The underlying lane view.
    pub fn lanes(&self) -> BitLanesView<'a> {
        self.lanes
    }

    /// The probability floor used when clamping zero frequencies before
    /// taking logarithms: `1 / (2 N)`.
    pub fn probability_floor(&self) -> f64 {
        1.0 / (2.0 * self.num_snapshots() as f64)
    }

    fn require_snapshots(&self) -> Result<(), MeasureError> {
        if self.is_empty() {
            return Err(MeasureError::NoSnapshots);
        }
        Ok(())
    }

    fn check_path(&self, path: PathId) -> Result<(), MeasureError> {
        if path.index() >= self.num_paths() {
            return Err(MeasureError::UnknownPath {
                index: path.index(),
                num_paths: self.num_paths(),
            });
        }
        Ok(())
    }

    /// Number of snapshots in which `path` was congested.
    pub fn congested_count(&self, path: PathId) -> Result<usize, MeasureError> {
        self.check_path(path)?;
        Ok(self.lanes.count_ones(path.index()))
    }

    /// Number of snapshots in which *all* the given paths were good,
    /// dispatched to the SIMD kernel ladder exactly like the owning
    /// estimator.
    pub fn all_good_count(&self, paths: &[PathId]) -> Result<usize, MeasureError> {
        for &p in paths {
            self.check_path(p)?;
        }
        let used = self.lanes.used_words();
        let mask = self.lanes.last_word_mask();
        if let [a, b] = paths {
            return Ok(simd::pair_good_count(
                self.lanes.lane(a.index()),
                self.lanes.lane(b.index()),
                mask,
            ));
        }
        let lane_refs: Vec<&[u64]> = paths.iter().map(|&p| self.lanes.lane(p.index())).collect();
        Ok(simd::all_good_count(&lane_refs, used, mask))
    }

    /// Number of snapshots in which the congested paths were *exactly*
    /// the given set: an AND sweep over every lane, complementing the
    /// lanes outside the pattern. The owning estimator answers this from
    /// its snapshot-major rows; the integer counts are equal, so the
    /// probabilities are bit-identical.
    pub fn pattern_count(&self, congested: &BTreeSet<PathId>) -> Result<usize, MeasureError> {
        for &p in congested {
            self.check_path(p)?;
        }
        let num_paths = self.num_paths();
        let mut member = vec![false; num_paths];
        for p in congested {
            member[p.index()] = true;
        }
        let used = self.lanes.used_words();
        let mask = self.lanes.last_word_mask();
        let lanes: Vec<&[u64]> = (0..num_paths).map(|p| self.lanes.lane(p)).collect();
        let mut count = 0usize;
        for w in 0..used {
            let mut acc = if w + 1 == used { mask } else { !0u64 };
            for (lane, &is_member) in lanes.iter().zip(&member) {
                let word = lane[w];
                acc &= if is_member { word } else { !word };
                if acc == 0 {
                    break;
                }
            }
            count += acc.count_ones() as usize;
        }
        Ok(count)
    }

    /// Empirical `P(Y_i = 1)`.
    pub fn prob_path_congested(&self, path: PathId) -> Result<f64, MeasureError> {
        self.require_snapshots()?;
        Ok(self.congested_count(path)? as f64 / self.num_snapshots() as f64)
    }

    /// Empirical `P(Y_i = 0)`.
    pub fn prob_path_good(&self, path: PathId) -> Result<f64, MeasureError> {
        Ok(1.0 - self.prob_path_congested(path)?)
    }

    /// Empirical probability that *all* the given paths were good in the
    /// same snapshot.
    pub fn prob_paths_good(&self, paths: &[PathId]) -> Result<f64, MeasureError> {
        self.require_snapshots()?;
        Ok(self.all_good_count(paths)? as f64 / self.num_snapshots() as f64)
    }

    /// Batch form of the path-pair query, one `P(Y_i = 0, Y_j = 0)` per
    /// pair.
    pub fn prob_pairs_good(&self, pairs: &[(PathId, PathId)]) -> Result<Vec<f64>, MeasureError> {
        self.require_snapshots()?;
        for &(a, b) in pairs {
            self.check_path(a)?;
            self.check_path(b)?;
        }
        let mask = self.lanes.last_word_mask();
        let n = self.num_snapshots() as f64;
        Ok(pairs
            .iter()
            .map(|&(a, b)| {
                let count = simd::pair_good_count(
                    self.lanes.lane(a.index()),
                    self.lanes.lane(b.index()),
                    mask,
                );
                count as f64 / n
            })
            .collect())
    }

    /// Batch clamped `log P(Y_i = 0, Y_j = 0)` per pair.
    pub fn log_prob_pairs_good(
        &self,
        pairs: &[(PathId, PathId)],
    ) -> Result<Vec<f64>, MeasureError> {
        let floor = self.probability_floor();
        Ok(self
            .prob_pairs_good(pairs)?
            .into_iter()
            .map(|p| p.max(floor).ln())
            .collect())
    }

    /// `log P(all given paths good)`, clamped below by the probability
    /// floor.
    pub fn log_prob_paths_good(&self, paths: &[PathId]) -> Result<f64, MeasureError> {
        let p = self.prob_paths_good(paths)?;
        Ok(p.max(self.probability_floor()).ln())
    }

    /// Empirical `P(ψ(S) = ∅)`: every path good.
    pub fn prob_all_paths_good(&self) -> Result<f64, MeasureError> {
        self.require_snapshots()?;
        let paths: Vec<PathId> = (0..self.num_paths()).map(PathId).collect();
        Ok(self.all_good_count(&paths)? as f64 / self.num_snapshots() as f64)
    }

    /// Empirical `P(ψ(S) = ψ(A))`: the congested paths are exactly the
    /// given set.
    pub fn prob_exactly_congested(
        &self,
        congested: &BTreeSet<PathId>,
    ) -> Result<f64, MeasureError> {
        self.require_snapshots()?;
        Ok(self.pattern_count(congested)? as f64 / self.num_snapshots() as f64)
    }

    /// Batch form of [`ObservationsView::prob_exactly_congested`].
    pub fn prob_exactly_congested_batch(
        &self,
        patterns: &[BTreeSet<PathId>],
    ) -> Result<Vec<f64>, MeasureError> {
        patterns
            .iter()
            .map(|pattern| self.prob_exactly_congested(pattern))
            .collect()
    }

    /// Paths that were congested during at least one snapshot.
    pub fn ever_congested_paths(&self) -> Vec<PathId> {
        (0..self.num_paths())
            .filter(|&p| self.lanes.lane(p).iter().any(|&w| w != 0))
            .map(PathId)
            .collect()
    }

    /// Copies the view into an owned [`PathObservations`] (rebuilding the
    /// snapshot-major row view) — the promotion back to the heap tier.
    pub fn to_observations(&self) -> Result<PathObservations, MeasureError> {
        let mut words = Vec::with_capacity(self.num_paths() * self.lanes.used_words());
        for p in 0..self.num_paths() {
            words.extend_from_slice(self.lanes.lane(p));
        }
        let mut block = self.serialized_header(self.num_snapshots());
        for word in &words {
            block.extend_from_slice(&word.to_le_bytes());
        }
        PathObservations::from_binary(&block)
    }

    fn serialized_header(&self, total_snapshots: usize) -> Vec<u8> {
        let used = total_snapshots.div_ceil(WORD_BITS);
        let mut out = Vec::with_capacity(BINARY_HEADER_LEN + self.num_paths() * used * 8);
        out.extend_from_slice(BINARY_MAGIC);
        out.extend_from_slice(&(self.num_paths() as u64).to_le_bytes());
        out.extend_from_slice(&(total_snapshots as u64).to_le_bytes());
        out
    }

    /// Serializes the view followed by `delta` as one v3 binary block —
    /// the full-history serialization of a streaming estimator whose base
    /// segment is this view. When the view's snapshot count is not a
    /// multiple of 64 the delta words are bit-shifted into the base
    /// lanes' tail words (the packed equivalent of replaying the delta).
    pub fn merged_binary(&self, delta: &PathObservations) -> Result<Vec<u8>, MeasureError> {
        if delta.num_paths() != self.num_paths() {
            return Err(MeasureError::WrongSnapshotWidth {
                expected: self.num_paths(),
                actual: delta.num_paths(),
            });
        }
        let base_n = self.num_snapshots();
        let delta_n = delta.num_snapshots();
        let total = base_n + delta_n;
        let used_total = total.div_ceil(WORD_BITS);
        let delta_used = delta_n.div_ceil(WORD_BITS);
        let shift = base_n % WORD_BITS;
        let mut out = self.serialized_header(total);
        let mut merged: Vec<u64> = Vec::with_capacity(used_total);
        for p in 0..self.num_paths() {
            merged.clear();
            merged.extend_from_slice(self.lanes.lane(p));
            let delta_lane = if delta_n > 0 {
                &delta.lanes().lane(p)[..delta_used]
            } else {
                &[]
            };
            if shift == 0 {
                merged.extend_from_slice(delta_lane);
            } else {
                for &d in delta_lane {
                    let last = merged.len() - 1;
                    merged[last] |= d << shift;
                    merged.push(d >> (WORD_BITS - shift));
                }
                merged.truncate(used_total);
            }
            debug_assert_eq!(merged.len(), used_total);
            if used_total > 0 {
                debug_assert_eq!(merged[used_total - 1] & !tail_mask(total), 0);
            }
            for word in &merged {
                out.extend_from_slice(&word.to_le_bytes());
            }
        }
        Ok(out)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample(paths: usize, snapshots: usize) -> PathObservations {
        let mut obs = PathObservations::new(paths);
        let mut row = vec![false; paths];
        for s in 0..snapshots {
            for (p, bit) in row.iter_mut().enumerate() {
                *bit = (s * 7 + p * 13) % 5 == 0 || (s + p) % 11 == 0;
            }
            obs.record_snapshot(&row).unwrap();
        }
        obs
    }

    #[test]
    fn borrowed_view_matches_owned_bits() {
        let obs = sample(4, 150);
        let view = ObservationsView::from_observations(&obs);
        assert_eq!(view.num_paths(), 4);
        assert_eq!(view.num_snapshots(), 150);
        for p in 0..4 {
            assert_eq!(view.lanes().count_ones(p), obs.lanes().count_ones(p));
            for s in 0..150 {
                assert_eq!(view.lanes().get(p, s), obs.lanes().get(p, s));
            }
        }
        assert_eq!(view.ever_congested_paths(), obs.ever_congested_paths());
    }

    #[cfg(target_endian = "little")]
    #[test]
    fn zero_copy_parse_round_trips() {
        let obs = sample(5, 203);
        let block = obs.to_binary();
        // `Vec<u8>` from `to_binary` starts at the allocator's alignment;
        // the 24-byte header keeps the word region 8-aligned whenever the
        // buffer itself is. Re-align defensively via a u64 buffer.
        let mut aligned = vec![0u64; block.len().div_ceil(8)];
        let bytes = {
            let dst = unsafe { aligned.align_to_mut::<u8>().1 };
            dst[..block.len()].copy_from_slice(&block);
            &dst[..block.len()]
        };
        let view = ObservationsView::parse(bytes).unwrap();
        assert_eq!(view.num_paths(), 5);
        assert_eq!(view.num_snapshots(), 203);
        let rebuilt = view.to_observations().unwrap();
        assert_eq!(rebuilt, obs);
    }

    #[cfg(target_endian = "little")]
    #[test]
    fn zero_copy_parse_rejects_corruption() {
        let obs = sample(3, 70);
        let mut aligned = vec![0u64; obs.to_binary().len().div_ceil(8)];
        let block = obs.to_binary();
        let n = block.len();
        let bytes = unsafe { &mut aligned.align_to_mut::<u8>().1[..n] };
        bytes.copy_from_slice(&block);
        // Dirty tail: set a bit beyond snapshot 70 in lane 0's last word.
        bytes[BINARY_HEADER_LEN + 15] |= 0x80;
        let err = ObservationsView::parse(bytes).unwrap_err();
        assert!(err.to_string().contains("beyond slot"), "got: {err}");
        // Misaligned region: skip one byte.
        bytes[BINARY_HEADER_LEN + 15] &= !0x80;
        let mut shifted = vec![0u8; n + 1];
        shifted[1..].copy_from_slice(bytes);
        let err = ObservationsView::parse(&shifted[1..]).unwrap_err();
        assert!(err.to_string().contains("aligned"), "got: {err}");
    }

    #[test]
    fn merged_binary_equals_replayed_serialization() {
        // Aligned (128) and unaligned (57, 191) base boundaries.
        for split in [0usize, 57, 128, 191, 260] {
            let whole = sample(3, 260);
            let base = {
                let mut b = PathObservations::new(3);
                for s in 0..split {
                    b.record_snapshot(&whole.snapshot(s)).unwrap();
                }
                b
            };
            let delta = {
                let mut d = PathObservations::new(3);
                for s in split..260 {
                    d.record_snapshot(&whole.snapshot(s)).unwrap();
                }
                d
            };
            let view = ObservationsView::from_observations(&base);
            let merged = view.merged_binary(&delta).unwrap();
            assert_eq!(merged, whole.to_binary(), "split at {split}");
        }
        // Path-count mismatch is rejected.
        let base = sample(3, 10);
        let view = ObservationsView::from_observations(&base);
        assert!(view.merged_binary(&PathObservations::new(2)).is_err());
    }

    #[test]
    fn empty_views_error_instead_of_dividing_by_zero() {
        let obs = PathObservations::new(3);
        let view = ObservationsView::from_observations(&obs);
        assert!(view.is_empty());
        assert_eq!(
            view.prob_path_good(PathId(0)).unwrap_err(),
            MeasureError::NoSnapshots
        );
        assert_eq!(
            view.prob_all_paths_good().unwrap_err(),
            MeasureError::NoSnapshots
        );
        assert_eq!(
            view.prob_exactly_congested(&BTreeSet::new()).unwrap_err(),
            MeasureError::NoSnapshots
        );
    }
}
