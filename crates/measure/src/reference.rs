//! Scalar reference implementation of the observation store and
//! estimators.
//!
//! This module preserves the pre-packing, one-`bool`-per-cell
//! implementation as an **executable specification**: every probability is
//! computed by a straightforward scan over the snapshot matrix. It exists
//! for two consumers only —
//!
//! * the differential property tests, which assert that the bit-packed
//!   [`crate::ProbabilityEstimator`] agrees *bit-exactly* with this
//!   reference on random observation matrices (both compute
//!   `count / num_snapshots` with integer counts, so agreement is `==`,
//!   not approximate); and
//! * the estimator micro-benchmarks, which measure the packed estimator's
//!   speedup against this baseline.
//!
//! It is not part of the supported API surface and deliberately implements
//! only the query families the packed estimator offers.

use std::collections::BTreeSet;

use netcorr_topology::path::PathId;

use crate::error::MeasureError;
use crate::observation::PathObservations;

/// Snapshot-major, one-`bool`-per-cell observation store (the seed
/// layout).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ScalarObservations {
    num_paths: usize,
    data: Vec<bool>,
}

impl ScalarObservations {
    /// Creates an empty container for `num_paths` paths.
    pub fn new(num_paths: usize) -> Self {
        ScalarObservations {
            num_paths,
            data: Vec::new(),
        }
    }

    /// Builds a scalar copy of packed observations (for differential
    /// testing / benchmarking against the same data).
    pub fn from_packed(observations: &PathObservations) -> Self {
        let mut scalar = ScalarObservations::new(observations.num_paths());
        for snapshot in observations.snapshots() {
            scalar
                .record_snapshot(&snapshot)
                .expect("widths match by construction");
        }
        scalar
    }

    /// Number of paths per snapshot.
    pub fn num_paths(&self) -> usize {
        self.num_paths
    }

    /// Number of snapshots recorded so far.
    pub fn num_snapshots(&self) -> usize {
        self.data.len().checked_div(self.num_paths).unwrap_or(0)
    }

    /// Returns `true` if no snapshots have been recorded.
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// Records one snapshot: `congested[i]` is the status of path `i`.
    pub fn record_snapshot(&mut self, congested: &[bool]) -> Result<(), MeasureError> {
        if congested.len() != self.num_paths {
            return Err(MeasureError::WrongSnapshotWidth {
                expected: self.num_paths,
                actual: congested.len(),
            });
        }
        self.data.extend_from_slice(congested);
        Ok(())
    }

    /// Iterates over snapshots as slices.
    pub fn snapshots(&self) -> impl Iterator<Item = &[bool]> {
        self.data.chunks_exact(self.num_paths.max(1))
    }
}

/// Scalar reference estimator: plain relative-frequency scans over a
/// [`ScalarObservations`] matrix.
#[derive(Debug, Clone, Copy)]
pub struct ScalarEstimator<'a> {
    observations: &'a ScalarObservations,
}

impl<'a> ScalarEstimator<'a> {
    /// Creates an estimator over `observations`; errors if no snapshots
    /// have been recorded.
    pub fn new(observations: &'a ScalarObservations) -> Result<Self, MeasureError> {
        if observations.is_empty() {
            return Err(MeasureError::NoSnapshots);
        }
        Ok(ScalarEstimator { observations })
    }

    /// Number of snapshots backing every estimate.
    pub fn num_snapshots(&self) -> usize {
        self.observations.num_snapshots()
    }

    /// The clamping floor `1 / (2 N)`.
    pub fn probability_floor(&self) -> f64 {
        1.0 / (2.0 * self.num_snapshots() as f64)
    }

    fn check_path(&self, path: PathId) -> Result<(), MeasureError> {
        if path.index() >= self.observations.num_paths() {
            return Err(MeasureError::UnknownPath {
                index: path.index(),
                num_paths: self.observations.num_paths(),
            });
        }
        Ok(())
    }

    /// Empirical `P(Y_i = 0)`.
    pub fn prob_path_good(&self, path: PathId) -> Result<f64, MeasureError> {
        Ok(1.0 - self.prob_path_congested(path)?)
    }

    /// Empirical `P(Y_i = 1)`.
    pub fn prob_path_congested(&self, path: PathId) -> Result<f64, MeasureError> {
        self.check_path(path)?;
        let congested = self
            .observations
            .snapshots()
            .filter(|s| s[path.index()])
            .count();
        Ok(congested as f64 / self.num_snapshots() as f64)
    }

    /// Empirical `P(Y_{i1} = 0, ..., Y_{ik} = 0)` by scanning every
    /// snapshot.
    pub fn prob_paths_good(&self, paths: &[PathId]) -> Result<f64, MeasureError> {
        for &p in paths {
            self.check_path(p)?;
        }
        let good = self
            .observations
            .snapshots()
            .filter(|snapshot| paths.iter().all(|p| !snapshot[p.index()]))
            .count();
        Ok(good as f64 / self.num_snapshots() as f64)
    }

    /// Clamped `log P(all given paths good)`.
    pub fn log_prob_paths_good(&self, paths: &[PathId]) -> Result<f64, MeasureError> {
        let p = self.prob_paths_good(paths)?;
        Ok(p.max(self.probability_floor()).ln())
    }

    /// Empirical `P(ψ(S) = ∅)`.
    pub fn prob_all_paths_good(&self) -> f64 {
        let good = self
            .observations
            .snapshots()
            .filter(|snapshot| snapshot.iter().all(|&c| !c))
            .count();
        good as f64 / self.num_snapshots() as f64
    }

    /// Empirical `P(ψ(S) = ψ(A))`. The target pattern is expanded into a
    /// per-path Boolean vector once, so the scan compares entries directly
    /// instead of doing a set lookup per path per snapshot.
    pub fn prob_exactly_congested(
        &self,
        congested: &BTreeSet<PathId>,
    ) -> Result<f64, MeasureError> {
        for &p in congested {
            self.check_path(p)?;
        }
        let mut target = vec![false; self.observations.num_paths()];
        for &p in congested {
            target[p.index()] = true;
        }
        let matches = self
            .observations
            .snapshots()
            .filter(|snapshot| *snapshot == target.as_slice())
            .count();
        Ok(matches as f64 / self.num_snapshots() as f64)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn observations() -> ScalarObservations {
        let mut obs = ScalarObservations::new(3);
        let snapshots = [
            [false, false, false],
            [true, false, false],
            [true, true, false],
            [false, false, false],
        ];
        for s in &snapshots {
            obs.record_snapshot(s).unwrap();
        }
        obs
    }

    #[test]
    fn scalar_estimates_match_hand_counts() {
        let obs = observations();
        let est = ScalarEstimator::new(&obs).unwrap();
        assert_eq!(est.prob_path_congested(PathId(0)).unwrap(), 0.5);
        assert_eq!(est.prob_path_good(PathId(2)).unwrap(), 1.0);
        assert_eq!(est.prob_paths_good(&[PathId(0), PathId(1)]).unwrap(), 0.5);
        assert_eq!(est.prob_all_paths_good(), 0.5);
        assert_eq!(
            est.prob_exactly_congested(&BTreeSet::from([PathId(0)]))
                .unwrap(),
            0.25
        );
        assert_eq!(est.prob_exactly_congested(&BTreeSet::new()).unwrap(), 0.5);
    }

    #[test]
    fn from_packed_copies_the_matrix() {
        let mut packed = PathObservations::new(2);
        for i in 0..70 {
            packed.record_snapshot(&[i % 2 == 0, i % 7 == 0]).unwrap();
        }
        let scalar = ScalarObservations::from_packed(&packed);
        assert_eq!(scalar.num_snapshots(), 70);
        for (i, snapshot) in scalar.snapshots().enumerate() {
            assert_eq!(snapshot.to_vec(), packed.snapshot(i));
        }
    }

    #[test]
    fn scalar_errors_match_the_packed_estimator() {
        let empty = ScalarObservations::new(2);
        assert_eq!(
            ScalarEstimator::new(&empty).unwrap_err(),
            MeasureError::NoSnapshots
        );
        let obs = observations();
        let est = ScalarEstimator::new(&obs).unwrap();
        assert!(est.prob_paths_good(&[PathId(9)]).is_err());
        assert!(est
            .prob_exactly_congested(&BTreeSet::from([PathId(9)]))
            .is_err());
    }
}
