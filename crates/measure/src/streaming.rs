//! Streaming (online) probability estimation with O(1) queries.
//!
//! [`crate::ProbabilityEstimator`] answers every query by scanning packed
//! lanes or rows — cheap (64 snapshots per word), but still linear in the
//! experiment length, and long-running deployments re-pay that scan on
//! every re-estimation. [`StreamingEstimator`] instead maintains
//! *accumulators* that are updated as each snapshot arrives:
//!
//! * a per-path congested-count (for `P(Y_i = 0)` / `P(Y_i = 1)`);
//! * a both-good count per **registered pair** (for `P(Y_i = 0, Y_j = 0)`,
//!   the equation builder's RHS);
//! * an all-good count (for `P(ψ(S) = ∅)`);
//! * a match count per **registered exact pattern** (for
//!   `P(ψ(S) = ψ(A))`, the theorem algorithm's measurements).
//!
//! Registration declares *which* pairs and patterns the caller will query
//! — for tomography these are known from the topology alone (usable pairs
//! from the correlation partition, coverages from the subset enumeration),
//! so they can be registered before the first snapshot arrives. Each
//! [`StreamingEstimator::push_snapshot`] then costs
//! `O(paths + pairs + patterns · ⌈paths/64⌉)` — every accumulator is
//! updated in O(1) (patterns in O(words-per-row), one packed-row compare)
//! — and every registered query is an O(1) counter read, **no lane scan**.
//! Registering after snapshots have already been recorded is allowed and
//! performs a one-time catch-up scan through the SIMD kernels, so
//! registration order never changes results.
//!
//! The estimator also keeps the full bit-packed [`PathObservations`]
//! store, so ad-hoc queries outside the registered set can always fall
//! back to the batch estimator ([`StreamingEstimator::batch`]), and the
//! differential suite can assert that streaming and batch answers are
//! bit-exact (both sides count integers and divide by the same `N`).
//!
//! # Mapped history segments
//!
//! A freshly built estimator can *attach* a memory-mapped observation
//! file ([`StreamingEstimator::attach_history`]) as an immutable **base
//! segment**: every accumulator is seeded from the mapped lanes through
//! the same SIMD kernels a live run would have used, so the counters —
//! and therefore every probability — are bit-identical to an estimator
//! that streamed those snapshots one by one. New snapshots accumulate in
//! the owned **delta** store on top;
//! [`StreamingEstimator::history_binary`] re-serializes base ++ delta as
//! one v3 block for the next persist/restart cycle. This is how the
//! `netcorr-serve` daemon reloads weeks of history in microseconds.

use std::collections::{BTreeMap, BTreeSet};

use netcorr_topology::path::PathId;

use crate::bitset::simd;
use crate::error::MeasureError;
use crate::estimator::ProbabilityEstimator;
use crate::mapped::MappedObservations;
use crate::observation::PathObservations;

/// Normalized pair key: the two path ids in increasing order.
fn pair_key(a: PathId, b: PathId) -> (PathId, PathId) {
    (a.min(b), a.max(b))
}

/// Online estimator over a growing observation store: O(1) registered
/// queries, O(1)-per-accumulator updates per pushed snapshot.
#[derive(Debug, Clone)]
pub struct StreamingEstimator {
    /// The owned *delta* store: snapshots pushed since construction (or
    /// since the attached history segment ended).
    observations: PathObservations,
    /// Optional immutable base segment served from a mapped v3 file;
    /// accumulators cover base + delta.
    base: Option<MappedObservations>,
    /// Per-path congested-snapshot counts.
    congested: Vec<u64>,
    /// Registered pairs, normalized, in handle order (parallel to
    /// `pair_good`; the per-push update streams this dense array, not the
    /// map).
    pairs: Vec<(PathId, PathId)>,
    /// Key → handle lookup for the keyed query API and dedup.
    pair_index: BTreeMap<(PathId, PathId), usize>,
    /// Per-registered-pair both-good counts, indexed by handle.
    pair_good: Vec<u64>,
    /// Snapshots in which every path was good.
    all_good: u64,
    /// Registered exact patterns with their packed row masks.
    pattern_index: BTreeMap<BTreeSet<PathId>, usize>,
    pattern_masks: Vec<Vec<u64>>,
    /// Per-registered-pattern exact-match counts.
    pattern_matches: Vec<u64>,
}

impl StreamingEstimator {
    /// Creates an empty streaming estimator for `num_paths` paths.
    pub fn new(num_paths: usize) -> Self {
        Self::with_capacity(num_paths, 0)
    }

    /// Creates an empty streaming estimator with room for `snapshots`
    /// snapshots pre-allocated.
    pub fn with_capacity(num_paths: usize, snapshots: usize) -> Self {
        StreamingEstimator {
            observations: PathObservations::with_capacity(num_paths, snapshots),
            base: None,
            congested: vec![0; num_paths],
            pairs: Vec::new(),
            pair_index: BTreeMap::new(),
            pair_good: Vec::new(),
            all_good: 0,
            pattern_index: BTreeMap::new(),
            pattern_masks: Vec::new(),
            pattern_matches: Vec::new(),
        }
    }

    /// Wraps an already-recorded observation store, initialising the
    /// path-level accumulators from its lanes (one popcount per lane).
    pub fn from_observations(observations: PathObservations) -> Self {
        let congested: Vec<u64> = (0..observations.num_paths())
            .map(|p| observations.lanes().count_ones(p) as u64)
            .collect();
        let rows = observations.rows();
        let all_good = simd::count_zero_rows(rows.words(), rows.words_per_row()) as u64;
        StreamingEstimator {
            congested,
            all_good,
            observations,
            base: None,
            pairs: Vec::new(),
            pair_index: BTreeMap::new(),
            pair_good: Vec::new(),
            pattern_index: BTreeMap::new(),
            pattern_masks: Vec::new(),
            pattern_matches: Vec::new(),
        }
    }

    /// Number of paths per snapshot.
    pub fn num_paths(&self) -> usize {
        self.observations.num_paths()
    }

    /// Number of snapshots recorded so far (attached history segment
    /// included).
    pub fn num_snapshots(&self) -> usize {
        self.base_snapshots() + self.observations.num_snapshots()
    }

    /// Returns `true` if no snapshots have been recorded (and no history
    /// segment is attached).
    pub fn is_empty(&self) -> bool {
        self.num_snapshots() == 0
    }

    /// Snapshots covered by the attached history segment (0 without one).
    fn base_snapshots(&self) -> usize {
        self.base.as_ref().map_or(0, |b| b.num_snapshots())
    }

    /// The underlying bit-packed observation store. With a history
    /// segment attached this is the **delta only** — snapshots pushed
    /// since [`StreamingEstimator::attach_history`]; use
    /// [`StreamingEstimator::history_binary`] for the full record.
    pub fn observations(&self) -> &PathObservations {
        &self.observations
    }

    /// Consumes the estimator, returning the (delta) observation store.
    pub fn into_observations(self) -> PathObservations {
        self.observations
    }

    /// A batch estimator over the same observations, for ad-hoc queries
    /// outside the registered set. Errors with
    /// [`MeasureError::History`] when a mapped history segment is
    /// attached: the batch estimator borrows the owned store, which then
    /// holds only the delta, and serving partial-history probabilities
    /// would silently disagree with the streaming counters.
    pub fn batch(&self) -> Result<ProbabilityEstimator<'_>, MeasureError> {
        if self.base.is_some() {
            return Err(MeasureError::History(
                "batch estimation over the owned store is unavailable while a mapped history \
                 segment is attached (the owned store holds only the delta)"
                    .to_string(),
            ));
        }
        ProbabilityEstimator::new(&self.observations)
    }

    /// The attached mapped history segment, if any.
    pub fn base(&self) -> Option<&MappedObservations> {
        self.base.as_ref()
    }

    /// Snapshots recorded in the owned delta store (excludes the attached
    /// history segment).
    pub fn delta_snapshots(&self) -> usize {
        self.observations.num_snapshots()
    }

    /// Attaches a mapped observation file as the immutable **base
    /// segment** and seeds every accumulator from its lanes through the
    /// SIMD kernels, making the estimator bit-identical to one that
    /// streamed those snapshots live. Pairs and patterns may be
    /// registered before or after attaching — both orders catch up
    /// through the same kernels. Returns the number of history snapshots
    /// absorbed.
    ///
    /// Errors with [`MeasureError::History`] if a segment is already
    /// attached or snapshots have already been pushed, and with
    /// [`MeasureError::WrongSnapshotWidth`] if the file's path count
    /// differs from the estimator's.
    pub fn attach_history(&mut self, history: MappedObservations) -> Result<usize, MeasureError> {
        if self.base.is_some() {
            return Err(MeasureError::History(
                "a history segment is already attached".to_string(),
            ));
        }
        if !self.observations.is_empty() {
            return Err(MeasureError::History(format!(
                "cannot attach a history segment after {} snapshots were already recorded",
                self.observations.num_snapshots()
            )));
        }
        if history.num_paths() != self.num_paths() {
            return Err(MeasureError::WrongSnapshotWidth {
                expected: self.num_paths(),
                actual: history.num_paths(),
            });
        }
        let view = history.view();
        for (p, count) in self.congested.iter_mut().enumerate() {
            *count = view.lanes().count_ones(p) as u64;
        }
        let all_paths: Vec<PathId> = (0..self.num_paths()).map(PathId).collect();
        self.all_good = view.all_good_count(&all_paths)? as u64;
        for (&(a, b), count) in self.pairs.iter().zip(&mut self.pair_good) {
            *count = view.all_good_count(&[a, b])? as u64;
        }
        for (pattern, &slot) in &self.pattern_index {
            self.pattern_matches[slot] = view.pattern_count(pattern)? as u64;
        }
        let absorbed = history.num_snapshots();
        self.base = Some(history);
        Ok(absorbed)
    }

    /// Serializes the **full** observation history — attached base
    /// segment followed by the owned delta — as one v3 binary block,
    /// suitable for atomic persistence and a later
    /// [`StreamingEstimator::attach_history`] on restart. Without a base
    /// segment this is simply the owned store's serialization.
    pub fn history_binary(&self) -> Vec<u8> {
        match &self.base {
            Some(base) => base
                .view()
                .merged_binary(&self.observations)
                .expect("base and delta share the path count by construction"),
            None => self.observations.to_binary(),
        }
    }

    /// The registered pairs, in registration-independent normalized order.
    pub fn registered_pairs(&self) -> impl Iterator<Item = (PathId, PathId)> + '_ {
        self.pair_index.keys().copied()
    }

    /// Number of registered pairs.
    pub fn num_registered_pairs(&self) -> usize {
        self.pair_good.len()
    }

    /// Number of registered exact patterns.
    pub fn num_registered_patterns(&self) -> usize {
        self.pattern_matches.len()
    }

    fn check_path(&self, path: PathId) -> Result<(), MeasureError> {
        if path.index() >= self.num_paths() {
            return Err(MeasureError::UnknownPath {
                index: path.index(),
                num_paths: self.num_paths(),
            });
        }
        Ok(())
    }

    /// Registers the pair `(a, b)` for O(1) both-good queries and returns
    /// its **handle** — a dense index whose accumulator can be read
    /// without any map lookup ([`StreamingEstimator::prob_pair_good_at`]).
    /// Idempotent; the pair is normalized, so `(a, b)` and `(b, a)` return
    /// the same handle. If snapshots were already recorded, the
    /// accumulator is initialised with one catch-up kernel sweep over the
    /// two lanes.
    pub fn register_pair(&mut self, a: PathId, b: PathId) -> Result<usize, MeasureError> {
        self.check_path(a)?;
        self.check_path(b)?;
        let key = pair_key(a, b);
        if let Some(&handle) = self.pair_index.get(&key) {
            return Ok(handle);
        }
        let base_count = match &self.base {
            Some(base) => base.view().all_good_count(&[key.0, key.1])? as u64,
            None => 0,
        };
        let lanes = self.observations.lanes();
        let delta_count = if self.observations.is_empty() {
            0
        } else {
            simd::pair_good_count(
                lanes.lane(key.0.index()),
                lanes.lane(key.1.index()),
                lanes.last_word_mask(),
            ) as u64
        };
        let count = base_count + delta_count;
        let handle = self.pair_good.len();
        self.pair_index.insert(key, handle);
        self.pairs.push(key);
        self.pair_good.push(count);
        Ok(handle)
    }

    /// Registers every pair in `pairs`, returning one handle per input
    /// pair (see [`StreamingEstimator::register_pair`]).
    pub fn register_pairs(
        &mut self,
        pairs: &[(PathId, PathId)],
    ) -> Result<Vec<usize>, MeasureError> {
        pairs
            .iter()
            .map(|&(a, b)| self.register_pair(a, b))
            .collect()
    }

    /// The handle of an already-registered pair, if any.
    pub fn pair_handle(&self, a: PathId, b: PathId) -> Option<usize> {
        self.pair_index.get(&pair_key(a, b)).copied()
    }

    /// Registers an exact congestion pattern for O(1)
    /// `P(ψ(S) = ψ(A))` queries. Idempotent. If snapshots were already
    /// recorded, the match count is initialised with one catch-up kernel
    /// sweep over the packed rows.
    pub fn register_pattern(&mut self, pattern: &BTreeSet<PathId>) -> Result<(), MeasureError> {
        for &p in pattern {
            self.check_path(p)?;
        }
        if self.pattern_index.contains_key(pattern) {
            return Ok(());
        }
        let base_count = match &self.base {
            Some(base) => base.view().pattern_count(pattern)? as u64,
            None => 0,
        };
        let rows = self.observations.rows();
        let mask = rows.pack_mask(pattern.iter().map(|p| p.index()));
        let delta_count = simd::count_equal_rows(rows.words(), rows.words_per_row(), &mask) as u64;
        let count = base_count + delta_count;
        self.pattern_index
            .insert(pattern.clone(), self.pattern_matches.len());
        self.pattern_masks.push(mask);
        self.pattern_matches.push(count);
        Ok(())
    }

    /// Records one snapshot and updates every accumulator:
    /// `O(paths)` for the store and the marginals, O(1) per registered
    /// pair, and one packed-row compare per registered pattern.
    pub fn push_snapshot(&mut self, congested: &[bool]) -> Result<(), MeasureError> {
        self.observations.record_snapshot(congested)?;
        let mut any = false;
        for (count, &c) in self.congested.iter_mut().zip(congested) {
            *count += c as u64;
            any |= c;
        }
        self.all_good += !any as u64;
        for (&(a, b), count) in self.pairs.iter().zip(&mut self.pair_good) {
            *count += (!congested[a.index()] && !congested[b.index()]) as u64;
        }
        if !self.pattern_masks.is_empty() {
            let rows = self.observations.rows();
            let row = rows.row_words(rows.num_rows() - 1);
            for (mask, count) in self.pattern_masks.iter().zip(&mut self.pattern_matches) {
                if row == mask.as_slice() {
                    *count += 1;
                }
            }
        }
        Ok(())
    }

    fn require_snapshots(&self) -> Result<f64, MeasureError> {
        if self.is_empty() {
            return Err(MeasureError::NoSnapshots);
        }
        Ok(self.num_snapshots() as f64)
    }

    /// The probability floor used when clamping zero frequencies before
    /// taking logarithms: `1 / (2 N)` (matches the batch estimator).
    pub fn probability_floor(&self) -> f64 {
        1.0 / (2.0 * self.num_snapshots() as f64)
    }

    /// Empirical `P(Y_i = 1)` — O(1).
    pub fn prob_path_congested(&self, path: PathId) -> Result<f64, MeasureError> {
        let n = self.require_snapshots()?;
        self.check_path(path)?;
        Ok(self.congested[path.index()] as f64 / n)
    }

    /// Empirical `P(Y_i = 0)` — O(1).
    pub fn prob_path_good(&self, path: PathId) -> Result<f64, MeasureError> {
        Ok(1.0 - self.prob_path_congested(path)?)
    }

    /// Clamped `log P(Y_i = 0)` — O(1), **bit-exact** with
    /// [`ProbabilityEstimator::log_prob_paths_good`] on a single path:
    /// the good count is formed as an integer (`N − congested`) before
    /// dividing, exactly as the batch popcount path does (`1.0 − c/N`
    /// can differ in the last ULP).
    pub fn log_prob_path_good(&self, path: PathId) -> Result<f64, MeasureError> {
        let n = self.require_snapshots()?;
        self.check_path(path)?;
        let good = self.num_snapshots() as u64 - self.congested[path.index()];
        let p = good as f64 / n;
        Ok(p.max(self.probability_floor()).ln())
    }

    /// Empirical `P(Y_i = 0, Y_j = 0)` for a **registered** pair — O(1),
    /// no lane scan.
    pub fn prob_pair_good(&self, a: PathId, b: PathId) -> Result<f64, MeasureError> {
        let n = self.require_snapshots()?;
        let slot = self
            .pair_index
            .get(&pair_key(a, b))
            .ok_or_else(|| MeasureError::Unregistered(format!("pair ({a:?}, {b:?})")))?;
        Ok(self.pair_good[*slot] as f64 / n)
    }

    /// Empirical `P(Y_i = 0, Y_j = 0)` by pair **handle** — a bounds
    /// check and an array read, no map lookup. This is the true O(1)
    /// query path for hot loops that resolved their handles at
    /// registration time.
    pub fn prob_pair_good_at(&self, handle: usize) -> Result<f64, MeasureError> {
        let n = self.require_snapshots()?;
        let count = self
            .pair_good
            .get(handle)
            .ok_or_else(|| MeasureError::Unregistered(format!("pair handle {handle}")))?;
        Ok(*count as f64 / n)
    }

    /// Batch form of [`StreamingEstimator::prob_pair_good`] over
    /// registered pairs.
    pub fn prob_pairs_good(&self, pairs: &[(PathId, PathId)]) -> Result<Vec<f64>, MeasureError> {
        pairs
            .iter()
            .map(|&(a, b)| self.prob_pair_good(a, b))
            .collect()
    }

    /// Clamped `log P(Y_i = 0, Y_j = 0)` per pair handle (the hot batch
    /// path of the incremental equation builder: one array read and one
    /// `ln` per equation).
    pub fn log_prob_pairs_good_at(&self, handles: &[usize]) -> Result<Vec<f64>, MeasureError> {
        let n = self.require_snapshots()?;
        let floor = self.probability_floor();
        handles
            .iter()
            .map(|&handle| {
                let count = self
                    .pair_good
                    .get(handle)
                    .ok_or_else(|| MeasureError::Unregistered(format!("pair handle {handle}")))?;
                Ok((*count as f64 / n).max(floor).ln())
            })
            .collect()
    }

    /// Clamped `log P(Y_i = 0, Y_j = 0)` per registered pair (matches
    /// [`ProbabilityEstimator::log_prob_pairs_good`]).
    pub fn log_prob_pairs_good(
        &self,
        pairs: &[(PathId, PathId)],
    ) -> Result<Vec<f64>, MeasureError> {
        let floor = self.probability_floor();
        Ok(self
            .prob_pairs_good(pairs)?
            .into_iter()
            .map(|p| p.max(floor).ln())
            .collect())
    }

    /// Empirical `P(ψ(S) = ∅)` — O(1).
    pub fn prob_all_paths_good(&self) -> Result<f64, MeasureError> {
        let n = self.require_snapshots()?;
        Ok(self.all_good as f64 / n)
    }

    /// Empirical `P(ψ(S) = ψ(A))` for a **registered** pattern — O(1),
    /// no row scan.
    pub fn prob_exactly_congested(&self, pattern: &BTreeSet<PathId>) -> Result<f64, MeasureError> {
        let n = self.require_snapshots()?;
        let slot = self
            .pattern_index
            .get(pattern)
            .ok_or_else(|| MeasureError::Unregistered(format!("pattern {pattern:?}")))?;
        Ok(self.pattern_matches[*slot] as f64 / n)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn snapshots() -> Vec<[bool; 3]> {
        vec![
            [false, false, false],
            [true, false, false],
            [true, true, false],
            [false, false, false],
            [false, true, false],
            [true, true, false],
            [false, false, false],
            [false, false, true],
        ]
    }

    fn streamed() -> StreamingEstimator {
        let mut est = StreamingEstimator::new(3);
        est.register_pair(PathId(0), PathId(1)).unwrap();
        est.register_pattern(&BTreeSet::from([PathId(0), PathId(1)]))
            .unwrap();
        for s in snapshots() {
            est.push_snapshot(&s).unwrap();
        }
        est
    }

    #[test]
    fn accumulators_match_the_batch_estimator() {
        let est = streamed();
        let batch = est.batch().unwrap();
        assert_eq!(est.num_snapshots(), 8);
        for p in 0..3 {
            assert_eq!(
                est.prob_path_good(PathId(p)).unwrap(),
                batch.prob_path_good(PathId(p)).unwrap()
            );
        }
        assert_eq!(
            est.prob_pair_good(PathId(0), PathId(1)).unwrap(),
            batch.prob_paths_good(&[PathId(0), PathId(1)]).unwrap()
        );
        assert_eq!(
            est.prob_all_paths_good().unwrap(),
            batch.prob_all_paths_good()
        );
        let pattern = BTreeSet::from([PathId(0), PathId(1)]);
        assert_eq!(
            est.prob_exactly_congested(&pattern).unwrap(),
            batch.prob_exactly_congested(&pattern).unwrap()
        );
    }

    #[test]
    fn late_registration_catches_up() {
        // Register after every snapshot has already been pushed: the
        // catch-up scan must produce the same counts as live updates.
        let live = streamed();
        let mut late = StreamingEstimator::new(3);
        for s in snapshots() {
            late.push_snapshot(&s).unwrap();
        }
        late.register_pair(PathId(1), PathId(0)).unwrap(); // reversed order
        late.register_pattern(&BTreeSet::from([PathId(0), PathId(1)]))
            .unwrap();
        assert_eq!(
            live.prob_pair_good(PathId(0), PathId(1)).unwrap(),
            late.prob_pair_good(PathId(0), PathId(1)).unwrap()
        );
        let pattern = BTreeSet::from([PathId(0), PathId(1)]);
        assert_eq!(
            live.prob_exactly_congested(&pattern).unwrap(),
            late.prob_exactly_congested(&pattern).unwrap()
        );
        // Registration is idempotent and returns the same handle.
        let first = late.pair_handle(PathId(0), PathId(1)).unwrap();
        assert_eq!(late.register_pair(PathId(0), PathId(1)).unwrap(), first);
        assert_eq!(late.num_registered_pairs(), 1);
    }

    #[test]
    fn handle_queries_match_keyed_queries() {
        let mut est = StreamingEstimator::new(3);
        let h01 = est.register_pair(PathId(0), PathId(1)).unwrap();
        let h12 = est.register_pair(PathId(2), PathId(1)).unwrap();
        for s in snapshots() {
            est.push_snapshot(&s).unwrap();
        }
        assert_eq!(
            est.prob_pair_good_at(h01).unwrap(),
            est.prob_pair_good(PathId(0), PathId(1)).unwrap()
        );
        assert_eq!(
            est.prob_pair_good_at(h12).unwrap(),
            est.prob_pair_good(PathId(1), PathId(2)).unwrap()
        );
        assert_eq!(
            est.log_prob_pairs_good_at(&[h01, h12]).unwrap(),
            est.log_prob_pairs_good(&[(PathId(0), PathId(1)), (PathId(1), PathId(2))])
                .unwrap()
        );
        assert!(matches!(
            est.prob_pair_good_at(99),
            Err(MeasureError::Unregistered(_))
        ));
        assert_eq!(est.pair_handle(PathId(0), PathId(2)), None);
    }

    #[test]
    fn from_observations_seeds_path_accumulators() {
        let mut obs = PathObservations::new(3);
        for s in snapshots() {
            obs.record_snapshot(&s).unwrap();
        }
        let mut est = StreamingEstimator::from_observations(obs);
        assert_eq!(est.prob_path_congested(PathId(0)).unwrap(), 3.0 / 8.0);
        assert_eq!(est.prob_all_paths_good().unwrap(), 3.0 / 8.0);
        // Continues to stream.
        est.push_snapshot(&[false, false, false]).unwrap();
        assert_eq!(est.prob_all_paths_good().unwrap(), 4.0 / 9.0);
    }

    #[test]
    fn unregistered_queries_and_errors() {
        let est = streamed();
        assert!(matches!(
            est.prob_pair_good(PathId(0), PathId(2)),
            Err(MeasureError::Unregistered(_))
        ));
        assert!(matches!(
            est.prob_exactly_congested(&BTreeSet::new()),
            Err(MeasureError::Unregistered(_))
        ));
        assert!(est.prob_path_congested(PathId(9)).is_err());
        let empty = StreamingEstimator::new(2);
        assert_eq!(empty.prob_all_paths_good(), Err(MeasureError::NoSnapshots));
        let mut bad = StreamingEstimator::new(2);
        assert!(bad.register_pair(PathId(0), PathId(5)).is_err());
        assert!(bad.push_snapshot(&[true]).is_err());
    }

    fn temp_history(tag: &str, bytes: &[u8]) -> std::path::PathBuf {
        let path =
            std::env::temp_dir().join(format!("netcorr_streaming_{tag}_{}", std::process::id()));
        std::fs::write(&path, bytes).unwrap();
        path
    }

    /// A pseudo-random congestion pattern, deterministic per snapshot.
    fn wide_snapshot(paths: usize, s: usize) -> Vec<bool> {
        (0..paths)
            .map(|p| (s * 7 + p * 13).is_multiple_of(5) || (s + p).is_multiple_of(11))
            .collect()
    }

    #[test]
    fn attached_history_matches_uninterrupted_streaming() {
        let paths = 4;
        let pattern = BTreeSet::from([PathId(0), PathId(2)]);
        // 57 is deliberately not a multiple of 64: the base segment ends
        // mid-word, exercising the shifted merge and tail masks.
        for split in [0usize, 57, 64, 120] {
            let mut live = StreamingEstimator::new(paths);
            live.register_pair(PathId(0), PathId(1)).unwrap();
            live.register_pattern(&pattern).unwrap();
            let mut base_obs = PathObservations::new(paths);
            for s in 0..137 {
                let snap = wide_snapshot(paths, s);
                live.push_snapshot(&snap).unwrap();
                if s < split {
                    base_obs.record_snapshot(&snap).unwrap();
                }
            }

            let path = temp_history(&format!("attach{split}"), &base_obs.to_binary());
            let mapped = MappedObservations::open(&path).unwrap();
            let mut resumed = StreamingEstimator::new(paths);
            resumed.register_pair(PathId(0), PathId(1)).unwrap();
            assert_eq!(resumed.attach_history(mapped).unwrap(), split);
            assert_eq!(resumed.num_snapshots(), split);
            assert_eq!(resumed.delta_snapshots(), 0);
            // Pattern registered *after* attaching: catch-up must read
            // the mapped base too.
            resumed.register_pattern(&pattern).unwrap();
            for s in split..137 {
                resumed.push_snapshot(&wide_snapshot(paths, s)).unwrap();
            }

            assert_eq!(resumed.num_snapshots(), 137);
            assert_eq!(resumed.delta_snapshots(), 137 - split);
            assert!(resumed.base().is_some());
            for p in 0..paths {
                assert_eq!(
                    live.prob_path_congested(PathId(p)).unwrap(),
                    resumed.prob_path_congested(PathId(p)).unwrap(),
                    "path {p}, split {split}"
                );
                assert_eq!(
                    live.log_prob_path_good(PathId(p)).unwrap(),
                    resumed.log_prob_path_good(PathId(p)).unwrap()
                );
            }
            assert_eq!(
                live.prob_pair_good(PathId(0), PathId(1)).unwrap(),
                resumed.prob_pair_good(PathId(0), PathId(1)).unwrap()
            );
            assert_eq!(
                live.prob_all_paths_good().unwrap(),
                resumed.prob_all_paths_good().unwrap()
            );
            assert_eq!(
                live.prob_exactly_congested(&pattern).unwrap(),
                resumed.prob_exactly_congested(&pattern).unwrap()
            );
            // Late pair registration with a base attached catches up
            // across base + delta.
            let mut both = (live.clone(), resumed);
            both.0.register_pair(PathId(2), PathId(3)).unwrap();
            both.1.register_pair(PathId(2), PathId(3)).unwrap();
            assert_eq!(
                both.0.prob_pair_good(PathId(2), PathId(3)).unwrap(),
                both.1.prob_pair_good(PathId(2), PathId(3)).unwrap()
            );
            // The serialized full history is byte-identical to the
            // uninterrupted store's serialization.
            assert_eq!(both.1.history_binary(), live.observations().to_binary());
            std::fs::remove_file(&path).unwrap();
        }
    }

    #[test]
    fn history_binary_supports_another_restart_cycle() {
        // Persist → attach → push → persist → attach again: two restart
        // cycles end bit-identical to one uninterrupted run.
        let paths = 3;
        let mut live = StreamingEstimator::new(paths);
        let mut first = PathObservations::new(paths);
        for s in 0..90 {
            let snap = wide_snapshot(paths, s);
            live.push_snapshot(&snap).unwrap();
            if s < 30 {
                first.record_snapshot(&snap).unwrap();
            }
        }
        let path = temp_history("cycle", &first.to_binary());
        let mut mid = StreamingEstimator::new(paths);
        mid.attach_history(MappedObservations::open(&path).unwrap())
            .unwrap();
        for s in 30..60 {
            mid.push_snapshot(&wide_snapshot(paths, s)).unwrap();
        }
        std::fs::write(&path, mid.history_binary()).unwrap();
        drop(mid);
        let mut last = StreamingEstimator::new(paths);
        last.attach_history(MappedObservations::open(&path).unwrap())
            .unwrap();
        for s in 60..90 {
            last.push_snapshot(&wide_snapshot(paths, s)).unwrap();
        }
        assert_eq!(last.history_binary(), live.observations().to_binary());
        assert_eq!(
            last.prob_all_paths_good().unwrap(),
            live.prob_all_paths_good().unwrap()
        );
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn attach_history_misuse_errors() {
        let obs = {
            let mut o = PathObservations::new(2);
            o.record_snapshot(&[true, false]).unwrap();
            o.to_binary()
        };
        let path = temp_history("misuse", &obs);
        let mapped = MappedObservations::open(&path).unwrap();

        // Path-count mismatch.
        let mut wrong = StreamingEstimator::new(3);
        assert!(matches!(
            wrong.attach_history(mapped.clone()),
            Err(MeasureError::WrongSnapshotWidth {
                expected: 3,
                actual: 2
            })
        ));

        // Attach after snapshots were already pushed.
        let mut started = StreamingEstimator::new(2);
        started.push_snapshot(&[false, false]).unwrap();
        assert!(matches!(
            started.attach_history(mapped.clone()),
            Err(MeasureError::History(_))
        ));

        // Double attach.
        let mut est = StreamingEstimator::new(2);
        est.attach_history(mapped.clone()).unwrap();
        assert!(matches!(
            est.attach_history(mapped),
            Err(MeasureError::History(_))
        ));

        // Batch estimation is refused while a base is attached (the
        // owned store holds only the delta).
        assert!(matches!(est.batch(), Err(MeasureError::History(_))));
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn log_probabilities_match_batch_clamping() {
        let mut est = StreamingEstimator::new(2);
        est.register_pair(PathId(0), PathId(1)).unwrap();
        for _ in 0..10 {
            est.push_snapshot(&[true, false]).unwrap();
        }
        let batch = est.batch().unwrap();
        let pairs = [(PathId(0), PathId(1))];
        assert_eq!(
            est.log_prob_pairs_good(&pairs).unwrap(),
            batch.log_prob_pairs_good(&pairs).unwrap()
        );
        assert_eq!(
            est.log_prob_path_good(PathId(0)).unwrap(),
            batch.log_prob_paths_good(&[PathId(0)]).unwrap()
        );
    }
}
