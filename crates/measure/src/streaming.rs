//! Streaming (online) probability estimation with O(1) queries.
//!
//! [`crate::ProbabilityEstimator`] answers every query by scanning packed
//! lanes or rows — cheap (64 snapshots per word), but still linear in the
//! experiment length, and long-running deployments re-pay that scan on
//! every re-estimation. [`StreamingEstimator`] instead maintains
//! *accumulators* that are updated as each snapshot arrives:
//!
//! * a per-path congested-count (for `P(Y_i = 0)` / `P(Y_i = 1)`);
//! * a both-good count per **registered pair** (for `P(Y_i = 0, Y_j = 0)`,
//!   the equation builder's RHS);
//! * an all-good count (for `P(ψ(S) = ∅)`);
//! * a match count per **registered exact pattern** (for
//!   `P(ψ(S) = ψ(A))`, the theorem algorithm's measurements).
//!
//! Registration declares *which* pairs and patterns the caller will query
//! — for tomography these are known from the topology alone (usable pairs
//! from the correlation partition, coverages from the subset enumeration),
//! so they can be registered before the first snapshot arrives. Each
//! [`StreamingEstimator::push_snapshot`] then costs
//! `O(paths + pairs + patterns · ⌈paths/64⌉)` — every accumulator is
//! updated in O(1) (patterns in O(words-per-row), one packed-row compare)
//! — and every registered query is an O(1) counter read, **no lane scan**.
//! Registering after snapshots have already been recorded is allowed and
//! performs a one-time catch-up scan through the SIMD kernels, so
//! registration order never changes results.
//!
//! The estimator also keeps the full bit-packed [`PathObservations`]
//! store, so ad-hoc queries outside the registered set can always fall
//! back to the batch estimator ([`StreamingEstimator::batch`]), and the
//! differential suite can assert that streaming and batch answers are
//! bit-exact (both sides count integers and divide by the same `N`).

use std::collections::{BTreeMap, BTreeSet};

use netcorr_topology::path::PathId;

use crate::bitset::simd;
use crate::error::MeasureError;
use crate::estimator::ProbabilityEstimator;
use crate::observation::PathObservations;

/// Normalized pair key: the two path ids in increasing order.
fn pair_key(a: PathId, b: PathId) -> (PathId, PathId) {
    (a.min(b), a.max(b))
}

/// Online estimator over a growing observation store: O(1) registered
/// queries, O(1)-per-accumulator updates per pushed snapshot.
#[derive(Debug, Clone)]
pub struct StreamingEstimator {
    observations: PathObservations,
    /// Per-path congested-snapshot counts.
    congested: Vec<u64>,
    /// Registered pairs, normalized, in handle order (parallel to
    /// `pair_good`; the per-push update streams this dense array, not the
    /// map).
    pairs: Vec<(PathId, PathId)>,
    /// Key → handle lookup for the keyed query API and dedup.
    pair_index: BTreeMap<(PathId, PathId), usize>,
    /// Per-registered-pair both-good counts, indexed by handle.
    pair_good: Vec<u64>,
    /// Snapshots in which every path was good.
    all_good: u64,
    /// Registered exact patterns with their packed row masks.
    pattern_index: BTreeMap<BTreeSet<PathId>, usize>,
    pattern_masks: Vec<Vec<u64>>,
    /// Per-registered-pattern exact-match counts.
    pattern_matches: Vec<u64>,
}

impl StreamingEstimator {
    /// Creates an empty streaming estimator for `num_paths` paths.
    pub fn new(num_paths: usize) -> Self {
        Self::with_capacity(num_paths, 0)
    }

    /// Creates an empty streaming estimator with room for `snapshots`
    /// snapshots pre-allocated.
    pub fn with_capacity(num_paths: usize, snapshots: usize) -> Self {
        StreamingEstimator {
            observations: PathObservations::with_capacity(num_paths, snapshots),
            congested: vec![0; num_paths],
            pairs: Vec::new(),
            pair_index: BTreeMap::new(),
            pair_good: Vec::new(),
            all_good: 0,
            pattern_index: BTreeMap::new(),
            pattern_masks: Vec::new(),
            pattern_matches: Vec::new(),
        }
    }

    /// Wraps an already-recorded observation store, initialising the
    /// path-level accumulators from its lanes (one popcount per lane).
    pub fn from_observations(observations: PathObservations) -> Self {
        let congested: Vec<u64> = (0..observations.num_paths())
            .map(|p| observations.lanes().count_ones(p) as u64)
            .collect();
        let rows = observations.rows();
        let all_good = simd::count_zero_rows(rows.words(), rows.words_per_row()) as u64;
        StreamingEstimator {
            congested,
            all_good,
            observations,
            pairs: Vec::new(),
            pair_index: BTreeMap::new(),
            pair_good: Vec::new(),
            pattern_index: BTreeMap::new(),
            pattern_masks: Vec::new(),
            pattern_matches: Vec::new(),
        }
    }

    /// Number of paths per snapshot.
    pub fn num_paths(&self) -> usize {
        self.observations.num_paths()
    }

    /// Number of snapshots recorded so far.
    pub fn num_snapshots(&self) -> usize {
        self.observations.num_snapshots()
    }

    /// Returns `true` if no snapshots have been recorded.
    pub fn is_empty(&self) -> bool {
        self.observations.is_empty()
    }

    /// The underlying bit-packed observation store.
    pub fn observations(&self) -> &PathObservations {
        &self.observations
    }

    /// Consumes the estimator, returning the observation store.
    pub fn into_observations(self) -> PathObservations {
        self.observations
    }

    /// A batch estimator over the same observations, for ad-hoc queries
    /// outside the registered set.
    pub fn batch(&self) -> Result<ProbabilityEstimator<'_>, MeasureError> {
        ProbabilityEstimator::new(&self.observations)
    }

    /// The registered pairs, in registration-independent normalized order.
    pub fn registered_pairs(&self) -> impl Iterator<Item = (PathId, PathId)> + '_ {
        self.pair_index.keys().copied()
    }

    /// Number of registered pairs.
    pub fn num_registered_pairs(&self) -> usize {
        self.pair_good.len()
    }

    /// Number of registered exact patterns.
    pub fn num_registered_patterns(&self) -> usize {
        self.pattern_matches.len()
    }

    fn check_path(&self, path: PathId) -> Result<(), MeasureError> {
        if path.index() >= self.num_paths() {
            return Err(MeasureError::UnknownPath {
                index: path.index(),
                num_paths: self.num_paths(),
            });
        }
        Ok(())
    }

    /// Registers the pair `(a, b)` for O(1) both-good queries and returns
    /// its **handle** — a dense index whose accumulator can be read
    /// without any map lookup ([`StreamingEstimator::prob_pair_good_at`]).
    /// Idempotent; the pair is normalized, so `(a, b)` and `(b, a)` return
    /// the same handle. If snapshots were already recorded, the
    /// accumulator is initialised with one catch-up kernel sweep over the
    /// two lanes.
    pub fn register_pair(&mut self, a: PathId, b: PathId) -> Result<usize, MeasureError> {
        self.check_path(a)?;
        self.check_path(b)?;
        let key = pair_key(a, b);
        if let Some(&handle) = self.pair_index.get(&key) {
            return Ok(handle);
        }
        let lanes = self.observations.lanes();
        let count = if self.is_empty() {
            0
        } else {
            simd::pair_good_count(
                lanes.lane(key.0.index()),
                lanes.lane(key.1.index()),
                lanes.last_word_mask(),
            ) as u64
        };
        let handle = self.pair_good.len();
        self.pair_index.insert(key, handle);
        self.pairs.push(key);
        self.pair_good.push(count);
        Ok(handle)
    }

    /// Registers every pair in `pairs`, returning one handle per input
    /// pair (see [`StreamingEstimator::register_pair`]).
    pub fn register_pairs(
        &mut self,
        pairs: &[(PathId, PathId)],
    ) -> Result<Vec<usize>, MeasureError> {
        pairs
            .iter()
            .map(|&(a, b)| self.register_pair(a, b))
            .collect()
    }

    /// The handle of an already-registered pair, if any.
    pub fn pair_handle(&self, a: PathId, b: PathId) -> Option<usize> {
        self.pair_index.get(&pair_key(a, b)).copied()
    }

    /// Registers an exact congestion pattern for O(1)
    /// `P(ψ(S) = ψ(A))` queries. Idempotent. If snapshots were already
    /// recorded, the match count is initialised with one catch-up kernel
    /// sweep over the packed rows.
    pub fn register_pattern(&mut self, pattern: &BTreeSet<PathId>) -> Result<(), MeasureError> {
        for &p in pattern {
            self.check_path(p)?;
        }
        if self.pattern_index.contains_key(pattern) {
            return Ok(());
        }
        let rows = self.observations.rows();
        let mask = rows.pack_mask(pattern.iter().map(|p| p.index()));
        let count = simd::count_equal_rows(rows.words(), rows.words_per_row(), &mask) as u64;
        self.pattern_index
            .insert(pattern.clone(), self.pattern_matches.len());
        self.pattern_masks.push(mask);
        self.pattern_matches.push(count);
        Ok(())
    }

    /// Records one snapshot and updates every accumulator:
    /// `O(paths)` for the store and the marginals, O(1) per registered
    /// pair, and one packed-row compare per registered pattern.
    pub fn push_snapshot(&mut self, congested: &[bool]) -> Result<(), MeasureError> {
        self.observations.record_snapshot(congested)?;
        let mut any = false;
        for (count, &c) in self.congested.iter_mut().zip(congested) {
            *count += c as u64;
            any |= c;
        }
        self.all_good += !any as u64;
        for (&(a, b), count) in self.pairs.iter().zip(&mut self.pair_good) {
            *count += (!congested[a.index()] && !congested[b.index()]) as u64;
        }
        if !self.pattern_masks.is_empty() {
            let rows = self.observations.rows();
            let row = rows.row_words(rows.num_rows() - 1);
            for (mask, count) in self.pattern_masks.iter().zip(&mut self.pattern_matches) {
                if row == mask.as_slice() {
                    *count += 1;
                }
            }
        }
        Ok(())
    }

    fn require_snapshots(&self) -> Result<f64, MeasureError> {
        if self.is_empty() {
            return Err(MeasureError::NoSnapshots);
        }
        Ok(self.num_snapshots() as f64)
    }

    /// The probability floor used when clamping zero frequencies before
    /// taking logarithms: `1 / (2 N)` (matches the batch estimator).
    pub fn probability_floor(&self) -> f64 {
        1.0 / (2.0 * self.num_snapshots() as f64)
    }

    /// Empirical `P(Y_i = 1)` — O(1).
    pub fn prob_path_congested(&self, path: PathId) -> Result<f64, MeasureError> {
        let n = self.require_snapshots()?;
        self.check_path(path)?;
        Ok(self.congested[path.index()] as f64 / n)
    }

    /// Empirical `P(Y_i = 0)` — O(1).
    pub fn prob_path_good(&self, path: PathId) -> Result<f64, MeasureError> {
        Ok(1.0 - self.prob_path_congested(path)?)
    }

    /// Clamped `log P(Y_i = 0)` — O(1), **bit-exact** with
    /// [`ProbabilityEstimator::log_prob_paths_good`] on a single path:
    /// the good count is formed as an integer (`N − congested`) before
    /// dividing, exactly as the batch popcount path does (`1.0 − c/N`
    /// can differ in the last ULP).
    pub fn log_prob_path_good(&self, path: PathId) -> Result<f64, MeasureError> {
        let n = self.require_snapshots()?;
        self.check_path(path)?;
        let good = self.num_snapshots() as u64 - self.congested[path.index()];
        let p = good as f64 / n;
        Ok(p.max(self.probability_floor()).ln())
    }

    /// Empirical `P(Y_i = 0, Y_j = 0)` for a **registered** pair — O(1),
    /// no lane scan.
    pub fn prob_pair_good(&self, a: PathId, b: PathId) -> Result<f64, MeasureError> {
        let n = self.require_snapshots()?;
        let slot = self
            .pair_index
            .get(&pair_key(a, b))
            .ok_or_else(|| MeasureError::Unregistered(format!("pair ({a:?}, {b:?})")))?;
        Ok(self.pair_good[*slot] as f64 / n)
    }

    /// Empirical `P(Y_i = 0, Y_j = 0)` by pair **handle** — a bounds
    /// check and an array read, no map lookup. This is the true O(1)
    /// query path for hot loops that resolved their handles at
    /// registration time.
    pub fn prob_pair_good_at(&self, handle: usize) -> Result<f64, MeasureError> {
        let n = self.require_snapshots()?;
        let count = self
            .pair_good
            .get(handle)
            .ok_or_else(|| MeasureError::Unregistered(format!("pair handle {handle}")))?;
        Ok(*count as f64 / n)
    }

    /// Batch form of [`StreamingEstimator::prob_pair_good`] over
    /// registered pairs.
    pub fn prob_pairs_good(&self, pairs: &[(PathId, PathId)]) -> Result<Vec<f64>, MeasureError> {
        pairs
            .iter()
            .map(|&(a, b)| self.prob_pair_good(a, b))
            .collect()
    }

    /// Clamped `log P(Y_i = 0, Y_j = 0)` per pair handle (the hot batch
    /// path of the incremental equation builder: one array read and one
    /// `ln` per equation).
    pub fn log_prob_pairs_good_at(&self, handles: &[usize]) -> Result<Vec<f64>, MeasureError> {
        let n = self.require_snapshots()?;
        let floor = self.probability_floor();
        handles
            .iter()
            .map(|&handle| {
                let count = self
                    .pair_good
                    .get(handle)
                    .ok_or_else(|| MeasureError::Unregistered(format!("pair handle {handle}")))?;
                Ok((*count as f64 / n).max(floor).ln())
            })
            .collect()
    }

    /// Clamped `log P(Y_i = 0, Y_j = 0)` per registered pair (matches
    /// [`ProbabilityEstimator::log_prob_pairs_good`]).
    pub fn log_prob_pairs_good(
        &self,
        pairs: &[(PathId, PathId)],
    ) -> Result<Vec<f64>, MeasureError> {
        let floor = self.probability_floor();
        Ok(self
            .prob_pairs_good(pairs)?
            .into_iter()
            .map(|p| p.max(floor).ln())
            .collect())
    }

    /// Empirical `P(ψ(S) = ∅)` — O(1).
    pub fn prob_all_paths_good(&self) -> Result<f64, MeasureError> {
        let n = self.require_snapshots()?;
        Ok(self.all_good as f64 / n)
    }

    /// Empirical `P(ψ(S) = ψ(A))` for a **registered** pattern — O(1),
    /// no row scan.
    pub fn prob_exactly_congested(&self, pattern: &BTreeSet<PathId>) -> Result<f64, MeasureError> {
        let n = self.require_snapshots()?;
        let slot = self
            .pattern_index
            .get(pattern)
            .ok_or_else(|| MeasureError::Unregistered(format!("pattern {pattern:?}")))?;
        Ok(self.pattern_matches[*slot] as f64 / n)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn snapshots() -> Vec<[bool; 3]> {
        vec![
            [false, false, false],
            [true, false, false],
            [true, true, false],
            [false, false, false],
            [false, true, false],
            [true, true, false],
            [false, false, false],
            [false, false, true],
        ]
    }

    fn streamed() -> StreamingEstimator {
        let mut est = StreamingEstimator::new(3);
        est.register_pair(PathId(0), PathId(1)).unwrap();
        est.register_pattern(&BTreeSet::from([PathId(0), PathId(1)]))
            .unwrap();
        for s in snapshots() {
            est.push_snapshot(&s).unwrap();
        }
        est
    }

    #[test]
    fn accumulators_match_the_batch_estimator() {
        let est = streamed();
        let batch = est.batch().unwrap();
        assert_eq!(est.num_snapshots(), 8);
        for p in 0..3 {
            assert_eq!(
                est.prob_path_good(PathId(p)).unwrap(),
                batch.prob_path_good(PathId(p)).unwrap()
            );
        }
        assert_eq!(
            est.prob_pair_good(PathId(0), PathId(1)).unwrap(),
            batch.prob_paths_good(&[PathId(0), PathId(1)]).unwrap()
        );
        assert_eq!(
            est.prob_all_paths_good().unwrap(),
            batch.prob_all_paths_good()
        );
        let pattern = BTreeSet::from([PathId(0), PathId(1)]);
        assert_eq!(
            est.prob_exactly_congested(&pattern).unwrap(),
            batch.prob_exactly_congested(&pattern).unwrap()
        );
    }

    #[test]
    fn late_registration_catches_up() {
        // Register after every snapshot has already been pushed: the
        // catch-up scan must produce the same counts as live updates.
        let live = streamed();
        let mut late = StreamingEstimator::new(3);
        for s in snapshots() {
            late.push_snapshot(&s).unwrap();
        }
        late.register_pair(PathId(1), PathId(0)).unwrap(); // reversed order
        late.register_pattern(&BTreeSet::from([PathId(0), PathId(1)]))
            .unwrap();
        assert_eq!(
            live.prob_pair_good(PathId(0), PathId(1)).unwrap(),
            late.prob_pair_good(PathId(0), PathId(1)).unwrap()
        );
        let pattern = BTreeSet::from([PathId(0), PathId(1)]);
        assert_eq!(
            live.prob_exactly_congested(&pattern).unwrap(),
            late.prob_exactly_congested(&pattern).unwrap()
        );
        // Registration is idempotent and returns the same handle.
        let first = late.pair_handle(PathId(0), PathId(1)).unwrap();
        assert_eq!(late.register_pair(PathId(0), PathId(1)).unwrap(), first);
        assert_eq!(late.num_registered_pairs(), 1);
    }

    #[test]
    fn handle_queries_match_keyed_queries() {
        let mut est = StreamingEstimator::new(3);
        let h01 = est.register_pair(PathId(0), PathId(1)).unwrap();
        let h12 = est.register_pair(PathId(2), PathId(1)).unwrap();
        for s in snapshots() {
            est.push_snapshot(&s).unwrap();
        }
        assert_eq!(
            est.prob_pair_good_at(h01).unwrap(),
            est.prob_pair_good(PathId(0), PathId(1)).unwrap()
        );
        assert_eq!(
            est.prob_pair_good_at(h12).unwrap(),
            est.prob_pair_good(PathId(1), PathId(2)).unwrap()
        );
        assert_eq!(
            est.log_prob_pairs_good_at(&[h01, h12]).unwrap(),
            est.log_prob_pairs_good(&[(PathId(0), PathId(1)), (PathId(1), PathId(2))])
                .unwrap()
        );
        assert!(matches!(
            est.prob_pair_good_at(99),
            Err(MeasureError::Unregistered(_))
        ));
        assert_eq!(est.pair_handle(PathId(0), PathId(2)), None);
    }

    #[test]
    fn from_observations_seeds_path_accumulators() {
        let mut obs = PathObservations::new(3);
        for s in snapshots() {
            obs.record_snapshot(&s).unwrap();
        }
        let mut est = StreamingEstimator::from_observations(obs);
        assert_eq!(est.prob_path_congested(PathId(0)).unwrap(), 3.0 / 8.0);
        assert_eq!(est.prob_all_paths_good().unwrap(), 3.0 / 8.0);
        // Continues to stream.
        est.push_snapshot(&[false, false, false]).unwrap();
        assert_eq!(est.prob_all_paths_good().unwrap(), 4.0 / 9.0);
    }

    #[test]
    fn unregistered_queries_and_errors() {
        let est = streamed();
        assert!(matches!(
            est.prob_pair_good(PathId(0), PathId(2)),
            Err(MeasureError::Unregistered(_))
        ));
        assert!(matches!(
            est.prob_exactly_congested(&BTreeSet::new()),
            Err(MeasureError::Unregistered(_))
        ));
        assert!(est.prob_path_congested(PathId(9)).is_err());
        let empty = StreamingEstimator::new(2);
        assert_eq!(empty.prob_all_paths_good(), Err(MeasureError::NoSnapshots));
        let mut bad = StreamingEstimator::new(2);
        assert!(bad.register_pair(PathId(0), PathId(5)).is_err());
        assert!(bad.push_snapshot(&[true]).is_err());
    }

    #[test]
    fn log_probabilities_match_batch_clamping() {
        let mut est = StreamingEstimator::new(2);
        est.register_pair(PathId(0), PathId(1)).unwrap();
        for _ in 0..10 {
            est.push_snapshot(&[true, false]).unwrap();
        }
        let batch = est.batch().unwrap();
        let pairs = [(PathId(0), PathId(1))];
        assert_eq!(
            est.log_prob_pairs_good(&pairs).unwrap(),
            batch.log_prob_pairs_good(&pairs).unwrap()
        );
        assert_eq!(
            est.log_prob_path_good(PathId(0)).unwrap(),
            batch.log_prob_paths_good(&[PathId(0)]).unwrap()
        );
    }
}
