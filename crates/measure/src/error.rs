//! Error type for the measurement layer.

use std::fmt;

/// Errors produced when recording or querying path observations.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum MeasureError {
    /// A snapshot was recorded with the wrong number of path entries.
    WrongSnapshotWidth {
        /// Number of paths the observation container was created for.
        expected: usize,
        /// Number of entries in the offending snapshot.
        actual: usize,
    },
    /// An estimator was asked for a probability but no snapshots have been
    /// recorded yet.
    NoSnapshots,
    /// A path index was out of range.
    UnknownPath {
        /// The offending path index.
        index: usize,
        /// Number of paths in the observation container.
        num_paths: usize,
    },
    /// Serialized observations could not be parsed.
    Wire(String),
    /// A streaming estimator was queried for a pair or pattern that was
    /// never registered (streaming queries only cover registered
    /// accumulators; use the batch estimator for ad-hoc queries).
    Unregistered(String),
    /// A mapped history segment was attached or used incorrectly (e.g.
    /// attached twice, attached after snapshots were already recorded,
    /// or a delta-only operation was requested while one is attached).
    History(String),
}

impl fmt::Display for MeasureError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            MeasureError::WrongSnapshotWidth { expected, actual } => write!(
                f,
                "snapshot has {actual} path entries, observation container expects {expected}"
            ),
            MeasureError::NoSnapshots => write!(f, "no snapshots have been recorded"),
            MeasureError::UnknownPath { index, num_paths } => {
                write!(
                    f,
                    "path index {index} out of range (have {num_paths} paths)"
                )
            }
            MeasureError::Wire(reason) => {
                write!(f, "malformed observation wire data: {reason}")
            }
            MeasureError::Unregistered(what) => {
                write!(f, "streaming query for unregistered {what}")
            }
            MeasureError::History(reason) => {
                write!(f, "history segment misuse: {reason}")
            }
        }
    }
}

impl std::error::Error for MeasureError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_informative() {
        let e = MeasureError::WrongSnapshotWidth {
            expected: 3,
            actual: 5,
        };
        assert!(e.to_string().contains('3'));
        assert!(e.to_string().contains('5'));
        assert!(MeasureError::NoSnapshots.to_string().contains("snapshots"));
        assert!(MeasureError::UnknownPath {
            index: 9,
            num_paths: 4
        }
        .to_string()
        .contains('9'));
    }
}
