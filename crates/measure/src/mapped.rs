//! Memory-mapped v3 observation files: the owning end of the zero-copy
//! tier.
//!
//! [`MappedObservations`] opens a v3 binary observation file
//! ([`crate::observation::PathObservations::to_binary`]) and serves it
//! query-ready without copying a single lane word: the file is mapped
//! read-only, the 24-byte header is validated, the zero-tail invariant
//! is checked per lane, and [`MappedObservations::view`] hands out an
//! [`ObservationsView`] borrowing the mapped words directly. A 1 GiB
//! history becomes queryable in microseconds instead of the
//! seconds-long word copy + row-transposition a heap load performs.
//!
//! The mapping is implemented with raw `mmap`/`munmap` syscalls (this
//! workspace vendors no libc binding), gated to Linux/x86-64; on other
//! targets — or when the syscall fails — the words are read into a heap
//! buffer instead, with identical semantics
//! ([`MappedObservations::backing`] reports which tier is active).
//! Handles are cheap to clone (`Arc` inside) and safe to share across
//! threads: the mapping is private and read-only, and the daemon's
//! atomic-rename persistence never truncates a published file in place,
//! so the mapped inode stays valid for the lifetime of the handle.

// Raw mmap/munmap syscalls and the mapped-region word slice are the
// only unsafe here; both are confined to this module and justified
// inline.
#![allow(unsafe_code)]

use std::fmt;
use std::fs;
use std::io::Read;
use std::path::Path;
use std::sync::Arc;

use crate::bitset::BitLanesView;
use crate::error::MeasureError;
use crate::observation::{parse_binary_header, BINARY_HEADER_LEN};
use crate::view::ObservationsView;

#[cfg(all(target_os = "linux", target_arch = "x86_64"))]
mod sys {
    //! Minimal raw-syscall mmap binding (Linux x86-64 ABI).

    use std::arch::asm;

    const SYS_MMAP: isize = 9;
    const SYS_MUNMAP: isize = 11;
    const PROT_READ: usize = 0x1;
    const MAP_PRIVATE: usize = 0x2;

    /// Maps `len` bytes of `fd` read-only and private.
    ///
    /// # Safety
    ///
    /// `fd` must be a readable open file descriptor and `len` non-zero.
    pub unsafe fn mmap_readonly(len: usize, fd: i32) -> Result<*const u8, isize> {
        let ret: isize;
        asm!(
            "syscall",
            inlateout("rax") SYS_MMAP => ret,
            in("rdi") 0usize,
            in("rsi") len,
            in("rdx") PROT_READ,
            in("r10") MAP_PRIVATE,
            in("r8") fd as isize,
            in("r9") 0usize,
            lateout("rcx") _,
            lateout("r11") _,
            options(nostack)
        );
        if (-4095..0).contains(&ret) {
            Err(-ret)
        } else {
            Ok(ret as *const u8)
        }
    }

    /// Unmaps a region previously returned by [`mmap_readonly`].
    ///
    /// # Safety
    ///
    /// `addr`/`len` must describe exactly one live mapping, and no
    /// reference into it may outlive the call.
    pub unsafe fn munmap(addr: *const u8, len: usize) {
        let _ret: isize;
        asm!(
            "syscall",
            inlateout("rax") SYS_MUNMAP => _ret,
            in("rdi") addr,
            in("rsi") len,
            lateout("rcx") _,
            lateout("r11") _,
            options(nostack)
        );
    }
}

/// An owned read-only mapping of a whole file.
#[cfg(all(target_os = "linux", target_arch = "x86_64"))]
struct Mapping {
    addr: *const u8,
    len: usize,
}

#[cfg(all(target_os = "linux", target_arch = "x86_64"))]
impl Mapping {
    /// The mapped lane-word region (everything past the v3 header). The
    /// mapping is page-aligned and the header is 24 bytes, so the region
    /// is 8-byte aligned.
    fn words(&self) -> &[u64] {
        let n = (self.len - BINARY_HEADER_LEN) / 8;
        // SAFETY: the region is in-bounds for the mapping (length was
        // validated against the header), 8-byte aligned (page-aligned
        // base + 24), and lives as long as `self`; every bit pattern is
        // a valid u64, and the mapping is never written.
        unsafe { std::slice::from_raw_parts(self.addr.add(BINARY_HEADER_LEN) as *const u64, n) }
    }
}

#[cfg(all(target_os = "linux", target_arch = "x86_64"))]
impl Drop for Mapping {
    fn drop(&mut self) {
        // SAFETY: `addr`/`len` came from a successful mmap_readonly and
        // the region is dropped exactly once; no view can outlive the
        // owning `Arc` that holds this mapping.
        unsafe { sys::munmap(self.addr, self.len) };
    }
}

// SAFETY: the mapping is private and read-only — no interior mutability,
// no aliasing writes — so sharing and sending the pointer is sound.
#[cfg(all(target_os = "linux", target_arch = "x86_64"))]
unsafe impl Send for Mapping {}
#[cfg(all(target_os = "linux", target_arch = "x86_64"))]
unsafe impl Sync for Mapping {}

/// The validated contents of an opened observation file.
enum Region {
    /// Zero-copy: the file is mapped and the words are served from the
    /// page cache.
    #[cfg(all(target_os = "linux", target_arch = "x86_64"))]
    Mapped(Mapping),
    /// Copying fallback: the words were decoded into a heap buffer.
    Heap(Vec<u64>),
}

impl Region {
    fn words(&self) -> &[u64] {
        match self {
            #[cfg(all(target_os = "linux", target_arch = "x86_64"))]
            Region::Mapped(mapping) => mapping.words(),
            Region::Heap(words) => words,
        }
    }

    fn backing(&self) -> &'static str {
        match self {
            #[cfg(all(target_os = "linux", target_arch = "x86_64"))]
            Region::Mapped(_) => "mmap",
            Region::Heap(_) => "heap",
        }
    }
}

struct Inner {
    num_paths: usize,
    num_snapshots: usize,
    byte_len: usize,
    /// Lane words belonging to the v3 payload; the mapping may extend
    /// past them (e.g. a crash-safety footer) and those trailing bytes
    /// are never served.
    payload_words: usize,
    region: Region,
}

/// An owning, shareable handle to a v3 observation file served without
/// copying its lane words (see the module docs for the tier ladder).
#[derive(Clone)]
pub struct MappedObservations {
    inner: Arc<Inner>,
}

impl fmt::Debug for MappedObservations {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("MappedObservations")
            .field("num_paths", &self.inner.num_paths)
            .field("num_snapshots", &self.inner.num_snapshots)
            .field("byte_len", &self.inner.byte_len)
            .field("backing", &self.backing())
            .finish()
    }
}

impl MappedObservations {
    /// Opens and validates a v3 observation file, mapping it when the
    /// platform allows and falling back to a heap read otherwise.
    /// Validation covers the header (magic, counts, exact file length)
    /// and the per-lane zero-tail invariant; corrupt files surface as
    /// [`MeasureError::Wire`], never a panic.
    pub fn open(path: &Path) -> Result<Self, MeasureError> {
        Self::open_inner(path, false, None)
    }

    /// Opens a file whose first `payload_len` bytes are a v3 observation
    /// block, ignoring anything after them. This is how history files
    /// that carry a trailing generation/checksum footer are mapped: the
    /// footer stays on disk (and in the mapping) but is never exposed
    /// through [`MappedObservations::view`]. `payload_len` must lie
    /// within the file, cover the 24-byte header, and leave a whole
    /// number of lane words.
    pub fn open_prefix(path: &Path, payload_len: usize) -> Result<Self, MeasureError> {
        Self::open_inner(path, false, Some(payload_len))
    }

    /// Opens a file through the copying fallback tier even where a
    /// mapping is available — the control arm for benchmarks and for
    /// diagnosing mapping problems.
    pub fn open_heap(path: &Path) -> Result<Self, MeasureError> {
        Self::open_inner(path, true, None)
    }

    fn open_inner(
        path: &Path,
        force_heap: bool,
        payload: Option<usize>,
    ) -> Result<Self, MeasureError> {
        let io_err =
            |what: &str, e: std::io::Error| MeasureError::Wire(format!("cannot {what}: {e}"));
        let mut file = fs::File::open(path).map_err(|e| io_err("open observation file", e))?;
        let byte_len = file
            .metadata()
            .map_err(|e| io_err("stat observation file", e))?
            .len();
        let byte_len = usize::try_from(byte_len)
            .map_err(|_| MeasureError::Wire("file length overflows usize".to_string()))?;
        if byte_len < BINARY_HEADER_LEN {
            return Err(MeasureError::Wire(format!(
                "binary observations need a {BINARY_HEADER_LEN}-byte header, got {byte_len} bytes"
            )));
        }
        let payload_len = match payload {
            Some(n) => {
                if n > byte_len
                    || n < BINARY_HEADER_LEN
                    || !(n - BINARY_HEADER_LEN).is_multiple_of(8)
                {
                    return Err(MeasureError::Wire(format!(
                        "observation payload prefix of {n} bytes is not a whole \
                         header + lane-word region within the {byte_len}-byte file"
                    )));
                }
                n
            }
            None => byte_len,
        };
        let payload_words = (payload_len - BINARY_HEADER_LEN) / 8;

        #[cfg(all(target_os = "linux", target_arch = "x86_64"))]
        if !force_heap {
            use std::os::fd::AsRawFd;
            // SAFETY: `file` is open and readable, `byte_len >= 24 > 0`.
            match unsafe { sys::mmap_readonly(byte_len, file.as_raw_fd()) } {
                Ok(addr) => {
                    let mapping = Mapping {
                        addr,
                        len: byte_len,
                    };
                    // Validate through the mapped header itself: the
                    // payload prefix plus the derived length checks.
                    // SAFETY: the whole mapping is in-bounds and lives
                    // for this scope (`mapping` owns it).
                    let header: &[u8] =
                        unsafe { std::slice::from_raw_parts(mapping.addr, payload_len) };
                    let (num_paths, num_snapshots) = parse_binary_header(header)?;
                    // Zero-tail check, no copy (errors unmap via Drop).
                    BitLanesView::try_from_lane_words(
                        num_paths,
                        num_snapshots,
                        &mapping.words()[..payload_words],
                    )?;
                    return Ok(MappedObservations {
                        inner: Arc::new(Inner {
                            num_paths,
                            num_snapshots,
                            byte_len,
                            payload_words,
                            region: Region::Mapped(mapping),
                        }),
                    });
                }
                // Mapping can fail on exotic filesystems; the heap read
                // below has identical semantics.
                Err(_errno) => {}
            }
        }

        let mut bytes = Vec::with_capacity(byte_len);
        file.read_to_end(&mut bytes)
            .map_err(|e| io_err("read observation file", e))?;
        let (num_paths, num_snapshots) = parse_binary_header(&bytes[..payload_len])?;
        let words: Vec<u64> = bytes[BINARY_HEADER_LEN..payload_len]
            .chunks_exact(8)
            .map(|c| u64::from_le_bytes(c.try_into().unwrap()))
            .collect();
        BitLanesView::try_from_lane_words(num_paths, num_snapshots, &words)?;
        Ok(MappedObservations {
            inner: Arc::new(Inner {
                num_paths,
                num_snapshots,
                byte_len: bytes.len(),
                payload_words,
                region: Region::Heap(words),
            }),
        })
    }

    /// Number of paths per snapshot.
    pub fn num_paths(&self) -> usize {
        self.inner.num_paths
    }

    /// Number of snapshots in the file.
    pub fn num_snapshots(&self) -> usize {
        self.inner.num_snapshots
    }

    /// Size of the backing file in bytes (header included).
    pub fn byte_len(&self) -> usize {
        self.inner.byte_len
    }

    /// Which tier serves the words: `"mmap"` (zero-copy) or `"heap"`
    /// (copying fallback).
    pub fn backing(&self) -> &'static str {
        self.inner.region.backing()
    }

    /// A query-ready view over the file's payload lane words.
    pub fn view(&self) -> ObservationsView<'_> {
        let lanes = BitLanesView::try_from_lane_words(
            self.inner.num_paths,
            self.inner.num_snapshots,
            &self.inner.region.words()[..self.inner.payload_words],
        )
        .expect("lane words were validated when the file was opened");
        ObservationsView::new(lanes)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::observation::PathObservations;

    fn sample(paths: usize, snapshots: usize) -> PathObservations {
        let mut obs = PathObservations::new(paths);
        let mut row = vec![false; paths];
        for s in 0..snapshots {
            for (p, bit) in row.iter_mut().enumerate() {
                *bit = (s * 5 + p * 3) % 7 == 0;
            }
            obs.record_snapshot(&row).unwrap();
        }
        obs
    }

    fn temp_path(tag: &str) -> std::path::PathBuf {
        std::env::temp_dir().join(format!("netcorr_mapped_{tag}_{}", std::process::id()))
    }

    #[test]
    fn mapped_file_round_trips_bit_exactly() {
        let obs = sample(7, 333);
        let path = temp_path("roundtrip");
        fs::write(&path, obs.to_binary()).unwrap();
        let mapped = MappedObservations::open(&path).unwrap();
        assert_eq!(mapped.num_paths(), 7);
        assert_eq!(mapped.num_snapshots(), 333);
        assert_eq!(mapped.byte_len(), 24 + 7 * 6 * 8);
        assert!(["mmap", "heap"].contains(&mapped.backing()));
        #[cfg(all(target_os = "linux", target_arch = "x86_64"))]
        assert_eq!(mapped.backing(), "mmap");
        assert_eq!(mapped.view().to_observations().unwrap(), obs);

        // The heap control arm agrees bit for bit.
        let heap = MappedObservations::open_heap(&path).unwrap();
        assert_eq!(heap.backing(), "heap");
        assert_eq!(heap.view().to_observations().unwrap(), obs);

        // Clones share the mapping and survive the original being
        // dropped.
        let clone = mapped.clone();
        drop(mapped);
        assert_eq!(clone.view().num_snapshots(), 333);
        fs::remove_file(&path).unwrap();
    }

    #[test]
    fn corrupt_files_error_instead_of_panicking() {
        let obs = sample(3, 100);
        let block = obs.to_binary();

        // Truncated: lane region cut short.
        let path = temp_path("truncated");
        fs::write(&path, &block[..block.len() - 8]).unwrap();
        let err = MappedObservations::open(&path).unwrap_err();
        assert!(err.to_string().contains("expected"), "got: {err}");

        // Dirty tail: a bit set beyond the declared snapshot count.
        let mut dirty = block.clone();
        let last = dirty.len() - 1;
        dirty[last] |= 0x80;
        fs::write(&path, &dirty).unwrap();
        let err = MappedObservations::open(&path).unwrap_err();
        assert!(err.to_string().contains("beyond slot"), "got: {err}");

        // Bad magic.
        let mut bad = block.clone();
        bad[0] = b'X';
        fs::write(&path, &bad).unwrap();
        let err = MappedObservations::open(&path).unwrap_err();
        assert!(err.to_string().contains("magic"), "got: {err}");

        // Shorter than a header.
        fs::write(&path, b"NC").unwrap();
        assert!(MappedObservations::open(&path).is_err());

        // Missing file.
        fs::remove_file(&path).unwrap();
        let err = MappedObservations::open(&path).unwrap_err();
        assert!(err.to_string().contains("cannot open"), "got: {err}");
    }

    #[test]
    fn prefix_open_ignores_trailing_footer_bytes() {
        let obs = sample(5, 77);
        let block = obs.to_binary();
        let path = temp_path("prefix");

        // A 32-byte trailer (as written by crash-safe history files)
        // must be invisible through the prefix-aware open.
        let mut bytes = block.clone();
        bytes.extend_from_slice(&[0xAB; 32]);
        fs::write(&path, &bytes).unwrap();
        let mapped = MappedObservations::open_prefix(&path, block.len()).unwrap();
        assert_eq!(mapped.num_snapshots(), 77);
        assert_eq!(mapped.byte_len(), block.len() + 32);
        assert_eq!(mapped.view().to_observations().unwrap(), obs);

        // Whole-file open of the same bytes fails (length mismatch), so
        // the prefix form is genuinely load-bearing.
        assert!(MappedObservations::open(&path).is_err());

        // Degenerate prefixes are rejected: past EOF, shorter than a
        // header, or splitting a lane word.
        assert!(MappedObservations::open_prefix(&path, bytes.len() + 8).is_err());
        assert!(MappedObservations::open_prefix(&path, 8).is_err());
        assert!(MappedObservations::open_prefix(&path, block.len() + 4).is_err());

        // `open_prefix(len) == open` on a footer-less file.
        fs::write(&path, &block).unwrap();
        let exact = MappedObservations::open_prefix(&path, block.len()).unwrap();
        assert_eq!(exact.view().to_observations().unwrap(), obs);
        fs::remove_file(&path).unwrap();
    }

    #[test]
    fn empty_history_files_are_valid() {
        let obs = PathObservations::new(9);
        let path = temp_path("empty");
        fs::write(&path, obs.to_binary()).unwrap();
        let mapped = MappedObservations::open(&path).unwrap();
        assert_eq!(mapped.num_paths(), 9);
        assert_eq!(mapped.num_snapshots(), 0);
        assert!(mapped.view().is_empty());
        fs::remove_file(&path).unwrap();
    }
}
