//! Per-snapshot path observations, stored bit-packed.

use serde::{Deserialize, Serialize};

use netcorr_topology::path::PathId;

use crate::bitset::{BitLanes, BitMatrix};
use crate::error::MeasureError;

/// Version tag of the [`PathObservations`] textual (debug) wire format.
pub const WIRE_FORMAT: &str = "netcorr-path-observations v2";

/// Magic bytes opening the binary wire format
/// (`netcorr-path-observations v3`).
pub const BINARY_MAGIC: &[u8; 8] = b"NCOBSv3\n";

/// The outcome of an experiment: for every snapshot, the congestion status
/// (`true` = congested) of every measurement path.
///
/// Observations are stored **bit-packed in two layouts at once**:
///
/// * *path-major lanes* ([`BitLanes`]) — one packed bit-vector per path,
///   one bit per snapshot. Marginal and joint path queries
///   (`P(Y_i = 0)`, `P(Y_i = 0, Y_j = 0)`) reduce to AND/popcount over
///   `u64` words, 64 snapshots at a time.
/// * *snapshot-major rows* ([`BitMatrix`]) — one packed row per snapshot.
///   Exact-state queries (`P(ψ(S) = ψ(A))`, `P(ψ(S) = ∅)`) reduce to
///   word-equality of each row against a packed target mask.
///
/// Together they cost 2 bits per path×snapshot cell — a 1500-path
/// experiment with 4096 snapshots occupies ~1.5 MiB, 4× less than the
/// previous one-`bool`-per-cell layout while answering every estimator
/// query ~64× faster.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct PathObservations {
    num_paths: usize,
    /// Path-major packed view: lane `p` holds path `p`'s bits.
    lanes: BitLanes,
    /// Snapshot-major packed view: row `s` holds snapshot `s`'s bits.
    rows: BitMatrix,
}

impl PathObservations {
    /// Creates an empty observation container for `num_paths` paths.
    pub fn new(num_paths: usize) -> Self {
        PathObservations {
            num_paths,
            lanes: BitLanes::new(num_paths),
            rows: BitMatrix::new(num_paths),
        }
    }

    /// Creates an empty container with capacity pre-allocated for
    /// `snapshots` snapshots.
    pub fn with_capacity(num_paths: usize, snapshots: usize) -> Self {
        PathObservations {
            num_paths,
            lanes: BitLanes::with_capacity(num_paths, snapshots),
            rows: BitMatrix::with_capacity(num_paths, snapshots),
        }
    }

    /// Number of paths per snapshot.
    pub fn num_paths(&self) -> usize {
        self.num_paths
    }

    /// Number of snapshots recorded so far.
    pub fn num_snapshots(&self) -> usize {
        self.lanes.num_slots()
    }

    /// Returns `true` if no snapshots have been recorded.
    pub fn is_empty(&self) -> bool {
        self.num_snapshots() == 0
    }

    /// Records one snapshot: `congested[i]` is the status of path `i`.
    pub fn record_snapshot(&mut self, congested: &[bool]) -> Result<(), MeasureError> {
        if congested.len() != self.num_paths {
            return Err(MeasureError::WrongSnapshotWidth {
                expected: self.num_paths,
                actual: congested.len(),
            });
        }
        self.lanes.push_slot(congested);
        self.rows.push_row(congested);
        Ok(())
    }

    /// The observations of snapshot `snapshot`, unpacked (one entry per
    /// path).
    ///
    /// # Panics
    ///
    /// Panics if the snapshot index is out of range.
    pub fn snapshot(&self, snapshot: usize) -> Vec<bool> {
        self.rows.row_bools(snapshot)
    }

    /// Whether `path` was congested during `snapshot`.
    ///
    /// # Panics
    ///
    /// Panics if either index is out of range.
    pub fn is_congested(&self, snapshot: usize, path: PathId) -> bool {
        self.rows.get(snapshot, path.index())
    }

    /// The set of congested paths during `snapshot`, in increasing path
    /// order.
    pub fn congested_paths(&self, snapshot: usize) -> Vec<PathId> {
        let mut paths = Vec::new();
        for (word_idx, &word) in self.rows.row_words(snapshot).iter().enumerate() {
            let mut bits = word;
            while bits != 0 {
                let bit = bits.trailing_zeros() as usize;
                paths.push(PathId(word_idx * crate::bitset::WORD_BITS + bit));
                bits &= bits - 1;
            }
        }
        paths
    }

    /// Fraction of snapshots during which `path` was congested (its
    /// empirical `P(Y = 1)`).
    pub fn congestion_frequency(&self, path: PathId) -> Result<f64, MeasureError> {
        if self.is_empty() {
            return Err(MeasureError::NoSnapshots);
        }
        if path.index() >= self.num_paths {
            return Err(MeasureError::UnknownPath {
                index: path.index(),
                num_paths: self.num_paths,
            });
        }
        let congested = self.lanes.count_ones(path.index());
        Ok(congested as f64 / self.num_snapshots() as f64)
    }

    /// Iterates over snapshots as unpacked Boolean vectors.
    pub fn snapshots(&self) -> impl Iterator<Item = Vec<bool>> + '_ {
        (0..self.num_snapshots()).map(|s| self.rows.row_bools(s))
    }

    /// Paths that were congested during at least one snapshot — the
    /// "potentially congested" notion is defined over *links*, but this
    /// per-path view is what it is derived from.
    pub fn ever_congested_paths(&self) -> Vec<PathId> {
        (0..self.num_paths)
            .filter(|&p| self.lanes.lane(p).iter().any(|&w| w != 0))
            .map(PathId)
            .collect()
    }

    /// Appends every snapshot of `other` after this container's
    /// snapshots — the shard-merge operation. When this container ends on
    /// a word boundary (the shard splitter guarantees it for every
    /// boundary but the last), both packed views are merged by word-level
    /// copies; otherwise the snapshots are replayed bit by bit.
    pub fn concat(&mut self, other: &PathObservations) -> Result<(), MeasureError> {
        if other.num_paths != self.num_paths {
            return Err(MeasureError::WrongSnapshotWidth {
                expected: self.num_paths,
                actual: other.num_paths,
            });
        }
        if self
            .num_snapshots()
            .is_multiple_of(crate::bitset::WORD_BITS)
        {
            self.lanes.concat(&other.lanes);
            self.rows.concat(&other.rows);
        } else {
            for snapshot in other.snapshots() {
                self.record_snapshot(&snapshot)?;
            }
        }
        Ok(())
    }

    /// The path-major packed lanes (one `u64` slice per path; bits beyond
    /// the recorded snapshots are zero).
    pub fn lanes(&self) -> &BitLanes {
        &self.lanes
    }

    /// The snapshot-major packed rows (one word slice per snapshot).
    pub fn rows(&self) -> &BitMatrix {
        &self.rows
    }

    /// Serializes the observations into the versioned, line-oriented wire
    /// format (see [`WIRE_FORMAT`]):
    ///
    /// ```text
    /// netcorr-path-observations v2
    /// paths <num_paths>
    /// snapshots <num_snapshots>
    /// lane <hex words of path 0, least-significant word first>
    /// lane <hex words of path 1>
    /// ...
    /// ```
    ///
    /// Each lane line carries `ceil(snapshots / 64)` words of 16 lowercase
    /// hex digits each (no separator); an empty container emits `lane -`
    /// placeholders so the format stays line-parseable.
    pub fn to_wire(&self) -> String {
        let used = self.num_snapshots().div_ceil(64);
        let mut out = String::with_capacity(64 + self.num_paths * (6 + 16 * used));
        out.push_str(WIRE_FORMAT);
        out.push('\n');
        out.push_str(&format!("paths {}\n", self.num_paths));
        out.push_str(&format!("snapshots {}\n", self.num_snapshots()));
        for path in 0..self.num_paths {
            out.push_str("lane ");
            if used == 0 {
                out.push('-');
            } else {
                for &word in &self.lanes.lane(path)[..used] {
                    out.push_str(&format!("{word:016x}"));
                }
            }
            out.push('\n');
        }
        out
    }

    /// Parses the wire format produced by [`PathObservations::to_wire`].
    pub fn from_wire(text: &str) -> Result<Self, MeasureError> {
        let mut lines = text.lines();
        let header = lines.next().unwrap_or_default();
        if header != WIRE_FORMAT {
            return Err(MeasureError::Wire(format!(
                "unsupported header {header:?} (expected {WIRE_FORMAT:?})"
            )));
        }
        let field = |line: Option<&str>, key: &str| -> Result<usize, MeasureError> {
            let line = line.ok_or_else(|| MeasureError::Wire(format!("missing `{key}` line")))?;
            let value = line
                .strip_prefix(key)
                .and_then(|v| v.strip_prefix(' '))
                .ok_or_else(|| MeasureError::Wire(format!("expected `{key} <n>`, got {line:?}")))?;
            value
                .parse()
                .map_err(|_| MeasureError::Wire(format!("invalid `{key}` value {value:?}")))
        };
        let num_paths = field(lines.next(), "paths")?;
        let num_snapshots = field(lines.next(), "snapshots")?;
        let used = num_snapshots.div_ceil(64);

        let mut all_lanes: Vec<Vec<u64>> = Vec::with_capacity(num_paths);
        for path in 0..num_paths {
            let line = lines
                .next()
                .ok_or_else(|| MeasureError::Wire(format!("missing lane line for path {path}")))?;
            let hex = line.strip_prefix("lane ").ok_or_else(|| {
                MeasureError::Wire(format!("expected `lane <hex>`, got {line:?}"))
            })?;
            let mut words = Vec::with_capacity(used);
            if hex != "-" {
                if hex.len() != 16 * used {
                    return Err(MeasureError::Wire(format!(
                        "lane {path} has {} hex digits, expected {}",
                        hex.len(),
                        16 * used
                    )));
                }
                for chunk in 0..used {
                    let digits = &hex[chunk * 16..(chunk + 1) * 16];
                    let word = u64::from_str_radix(digits, 16).map_err(|_| {
                        MeasureError::Wire(format!("invalid hex word {digits:?} in lane {path}"))
                    })?;
                    words.push(word);
                }
            } else if used != 0 {
                return Err(MeasureError::Wire(format!(
                    "lane {path} is empty but {num_snapshots} snapshots are declared"
                )));
            }
            if let Some(&last) = words.last() {
                if last & !crate::bitset::tail_mask(num_snapshots) != 0 {
                    return Err(MeasureError::Wire(format!(
                        "lane {path} has bits set beyond snapshot {num_snapshots}"
                    )));
                }
            }
            all_lanes.push(words);
        }
        if let Some(extra) = lines.find(|l| !l.trim().is_empty()) {
            return Err(MeasureError::Wire(format!(
                "unexpected trailing line {extra:?}"
            )));
        }

        let words: Vec<u64> = all_lanes.into_iter().flatten().collect();
        Self::from_lane_word_data(num_paths, num_snapshots, &words)
    }

    /// Builds a container from validated lane words (`num_paths`
    /// consecutive groups of `⌈num_snapshots/64⌉` words): the lane view is
    /// loaded by word-level copy, the snapshot-major row view is rebuilt
    /// by transposition.
    fn from_lane_word_data(
        num_paths: usize,
        num_snapshots: usize,
        words: &[u64],
    ) -> Result<Self, MeasureError> {
        if num_snapshots == 0 {
            if !words.is_empty() {
                return Err(MeasureError::Wire(format!(
                    "{} lane words for an empty container",
                    words.len()
                )));
            }
            return Ok(PathObservations::new(num_paths));
        }
        let lanes = BitLanes::try_from_lane_words(num_paths, num_snapshots, words)?;
        let mut rows = BitMatrix::with_capacity(num_paths, num_snapshots);
        let mut snapshot = vec![false; num_paths];
        for s in 0..num_snapshots {
            for (p, bit) in snapshot.iter_mut().enumerate() {
                *bit = lanes.get(p, s);
            }
            rows.push_row(&snapshot);
        }
        Ok(PathObservations {
            num_paths,
            lanes,
            rows,
        })
    }

    /// Serializes the observations into the binary wire format
    /// (`netcorr-path-observations v3`): a fixed 24-byte header —
    /// [`BINARY_MAGIC`], then `num_paths` and `num_snapshots` as
    /// little-endian `u64` — followed by the raw lane words
    /// (`⌈num_snapshots/64⌉` little-endian `u64`s per path, path-major).
    ///
    /// The payload is exactly the in-memory lane layout, so loading needs
    /// no per-bit parsing (and the format is mmap-friendly: the word
    /// region can be mapped and handed to
    /// [`BitLanes::from_lane_words`] directly). The textual
    /// [`PathObservations::to_wire`] format stays as the debuggable
    /// variant.
    pub fn to_binary(&self) -> Vec<u8> {
        let used = self.num_snapshots().div_ceil(crate::bitset::WORD_BITS);
        let mut out = Vec::with_capacity(24 + self.num_paths * used * 8);
        out.extend_from_slice(BINARY_MAGIC);
        out.extend_from_slice(&(self.num_paths as u64).to_le_bytes());
        out.extend_from_slice(&(self.num_snapshots() as u64).to_le_bytes());
        for path in 0..self.num_paths {
            for &word in &self.lanes.lane(path)[..used] {
                out.extend_from_slice(&word.to_le_bytes());
            }
        }
        out
    }

    /// Parses the binary wire format produced by
    /// [`PathObservations::to_binary`]. The lane words are copied straight
    /// into the packed lane view; only the redundant row view is rebuilt.
    pub fn from_binary(bytes: &[u8]) -> Result<Self, MeasureError> {
        let (num_paths, num_snapshots) = parse_binary_header(bytes)?;
        let words: Vec<u64> = bytes[BINARY_HEADER_LEN..]
            .chunks_exact(8)
            .map(|c| u64::from_le_bytes(c.try_into().unwrap()))
            .collect();
        Self::from_lane_word_data(num_paths, num_snapshots, &words)
    }
}

/// Length of the fixed v3 header: [`BINARY_MAGIC`] plus two little-endian
/// `u64` counts.
pub const BINARY_HEADER_LEN: usize = 24;

/// Validates a v3 binary observation block's header — magic, counts, and
/// the exact total length implied by them — and returns
/// `(num_paths, num_snapshots)`. The lane-word region is the remaining
/// `bytes[BINARY_HEADER_LEN..]`, untouched (zero-tail validation happens
/// when the words are turned into lanes or a lane view).
pub fn parse_binary_header(bytes: &[u8]) -> Result<(usize, usize), MeasureError> {
    if bytes.len() < BINARY_HEADER_LEN {
        return Err(MeasureError::Wire(format!(
            "binary observations need a {BINARY_HEADER_LEN}-byte header, got {} bytes",
            bytes.len()
        )));
    }
    if &bytes[..8] != BINARY_MAGIC {
        return Err(MeasureError::Wire(format!(
            "bad magic {:?} (expected {BINARY_MAGIC:?})",
            &bytes[..8]
        )));
    }
    let read_u64 =
        |offset: usize| u64::from_le_bytes(bytes[offset..offset + 8].try_into().unwrap());
    let num_paths = usize::try_from(read_u64(8))
        .map_err(|_| MeasureError::Wire("path count overflows usize".to_string()))?;
    let num_snapshots = usize::try_from(read_u64(16))
        .map_err(|_| MeasureError::Wire("snapshot count overflows usize".to_string()))?;
    let used = num_snapshots.div_ceil(crate::bitset::WORD_BITS);
    let expected = BINARY_HEADER_LEN
        + num_paths
            .checked_mul(used)
            .and_then(|w| w.checked_mul(8))
            .ok_or_else(|| MeasureError::Wire("lane region size overflows".to_string()))?;
    if bytes.len() != expected {
        return Err(MeasureError::Wire(format!(
            "expected {expected} bytes for {num_paths} paths x {num_snapshots} snapshots, \
             got {}",
            bytes.len()
        )));
    }
    Ok((num_paths, num_snapshots))
}

impl PartialEq for PathObservations {
    /// Logical equality: same paths, same snapshots, same bits (the two
    /// packed views are redundant, so comparing the row view suffices).
    fn eq(&self, other: &Self) -> bool {
        self.num_paths == other.num_paths
            && self.num_snapshots() == other.num_snapshots()
            && self.rows == other.rows
    }
}

impl Eq for PathObservations {}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_observations() -> PathObservations {
        let mut obs = PathObservations::new(3);
        obs.record_snapshot(&[false, false, false]).unwrap();
        obs.record_snapshot(&[true, false, false]).unwrap();
        obs.record_snapshot(&[true, true, false]).unwrap();
        obs.record_snapshot(&[false, false, false]).unwrap();
        obs
    }

    #[test]
    fn recording_and_counting_snapshots() {
        let obs = sample_observations();
        assert_eq!(obs.num_paths(), 3);
        assert_eq!(obs.num_snapshots(), 4);
        assert!(!obs.is_empty());
        assert_eq!(obs.snapshot(2), vec![true, true, false]);
    }

    #[test]
    fn rejects_snapshots_of_the_wrong_width() {
        let mut obs = PathObservations::new(3);
        let err = obs.record_snapshot(&[true, false]).unwrap_err();
        assert_eq!(
            err,
            MeasureError::WrongSnapshotWidth {
                expected: 3,
                actual: 2
            }
        );
    }

    #[test]
    fn per_path_queries() {
        let obs = sample_observations();
        assert!(obs.is_congested(1, PathId(0)));
        assert!(!obs.is_congested(1, PathId(1)));
        assert_eq!(obs.congested_paths(2), vec![PathId(0), PathId(1)]);
        assert_eq!(obs.congested_paths(0), Vec::<PathId>::new());
        assert_eq!(obs.congestion_frequency(PathId(0)).unwrap(), 0.5);
        assert_eq!(obs.congestion_frequency(PathId(2)).unwrap(), 0.0);
    }

    #[test]
    fn frequency_errors() {
        let empty = PathObservations::new(2);
        assert_eq!(
            empty.congestion_frequency(PathId(0)),
            Err(MeasureError::NoSnapshots)
        );
        let obs = sample_observations();
        assert_eq!(
            obs.congestion_frequency(PathId(7)),
            Err(MeasureError::UnknownPath {
                index: 7,
                num_paths: 3
            })
        );
    }

    #[test]
    fn ever_congested_paths_are_reported() {
        let obs = sample_observations();
        assert_eq!(obs.ever_congested_paths(), vec![PathId(0), PathId(1)]);
    }

    #[test]
    fn snapshots_iterator_matches_accessor() {
        let obs = sample_observations();
        let collected: Vec<Vec<bool>> = obs.snapshots().collect();
        assert_eq!(collected.len(), 4);
        assert_eq!(collected[1], obs.snapshot(1));
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn snapshot_accessor_panics_out_of_range() {
        let obs = sample_observations();
        let _ = obs.snapshot(10);
    }

    #[test]
    fn with_capacity_behaves_like_new() {
        let mut obs = PathObservations::with_capacity(2, 100);
        assert_eq!(obs.num_snapshots(), 0);
        obs.record_snapshot(&[true, false]).unwrap();
        assert_eq!(obs.num_snapshots(), 1);
    }

    #[test]
    fn packed_views_agree() {
        let obs = sample_observations();
        for s in 0..obs.num_snapshots() {
            for p in 0..obs.num_paths() {
                assert_eq!(obs.lanes().get(p, s), obs.rows().get(s, p));
            }
        }
    }

    #[test]
    fn equality_ignores_capacity() {
        let mut a = PathObservations::new(2);
        let mut b = PathObservations::with_capacity(2, 4096);
        for i in 0..100 {
            let row = [i % 2 == 0, i % 3 == 0];
            a.record_snapshot(&row).unwrap();
            b.record_snapshot(&row).unwrap();
        }
        assert_eq!(a, b);
        b.record_snapshot(&[true, true]).unwrap();
        assert_ne!(a, b);
    }

    #[test]
    fn concat_matches_sequential_recording() {
        let bit = |s: usize, p: usize| (s * 3 + p * 7).is_multiple_of(4);
        // Split points: word-aligned (128) and unaligned (65).
        for split in [128usize, 65] {
            let mut left = PathObservations::new(2);
            let mut right = PathObservations::new(2);
            let mut whole = PathObservations::new(2);
            for s in 0..200 {
                let row = [bit(s, 0), bit(s, 1)];
                whole.record_snapshot(&row).unwrap();
                if s < split {
                    left.record_snapshot(&row).unwrap();
                } else {
                    right.record_snapshot(&row).unwrap();
                }
            }
            left.concat(&right).unwrap();
            assert_eq!(left, whole);
            // Both packed views stay in sync.
            for s in 0..200 {
                for p in 0..2 {
                    assert_eq!(left.lanes().get(p, s), whole.rows().get(s, p));
                }
            }
        }
        // Width mismatch is rejected.
        let mut a = PathObservations::new(2);
        assert!(a.concat(&PathObservations::new(3)).is_err());
    }

    #[test]
    fn wire_round_trip() {
        let obs = sample_observations();
        let wire = obs.to_wire();
        let back = PathObservations::from_wire(&wire).unwrap();
        assert_eq!(obs, back);
        // Empty containers round-trip too.
        let empty = PathObservations::new(5);
        assert_eq!(
            PathObservations::from_wire(&empty.to_wire()).unwrap(),
            empty
        );
    }

    #[test]
    fn wire_rejects_malformed_input() {
        assert!(PathObservations::from_wire("").is_err());
        assert!(PathObservations::from_wire("garbage").is_err());
        let obs = sample_observations();
        let wire = obs.to_wire();
        // Corrupt the header.
        assert!(PathObservations::from_wire(&wire.replace("v2", "v9")).is_err());
        // Drop a lane line.
        let truncated: Vec<&str> = wire.lines().take(4).collect();
        assert!(PathObservations::from_wire(&truncated.join("\n")).is_err());
        // Set a bit beyond the declared snapshot count.
        let corrupted = wire.replace("lane 0000000000000006", "lane 0000000000000016");
        assert!(PathObservations::from_wire(&corrupted).is_err());
    }
}
