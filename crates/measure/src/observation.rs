//! Per-snapshot path observations.

use serde::{Deserialize, Serialize};

use netcorr_topology::path::PathId;

use crate::error::MeasureError;

/// The outcome of an experiment: for every snapshot, the congestion status
/// (`true` = congested) of every measurement path.
///
/// Data is stored snapshot-major in one flat vector, so an experiment with
/// 1500 paths and a few thousand snapshots occupies only a few megabytes.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct PathObservations {
    num_paths: usize,
    data: Vec<bool>,
}

impl PathObservations {
    /// Creates an empty observation container for `num_paths` paths.
    pub fn new(num_paths: usize) -> Self {
        PathObservations {
            num_paths,
            data: Vec::new(),
        }
    }

    /// Creates an empty container with capacity pre-allocated for
    /// `snapshots` snapshots.
    pub fn with_capacity(num_paths: usize, snapshots: usize) -> Self {
        PathObservations {
            num_paths,
            data: Vec::with_capacity(num_paths * snapshots),
        }
    }

    /// Number of paths per snapshot.
    pub fn num_paths(&self) -> usize {
        self.num_paths
    }

    /// Number of snapshots recorded so far.
    pub fn num_snapshots(&self) -> usize {
        self.data.len().checked_div(self.num_paths).unwrap_or(0)
    }

    /// Returns `true` if no snapshots have been recorded.
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// Records one snapshot: `congested[i]` is the status of path `i`.
    pub fn record_snapshot(&mut self, congested: &[bool]) -> Result<(), MeasureError> {
        if congested.len() != self.num_paths {
            return Err(MeasureError::WrongSnapshotWidth {
                expected: self.num_paths,
                actual: congested.len(),
            });
        }
        self.data.extend_from_slice(congested);
        Ok(())
    }

    /// The observations of snapshot `snapshot` (one entry per path).
    ///
    /// # Panics
    ///
    /// Panics if the snapshot index is out of range.
    pub fn snapshot(&self, snapshot: usize) -> &[bool] {
        assert!(
            snapshot < self.num_snapshots(),
            "snapshot {snapshot} out of range ({} recorded)",
            self.num_snapshots()
        );
        &self.data[snapshot * self.num_paths..(snapshot + 1) * self.num_paths]
    }

    /// Whether `path` was congested during `snapshot`.
    ///
    /// # Panics
    ///
    /// Panics if either index is out of range.
    pub fn is_congested(&self, snapshot: usize, path: PathId) -> bool {
        assert!(
            path.index() < self.num_paths,
            "path {} out of range ({} paths)",
            path.index(),
            self.num_paths
        );
        self.snapshot(snapshot)[path.index()]
    }

    /// The set of congested paths during `snapshot`, in increasing path
    /// order.
    pub fn congested_paths(&self, snapshot: usize) -> Vec<PathId> {
        self.snapshot(snapshot)
            .iter()
            .enumerate()
            .filter(|&(_, &c)| c)
            .map(|(i, _)| PathId(i))
            .collect()
    }

    /// Fraction of snapshots during which `path` was congested (its
    /// empirical `P(Y = 1)`).
    pub fn congestion_frequency(&self, path: PathId) -> Result<f64, MeasureError> {
        if self.is_empty() {
            return Err(MeasureError::NoSnapshots);
        }
        if path.index() >= self.num_paths {
            return Err(MeasureError::UnknownPath {
                index: path.index(),
                num_paths: self.num_paths,
            });
        }
        let n = self.num_snapshots();
        let congested = (0..n)
            .filter(|&s| self.data[s * self.num_paths + path.index()])
            .count();
        Ok(congested as f64 / n as f64)
    }

    /// Iterates over snapshots as slices.
    pub fn snapshots(&self) -> impl Iterator<Item = &[bool]> {
        self.data.chunks_exact(self.num_paths.max(1))
    }

    /// Paths that were congested during at least one snapshot — the
    /// "potentially congested" notion is defined over *links*, but this
    /// per-path view is what it is derived from.
    pub fn ever_congested_paths(&self) -> Vec<PathId> {
        let mut ever = vec![false; self.num_paths];
        for snapshot in self.snapshots() {
            for (i, &c) in snapshot.iter().enumerate() {
                if c {
                    ever[i] = true;
                }
            }
        }
        ever.iter()
            .enumerate()
            .filter(|&(_, &e)| e)
            .map(|(i, _)| PathId(i))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_observations() -> PathObservations {
        let mut obs = PathObservations::new(3);
        obs.record_snapshot(&[false, false, false]).unwrap();
        obs.record_snapshot(&[true, false, false]).unwrap();
        obs.record_snapshot(&[true, true, false]).unwrap();
        obs.record_snapshot(&[false, false, false]).unwrap();
        obs
    }

    #[test]
    fn recording_and_counting_snapshots() {
        let obs = sample_observations();
        assert_eq!(obs.num_paths(), 3);
        assert_eq!(obs.num_snapshots(), 4);
        assert!(!obs.is_empty());
        assert_eq!(obs.snapshot(2), &[true, true, false]);
    }

    #[test]
    fn rejects_snapshots_of_the_wrong_width() {
        let mut obs = PathObservations::new(3);
        let err = obs.record_snapshot(&[true, false]).unwrap_err();
        assert_eq!(
            err,
            MeasureError::WrongSnapshotWidth {
                expected: 3,
                actual: 2
            }
        );
    }

    #[test]
    fn per_path_queries() {
        let obs = sample_observations();
        assert!(obs.is_congested(1, PathId(0)));
        assert!(!obs.is_congested(1, PathId(1)));
        assert_eq!(obs.congested_paths(2), vec![PathId(0), PathId(1)]);
        assert_eq!(obs.congested_paths(0), Vec::<PathId>::new());
        assert_eq!(obs.congestion_frequency(PathId(0)).unwrap(), 0.5);
        assert_eq!(obs.congestion_frequency(PathId(2)).unwrap(), 0.0);
    }

    #[test]
    fn frequency_errors() {
        let empty = PathObservations::new(2);
        assert_eq!(
            empty.congestion_frequency(PathId(0)),
            Err(MeasureError::NoSnapshots)
        );
        let obs = sample_observations();
        assert_eq!(
            obs.congestion_frequency(PathId(7)),
            Err(MeasureError::UnknownPath {
                index: 7,
                num_paths: 3
            })
        );
    }

    #[test]
    fn ever_congested_paths_are_reported() {
        let obs = sample_observations();
        assert_eq!(obs.ever_congested_paths(), vec![PathId(0), PathId(1)]);
    }

    #[test]
    fn snapshots_iterator_matches_accessor() {
        let obs = sample_observations();
        let collected: Vec<&[bool]> = obs.snapshots().collect();
        assert_eq!(collected.len(), 4);
        assert_eq!(collected[1], obs.snapshot(1));
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn snapshot_accessor_panics_out_of_range() {
        let obs = sample_observations();
        let _ = obs.snapshot(10);
    }

    #[test]
    fn with_capacity_behaves_like_new() {
        let mut obs = PathObservations::with_capacity(2, 100);
        assert_eq!(obs.num_snapshots(), 0);
        obs.record_snapshot(&[true, false]).unwrap();
        assert_eq!(obs.num_snapshots(), 1);
    }
}
