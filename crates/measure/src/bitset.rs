//! Bit-packed Boolean storage for observations and link-state traces.
//!
//! Two complementary layouts back the observation pipeline:
//!
//! * [`BitLanes`] — *lane-major* (columnar): one packed `u64` lane per
//!   path, one bit per snapshot. Marginal and joint path queries become
//!   bitwise AND / popcount over whole words, touching 64 snapshots per
//!   instruction.
//! * [`BitMatrix`] — *row-major*: one packed row per snapshot, one bit per
//!   path (or per link, for simulation traces). Exact-state queries
//!   (`P(ψ(S) = ψ(A))`) become word-equality of each row against a packed
//!   target mask.
//!
//! Both structures maintain the invariant that every bit beyond the logical
//! extent (slots / width) is zero, so popcounts over stored words never
//! need masking; only queries over *complemented* words mask the tail.

use serde::{Deserialize, Serialize};

use crate::error::MeasureError;

#[path = "simd.rs"]
pub mod simd;

/// Number of bits per storage word.
pub const WORD_BITS: usize = u64::BITS as usize;

/// Number of words needed for `bits` bits (at least one, so that rows and
/// lanes are always addressable even in degenerate zero-width containers).
#[inline]
pub fn words_for(bits: usize) -> usize {
    bits.div_ceil(WORD_BITS).max(1)
}

/// Mask selecting the valid bits of the *last* word covering `bits` bits
/// (all ones when `bits` is a multiple of 64; all zeros when `bits == 0`).
#[inline]
pub fn tail_mask(bits: usize) -> u64 {
    match bits % WORD_BITS {
        0 if bits == 0 => 0,
        0 => !0,
        rem => (1u64 << rem) - 1,
    }
}

/// Columnar (lane-major) bit store: `num_lanes` independent bit-vectors
/// that all grow in lock-step, one slot at a time.
///
/// Lanes are kept contiguous in one allocation (`lane × capacity-words`),
/// so a pair query streams two compact word slices. Capacity grows by
/// doubling, which re-lays the words out; appends are amortised O(1) per
/// lane.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct BitLanes {
    num_lanes: usize,
    num_slots: usize,
    /// Per-lane capacity, in words.
    words_per_lane: usize,
    /// Lane-major storage: lane `l` occupies
    /// `words[l * words_per_lane .. (l + 1) * words_per_lane]`.
    words: Vec<u64>,
}

impl BitLanes {
    /// Creates an empty store with `num_lanes` lanes.
    pub fn new(num_lanes: usize) -> Self {
        Self::with_capacity(num_lanes, 0)
    }

    /// Creates an empty store with room for `slots` slots pre-allocated.
    pub fn with_capacity(num_lanes: usize, slots: usize) -> Self {
        let words_per_lane = words_for(slots.max(1));
        BitLanes {
            num_lanes,
            num_slots: 0,
            words_per_lane,
            words: vec![0; num_lanes.max(1) * words_per_lane],
        }
    }

    /// Number of lanes.
    pub fn num_lanes(&self) -> usize {
        self.num_lanes
    }

    /// Number of slots recorded so far.
    pub fn num_slots(&self) -> usize {
        self.num_slots
    }

    /// Number of words of each lane that carry recorded slots.
    pub fn used_words(&self) -> usize {
        words_for(self.num_slots)
    }

    /// Mask of the valid bits in the last used word (for queries over
    /// complemented lanes).
    pub fn last_word_mask(&self) -> u64 {
        tail_mask(self.num_slots)
    }

    /// The used prefix of lane `lane` (tail bits of the last word are
    /// guaranteed zero).
    ///
    /// # Panics
    ///
    /// Panics if `lane >= num_lanes`.
    pub fn lane(&self, lane: usize) -> &[u64] {
        assert!(
            lane < self.num_lanes,
            "lane {lane} out of range ({} lanes)",
            self.num_lanes
        );
        let start = lane * self.words_per_lane;
        &self.words[start..start + self.used_words()]
    }

    /// Whether bit `slot` of lane `lane` is set.
    pub fn get(&self, lane: usize, slot: usize) -> bool {
        assert!(
            slot < self.num_slots,
            "slot {slot} out of range ({} recorded)",
            self.num_slots
        );
        let word = self.lane(lane)[slot / WORD_BITS];
        word >> (slot % WORD_BITS) & 1 == 1
    }

    /// Number of set bits in lane `lane`.
    pub fn count_ones(&self, lane: usize) -> usize {
        self.lane(lane)
            .iter()
            .map(|w| w.count_ones() as usize)
            .sum()
    }

    /// Appends one slot across all lanes: `values[l]` becomes the new bit
    /// of lane `l`. `values.len()` must equal `num_lanes`.
    pub fn push_slot(&mut self, values: &[bool]) {
        assert_eq!(
            values.len(),
            self.num_lanes,
            "slot width {} does not match lane count {}",
            values.len(),
            self.num_lanes
        );
        if self.num_slots == self.words_per_lane * WORD_BITS {
            self.grow();
        }
        let word = self.num_slots / WORD_BITS;
        let bit = 1u64 << (self.num_slots % WORD_BITS);
        for (lane, &set) in values.iter().enumerate() {
            if set {
                self.words[lane * self.words_per_lane + word] |= bit;
            }
        }
        self.num_slots += 1;
    }

    /// Doubles the per-lane capacity, re-laying the lanes out.
    fn grow(&mut self) {
        self.grow_to((self.words_per_lane * 2).max(1));
    }

    /// Grows the per-lane capacity to at least `new_words_per_lane`,
    /// re-laying the lanes out (no-op if already large enough).
    fn grow_to(&mut self, new_words_per_lane: usize) {
        if new_words_per_lane <= self.words_per_lane {
            return;
        }
        let mut new_words = vec![0u64; self.num_lanes.max(1) * new_words_per_lane];
        for lane in 0..self.num_lanes {
            let src = lane * self.words_per_lane;
            let dst = lane * new_words_per_lane;
            new_words[dst..dst + self.words_per_lane]
                .copy_from_slice(&self.words[src..src + self.words_per_lane]);
        }
        self.words_per_lane = new_words_per_lane;
        self.words = new_words;
    }

    /// Builds a store directly from packed lane words: `num_lanes`
    /// consecutive groups of `words_for(num_slots)` words each (the
    /// binary wire format's layout). This is the zero-parse load path —
    /// the words are copied into the lane layout without touching
    /// individual bits.
    ///
    /// # Panics
    ///
    /// Panics if `words.len()` is not `num_lanes * words_for(num_slots)`
    /// or if any bit beyond `num_slots` is set (the zero-tail invariant).
    pub fn from_lane_words(num_lanes: usize, num_slots: usize, words: &[u64]) -> Self {
        match Self::try_from_lane_words(num_lanes, num_slots, words) {
            Ok(lanes) => lanes,
            Err(e) => panic!("{e}"),
        }
    }

    /// Fallible form of [`BitLanes::from_lane_words`] for untrusted input
    /// (wire blocks, files): word-count and zero-tail violations surface
    /// as [`MeasureError::Wire`] instead of a panic.
    pub fn try_from_lane_words(
        num_lanes: usize,
        num_slots: usize,
        words: &[u64],
    ) -> Result<Self, MeasureError> {
        let used = words_for(num_slots);
        if words.len() != num_lanes * used {
            return Err(MeasureError::Wire(format!(
                "expected {num_lanes} lanes x {used} words, got {} words",
                words.len()
            )));
        }
        let mask = tail_mask(num_slots);
        let mut lanes = BitLanes::with_capacity(num_lanes, num_slots.max(1));
        for lane in 0..num_lanes {
            let src = &words[lane * used..(lane + 1) * used];
            if num_slots > 0 {
                if src[used - 1] & !mask != 0 {
                    return Err(MeasureError::Wire(format!(
                        "lane {lane} has bits set beyond slot {num_slots}"
                    )));
                }
                lanes.words[lane * lanes.words_per_lane..lane * lanes.words_per_lane + used]
                    .copy_from_slice(src);
            }
        }
        lanes.num_slots = num_slots;
        Ok(lanes)
    }

    /// A borrowed, read-only view of this store (the heap tier of the
    /// memory ladder viewed through the common query interface).
    pub fn as_view(&self) -> BitLanesView<'_> {
        BitLanesView {
            num_lanes: self.num_lanes,
            num_slots: self.num_slots,
            stride: self.words_per_lane,
            words: &self.words,
        }
    }

    /// Appends every slot of `other` after this store's slots, by
    /// word-level copy. This is the shard-merge primitive: because lanes
    /// are packed, concatenating a shard whose start is word-aligned is a
    /// `memcpy` per lane.
    ///
    /// # Panics
    ///
    /// Panics if the lane counts differ or if this store's slot count is
    /// not a multiple of the word size (the shard splitter aligns every
    /// boundary except the last, so merging in order always hits the
    /// aligned case).
    pub fn concat(&mut self, other: &BitLanes) {
        assert_eq!(
            self.num_lanes, other.num_lanes,
            "cannot concatenate stores with different lane counts"
        );
        if other.num_slots == 0 {
            return;
        }
        assert_eq!(
            self.num_slots % WORD_BITS,
            0,
            "concat requires the left store to end on a word boundary \
             ({} slots recorded)",
            self.num_slots
        );
        let total = self.num_slots + other.num_slots;
        self.grow_to(words_for(total));
        let offset = self.num_slots / WORD_BITS;
        for lane in 0..self.num_lanes {
            let src = other.lane(lane);
            let dst = lane * self.words_per_lane + offset;
            self.words[dst..dst + src.len()].copy_from_slice(src);
        }
        self.num_slots = total;
    }
}

impl PartialEq for BitLanes {
    /// Logical equality: same lanes, same slots, same bits — capacity (and
    /// therefore allocation layout) is ignored.
    fn eq(&self, other: &Self) -> bool {
        self.num_lanes == other.num_lanes
            && self.num_slots == other.num_slots
            && (0..self.num_lanes).all(|l| self.lane(l) == other.lane(l))
    }
}

impl Eq for BitLanes {}

/// Borrowed, lifetime-parameterized view over packed lane words — the
/// zero-copy tier of the observation memory ladder.
///
/// A view never owns its words: it can borrow a heap-owned [`BitLanes`]
/// ([`BitLanes::as_view`]), a slice of a memory-mapped v3 file, or any
/// other little-endian lane-word buffer. Lane `l` starts at word
/// `l * stride`; the packed wire layout has `stride == words_for(slots)`
/// while a borrowed [`BitLanes`] keeps its capacity stride. All query
/// accessors mirror [`BitLanes`] bit for bit.
#[derive(Debug, Clone, Copy)]
pub struct BitLanesView<'a> {
    num_lanes: usize,
    num_slots: usize,
    /// Words between consecutive lane starts.
    stride: usize,
    words: &'a [u64],
}

impl<'a> BitLanesView<'a> {
    /// Builds a view over tightly packed lane words (the v3 wire layout:
    /// `num_lanes` consecutive groups of `words_for(num_slots)` words, or
    /// no words at all when `num_slots == 0`). No word is copied.
    ///
    /// Word-count and zero-tail violations surface as
    /// [`MeasureError::Wire`].
    pub fn try_from_lane_words(
        num_lanes: usize,
        num_slots: usize,
        words: &'a [u64],
    ) -> Result<Self, MeasureError> {
        let used = if num_slots == 0 {
            0
        } else {
            words_for(num_slots)
        };
        if words.len() != num_lanes * used {
            return Err(MeasureError::Wire(format!(
                "expected {num_lanes} lanes x {used} words, got {} words",
                words.len()
            )));
        }
        let mask = tail_mask(num_slots);
        if num_slots > 0 {
            for lane in 0..num_lanes {
                if words[(lane + 1) * used - 1] & !mask != 0 {
                    return Err(MeasureError::Wire(format!(
                        "lane {lane} has bits set beyond slot {num_slots}"
                    )));
                }
            }
        }
        Ok(BitLanesView {
            num_lanes,
            num_slots,
            stride: used,
            words,
        })
    }

    /// Number of lanes.
    pub fn num_lanes(&self) -> usize {
        self.num_lanes
    }

    /// Number of recorded slots.
    pub fn num_slots(&self) -> usize {
        self.num_slots
    }

    /// Number of words of each lane that carry recorded slots (zero for an
    /// empty view — a packed view holds no words at all then).
    pub fn used_words(&self) -> usize {
        if self.num_slots == 0 {
            0
        } else {
            words_for(self.num_slots)
        }
    }

    /// Mask of the valid bits in the last used word (for queries over
    /// complemented lanes).
    pub fn last_word_mask(&self) -> u64 {
        tail_mask(self.num_slots)
    }

    /// The used prefix of lane `lane` (tail bits of the last word are
    /// guaranteed zero by construction).
    ///
    /// # Panics
    ///
    /// Panics if `lane >= num_lanes`.
    pub fn lane(&self, lane: usize) -> &'a [u64] {
        assert!(
            lane < self.num_lanes,
            "lane {lane} out of range ({} lanes)",
            self.num_lanes
        );
        let start = lane * self.stride;
        &self.words[start..start + self.used_words()]
    }

    /// Whether bit `slot` of lane `lane` is set.
    pub fn get(&self, lane: usize, slot: usize) -> bool {
        assert!(
            slot < self.num_slots,
            "slot {slot} out of range ({} recorded)",
            self.num_slots
        );
        let word = self.lane(lane)[slot / WORD_BITS];
        word >> (slot % WORD_BITS) & 1 == 1
    }

    /// Number of set bits in lane `lane`.
    pub fn count_ones(&self, lane: usize) -> usize {
        self.lane(lane)
            .iter()
            .map(|w| w.count_ones() as usize)
            .sum()
    }

    /// Copies the view into an owned [`BitLanes`] (promoting the zero-copy
    /// tier back to the heap tier).
    pub fn to_owned_lanes(&self) -> BitLanes {
        let mut lanes = BitLanes::with_capacity(self.num_lanes, self.num_slots.max(1));
        let used = self.used_words();
        for lane in 0..self.num_lanes {
            lanes.words[lane * lanes.words_per_lane..lane * lanes.words_per_lane + used]
                .copy_from_slice(self.lane(lane));
        }
        lanes.num_slots = self.num_slots;
        lanes
    }
}

/// Row-major packed bit matrix: an append-only sequence of fixed-width
/// rows, one word-aligned packed row per append.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct BitMatrix {
    width: usize,
    words_per_row: usize,
    num_rows: usize,
    /// Row-major storage: row `r` occupies
    /// `words[r * words_per_row .. (r + 1) * words_per_row]`.
    words: Vec<u64>,
}

impl BitMatrix {
    /// Creates an empty matrix whose rows are `width` bits wide.
    pub fn new(width: usize) -> Self {
        Self::with_capacity(width, 0)
    }

    /// Creates an empty matrix with room for `rows` rows pre-allocated.
    pub fn with_capacity(width: usize, rows: usize) -> Self {
        let words_per_row = words_for(width);
        BitMatrix {
            width,
            words_per_row,
            num_rows: 0,
            words: Vec::with_capacity(words_per_row * rows),
        }
    }

    /// Bits per row.
    pub fn width(&self) -> usize {
        self.width
    }

    /// Words per packed row.
    pub fn words_per_row(&self) -> usize {
        self.words_per_row
    }

    /// Number of rows appended so far.
    pub fn num_rows(&self) -> usize {
        self.num_rows
    }

    /// Returns `true` if no rows have been appended.
    pub fn is_empty(&self) -> bool {
        self.num_rows == 0
    }

    /// Appends one row. `row.len()` must equal the matrix width.
    pub fn push_row(&mut self, row: &[bool]) {
        assert_eq!(
            row.len(),
            self.width,
            "row width {} does not match matrix width {}",
            row.len(),
            self.width
        );
        let start = self.words.len();
        self.words.resize(start + self.words_per_row, 0);
        for (bit, &set) in row.iter().enumerate() {
            if set {
                self.words[start + bit / WORD_BITS] |= 1u64 << (bit % WORD_BITS);
            }
        }
        self.num_rows += 1;
    }

    /// The packed words of row `row`.
    ///
    /// # Panics
    ///
    /// Panics if `row >= num_rows`.
    pub fn row_words(&self, row: usize) -> &[u64] {
        assert!(
            row < self.num_rows,
            "row {row} out of range ({} rows)",
            self.num_rows
        );
        &self.words[row * self.words_per_row..(row + 1) * self.words_per_row]
    }

    /// Row `row` unpacked into booleans.
    pub fn row_bools(&self, row: usize) -> Vec<bool> {
        let words = self.row_words(row);
        (0..self.width)
            .map(|bit| words[bit / WORD_BITS] >> (bit % WORD_BITS) & 1 == 1)
            .collect()
    }

    /// Whether bit `col` of row `row` is set.
    pub fn get(&self, row: usize, col: usize) -> bool {
        assert!(
            col < self.width,
            "column {col} out of range (width {})",
            self.width
        );
        self.row_words(row)[col / WORD_BITS] >> (col % WORD_BITS) & 1 == 1
    }

    /// Iterates over the packed rows as word slices.
    pub fn rows(&self) -> impl Iterator<Item = &[u64]> {
        self.words.chunks_exact(self.words_per_row)
    }

    /// The flat packed word buffer (`num_rows × words_per_row` words,
    /// row-major) — the input shape of the row-matching SIMD kernels and
    /// of the binary wire format.
    pub fn words(&self) -> &[u64] {
        &self.words
    }

    /// Builds a matrix directly from a packed word buffer
    /// (`num_rows × words_for(width)` words, row-major).
    ///
    /// # Panics
    ///
    /// Panics if the buffer length does not match or if any row has bits
    /// set beyond `width` (the zero-tail invariant).
    pub fn from_words(width: usize, num_rows: usize, words: Vec<u64>) -> Self {
        let words_per_row = words_for(width);
        assert_eq!(
            words.len(),
            num_rows * words_per_row,
            "expected {num_rows} rows x {words_per_row} words, got {} words",
            words.len()
        );
        let mask = tail_mask(width);
        for (row, chunk) in words.chunks_exact(words_per_row).enumerate() {
            assert_eq!(
                chunk[words_per_row - 1] & !mask,
                0,
                "row {row} has bits set beyond width {width}"
            );
        }
        BitMatrix {
            width,
            words_per_row,
            num_rows,
            words,
        }
    }

    /// Appends every row of `other` after this matrix's rows. Rows are
    /// independently packed, so this is a single word-level copy.
    ///
    /// # Panics
    ///
    /// Panics if the widths differ.
    pub fn concat(&mut self, other: &BitMatrix) {
        assert_eq!(
            self.width, other.width,
            "cannot concatenate matrices with different widths"
        );
        self.words.extend_from_slice(&other.words);
        self.num_rows += other.num_rows;
    }

    /// Packs a row-shaped Boolean mask (e.g. an exact-congestion target)
    /// into the matrix's word layout, for word-equality comparison against
    /// [`BitMatrix::row_words`].
    pub fn pack_mask(&self, set_bits: impl IntoIterator<Item = usize>) -> Vec<u64> {
        let mut mask = vec![0u64; self.words_per_row];
        for bit in set_bits {
            assert!(
                bit < self.width,
                "mask bit {bit} out of range (width {})",
                self.width
            );
            mask[bit / WORD_BITS] |= 1u64 << (bit % WORD_BITS);
        }
        mask
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lanes_pack_and_report_bits() {
        let mut lanes = BitLanes::new(3);
        assert_eq!(lanes.num_lanes(), 3);
        assert_eq!(lanes.num_slots(), 0);
        lanes.push_slot(&[true, false, false]);
        lanes.push_slot(&[false, true, false]);
        lanes.push_slot(&[true, true, false]);
        assert_eq!(lanes.num_slots(), 3);
        assert!(lanes.get(0, 0) && !lanes.get(0, 1) && lanes.get(0, 2));
        assert_eq!(lanes.count_ones(0), 2);
        assert_eq!(lanes.count_ones(1), 2);
        assert_eq!(lanes.count_ones(2), 0);
        assert_eq!(lanes.lane(0), &[0b101]);
        assert_eq!(lanes.last_word_mask(), 0b111);
    }

    #[test]
    fn lanes_grow_past_word_boundaries() {
        let mut lanes = BitLanes::new(2);
        for slot in 0..200 {
            lanes.push_slot(&[slot % 3 == 0, slot % 2 == 0]);
        }
        assert_eq!(lanes.num_slots(), 200);
        assert_eq!(lanes.used_words(), 4);
        assert_eq!(lanes.count_ones(0), 67);
        assert_eq!(lanes.count_ones(1), 100);
        for slot in 0..200 {
            assert_eq!(lanes.get(0, slot), slot % 3 == 0);
            assert_eq!(lanes.get(1, slot), slot % 2 == 0);
        }
        // Tail bits of the last used word stay zero.
        assert_eq!(lanes.lane(0)[3] & !tail_mask(200), 0);
    }

    #[test]
    fn lanes_equality_is_logical_not_layout() {
        let mut a = BitLanes::new(2);
        let mut b = BitLanes::with_capacity(2, 1000);
        for slot in 0..70 {
            let row = [slot % 5 == 0, slot % 7 == 0];
            a.push_slot(&row);
            b.push_slot(&row);
        }
        assert_eq!(a, b);
        b.push_slot(&[false, false]);
        assert_ne!(a, b);
    }

    #[test]
    #[should_panic(expected = "slot width")]
    fn lanes_reject_wrong_width() {
        BitLanes::new(3).push_slot(&[true]);
    }

    #[test]
    fn matrix_packs_rows() {
        let mut m = BitMatrix::new(70);
        assert!(m.is_empty());
        let row: Vec<bool> = (0..70).map(|i| i % 9 == 0).collect();
        m.push_row(&row);
        m.push_row(&[false; 70]);
        assert_eq!(m.num_rows(), 2);
        assert_eq!(m.words_per_row(), 2);
        assert_eq!(m.row_bools(0), row);
        assert!(m.get(0, 0) && m.get(0, 63) && !m.get(0, 64));
        assert!(m.row_words(1).iter().all(|&w| w == 0));
        assert_eq!(m.rows().count(), 2);
    }

    #[test]
    fn matrix_mask_matches_row_packing() {
        let mut m = BitMatrix::new(130);
        let congested = [3usize, 64, 129];
        let row: Vec<bool> = (0..130).map(|i| congested.contains(&i)).collect();
        m.push_row(&row);
        let mask = m.pack_mask(congested);
        assert_eq!(m.row_words(0), mask.as_slice());
    }

    #[test]
    fn zero_width_containers_are_well_formed() {
        let mut m = BitMatrix::new(0);
        m.push_row(&[]);
        m.push_row(&[]);
        assert_eq!(m.num_rows(), 2);
        assert_eq!(m.row_bools(1), Vec::<bool>::new());
        let mut lanes = BitLanes::new(0);
        lanes.push_slot(&[]);
        assert_eq!(lanes.num_slots(), 1);
    }

    #[test]
    fn lanes_concat_is_bit_exact_at_word_boundaries() {
        // 128 slots (word-aligned) + 37 more, merged vs recorded in one go.
        let bit = |slot: usize, lane: usize| (slot * 7 + lane * 3).is_multiple_of(5);
        let mut left = BitLanes::new(3);
        let mut right = BitLanes::new(3);
        let mut whole = BitLanes::new(3);
        for slot in 0..165 {
            let row = [bit(slot, 0), bit(slot, 1), bit(slot, 2)];
            whole.push_slot(&row);
            if slot < 128 {
                left.push_slot(&row);
            } else {
                right.push_slot(&row);
            }
        }
        left.concat(&right);
        assert_eq!(left, whole);
        // Concatenating an empty store is a no-op.
        left.concat(&BitLanes::new(3));
        assert_eq!(left, whole);
        // An empty (0-slot) left store is trivially aligned.
        let mut empty = BitLanes::new(3);
        empty.concat(&whole);
        assert_eq!(empty, whole);
    }

    #[test]
    #[should_panic(expected = "word boundary")]
    fn lanes_concat_rejects_unaligned_prefix() {
        let mut left = BitLanes::new(1);
        left.push_slot(&[true]);
        let mut right = BitLanes::new(1);
        right.push_slot(&[false]);
        left.concat(&right);
    }

    #[test]
    fn lanes_round_trip_through_raw_words() {
        let mut lanes = BitLanes::new(2);
        for slot in 0..100 {
            lanes.push_slot(&[slot % 3 == 0, slot % 7 == 0]);
        }
        let mut words = Vec::new();
        for lane in 0..2 {
            words.extend_from_slice(lanes.lane(lane));
        }
        let rebuilt = BitLanes::from_lane_words(2, 100, &words);
        assert_eq!(rebuilt, lanes);
        // Degenerate empty store.
        let empty = BitLanes::from_lane_words(4, 0, &[0, 0, 0, 0]);
        assert_eq!(empty.num_slots(), 0);
        assert_eq!(empty.num_lanes(), 4);
    }

    #[test]
    #[should_panic(expected = "beyond slot")]
    fn lane_words_with_tail_bits_are_rejected() {
        BitLanes::from_lane_words(1, 3, &[0b1111]);
    }

    #[test]
    fn matrix_concat_and_raw_words_round_trip() {
        let mut left = BitMatrix::new(70);
        let mut right = BitMatrix::new(70);
        let mut whole = BitMatrix::new(70);
        for r in 0..9 {
            let row: Vec<bool> = (0..70).map(|c| (r * c) % 4 == 1).collect();
            whole.push_row(&row);
            if r < 5 {
                left.push_row(&row);
            } else {
                right.push_row(&row);
            }
        }
        left.concat(&right);
        assert_eq!(left, whole);
        let rebuilt = BitMatrix::from_words(70, 9, whole.words().to_vec());
        assert_eq!(rebuilt, whole);
    }

    #[test]
    #[should_panic(expected = "beyond width")]
    fn matrix_words_with_tail_bits_are_rejected() {
        BitMatrix::from_words(3, 1, vec![0b11111]);
    }

    #[test]
    fn word_helpers() {
        assert_eq!(words_for(0), 1);
        assert_eq!(words_for(1), 1);
        assert_eq!(words_for(64), 1);
        assert_eq!(words_for(65), 2);
        assert_eq!(tail_mask(0), 0);
        assert_eq!(tail_mask(1), 1);
        assert_eq!(tail_mask(64), !0);
        assert_eq!(tail_mask(65), 1);
    }
}
