//! # netcorr-measure — end-to-end measurements and estimators
//!
//! The tomography algorithms never see link states directly; all they get
//! is, for every *snapshot* (time slot), which measurement paths were
//! observed to be congested. This crate provides:
//!
//! * [`PathObservations`] — the bit-packed container of those per-snapshot
//!   Boolean path observations, produced by the simulator (or, in a real
//!   deployment, by an active-probing measurement system). It maintains a
//!   *path-major* lane view and a *snapshot-major* row view at once
//!   (see [`bitset`]), 2 bits per cell in total.
//! * [`ProbabilityEstimator`] — empirical estimators of every probability
//!   the algorithms need: `P(Y_i = 0)` (a path is good), joint
//!   `P(Y_i = 0, Y_j = 0)`, `P(ψ(S) = ∅)` (all paths good) and
//!   `P(ψ(S) = ψ(A))` (a given set of paths are the only congested ones).
//!   Joint queries are AND/popcount over packed lanes; exact-state queries
//!   are word-equality of packed rows against a packed target mask. Batch
//!   entry points serve the equation builder and the theorem algorithm
//!   without per-query rescans.
//! * [`StreamingEstimator`] — the online variant: accumulators updated in
//!   O(1) per pushed snapshot, so registered pair / pattern queries are
//!   O(1) counter reads with no lane scan (long-running deployments
//!   re-estimate per snapshot batch at constant incremental cost).
//! * [`bitset::simd`] — the SIMD kernel tier behind both estimators:
//!   AVX2 popcount / row-matching kernels with runtime feature detection
//!   and a 4-wide unrolled portable fallback, all bit-exact against each
//!   other and the scalar reference.
//! * [`reference`] — the scalar (one-`bool`-per-cell) implementation kept
//!   as the executable specification; the differential property tests
//!   assert bit-exact agreement between it and the packed estimator.
//!
//! The estimators are plain relative frequencies over the snapshots; the
//! number of snapshots controls their accuracy, exactly as in the paper's
//! experiments.

#![warn(missing_docs)]
// `deny` rather than `forbid`: the AVX2 kernel tier in `bitset::simd` is
// the single, explicitly allowed `unsafe` island in this crate (runtime
// feature detection guards every `#[target_feature]` call).
#![deny(unsafe_code)]

pub mod bitset;
pub mod error;
pub mod estimator;
pub mod observation;
pub mod reference;
pub mod streaming;

pub use bitset::{BitLanes, BitMatrix};
pub use error::MeasureError;
pub use estimator::ProbabilityEstimator;
pub use observation::PathObservations;
pub use streaming::StreamingEstimator;
