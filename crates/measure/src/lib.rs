//! # netcorr-measure — end-to-end measurements and estimators
//!
//! The tomography algorithms never see link states directly; all they get
//! is, for every *snapshot* (time slot), which measurement paths were
//! observed to be congested. This crate provides:
//!
//! * [`PathObservations`] — the compact container of those per-snapshot
//!   Boolean path observations, produced by the simulator (or, in a real
//!   deployment, by an active-probing measurement system).
//! * [`ProbabilityEstimator`] — empirical estimators of every probability
//!   the algorithms need: `P(Y_i = 0)` (a path is good), joint
//!   `P(Y_i = 0, Y_j = 0)`, `P(ψ(S) = ∅)` (all paths good) and
//!   `P(ψ(S) = ψ(A))` (a given set of paths are the only congested ones).
//!
//! The estimators are plain relative frequencies over the snapshots; the
//! number of snapshots controls their accuracy, exactly as in the paper's
//! experiments.

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod error;
pub mod estimator;
pub mod observation;

pub use error::MeasureError;
pub use estimator::ProbabilityEstimator;
pub use observation::PathObservations;
