//! # netcorr-measure — end-to-end measurements and estimators
//!
//! The tomography algorithms never see link states directly; all they get
//! is, for every *snapshot* (time slot), which measurement paths were
//! observed to be congested. This crate provides:
//!
//! * [`PathObservations`] — the bit-packed container of those per-snapshot
//!   Boolean path observations, produced by the simulator (or, in a real
//!   deployment, by an active-probing measurement system). It maintains a
//!   *path-major* lane view and a *snapshot-major* row view at once
//!   (see [`bitset`]), 2 bits per cell in total.
//! * [`ProbabilityEstimator`] — empirical estimators of every probability
//!   the algorithms need: `P(Y_i = 0)` (a path is good), joint
//!   `P(Y_i = 0, Y_j = 0)`, `P(ψ(S) = ∅)` (all paths good) and
//!   `P(ψ(S) = ψ(A))` (a given set of paths are the only congested ones).
//!   Joint queries are AND/popcount over packed lanes; exact-state queries
//!   are word-equality of packed rows against a packed target mask. Batch
//!   entry points serve the equation builder and the theorem algorithm
//!   without per-query rescans.
//! * [`StreamingEstimator`] — the online variant: accumulators updated in
//!   O(1) per pushed snapshot, so registered pair / pattern queries are
//!   O(1) counter reads with no lane scan (long-running deployments
//!   re-estimate per snapshot batch at constant incremental cost).
//! * [`ObservationsView`] / [`MappedObservations`] — the zero-copy
//!   memory tier: a lifetime-parameterized view answering every
//!   estimator query over *borrowed* lane words, and an owning handle
//!   that memory-maps a v3 observation file straight into that view (no
//!   word copy, no row rebuild). The streaming estimator can seed its
//!   accumulators from a mapped history segment, which is how the
//!   daemon survives restarts without re-ingesting its stream.
//! * [`bitset::simd`] — the SIMD kernel ladder behind all estimators:
//!   AVX-512 `vpopcntdq` kernels (8 words/instruction), AVX2 popcount /
//!   row-matching kernels (4 words/instruction), and a 4-wide unrolled
//!   portable fallback, selected per call by runtime feature detection
//!   and all bit-exact against each other and the scalar reference.
//! * [`reference`] — the scalar (one-`bool`-per-cell) implementation kept
//!   as the executable specification; the differential property tests
//!   assert bit-exact agreement between it and the packed estimator.
//!
//! The estimators are plain relative frequencies over the snapshots; the
//! number of snapshots controls their accuracy, exactly as in the paper's
//! experiments.

#![warn(missing_docs)]
// `deny` rather than `forbid`: the SIMD kernel tiers in `bitset::simd`
// (runtime feature detection guards every `#[target_feature]` call), the
// raw mmap binding in `mapped`, and the byte→word reinterpretation in
// `view` are the explicitly allowed `unsafe` islands in this crate.
#![deny(unsafe_code)]

pub mod bitset;
pub mod error;
pub mod estimator;
pub mod mapped;
pub mod observation;
pub mod reference;
pub mod streaming;
pub mod view;

pub use bitset::{BitLanes, BitLanesView, BitMatrix};
pub use error::MeasureError;
pub use estimator::ProbabilityEstimator;
pub use mapped::MappedObservations;
pub use observation::PathObservations;
pub use streaming::StreamingEstimator;
pub use view::ObservationsView;
