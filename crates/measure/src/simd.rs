//! Explicit SIMD kernels for the packed estimator hot paths.
//!
//! Every estimator query bottoms out in one of three word-level kernels
//! over the packed representations of [`super::BitLanes`] /
//! [`super::BitMatrix`]:
//!
//! * **pair-good popcount** — `Σ_w popcount(!(a_w | b_w) & m_w)`, the
//!   count of snapshots in which *both* paths of a pair were good
//!   (`!a & !b = !(a | b)` by De Morgan, saving one NOT per word);
//! * **all-good popcount** — the k-lane generalisation, ANDing the
//!   complements of any number of lanes;
//! * **row-mask matching** — counting packed snapshot rows that are
//!   word-equal to a target mask (or all-zero, for `P(ψ(S) = ∅)`).
//!
//! Each kernel exists in four tiers:
//!
//! 1. `*_avx512` — AVX-512 `std::arch` intrinsics, processing eight
//!    `u64` words per instruction. Popcounts are a single `vpopcntdq`
//!    (`_mm512_popcnt_epi64`) per vector — no nibble lookup at all —
//!    and row comparisons collapse to one `vpcmpeqq` mask test. Gated
//!    on `avx512f` **and** `avx512vpopcntdq` (Ice Lake / Zen 4 and
//!    newer).
//! 2. `*_avx2` — AVX2 intrinsics, four `u64` words per instruction.
//!    Popcounts use the classic nibble-lookup (`vpshufb` against a
//!    16-entry table, then `vpsadbw` to fold bytes into per-`u64`
//!    sums), which needs no cross-lane work until the final horizontal
//!    reduction.
//! 3. `*_portable` — safe scalar code, 4-wide unrolled with independent
//!    accumulators so the backend can keep four `popcnt` chains in
//!    flight (and auto-vectorize where profitable).
//! 4. The un-suffixed dispatcher — walks the ladder top-down per call
//!    via `std::arch::is_x86_feature_detected!` (the result is cached
//!    by `std` in an atomic, so each check costs a load and a branch):
//!    AVX-512 first, then AVX2, then the portable fallback.
//!
//! All tiers are `pub` so the differential test suite can assert
//! bit-exact agreement between them (and against the scalar reference
//! implementation in [`crate::reference`]) on random inputs. The
//! `_avx512` / `_avx2` entry points return `None` (or report `false`)
//! when the CPU lacks the feature instead of exposing `unsafe` to
//! callers, so tests skip cleanly on older hardware.
//!
//! # Conventions
//!
//! Lane slices are the *used* prefix of a lane (`BitLanes::lane`), whose
//! stored tail bits beyond the logical slot count are zero; because the
//! kernels complement the words, the caller passes `tail_mask`
//! ([`super::tail_mask`]) to zero the phantom slots of the last word.
//! Row buffers are `num_rows × words_per_row` contiguous words with the
//! same zero-tail invariant, which row masks share, so row matching
//! never needs masking.

// The SIMD tiers are the one place in this crate where `unsafe` is
// justified: `#[target_feature]` functions are only called behind a
// runtime CPU-feature check.
#![allow(unsafe_code)]

use std::fmt;

/// The kernel tiers of the runtime dispatch ladder, best first.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum KernelTier {
    /// AVX-512 (`avx512f` + `avx512vpopcntdq`): 8 words per instruction.
    Avx512,
    /// AVX2: 4 words per instruction, nibble-LUT popcounts.
    Avx2,
    /// Safe scalar fallback, 4-wide unrolled.
    Portable,
}

impl KernelTier {
    /// The tier's wire name, as reported by `netcorr-serve STATUS`.
    pub fn as_str(&self) -> &'static str {
        match self {
            KernelTier::Avx512 => "avx512",
            KernelTier::Avx2 => "avx2",
            KernelTier::Portable => "portable",
        }
    }
}

impl fmt::Display for KernelTier {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.as_str())
    }
}

/// The tier the un-suffixed dispatchers select on this CPU.
pub fn active_tier() -> KernelTier {
    if avx512_available() {
        KernelTier::Avx512
    } else if avx2_available() {
        KernelTier::Avx2
    } else {
        KernelTier::Portable
    }
}

/// Counts the slots in which **both** lanes are zero (both paths good):
/// `Σ_w popcount(!(a_w | b_w))` with the last word masked by `tail_mask`.
///
/// `a` and `b` must have equal length (the used words of two lanes of the
/// same [`super::BitLanes`]).
#[inline]
pub fn pair_good_count(a: &[u64], b: &[u64], tail_mask: u64) -> usize {
    #[cfg(target_arch = "x86_64")]
    {
        if avx512_available() {
            // SAFETY: AVX-512 support was just verified at runtime.
            return unsafe { avx512::pair_good_count(a, b, tail_mask) };
        }
        if avx2_available() {
            // SAFETY: AVX2 support was just verified at runtime.
            return unsafe { avx2::pair_good_count(a, b, tail_mask) };
        }
    }
    pair_good_count_portable(a, b, tail_mask)
}

/// Portable tier of [`pair_good_count`]: 4-wide unrolled scalar popcounts.
pub fn pair_good_count_portable(a: &[u64], b: &[u64], tail_mask: u64) -> usize {
    assert_eq!(a.len(), b.len(), "pair lanes must have equal length");
    if a.is_empty() {
        return 0;
    }
    let last = a.len() - 1;
    let (body_a, last_a) = a.split_at(last);
    let (body_b, last_b) = b.split_at(last);
    let mut counts = [0u64; 4];
    let mut chunks_a = body_a.chunks_exact(4);
    let mut chunks_b = body_b.chunks_exact(4);
    for (ca, cb) in (&mut chunks_a).zip(&mut chunks_b) {
        counts[0] += (!(ca[0] | cb[0])).count_ones() as u64;
        counts[1] += (!(ca[1] | cb[1])).count_ones() as u64;
        counts[2] += (!(ca[2] | cb[2])).count_ones() as u64;
        counts[3] += (!(ca[3] | cb[3])).count_ones() as u64;
    }
    let mut count = counts.iter().sum::<u64>();
    for (&wa, &wb) in chunks_a.remainder().iter().zip(chunks_b.remainder()) {
        count += (!(wa | wb)).count_ones() as u64;
    }
    count += (!(last_a[0] | last_b[0]) & tail_mask).count_ones() as u64;
    count as usize
}

/// AVX2 tier of [`pair_good_count`]; `None` when the CPU lacks AVX2.
pub fn pair_good_count_avx2(a: &[u64], b: &[u64], tail_mask: u64) -> Option<usize> {
    #[cfg(target_arch = "x86_64")]
    if avx2_available() {
        // SAFETY: AVX2 support was just verified at runtime.
        return Some(unsafe { avx2::pair_good_count(a, b, tail_mask) });
    }
    #[cfg(not(target_arch = "x86_64"))]
    let _ = (a, b, tail_mask);
    None
}

/// AVX-512 tier of [`pair_good_count`]; `None` when the CPU lacks
/// `avx512f`/`avx512vpopcntdq`.
pub fn pair_good_count_avx512(a: &[u64], b: &[u64], tail_mask: u64) -> Option<usize> {
    #[cfg(target_arch = "x86_64")]
    if avx512_available() {
        // SAFETY: AVX-512 support was just verified at runtime.
        return Some(unsafe { avx512::pair_good_count(a, b, tail_mask) });
    }
    #[cfg(not(target_arch = "x86_64"))]
    let _ = (a, b, tail_mask);
    None
}

/// Counts the slots in which **every** given lane is zero (all paths
/// good): `Σ_w popcount(m_w & Π !lane_w)`. With no lanes this is the
/// number of valid slots (the vacuous conjunction).
#[inline]
pub fn all_good_count(lanes: &[&[u64]], used: usize, tail_mask: u64) -> usize {
    #[cfg(target_arch = "x86_64")]
    {
        if avx512_available() {
            // SAFETY: AVX-512 support was just verified at runtime.
            return unsafe { avx512::all_good_count(lanes, used, tail_mask) };
        }
        if avx2_available() {
            // SAFETY: AVX2 support was just verified at runtime.
            return unsafe { avx2::all_good_count(lanes, used, tail_mask) };
        }
    }
    all_good_count_portable(lanes, used, tail_mask)
}

/// Every lane must cover the queried word range; the AVX2 tier performs
/// raw 256-bit loads, so this is a soundness bound, not just a logic
/// check.
#[inline]
fn check_lanes(lanes: &[&[u64]], used: usize) {
    for (i, lane) in lanes.iter().enumerate() {
        assert!(
            lane.len() >= used,
            "lane {i} has {} words, query needs {used}",
            lane.len()
        );
    }
}

/// Portable tier of [`all_good_count`].
pub fn all_good_count_portable(lanes: &[&[u64]], used: usize, tail_mask: u64) -> usize {
    check_lanes(lanes, used);
    if used == 0 {
        return 0;
    }
    let mut count = 0u64;
    let mut w = 0;
    // 4-wide over the full words; the AND-of-complements accumulators are
    // independent, so the four popcount chains pipeline.
    while w + 4 < used {
        let mut acc = [!0u64; 4];
        for lane in lanes {
            acc[0] &= !lane[w];
            acc[1] &= !lane[w + 1];
            acc[2] &= !lane[w + 2];
            acc[3] &= !lane[w + 3];
        }
        count += acc.iter().map(|a| a.count_ones() as u64).sum::<u64>();
        w += 4;
    }
    while w < used {
        let mut acc = if w + 1 == used { tail_mask } else { !0u64 };
        for lane in lanes {
            acc &= !lane[w];
            if acc == 0 {
                break;
            }
        }
        count += acc.count_ones() as u64;
        w += 1;
    }
    count as usize
}

/// AVX2 tier of [`all_good_count`]; `None` when the CPU lacks AVX2.
pub fn all_good_count_avx2(lanes: &[&[u64]], used: usize, tail_mask: u64) -> Option<usize> {
    #[cfg(target_arch = "x86_64")]
    if avx2_available() {
        // SAFETY: AVX2 support was just verified at runtime.
        return Some(unsafe { avx2::all_good_count(lanes, used, tail_mask) });
    }
    #[cfg(not(target_arch = "x86_64"))]
    let _ = (lanes, used, tail_mask);
    None
}

/// AVX-512 tier of [`all_good_count`]; `None` when the CPU lacks
/// `avx512f`/`avx512vpopcntdq`.
pub fn all_good_count_avx512(lanes: &[&[u64]], used: usize, tail_mask: u64) -> Option<usize> {
    #[cfg(target_arch = "x86_64")]
    if avx512_available() {
        // SAFETY: AVX-512 support was just verified at runtime.
        return Some(unsafe { avx512::all_good_count(lanes, used, tail_mask) });
    }
    #[cfg(not(target_arch = "x86_64"))]
    let _ = (lanes, used, tail_mask);
    None
}

/// Counts the rows of a packed row buffer (`num_rows × words_per_row`
/// contiguous words) that are word-equal to `mask`.
#[inline]
pub fn count_equal_rows(words: &[u64], words_per_row: usize, mask: &[u64]) -> usize {
    #[cfg(target_arch = "x86_64")]
    {
        if avx512_available() {
            // SAFETY: AVX-512 support was just verified at runtime.
            return unsafe { avx512::count_equal_rows(words, words_per_row, mask) };
        }
        if avx2_available() {
            // SAFETY: AVX2 support was just verified at runtime.
            return unsafe { avx2::count_equal_rows(words, words_per_row, mask) };
        }
    }
    count_equal_rows_portable(words, words_per_row, mask)
}

/// Portable tier of [`count_equal_rows`].
pub fn count_equal_rows_portable(words: &[u64], words_per_row: usize, mask: &[u64]) -> usize {
    assert_eq!(mask.len(), words_per_row, "mask width must match rows");
    if words_per_row == 0 {
        return 0;
    }
    words
        .chunks_exact(words_per_row)
        .filter(|row| *row == mask)
        .count()
}

/// AVX2 tier of [`count_equal_rows`]; `None` when the CPU lacks AVX2.
pub fn count_equal_rows_avx2(words: &[u64], words_per_row: usize, mask: &[u64]) -> Option<usize> {
    #[cfg(target_arch = "x86_64")]
    if avx2_available() {
        // SAFETY: AVX2 support was just verified at runtime.
        return Some(unsafe { avx2::count_equal_rows(words, words_per_row, mask) });
    }
    #[cfg(not(target_arch = "x86_64"))]
    let _ = (words, words_per_row, mask);
    None
}

/// AVX-512 tier of [`count_equal_rows`]; `None` when the CPU lacks
/// `avx512f`/`avx512vpopcntdq`.
pub fn count_equal_rows_avx512(words: &[u64], words_per_row: usize, mask: &[u64]) -> Option<usize> {
    #[cfg(target_arch = "x86_64")]
    if avx512_available() {
        // SAFETY: AVX-512 support was just verified at runtime.
        return Some(unsafe { avx512::count_equal_rows(words, words_per_row, mask) });
    }
    #[cfg(not(target_arch = "x86_64"))]
    let _ = (words, words_per_row, mask);
    None
}

/// For each mask in `masks`, counts the rows word-equal to it, in a
/// single streaming pass over the row buffer (rows outer, masks inner —
/// the row stays in registers while every mask is tried against it).
pub fn match_rows_batch(
    words: &[u64],
    words_per_row: usize,
    masks: &[Vec<u64>],
    counts: &mut [usize],
) {
    assert_eq!(masks.len(), counts.len(), "one count slot per mask");
    if words_per_row == 0 || masks.is_empty() {
        return;
    }
    #[cfg(target_arch = "x86_64")]
    {
        if avx512_available() {
            // SAFETY: AVX-512 support was just verified at runtime.
            unsafe { avx512::match_rows_batch(words, words_per_row, masks, counts) };
            return;
        }
        if avx2_available() {
            // SAFETY: AVX2 support was just verified at runtime.
            unsafe { avx2::match_rows_batch(words, words_per_row, masks, counts) };
            return;
        }
    }
    match_rows_batch_portable(words, words_per_row, masks, counts);
}

/// AVX2 tier of [`match_rows_batch`]; reports `false` (leaving `counts`
/// untouched) when the CPU lacks AVX2.
pub fn match_rows_batch_avx2(
    words: &[u64],
    words_per_row: usize,
    masks: &[Vec<u64>],
    counts: &mut [usize],
) -> bool {
    assert_eq!(masks.len(), counts.len(), "one count slot per mask");
    #[cfg(target_arch = "x86_64")]
    if avx2_available() {
        if words_per_row == 0 || masks.is_empty() {
            return true;
        }
        // SAFETY: AVX2 support was just verified at runtime.
        unsafe { avx2::match_rows_batch(words, words_per_row, masks, counts) };
        return true;
    }
    #[cfg(not(target_arch = "x86_64"))]
    let _ = (words, words_per_row, masks, counts);
    false
}

/// AVX-512 tier of [`match_rows_batch`]; reports `false` (leaving
/// `counts` untouched) when the CPU lacks `avx512f`/`avx512vpopcntdq`.
pub fn match_rows_batch_avx512(
    words: &[u64],
    words_per_row: usize,
    masks: &[Vec<u64>],
    counts: &mut [usize],
) -> bool {
    assert_eq!(masks.len(), counts.len(), "one count slot per mask");
    #[cfg(target_arch = "x86_64")]
    if avx512_available() {
        if words_per_row == 0 || masks.is_empty() {
            return true;
        }
        // SAFETY: AVX-512 support was just verified at runtime.
        unsafe { avx512::match_rows_batch(words, words_per_row, masks, counts) };
        return true;
    }
    #[cfg(not(target_arch = "x86_64"))]
    let _ = (words, words_per_row, masks, counts);
    false
}

/// Every mask must be exactly one row wide; like [`check_lanes`] this is
/// a soundness bound for the AVX2 tier's raw mask loads.
#[inline]
fn check_masks(masks: &[Vec<u64>], words_per_row: usize) {
    for (i, mask) in masks.iter().enumerate() {
        assert_eq!(mask.len(), words_per_row, "mask {i} width must match rows");
    }
}

/// Portable tier of [`match_rows_batch`].
pub fn match_rows_batch_portable(
    words: &[u64],
    words_per_row: usize,
    masks: &[Vec<u64>],
    counts: &mut [usize],
) {
    assert_eq!(masks.len(), counts.len(), "one count slot per mask");
    check_masks(masks, words_per_row);
    if words_per_row == 0 {
        return;
    }
    for row in words.chunks_exact(words_per_row) {
        for (mask, count) in masks.iter().zip(counts.iter_mut()) {
            if row == mask.as_slice() {
                *count += 1;
            }
        }
    }
}

/// Counts the all-zero rows of a packed row buffer (`P(ψ(S) = ∅)`:
/// snapshots in which every path was good).
#[inline]
pub fn count_zero_rows(words: &[u64], words_per_row: usize) -> usize {
    #[cfg(target_arch = "x86_64")]
    {
        if avx512_available() {
            // SAFETY: AVX-512 support was just verified at runtime.
            return unsafe { avx512::count_zero_rows(words, words_per_row) };
        }
        if avx2_available() {
            // SAFETY: AVX2 support was just verified at runtime.
            return unsafe { avx2::count_zero_rows(words, words_per_row) };
        }
    }
    count_zero_rows_portable(words, words_per_row)
}

/// Portable tier of [`count_zero_rows`].
pub fn count_zero_rows_portable(words: &[u64], words_per_row: usize) -> usize {
    if words_per_row == 0 {
        return 0;
    }
    words
        .chunks_exact(words_per_row)
        .filter(|row| row.iter().all(|&w| w == 0))
        .count()
}

/// AVX2 tier of [`count_zero_rows`]; `None` when the CPU lacks AVX2.
pub fn count_zero_rows_avx2(words: &[u64], words_per_row: usize) -> Option<usize> {
    #[cfg(target_arch = "x86_64")]
    if avx2_available() {
        // SAFETY: AVX2 support was just verified at runtime.
        return Some(unsafe { avx2::count_zero_rows(words, words_per_row) });
    }
    #[cfg(not(target_arch = "x86_64"))]
    let _ = (words, words_per_row);
    None
}

/// AVX-512 tier of [`count_zero_rows`]; `None` when the CPU lacks
/// `avx512f`/`avx512vpopcntdq`.
pub fn count_zero_rows_avx512(words: &[u64], words_per_row: usize) -> Option<usize> {
    #[cfg(target_arch = "x86_64")]
    if avx512_available() {
        // SAFETY: AVX-512 support was just verified at runtime.
        return Some(unsafe { avx512::count_zero_rows(words, words_per_row) });
    }
    #[cfg(not(target_arch = "x86_64"))]
    let _ = (words, words_per_row);
    None
}

/// Whether the AVX2 kernel tier is available on this CPU.
pub fn avx2_available() -> bool {
    #[cfg(target_arch = "x86_64")]
    {
        std::arch::is_x86_feature_detected!("avx2")
    }
    #[cfg(not(target_arch = "x86_64"))]
    {
        false
    }
}

/// Whether the AVX-512 kernel tier is available on this CPU. The whole
/// tier is gated on `avx512f` **and** `avx512vpopcntdq` together — the
/// row-matching kernels only need the former, but a single gate keeps
/// the ladder a ladder.
pub fn avx512_available() -> bool {
    #[cfg(target_arch = "x86_64")]
    {
        std::arch::is_x86_feature_detected!("avx512f")
            && std::arch::is_x86_feature_detected!("avx512vpopcntdq")
    }
    #[cfg(not(target_arch = "x86_64"))]
    {
        false
    }
}

#[cfg(target_arch = "x86_64")]
mod avx2 {
    //! AVX2 implementations. Callers must verify `avx2` support first.

    use core::arch::x86_64::*;

    /// Per-64-bit-lane popcount of a 256-bit vector via the nibble-lookup
    /// method: `vpshufb` maps each nibble to its popcount, `vpsadbw`
    /// folds the sixteen byte counts of each 128-bit half into the two
    /// `u64` lanes.
    #[inline]
    #[target_feature(enable = "avx2")]
    unsafe fn popcnt_epi64(v: __m256i) -> __m256i {
        #[rustfmt::skip]
        let lookup = _mm256_setr_epi8(
            0, 1, 1, 2, 1, 2, 2, 3, 1, 2, 2, 3, 2, 3, 3, 4,
            0, 1, 1, 2, 1, 2, 2, 3, 1, 2, 2, 3, 2, 3, 3, 4,
        );
        let low_mask = _mm256_set1_epi8(0x0f);
        let lo = _mm256_and_si256(v, low_mask);
        let hi = _mm256_and_si256(_mm256_srli_epi32::<4>(v), low_mask);
        let counts = _mm256_add_epi8(
            _mm256_shuffle_epi8(lookup, lo),
            _mm256_shuffle_epi8(lookup, hi),
        );
        _mm256_sad_epu8(counts, _mm256_setzero_si256())
    }

    /// Horizontal sum of the four `u64` lanes of an accumulator.
    #[inline]
    #[target_feature(enable = "avx2")]
    unsafe fn fold_u64(acc: __m256i) -> u64 {
        let mut lanes = [0u64; 4];
        _mm256_storeu_si256(lanes.as_mut_ptr() as *mut __m256i, acc);
        lanes.iter().sum()
    }

    #[target_feature(enable = "avx2")]
    pub unsafe fn pair_good_count(a: &[u64], b: &[u64], tail_mask: u64) -> usize {
        // The length equality is a soundness bound here: the loop's raw
        // 256-bit loads are in-bounds for `a` by the loop condition and
        // for `b` only via this assert.
        assert_eq!(a.len(), b.len(), "pair lanes must have equal length");
        if a.is_empty() {
            return 0;
        }
        let body = a.len() - 1;
        let ones = _mm256_set1_epi8(-1);
        let mut acc = _mm256_setzero_si256();
        let mut w = 0;
        while w + 4 <= body {
            let va = _mm256_loadu_si256(a.as_ptr().add(w) as *const __m256i);
            let vb = _mm256_loadu_si256(b.as_ptr().add(w) as *const __m256i);
            // !(a | b): one andnot against all-ones instead of two NOTs.
            let good = _mm256_andnot_si256(_mm256_or_si256(va, vb), ones);
            acc = _mm256_add_epi64(acc, popcnt_epi64(good));
            w += 4;
        }
        let mut count = fold_u64(acc);
        while w < body {
            count += (!(a[w] | b[w])).count_ones() as u64;
            w += 1;
        }
        count += (!(a[body] | b[body]) & tail_mask).count_ones() as u64;
        count as usize
    }

    #[target_feature(enable = "avx2")]
    pub unsafe fn all_good_count(lanes: &[&[u64]], used: usize, tail_mask: u64) -> usize {
        super::check_lanes(lanes, used);
        if used == 0 {
            return 0;
        }
        let body = used - 1;
        let ones = _mm256_set1_epi8(-1);
        let mut acc = _mm256_setzero_si256();
        let mut w = 0;
        while w + 4 <= body {
            let mut good = ones;
            for lane in lanes {
                let v = _mm256_loadu_si256(lane.as_ptr().add(w) as *const __m256i);
                good = _mm256_andnot_si256(v, good);
            }
            acc = _mm256_add_epi64(acc, popcnt_epi64(good));
            w += 4;
        }
        let mut count = fold_u64(acc);
        while w < used {
            let mut word = if w + 1 == used { tail_mask } else { !0u64 };
            for lane in lanes {
                word &= !lane[w];
                if word == 0 {
                    break;
                }
            }
            count += word.count_ones() as u64;
            w += 1;
        }
        count as usize
    }

    /// Whether `row` and `mask` (equal length) are word-equal, comparing
    /// four words per `vpcmpeqq`.
    #[inline]
    #[target_feature(enable = "avx2")]
    unsafe fn row_equals(row: &[u64], mask: &[u64]) -> bool {
        let n = row.len();
        let mut w = 0;
        while w + 4 <= n {
            let vr = _mm256_loadu_si256(row.as_ptr().add(w) as *const __m256i);
            let vm = _mm256_loadu_si256(mask.as_ptr().add(w) as *const __m256i);
            let eq = _mm256_cmpeq_epi64(vr, vm);
            if _mm256_movemask_epi8(eq) != -1i32 {
                return false;
            }
            w += 4;
        }
        row[w..] == mask[w..]
    }

    #[target_feature(enable = "avx2")]
    pub unsafe fn count_equal_rows(words: &[u64], words_per_row: usize, mask: &[u64]) -> usize {
        assert_eq!(mask.len(), words_per_row, "mask width must match rows");
        if words_per_row == 0 {
            return 0;
        }
        words
            .chunks_exact(words_per_row)
            .filter(|row| row_equals(row, mask))
            .count()
    }

    #[target_feature(enable = "avx2")]
    pub unsafe fn match_rows_batch(
        words: &[u64],
        words_per_row: usize,
        masks: &[Vec<u64>],
        counts: &mut [usize],
    ) {
        super::check_masks(masks, words_per_row);
        for row in words.chunks_exact(words_per_row) {
            for (mask, count) in masks.iter().zip(counts.iter_mut()) {
                if row_equals(row, mask) {
                    *count += 1;
                }
            }
        }
    }

    #[target_feature(enable = "avx2")]
    pub unsafe fn count_zero_rows(words: &[u64], words_per_row: usize) -> usize {
        if words_per_row == 0 {
            return 0;
        }
        let zero = _mm256_setzero_si256();
        words
            .chunks_exact(words_per_row)
            .filter(|row| {
                let n = row.len();
                let mut w = 0;
                // Early exit per 4-word chunk: on dense observations most
                // rows are refuted by their first words, so a full-row OR
                // reduction would throw that locality away.
                while w + 4 <= n {
                    let v = _mm256_loadu_si256(row.as_ptr().add(w) as *const __m256i);
                    if _mm256_movemask_epi8(_mm256_cmpeq_epi64(v, zero)) != -1i32 {
                        return false;
                    }
                    w += 4;
                }
                row[w..].iter().all(|&word| word == 0)
            })
            .count()
    }
}

#[cfg(target_arch = "x86_64")]
mod avx512 {
    //! AVX-512 implementations. Callers must verify `avx512f` and
    //! `avx512vpopcntdq` support first.
    //!
    //! The structure mirrors [`super::avx2`] — a vector body over the
    //! leading full words, a scalar remainder, and a masked final word —
    //! but each vector step covers **eight** `u64` words, the popcount
    //! is a single `vpopcntdq` instead of the nibble dance, and row
    //! comparisons produce a compare *mask* directly instead of a
    //! byte-movemask round-trip.

    use core::arch::x86_64::*;

    #[target_feature(enable = "avx512f,avx512vpopcntdq")]
    pub unsafe fn pair_good_count(a: &[u64], b: &[u64], tail_mask: u64) -> usize {
        // The length equality is a soundness bound here: the loop's raw
        // 512-bit loads are in-bounds for `a` by the loop condition and
        // for `b` only via this assert.
        assert_eq!(a.len(), b.len(), "pair lanes must have equal length");
        if a.is_empty() {
            return 0;
        }
        let body = a.len() - 1;
        let ones = _mm512_set1_epi8(-1);
        let mut acc = _mm512_setzero_si512();
        let mut w = 0;
        while w + 8 <= body {
            let va = _mm512_loadu_si512(a.as_ptr().add(w) as *const __m512i);
            let vb = _mm512_loadu_si512(b.as_ptr().add(w) as *const __m512i);
            // !(a | b): one andnot against all-ones instead of two NOTs.
            let good = _mm512_andnot_si512(_mm512_or_si512(va, vb), ones);
            acc = _mm512_add_epi64(acc, _mm512_popcnt_epi64(good));
            w += 8;
        }
        let mut count = _mm512_reduce_add_epi64(acc) as u64;
        while w < body {
            count += (!(a[w] | b[w])).count_ones() as u64;
            w += 1;
        }
        count += (!(a[body] | b[body]) & tail_mask).count_ones() as u64;
        count as usize
    }

    #[target_feature(enable = "avx512f,avx512vpopcntdq")]
    pub unsafe fn all_good_count(lanes: &[&[u64]], used: usize, tail_mask: u64) -> usize {
        super::check_lanes(lanes, used);
        if used == 0 {
            return 0;
        }
        let body = used - 1;
        let ones = _mm512_set1_epi8(-1);
        let mut acc = _mm512_setzero_si512();
        let mut w = 0;
        while w + 8 <= body {
            let mut good = ones;
            for lane in lanes {
                let v = _mm512_loadu_si512(lane.as_ptr().add(w) as *const __m512i);
                good = _mm512_andnot_si512(v, good);
            }
            acc = _mm512_add_epi64(acc, _mm512_popcnt_epi64(good));
            w += 8;
        }
        let mut count = _mm512_reduce_add_epi64(acc) as u64;
        while w < used {
            let mut word = if w + 1 == used { tail_mask } else { !0u64 };
            for lane in lanes {
                word &= !lane[w];
                if word == 0 {
                    break;
                }
            }
            count += word.count_ones() as u64;
            w += 1;
        }
        count as usize
    }

    /// Whether `row` and `mask` (equal length) are word-equal, comparing
    /// eight words per `vpcmpeqq` mask test.
    #[inline]
    #[target_feature(enable = "avx512f,avx512vpopcntdq")]
    unsafe fn row_equals(row: &[u64], mask: &[u64]) -> bool {
        let n = row.len();
        let mut w = 0;
        while w + 8 <= n {
            let vr = _mm512_loadu_si512(row.as_ptr().add(w) as *const __m512i);
            let vm = _mm512_loadu_si512(mask.as_ptr().add(w) as *const __m512i);
            if _mm512_cmpeq_epi64_mask(vr, vm) != 0xff {
                return false;
            }
            w += 8;
        }
        row[w..] == mask[w..]
    }

    #[target_feature(enable = "avx512f,avx512vpopcntdq")]
    pub unsafe fn count_equal_rows(words: &[u64], words_per_row: usize, mask: &[u64]) -> usize {
        assert_eq!(mask.len(), words_per_row, "mask width must match rows");
        if words_per_row == 0 {
            return 0;
        }
        words
            .chunks_exact(words_per_row)
            .filter(|row| row_equals(row, mask))
            .count()
    }

    #[target_feature(enable = "avx512f,avx512vpopcntdq")]
    pub unsafe fn match_rows_batch(
        words: &[u64],
        words_per_row: usize,
        masks: &[Vec<u64>],
        counts: &mut [usize],
    ) {
        super::check_masks(masks, words_per_row);
        for row in words.chunks_exact(words_per_row) {
            for (mask, count) in masks.iter().zip(counts.iter_mut()) {
                if row_equals(row, mask) {
                    *count += 1;
                }
            }
        }
    }

    #[target_feature(enable = "avx512f,avx512vpopcntdq")]
    pub unsafe fn count_zero_rows(words: &[u64], words_per_row: usize) -> usize {
        if words_per_row == 0 {
            return 0;
        }
        words
            .chunks_exact(words_per_row)
            .filter(|row| {
                let n = row.len();
                let mut w = 0;
                // Early exit per 8-word chunk, for the same locality
                // reason as the AVX2 tier: most rows are refuted by
                // their first words on dense observations.
                while w + 8 <= n {
                    let v = _mm512_loadu_si512(row.as_ptr().add(w) as *const __m512i);
                    if _mm512_test_epi64_mask(v, v) != 0 {
                        return false;
                    }
                    w += 8;
                }
                row[w..].iter().all(|&word| word == 0)
            })
            .count()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Deterministic word pattern with a mix of dense and sparse words.
    fn pattern(len: usize, salt: u64) -> Vec<u64> {
        let mut state = salt.wrapping_mul(0x9E37_79B9_7F4A_7C15) | 1;
        (0..len)
            .map(|_| {
                state ^= state << 13;
                state ^= state >> 7;
                state ^= state << 17;
                state
            })
            .collect()
    }

    fn reference_pair(a: &[u64], b: &[u64], tail: u64) -> usize {
        let mut count = 0;
        for w in 0..a.len() {
            let m = if w + 1 == a.len() { tail } else { !0 };
            count += (!(a[w] | b[w]) & m).count_ones() as usize;
        }
        count
    }

    #[test]
    fn pair_tiers_agree_across_lengths() {
        for len in [0usize, 1, 2, 3, 4, 5, 7, 8, 9, 16, 33, 64] {
            let a = pattern(len, 1);
            let b = pattern(len, 2);
            for tail in [!0u64, 1, 0xffff, (1 << 37) - 1] {
                let expected = reference_pair(&a, &b, tail);
                assert_eq!(pair_good_count_portable(&a, &b, tail), expected);
                assert_eq!(pair_good_count(&a, &b, tail), expected);
                if let Some(simd) = pair_good_count_avx2(&a, &b, tail) {
                    assert_eq!(simd, expected);
                }
                if let Some(simd) = pair_good_count_avx512(&a, &b, tail) {
                    assert_eq!(simd, expected);
                }
            }
        }
    }

    #[test]
    fn all_good_tiers_agree() {
        for len in [1usize, 3, 4, 9, 17, 64] {
            let lanes: Vec<Vec<u64>> = (0..5).map(|i| pattern(len, 10 + i)).collect();
            for k in 0..=lanes.len() {
                let refs: Vec<&[u64]> = lanes[..k].iter().map(Vec::as_slice).collect();
                let tail = (1u64 << 41) - 1;
                let expected = {
                    let mut count = 0;
                    for w in 0..len {
                        let mut acc = if w + 1 == len { tail } else { !0 };
                        for lane in &refs {
                            acc &= !lane[w];
                        }
                        count += acc.count_ones() as usize;
                    }
                    count
                };
                assert_eq!(all_good_count_portable(&refs, len, tail), expected);
                assert_eq!(all_good_count(&refs, len, tail), expected);
                if let Some(simd) = all_good_count_avx2(&refs, len, tail) {
                    assert_eq!(simd, expected);
                }
                if let Some(simd) = all_good_count_avx512(&refs, len, tail) {
                    assert_eq!(simd, expected);
                }
            }
        }
    }

    #[test]
    fn empty_lane_set_counts_every_slot() {
        // The vacuous conjunction: with no lanes, every valid slot matches.
        assert_eq!(all_good_count(&[], 2, 0b111), 64 + 3);
        assert_eq!(all_good_count(&[], 0, 0), 0);
    }

    #[test]
    fn row_matching_tiers_agree() {
        for words_per_row in [1usize, 2, 3, 4, 5, 8, 24] {
            let rows = 37;
            let mut words = pattern(rows * words_per_row, 77);
            // Plant exact copies of the mask and some all-zero rows.
            let mask = pattern(words_per_row, 5);
            for r in [3usize, 14, 30] {
                words[r * words_per_row..(r + 1) * words_per_row].copy_from_slice(&mask);
            }
            for r in [7usize, 20] {
                words[r * words_per_row..(r + 1) * words_per_row].fill(0);
            }
            let expected_eq = words
                .chunks_exact(words_per_row)
                .filter(|row| *row == mask.as_slice())
                .count();
            assert_eq!(
                count_equal_rows_portable(&words, words_per_row, &mask),
                expected_eq
            );
            assert_eq!(count_equal_rows(&words, words_per_row, &mask), expected_eq);
            if let Some(simd) = count_equal_rows_avx2(&words, words_per_row, &mask) {
                assert_eq!(simd, expected_eq);
            }
            if let Some(simd) = count_equal_rows_avx512(&words, words_per_row, &mask) {
                assert_eq!(simd, expected_eq);
            }
            assert_eq!(count_zero_rows_portable(&words, words_per_row), 2);
            assert_eq!(count_zero_rows(&words, words_per_row), 2);
            if let Some(simd) = count_zero_rows_avx2(&words, words_per_row) {
                assert_eq!(simd, 2);
            }
            if let Some(simd) = count_zero_rows_avx512(&words, words_per_row) {
                assert_eq!(simd, 2);
            }

            let masks = vec![mask.clone(), vec![0u64; words_per_row]];
            let mut counts = vec![0usize; 2];
            match_rows_batch(&words, words_per_row, &masks, &mut counts);
            assert_eq!(counts, vec![expected_eq, 2]);
            let mut portable_counts = vec![0usize; 2];
            match_rows_batch_portable(&words, words_per_row, &masks, &mut portable_counts);
            assert_eq!(portable_counts, counts);
            let mut avx2_counts = vec![0usize; 2];
            if match_rows_batch_avx2(&words, words_per_row, &masks, &mut avx2_counts) {
                assert_eq!(avx2_counts, counts);
            }
            let mut avx512_counts = vec![0usize; 2];
            if match_rows_batch_avx512(&words, words_per_row, &masks, &mut avx512_counts) {
                assert_eq!(avx512_counts, counts);
            }
        }
    }

    #[test]
    fn active_tier_matches_feature_detection() {
        let tier = active_tier();
        if avx512_available() {
            assert_eq!(tier, KernelTier::Avx512);
        } else if avx2_available() {
            assert_eq!(tier, KernelTier::Avx2);
        } else {
            assert_eq!(tier, KernelTier::Portable);
        }
        assert!(["avx512", "avx2", "portable"].contains(&tier.as_str()));
        assert_eq!(tier.to_string(), tier.as_str());
        // The ladder is monotone: vpopcntdq-class CPUs all have AVX2.
        if avx512_available() {
            assert!(avx2_available());
        }
    }

    #[test]
    #[should_panic(expected = "query needs")]
    fn short_lanes_are_rejected_not_read() {
        // Soundness bound: `used` beyond a lane's length must panic in
        // every tier, never reach a raw load.
        let lane = [0u64];
        all_good_count(&[&lane], 8, !0);
    }

    #[test]
    #[should_panic(expected = "width must match")]
    fn narrow_masks_are_rejected_not_read() {
        let words = [0u64; 8];
        let masks = vec![vec![0u64; 1]];
        let mut counts = [0usize];
        match_rows_batch(&words, 4, &masks, &mut counts);
    }

    #[test]
    fn zero_width_rows_never_match() {
        assert_eq!(count_equal_rows(&[], 0, &[]), 0);
        assert_eq!(count_zero_rows(&[], 0), 0);
        let mut counts: [usize; 0] = [];
        match_rows_batch(&[], 0, &[], &mut counts);
    }
}
