//! Empirical estimators of path-level probabilities.
//!
//! Everything the tomography algorithms need from the measurements is a
//! probability of some *path-level* event, estimated as a relative
//! frequency over the snapshots of an experiment:
//!
//! * `P(Y_i = 0)` — path `P_i` is good (single-path equations, Eq. 9);
//! * `P(Y_i = 0, Y_j = 0)` — paths `P_i` and `P_j` are both good
//!   (path-pair equations, Eq. 10);
//! * `P(ψ(S) = ∅)` — all paths are good (Eq. 3 / Eq. 14);
//! * `P(ψ(S) = ψ(A))` — the paths covered by a correlation subset `A` are
//!   exactly the congested paths (the left-hand side of Eq. 18, used by the
//!   exact theorem algorithm).
//!
//! All estimates are computed on the bit-packed views of
//! [`PathObservations`]: joint-good queries AND the complemented path
//! lanes and popcount the result (64 snapshots per word), and exact-state
//! queries compare each packed snapshot row against a packed target mask.
//! The batch entry points ([`ProbabilityEstimator::log_prob_pairs_good`],
//! [`ProbabilityEstimator::prob_exactly_congested_batch`]) exist so the
//! equation builder and the theorem algorithm issue *one* call for all
//! their queries instead of re-scanning the observations per pair.
//!
//! Estimated probabilities of zero are problematic for the log-linear
//! equations (log 0 = −∞), so [`ProbabilityEstimator::log_prob_paths_good`]
//! clamps frequencies to a floor of `1/(2·N)` where `N` is the number of
//! snapshots — the usual "half a count" correction for unobserved events.
//!
//! The pre-packing scalar implementation survives as the executable
//! specification in [`crate::reference`]; the differential property tests
//! assert bit-exact agreement between the two on random observation
//! matrices.
//!
//! This estimator *borrows* a heap-owned [`PathObservations`]. The same
//! queries are also available over **borrowed or memory-mapped lane
//! words** through [`crate::view::ObservationsView`] — the zero-copy
//! memory tier, bit-identical answers without owning the store — and
//! both ride the same SIMD kernel ladder in [`crate::bitset::simd`]
//! (AVX-512 → AVX2 → portable, chosen per call at runtime).

use std::collections::BTreeSet;

use netcorr_topology::path::PathId;

use crate::bitset::simd;
use crate::error::MeasureError;
use crate::observation::PathObservations;

/// Empirical probability estimator over a set of recorded observations.
#[derive(Debug, Clone, Copy)]
pub struct ProbabilityEstimator<'a> {
    observations: &'a PathObservations,
}

impl<'a> ProbabilityEstimator<'a> {
    /// Creates an estimator over `observations`.
    ///
    /// Returns an error if no snapshots have been recorded.
    pub fn new(observations: &'a PathObservations) -> Result<Self, MeasureError> {
        if observations.is_empty() {
            return Err(MeasureError::NoSnapshots);
        }
        Ok(ProbabilityEstimator { observations })
    }

    /// The underlying observations.
    pub fn observations(&self) -> &PathObservations {
        self.observations
    }

    /// Number of snapshots backing every estimate.
    pub fn num_snapshots(&self) -> usize {
        self.observations.num_snapshots()
    }

    /// The probability floor used when clamping zero frequencies before
    /// taking logarithms: `1 / (2 N)`.
    pub fn probability_floor(&self) -> f64 {
        1.0 / (2.0 * self.num_snapshots() as f64)
    }

    fn check_path(&self, path: PathId) -> Result<(), MeasureError> {
        if path.index() >= self.observations.num_paths() {
            return Err(MeasureError::UnknownPath {
                index: path.index(),
                num_paths: self.observations.num_paths(),
            });
        }
        Ok(())
    }

    /// Number of snapshots in which *all* the given paths were good:
    /// popcount of the AND of the complemented lanes (the tail of the last
    /// word is masked because complementing turns the zero padding into
    /// ones). Dispatches to the SIMD kernel tier of [`simd`].
    fn all_good_count(&self, paths: &[PathId]) -> usize {
        let lanes = self.observations.lanes();
        let used = lanes.used_words();
        let mask = lanes.last_word_mask();
        if let [a, b] = paths {
            return simd::pair_good_count(lanes.lane(a.index()), lanes.lane(b.index()), mask);
        }
        let lane_refs: Vec<&[u64]> = paths.iter().map(|&p| lanes.lane(p.index())).collect();
        simd::all_good_count(&lane_refs, used, mask)
    }

    /// Empirical `P(Y_i = 0)`: the fraction of snapshots in which `path`
    /// was good.
    pub fn prob_path_good(&self, path: PathId) -> Result<f64, MeasureError> {
        Ok(1.0 - self.observations.congestion_frequency(path)?)
    }

    /// Empirical `P(Y_i = 1)`.
    pub fn prob_path_congested(&self, path: PathId) -> Result<f64, MeasureError> {
        self.observations.congestion_frequency(path)
    }

    /// Empirical probability that *all* the given paths were good in the
    /// same snapshot (`P(Y_{i1} = 0, ..., Y_{ik} = 0)`).
    pub fn prob_paths_good(&self, paths: &[PathId]) -> Result<f64, MeasureError> {
        for &p in paths {
            self.check_path(p)?;
        }
        Ok(self.all_good_count(paths) as f64 / self.num_snapshots() as f64)
    }

    /// Batch form of the path-pair query: one `P(Y_i = 0, Y_j = 0)` per
    /// pair, validated once up front. This is the equation builder's hot
    /// path — each pair costs one AND/popcount sweep over two packed lanes
    /// (`⌈N/64⌉` words), never a rescan of the full observation matrix.
    pub fn prob_pairs_good(&self, pairs: &[(PathId, PathId)]) -> Result<Vec<f64>, MeasureError> {
        for &(a, b) in pairs {
            self.check_path(a)?;
            self.check_path(b)?;
        }
        let lanes = self.observations.lanes();
        let mask = lanes.last_word_mask();
        let n = self.num_snapshots() as f64;
        Ok(pairs
            .iter()
            .map(|&(a, b)| {
                let count =
                    simd::pair_good_count(lanes.lane(a.index()), lanes.lane(b.index()), mask);
                count as f64 / n
            })
            .collect())
    }

    /// Batch form of [`ProbabilityEstimator::log_prob_paths_good`] over
    /// path pairs: clamped `log P(Y_i = 0, Y_j = 0)` per pair.
    pub fn log_prob_pairs_good(
        &self,
        pairs: &[(PathId, PathId)],
    ) -> Result<Vec<f64>, MeasureError> {
        let floor = self.probability_floor();
        Ok(self
            .prob_pairs_good(pairs)?
            .into_iter()
            .map(|p| p.max(floor).ln())
            .collect())
    }

    /// Empirical `P(ψ(S) = ∅)`: the fraction of snapshots in which every
    /// path was good — packed snapshot rows that are all-zero words.
    pub fn prob_all_paths_good(&self) -> f64 {
        let rows = self.observations.rows();
        let good = simd::count_zero_rows(rows.words(), rows.words_per_row());
        good as f64 / self.num_snapshots() as f64
    }

    /// Empirical `P(ψ(S) = ψ(A))`: the fraction of snapshots in which the
    /// congested paths were *exactly* the given set. The target set is
    /// packed into a word mask once, and every snapshot row is compared by
    /// word equality.
    pub fn prob_exactly_congested(
        &self,
        congested: &BTreeSet<PathId>,
    ) -> Result<f64, MeasureError> {
        for &p in congested {
            self.check_path(p)?;
        }
        let rows = self.observations.rows();
        let mask = rows.pack_mask(congested.iter().map(|p| p.index()));
        let matches = simd::count_equal_rows(rows.words(), rows.words_per_row(), &mask);
        Ok(matches as f64 / self.num_snapshots() as f64)
    }

    /// Batch form of [`ProbabilityEstimator::prob_exactly_congested`]: one
    /// probability per target pattern, computed in a single streaming pass
    /// over the packed snapshot rows (better cache behaviour than one pass
    /// per pattern when, as in the theorem algorithm, every correlation
    /// subset's coverage is queried).
    pub fn prob_exactly_congested_batch(
        &self,
        patterns: &[BTreeSet<PathId>],
    ) -> Result<Vec<f64>, MeasureError> {
        for pattern in patterns {
            for &p in pattern {
                self.check_path(p)?;
            }
        }
        let rows = self.observations.rows();
        let masks: Vec<Vec<u64>> = patterns
            .iter()
            .map(|pattern| rows.pack_mask(pattern.iter().map(|p| p.index())))
            .collect();
        let mut matches = vec![0usize; patterns.len()];
        simd::match_rows_batch(rows.words(), rows.words_per_row(), &masks, &mut matches);
        let n = self.num_snapshots() as f64;
        Ok(matches.into_iter().map(|m| m as f64 / n).collect())
    }

    /// `log P(all given paths good)`, clamped below by the probability
    /// floor so the result is always finite. This is the right-hand side
    /// `y` of the log-linear equations in Section 4.
    pub fn log_prob_paths_good(&self, paths: &[PathId]) -> Result<f64, MeasureError> {
        let p = self.prob_paths_good(paths)?;
        Ok(p.max(self.probability_floor()).ln())
    }

    /// Paths that were congested during at least one snapshot.
    pub fn ever_congested_paths(&self) -> Vec<PathId> {
        self.observations.ever_congested_paths()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// 8 snapshots over 3 paths with a known pattern.
    fn observations() -> PathObservations {
        let mut obs = PathObservations::new(3);
        let snapshots = [
            [false, false, false],
            [true, false, false],
            [true, true, false],
            [false, false, false],
            [false, true, false],
            [true, true, false],
            [false, false, false],
            [false, false, true],
        ];
        for s in &snapshots {
            obs.record_snapshot(s).unwrap();
        }
        obs
    }

    #[test]
    fn single_path_probabilities() {
        let obs = observations();
        let est = ProbabilityEstimator::new(&obs).unwrap();
        assert_eq!(est.num_snapshots(), 8);
        // Path 0 congested in 3 of 8 snapshots.
        assert!((est.prob_path_congested(PathId(0)).unwrap() - 3.0 / 8.0).abs() < 1e-12);
        assert!((est.prob_path_good(PathId(0)).unwrap() - 5.0 / 8.0).abs() < 1e-12);
        assert!((est.prob_path_good(PathId(2)).unwrap() - 7.0 / 8.0).abs() < 1e-12);
    }

    #[test]
    fn joint_probabilities() {
        let obs = observations();
        let est = ProbabilityEstimator::new(&obs).unwrap();
        // Paths 0 and 1 both good in snapshots 0, 3, 6, 7 -> 4/8.
        assert!((est.prob_paths_good(&[PathId(0), PathId(1)]).unwrap() - 0.5).abs() < 1e-12);
        // All three paths good in snapshots 0, 3, 6 -> 3/8.
        assert!(
            (est.prob_paths_good(&[PathId(0), PathId(1), PathId(2)])
                .unwrap()
                - 3.0 / 8.0)
                .abs()
                < 1e-12
        );
        assert!((est.prob_all_paths_good() - 3.0 / 8.0).abs() < 1e-12);
        // The joint probability with an empty path list is 1 (vacuous).
        assert_eq!(est.prob_paths_good(&[]).unwrap(), 1.0);
    }

    #[test]
    fn batch_pair_queries_match_the_single_query() {
        let obs = observations();
        let est = ProbabilityEstimator::new(&obs).unwrap();
        let pairs = [
            (PathId(0), PathId(1)),
            (PathId(0), PathId(2)),
            (PathId(1), PathId(2)),
            (PathId(2), PathId(2)),
        ];
        let batch = est.prob_pairs_good(&pairs).unwrap();
        for (i, &(a, b)) in pairs.iter().enumerate() {
            assert_eq!(batch[i], est.prob_paths_good(&[a, b]).unwrap());
        }
        let logs = est.log_prob_pairs_good(&pairs).unwrap();
        for (i, &(a, b)) in pairs.iter().enumerate() {
            assert_eq!(logs[i], est.log_prob_paths_good(&[a, b]).unwrap());
        }
        assert!(est.prob_pairs_good(&[(PathId(0), PathId(9))]).is_err());
    }

    #[test]
    fn exact_congestion_pattern_probabilities() {
        let obs = observations();
        let est = ProbabilityEstimator::new(&obs).unwrap();
        // Exactly {P1} congested: snapshot 1 only -> 1/8.
        let p = est
            .prob_exactly_congested(&BTreeSet::from([PathId(0)]))
            .unwrap();
        assert!((p - 1.0 / 8.0).abs() < 1e-12);
        // Exactly {P1, P2}: snapshots 2 and 5 -> 2/8.
        let p = est
            .prob_exactly_congested(&BTreeSet::from([PathId(0), PathId(1)]))
            .unwrap();
        assert!((p - 2.0 / 8.0).abs() < 1e-12);
        // Exactly nothing congested: snapshots 0, 3, 6 -> 3/8, matching
        // prob_all_paths_good.
        let p = est.prob_exactly_congested(&BTreeSet::new()).unwrap();
        assert!((p - est.prob_all_paths_good()).abs() < 1e-12);
        // A pattern that never occurred.
        let p = est
            .prob_exactly_congested(&BTreeSet::from([PathId(2), PathId(1)]))
            .unwrap();
        assert_eq!(p, 0.0);
    }

    #[test]
    fn batch_exact_queries_match_the_single_query() {
        let obs = observations();
        let est = ProbabilityEstimator::new(&obs).unwrap();
        let patterns = vec![
            BTreeSet::new(),
            BTreeSet::from([PathId(0)]),
            BTreeSet::from([PathId(0), PathId(1)]),
            BTreeSet::from([PathId(1), PathId(2)]),
        ];
        let batch = est.prob_exactly_congested_batch(&patterns).unwrap();
        for (i, pattern) in patterns.iter().enumerate() {
            assert_eq!(batch[i], est.prob_exactly_congested(pattern).unwrap());
        }
        assert!(est
            .prob_exactly_congested_batch(&[BTreeSet::from([PathId(9)])])
            .is_err());
    }

    #[test]
    fn log_probabilities_are_clamped() {
        let mut obs = PathObservations::new(2);
        for _ in 0..10 {
            obs.record_snapshot(&[true, false]).unwrap();
        }
        let est = ProbabilityEstimator::new(&obs).unwrap();
        // Path 0 was never good: probability 0 must be clamped to 1/(2N).
        let log_p = est.log_prob_paths_good(&[PathId(0)]).unwrap();
        assert!((log_p - (1.0 / 20.0f64).ln()).abs() < 1e-12);
        assert!(log_p.is_finite());
        // Path 1 was always good: log 1 = 0.
        assert_eq!(est.log_prob_paths_good(&[PathId(1)]).unwrap(), 0.0);
        assert!((est.probability_floor() - 0.05).abs() < 1e-12);
    }

    #[test]
    fn errors_on_empty_or_unknown() {
        let empty = PathObservations::new(2);
        assert_eq!(
            ProbabilityEstimator::new(&empty).unwrap_err(),
            MeasureError::NoSnapshots
        );
        let obs = observations();
        let est = ProbabilityEstimator::new(&obs).unwrap();
        assert!(est.prob_path_good(PathId(9)).is_err());
        assert!(est.prob_paths_good(&[PathId(9)]).is_err());
        assert!(est
            .prob_exactly_congested(&BTreeSet::from([PathId(9)]))
            .is_err());
    }

    #[test]
    fn ever_congested_paths_passthrough() {
        let obs = observations();
        let est = ProbabilityEstimator::new(&obs).unwrap();
        assert_eq!(
            est.ever_congested_paths(),
            vec![PathId(0), PathId(1), PathId(2)]
        );
    }

    #[test]
    fn queries_cross_word_boundaries_correctly() {
        // 130 snapshots (> 2 words) with a deterministic pattern.
        let mut obs = PathObservations::new(2);
        let mut good_both = 0;
        let mut all_good = 0;
        for i in 0..130 {
            let a = i % 3 == 0;
            let b = i % 5 == 0;
            obs.record_snapshot(&[a, b]).unwrap();
            if !a && !b {
                good_both += 1;
                all_good += 1;
            }
        }
        let est = ProbabilityEstimator::new(&obs).unwrap();
        let p = est.prob_paths_good(&[PathId(0), PathId(1)]).unwrap();
        assert_eq!(p, good_both as f64 / 130.0);
        assert_eq!(est.prob_all_paths_good(), all_good as f64 / 130.0);
    }
}
