//! Empirical estimators of path-level probabilities.
//!
//! Everything the tomography algorithms need from the measurements is a
//! probability of some *path-level* event, estimated as a relative
//! frequency over the snapshots of an experiment:
//!
//! * `P(Y_i = 0)` — path `P_i` is good (single-path equations, Eq. 9);
//! * `P(Y_i = 0, Y_j = 0)` — paths `P_i` and `P_j` are both good
//!   (path-pair equations, Eq. 10);
//! * `P(ψ(S) = ∅)` — all paths are good (Eq. 3 / Eq. 14);
//! * `P(ψ(S) = ψ(A))` — the paths covered by a correlation subset `A` are
//!   exactly the congested paths (the left-hand side of Eq. 18, used by the
//!   exact theorem algorithm).
//!
//! Estimated probabilities of zero are problematic for the log-linear
//! equations (log 0 = −∞), so [`ProbabilityEstimator::log_prob_paths_good`]
//! clamps frequencies to a floor of `1/(2·N)` where `N` is the number of
//! snapshots — the usual "half a count" correction for unobserved events.

use std::collections::BTreeSet;

use netcorr_topology::path::PathId;

use crate::error::MeasureError;
use crate::observation::PathObservations;

/// Empirical probability estimator over a set of recorded observations.
#[derive(Debug, Clone, Copy)]
pub struct ProbabilityEstimator<'a> {
    observations: &'a PathObservations,
}

impl<'a> ProbabilityEstimator<'a> {
    /// Creates an estimator over `observations`.
    ///
    /// Returns an error if no snapshots have been recorded.
    pub fn new(observations: &'a PathObservations) -> Result<Self, MeasureError> {
        if observations.is_empty() {
            return Err(MeasureError::NoSnapshots);
        }
        Ok(ProbabilityEstimator { observations })
    }

    /// The underlying observations.
    pub fn observations(&self) -> &PathObservations {
        self.observations
    }

    /// Number of snapshots backing every estimate.
    pub fn num_snapshots(&self) -> usize {
        self.observations.num_snapshots()
    }

    /// The probability floor used when clamping zero frequencies before
    /// taking logarithms: `1 / (2 N)`.
    pub fn probability_floor(&self) -> f64 {
        1.0 / (2.0 * self.num_snapshots() as f64)
    }

    fn check_path(&self, path: PathId) -> Result<(), MeasureError> {
        if path.index() >= self.observations.num_paths() {
            return Err(MeasureError::UnknownPath {
                index: path.index(),
                num_paths: self.observations.num_paths(),
            });
        }
        Ok(())
    }

    /// Empirical `P(Y_i = 0)`: the fraction of snapshots in which `path`
    /// was good.
    pub fn prob_path_good(&self, path: PathId) -> Result<f64, MeasureError> {
        Ok(1.0 - self.observations.congestion_frequency(path)?)
    }

    /// Empirical `P(Y_i = 1)`.
    pub fn prob_path_congested(&self, path: PathId) -> Result<f64, MeasureError> {
        self.observations.congestion_frequency(path)
    }

    /// Empirical probability that *all* the given paths were good in the
    /// same snapshot (`P(Y_{i1} = 0, ..., Y_{ik} = 0)`).
    pub fn prob_paths_good(&self, paths: &[PathId]) -> Result<f64, MeasureError> {
        for &p in paths {
            self.check_path(p)?;
        }
        let n = self.num_snapshots();
        let mut good = 0usize;
        for snapshot in self.observations.snapshots() {
            if paths.iter().all(|p| !snapshot[p.index()]) {
                good += 1;
            }
        }
        Ok(good as f64 / n as f64)
    }

    /// Empirical `P(ψ(S) = ∅)`: the fraction of snapshots in which every
    /// path was good.
    pub fn prob_all_paths_good(&self) -> f64 {
        let n = self.num_snapshots();
        let good = self
            .observations
            .snapshots()
            .filter(|snapshot| snapshot.iter().all(|&c| !c))
            .count();
        good as f64 / n as f64
    }

    /// Empirical `P(ψ(S) = ψ(A))`: the fraction of snapshots in which the
    /// congested paths were *exactly* the given set.
    pub fn prob_exactly_congested(
        &self,
        congested: &BTreeSet<PathId>,
    ) -> Result<f64, MeasureError> {
        for &p in congested {
            self.check_path(p)?;
        }
        let n = self.num_snapshots();
        let mut matches = 0usize;
        for snapshot in self.observations.snapshots() {
            let exact = snapshot
                .iter()
                .enumerate()
                .all(|(i, &c)| c == congested.contains(&PathId(i)));
            if exact {
                matches += 1;
            }
        }
        Ok(matches as f64 / n as f64)
    }

    /// `log P(all given paths good)`, clamped below by the probability
    /// floor so the result is always finite. This is the right-hand side
    /// `y` of the log-linear equations in Section 4.
    pub fn log_prob_paths_good(&self, paths: &[PathId]) -> Result<f64, MeasureError> {
        let p = self.prob_paths_good(paths)?;
        Ok(p.max(self.probability_floor()).ln())
    }

    /// Paths that were congested during at least one snapshot.
    pub fn ever_congested_paths(&self) -> Vec<PathId> {
        self.observations.ever_congested_paths()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// 8 snapshots over 3 paths with a known pattern.
    fn observations() -> PathObservations {
        let mut obs = PathObservations::new(3);
        let snapshots = [
            [false, false, false],
            [true, false, false],
            [true, true, false],
            [false, false, false],
            [false, true, false],
            [true, true, false],
            [false, false, false],
            [false, false, true],
        ];
        for s in &snapshots {
            obs.record_snapshot(s).unwrap();
        }
        obs
    }

    #[test]
    fn single_path_probabilities() {
        let obs = observations();
        let est = ProbabilityEstimator::new(&obs).unwrap();
        assert_eq!(est.num_snapshots(), 8);
        // Path 0 congested in 3 of 8 snapshots.
        assert!((est.prob_path_congested(PathId(0)).unwrap() - 3.0 / 8.0).abs() < 1e-12);
        assert!((est.prob_path_good(PathId(0)).unwrap() - 5.0 / 8.0).abs() < 1e-12);
        assert!((est.prob_path_good(PathId(2)).unwrap() - 7.0 / 8.0).abs() < 1e-12);
    }

    #[test]
    fn joint_probabilities() {
        let obs = observations();
        let est = ProbabilityEstimator::new(&obs).unwrap();
        // Paths 0 and 1 both good in snapshots 0, 3, 6, 7 -> 4/8.
        assert!((est.prob_paths_good(&[PathId(0), PathId(1)]).unwrap() - 0.5).abs() < 1e-12);
        // All three paths good in snapshots 0, 3, 6 -> 3/8.
        assert!(
            (est.prob_paths_good(&[PathId(0), PathId(1), PathId(2)])
                .unwrap()
                - 3.0 / 8.0)
                .abs()
                < 1e-12
        );
        assert!((est.prob_all_paths_good() - 3.0 / 8.0).abs() < 1e-12);
        // The joint probability with an empty path list is 1 (vacuous).
        assert_eq!(est.prob_paths_good(&[]).unwrap(), 1.0);
    }

    #[test]
    fn exact_congestion_pattern_probabilities() {
        let obs = observations();
        let est = ProbabilityEstimator::new(&obs).unwrap();
        // Exactly {P1} congested: snapshot 1 only -> 1/8.
        let p = est
            .prob_exactly_congested(&BTreeSet::from([PathId(0)]))
            .unwrap();
        assert!((p - 1.0 / 8.0).abs() < 1e-12);
        // Exactly {P1, P2}: snapshots 2 and 5 -> 2/8.
        let p = est
            .prob_exactly_congested(&BTreeSet::from([PathId(0), PathId(1)]))
            .unwrap();
        assert!((p - 2.0 / 8.0).abs() < 1e-12);
        // Exactly nothing congested: snapshots 0, 3, 6 -> 3/8, matching
        // prob_all_paths_good.
        let p = est.prob_exactly_congested(&BTreeSet::new()).unwrap();
        assert!((p - est.prob_all_paths_good()).abs() < 1e-12);
        // A pattern that never occurred.
        let p = est
            .prob_exactly_congested(&BTreeSet::from([PathId(2), PathId(1)]))
            .unwrap();
        assert_eq!(p, 0.0);
    }

    #[test]
    fn log_probabilities_are_clamped() {
        let mut obs = PathObservations::new(2);
        for _ in 0..10 {
            obs.record_snapshot(&[true, false]).unwrap();
        }
        let est = ProbabilityEstimator::new(&obs).unwrap();
        // Path 0 was never good: probability 0 must be clamped to 1/(2N).
        let log_p = est.log_prob_paths_good(&[PathId(0)]).unwrap();
        assert!((log_p - (1.0 / 20.0f64).ln()).abs() < 1e-12);
        assert!(log_p.is_finite());
        // Path 1 was always good: log 1 = 0.
        assert_eq!(est.log_prob_paths_good(&[PathId(1)]).unwrap(), 0.0);
        assert!((est.probability_floor() - 0.05).abs() < 1e-12);
    }

    #[test]
    fn errors_on_empty_or_unknown() {
        let empty = PathObservations::new(2);
        assert_eq!(
            ProbabilityEstimator::new(&empty).unwrap_err(),
            MeasureError::NoSnapshots
        );
        let obs = observations();
        let est = ProbabilityEstimator::new(&obs).unwrap();
        assert!(est.prob_path_good(PathId(9)).is_err());
        assert!(est.prob_paths_good(&[PathId(9)]).is_err());
        assert!(est
            .prob_exactly_congested(&BTreeSet::from([PathId(9)]))
            .is_err());
    }

    #[test]
    fn ever_congested_paths_passthrough() {
        let obs = observations();
        let est = ProbabilityEstimator::new(&obs).unwrap();
        assert_eq!(
            est.ever_congested_paths(),
            vec![PathId(0), PathId(1), PathId(2)]
        );
    }
}
