//! Pins the `PathObservations` wire format.
//!
//! The exact byte-for-byte representation is asserted here so that any
//! accidental format change fails loudly: observations persisted by one
//! build must stay readable by the next.

use netcorr_measure::observation::WIRE_FORMAT;
use netcorr_measure::PathObservations;

#[test]
fn wire_format_is_pinned() {
    // 3 paths × 4 snapshots; path 0 congested in snapshots 1 and 2
    // (bits 0b0110 = 0x6), path 1 in snapshot 2 (0b0100 = 0x4), path 2
    // never.
    let mut obs = PathObservations::new(3);
    obs.record_snapshot(&[false, false, false]).unwrap();
    obs.record_snapshot(&[true, false, false]).unwrap();
    obs.record_snapshot(&[true, true, false]).unwrap();
    obs.record_snapshot(&[false, false, false]).unwrap();

    let expected = "netcorr-path-observations v2\n\
                    paths 3\n\
                    snapshots 4\n\
                    lane 0000000000000006\n\
                    lane 0000000000000004\n\
                    lane 0000000000000000\n";
    assert_eq!(obs.to_wire(), expected);
    assert_eq!(PathObservations::from_wire(expected).unwrap(), obs);
}

#[test]
fn wire_format_spans_multiple_words() {
    // 70 snapshots forces a second 64-bit word per lane; only snapshots 0
    // and 69 are congested on the single path.
    let mut obs = PathObservations::new(1);
    for s in 0..70 {
        obs.record_snapshot(&[s == 0 || s == 69]).unwrap();
    }
    let expected = "netcorr-path-observations v2\n\
                    paths 1\n\
                    snapshots 70\n\
                    lane 00000000000000010000000000000020\n";
    assert_eq!(obs.to_wire(), expected);
    assert_eq!(PathObservations::from_wire(expected).unwrap(), obs);
}

#[test]
fn empty_container_wire_format() {
    let obs = PathObservations::new(2);
    let expected = "netcorr-path-observations v2\n\
                    paths 2\n\
                    snapshots 0\n\
                    lane -\n\
                    lane -\n";
    assert_eq!(obs.to_wire(), expected);
    assert_eq!(PathObservations::from_wire(expected).unwrap(), obs);
}

#[test]
fn header_names_the_version() {
    assert_eq!(WIRE_FORMAT, "netcorr-path-observations v2");
}
