//! Pins the `PathObservations` wire format.
//!
//! The exact byte-for-byte representation is asserted here so that any
//! accidental format change fails loudly: observations persisted by one
//! build must stay readable by the next.

use netcorr_measure::observation::{BINARY_MAGIC, WIRE_FORMAT};
use netcorr_measure::PathObservations;

#[test]
fn wire_format_is_pinned() {
    // 3 paths × 4 snapshots; path 0 congested in snapshots 1 and 2
    // (bits 0b0110 = 0x6), path 1 in snapshot 2 (0b0100 = 0x4), path 2
    // never.
    let mut obs = PathObservations::new(3);
    obs.record_snapshot(&[false, false, false]).unwrap();
    obs.record_snapshot(&[true, false, false]).unwrap();
    obs.record_snapshot(&[true, true, false]).unwrap();
    obs.record_snapshot(&[false, false, false]).unwrap();

    let expected = "netcorr-path-observations v2\n\
                    paths 3\n\
                    snapshots 4\n\
                    lane 0000000000000006\n\
                    lane 0000000000000004\n\
                    lane 0000000000000000\n";
    assert_eq!(obs.to_wire(), expected);
    assert_eq!(PathObservations::from_wire(expected).unwrap(), obs);
}

#[test]
fn wire_format_spans_multiple_words() {
    // 70 snapshots forces a second 64-bit word per lane; only snapshots 0
    // and 69 are congested on the single path.
    let mut obs = PathObservations::new(1);
    for s in 0..70 {
        obs.record_snapshot(&[s == 0 || s == 69]).unwrap();
    }
    let expected = "netcorr-path-observations v2\n\
                    paths 1\n\
                    snapshots 70\n\
                    lane 00000000000000010000000000000020\n";
    assert_eq!(obs.to_wire(), expected);
    assert_eq!(PathObservations::from_wire(expected).unwrap(), obs);
}

#[test]
fn empty_container_wire_format() {
    let obs = PathObservations::new(2);
    let expected = "netcorr-path-observations v2\n\
                    paths 2\n\
                    snapshots 0\n\
                    lane -\n\
                    lane -\n";
    assert_eq!(obs.to_wire(), expected);
    assert_eq!(PathObservations::from_wire(expected).unwrap(), obs);
}

#[test]
fn header_names_the_version() {
    assert_eq!(WIRE_FORMAT, "netcorr-path-observations v2");
    assert_eq!(BINARY_MAGIC, b"NCOBSv3\n");
}

#[test]
fn binary_format_is_pinned() {
    // Same fixture as `wire_format_is_pinned`: 3 paths × 4 snapshots with
    // lane words 0x6, 0x4, 0x0. Header: magic, paths=3 LE, snapshots=4 LE.
    let mut obs = PathObservations::new(3);
    obs.record_snapshot(&[false, false, false]).unwrap();
    obs.record_snapshot(&[true, false, false]).unwrap();
    obs.record_snapshot(&[true, true, false]).unwrap();
    obs.record_snapshot(&[false, false, false]).unwrap();

    let mut expected = Vec::new();
    expected.extend_from_slice(b"NCOBSv3\n");
    expected.extend_from_slice(&3u64.to_le_bytes());
    expected.extend_from_slice(&4u64.to_le_bytes());
    expected.extend_from_slice(&6u64.to_le_bytes());
    expected.extend_from_slice(&4u64.to_le_bytes());
    expected.extend_from_slice(&0u64.to_le_bytes());
    assert_eq!(obs.to_binary(), expected);
    assert_eq!(PathObservations::from_binary(&expected).unwrap(), obs);
}

#[test]
fn both_formats_round_trip_the_same_observations() {
    // 70 snapshots exercises the multi-word lane path in both formats.
    let mut obs = PathObservations::new(5);
    for s in 0..70 {
        let row: Vec<bool> = (0..5).map(|p| (s * 5 + p * 3) % 7 == 0).collect();
        obs.record_snapshot(&row).unwrap();
    }
    let text = PathObservations::from_wire(&obs.to_wire()).unwrap();
    let binary = PathObservations::from_binary(&obs.to_binary()).unwrap();
    assert_eq!(text, obs);
    assert_eq!(binary, obs);
    assert_eq!(text, binary);
    // The empty container round-trips in binary too.
    let empty = PathObservations::new(2);
    assert_eq!(
        PathObservations::from_binary(&empty.to_binary()).unwrap(),
        empty
    );
}

#[test]
fn binary_format_rejects_malformed_input() {
    assert!(PathObservations::from_binary(&[]).is_err());
    assert!(PathObservations::from_binary(b"NCOBSv3\n").is_err());
    let mut obs = PathObservations::new(2);
    obs.record_snapshot(&[true, false]).unwrap();
    let good = obs.to_binary();
    // Wrong magic.
    let mut bad = good.clone();
    bad[0] = b'X';
    assert!(PathObservations::from_binary(&bad).is_err());
    // Truncated lane region.
    assert!(PathObservations::from_binary(&good[..good.len() - 1]).is_err());
    // A bit set beyond the declared snapshot count (tail invariant).
    let mut bad = good.clone();
    bad[24] |= 0x02; // snapshot 1 of lane 0, but only 1 snapshot declared
    assert!(PathObservations::from_binary(&bad).is_err());
}
