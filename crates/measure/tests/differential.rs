//! Differential property tests: the bit-packed estimator must agree
//! **bit-exactly** with the scalar reference implementation on random
//! observation matrices, for all four query families:
//!
//! 1. single-path marginals `P(Y_i = 0)` / `P(Y_i = 1)`;
//! 2. joint goodness `P(Y_{i1} = 0, ..., Y_{ik} = 0)` (including the
//!    batch pair API);
//! 3. all-paths-good `P(ψ(S) = ∅)`;
//! 4. exact congestion patterns `P(ψ(S) = ψ(A))` (including the batch
//!    API).
//!
//! Both implementations compute `count / num_snapshots` with integer
//! counts, so the assertions use `==`, not an epsilon.

use std::collections::BTreeSet;

use netcorr_measure::reference::{ScalarEstimator, ScalarObservations};
use netcorr_measure::{PathObservations, ProbabilityEstimator};
use netcorr_topology::path::PathId;
use proptest::prelude::*;

/// Upper bounds of the random matrices; snapshot counts beyond 64 exercise
/// multi-word lanes and the tail-masking of the last word.
const MAX_PATHS: usize = 6;
const MAX_SNAPSHOTS: usize = 150;

/// Builds packed and scalar stores from the same random cell pool,
/// truncated to `paths × snapshots`.
fn build_both(
    paths: usize,
    snapshots: usize,
    cells: &[bool],
) -> (PathObservations, ScalarObservations) {
    let mut packed = PathObservations::new(paths);
    let mut scalar = ScalarObservations::new(paths);
    for s in 0..snapshots {
        let row = &cells[s * paths..(s + 1) * paths];
        packed.record_snapshot(row).unwrap();
        scalar.record_snapshot(row).unwrap();
    }
    (packed, scalar)
}

/// Strategy for the flattened cell pool (consumed row by row).
fn cell_pool() -> impl Strategy<Value = Vec<bool>> {
    prop::collection::vec(0usize..2, MAX_PATHS * MAX_SNAPSHOTS)
        .prop_map(|cells| cells.into_iter().map(|c| c == 1).collect())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn single_path_marginals_agree(
        paths in 1usize..=MAX_PATHS,
        snapshots in 1usize..=MAX_SNAPSHOTS,
        cells in cell_pool(),
    ) {
        let (packed, scalar) = build_both(paths, snapshots, &cells);
        let packed_est = ProbabilityEstimator::new(&packed).unwrap();
        let scalar_est = ScalarEstimator::new(&scalar).unwrap();
        for p in 0..paths {
            prop_assert_eq!(
                packed_est.prob_path_good(PathId(p)).unwrap(),
                scalar_est.prob_path_good(PathId(p)).unwrap()
            );
            prop_assert_eq!(
                packed_est.prob_path_congested(PathId(p)).unwrap(),
                scalar_est.prob_path_congested(PathId(p)).unwrap()
            );
        }
    }

    #[test]
    fn joint_goodness_agrees(
        paths in 1usize..=MAX_PATHS,
        snapshots in 1usize..=MAX_SNAPSHOTS,
        cells in cell_pool(),
    ) {
        let (packed, scalar) = build_both(paths, snapshots, &cells);
        let packed_est = ProbabilityEstimator::new(&packed).unwrap();
        let scalar_est = ScalarEstimator::new(&scalar).unwrap();
        // Every pair (including degenerate equal pairs), the full path
        // set, and the empty set.
        let mut pairs = Vec::new();
        for a in 0..paths {
            for b in a..paths {
                pairs.push((PathId(a), PathId(b)));
            }
        }
        let batch = packed_est.prob_pairs_good(&pairs).unwrap();
        let log_batch = packed_est.log_prob_pairs_good(&pairs).unwrap();
        for (i, &(a, b)) in pairs.iter().enumerate() {
            let expected = scalar_est.prob_paths_good(&[a, b]).unwrap();
            prop_assert_eq!(packed_est.prob_paths_good(&[a, b]).unwrap(), expected);
            prop_assert_eq!(batch[i], expected);
            prop_assert_eq!(log_batch[i], scalar_est.log_prob_paths_good(&[a, b]).unwrap());
        }
        let all: Vec<PathId> = (0..paths).map(PathId).collect();
        prop_assert_eq!(
            packed_est.prob_paths_good(&all).unwrap(),
            scalar_est.prob_paths_good(&all).unwrap()
        );
        prop_assert_eq!(
            packed_est.prob_paths_good(&[]).unwrap(),
            scalar_est.prob_paths_good(&[]).unwrap()
        );
    }

    #[test]
    fn all_paths_good_agrees(
        paths in 1usize..=MAX_PATHS,
        snapshots in 1usize..=MAX_SNAPSHOTS,
        cells in cell_pool(),
    ) {
        let (packed, scalar) = build_both(paths, snapshots, &cells);
        let packed_est = ProbabilityEstimator::new(&packed).unwrap();
        let scalar_est = ScalarEstimator::new(&scalar).unwrap();
        prop_assert_eq!(packed_est.prob_all_paths_good(), scalar_est.prob_all_paths_good());
    }

    #[test]
    fn exact_patterns_agree(
        paths in 1usize..=MAX_PATHS,
        snapshots in 1usize..=MAX_SNAPSHOTS,
        cells in cell_pool(),
        selector in 0u64..u64::MAX,
    ) {
        let (packed, scalar) = build_both(paths, snapshots, &cells);
        let packed_est = ProbabilityEstimator::new(&packed).unwrap();
        let scalar_est = ScalarEstimator::new(&scalar).unwrap();
        // Patterns: empty, a random subset, every singleton, and the first
        // snapshot's own congestion set (guaranteeing a non-zero match).
        let mut patterns: Vec<BTreeSet<PathId>> = vec![BTreeSet::new()];
        patterns.push(
            (0..paths)
                .filter(|p| selector >> (p % 64) & 1 == 1)
                .map(PathId)
                .collect(),
        );
        for p in 0..paths {
            patterns.push(BTreeSet::from([PathId(p)]));
        }
        patterns.push(packed.congested_paths(0).into_iter().collect());
        let batch = packed_est.prob_exactly_congested_batch(&patterns).unwrap();
        for (i, pattern) in patterns.iter().enumerate() {
            let expected = scalar_est.prob_exactly_congested(pattern).unwrap();
            prop_assert_eq!(packed_est.prob_exactly_congested(pattern).unwrap(), expected);
            prop_assert_eq!(batch[i], expected);
        }
    }

    #[test]
    fn wire_round_trip_preserves_observations(
        paths in 1usize..=MAX_PATHS,
        snapshots in 1usize..=MAX_SNAPSHOTS,
        cells in cell_pool(),
    ) {
        let (packed, _) = build_both(paths, snapshots, &cells);
        let back = PathObservations::from_wire(&packed.to_wire()).unwrap();
        prop_assert_eq!(&back, &packed);
        // The round-tripped store answers queries identically.
        let a = ProbabilityEstimator::new(&packed).unwrap();
        let b = ProbabilityEstimator::new(&back).unwrap();
        prop_assert_eq!(a.prob_all_paths_good(), b.prob_all_paths_good());
    }
}
